//! NXgraph facade crate re-exporting the workspace.
pub use nxgraph_baselines as baselines;
pub use nxgraph_core as core;
pub use nxgraph_graphgen as graphgen;
pub use nxgraph_storage as storage;
