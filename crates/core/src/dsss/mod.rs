//! The Destination-Sorted Sub-Shard graph representation.
//!
//! [`subshard`] defines the CSR sub-shard; [`PreparedGraph`] is the handle
//! over a preprocessed graph living on a [`Disk`]: the manifest, the
//! out-degree table (needed by scatter-style programs such as PageRank) and
//! typed read/write access to interval, sub-shard and hub files.

mod codec;
pub mod delta;
pub mod subshard;
pub mod view;

use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use nxgraph_storage::format::{self, Encoding, EncodingPolicy, FileKind};
use nxgraph_storage::manifest::{ChainInfo, GraphManifest};
use nxgraph_storage::{
    BufferPool, ChecksumPolicy, Disk, RetryPolicy, SharedBytes, StorageError, StorageResult,
};

use crate::error::{EngineError, EngineResult};
use crate::types::{Attr, VertexId};

pub use delta::{merge_edges, merge_subshards, MergedSubShardView};
pub use subshard::SubShard;
pub use view::{HubView, SubShardView};

/// Immutable snapshot of the manifest's per-cell delta chains, shared by
/// every loader of one [`PreparedGraph`] instance (including background
/// prefetch jobs, which clone the [`ViewLoader`] holding it).
#[derive(Debug, Default)]
pub(crate) struct DeltaIndex {
    cells: HashMap<(u32, u32, bool), ChainInfo>,
}

impl DeltaIndex {
    fn from_manifest(manifest: &GraphManifest) -> StorageResult<Self> {
        let mut cells = HashMap::new();
        for (i, j, reverse, info) in manifest.chains()? {
            cells.insert((i, j, reverse), info);
        }
        Ok(Self { cells })
    }

    fn info(&self, i: u32, j: u32, reverse: bool) -> ChainInfo {
        self.cells.get(&(i, j, reverse)).copied().unwrap_or_default()
    }
}

/// Scratch-file naming for one reader of a shared disk.
///
/// DPU/MPU runs rewrite per-iteration scratch files (interval attribute
/// arrays, hubs) on the graph's disk. With a single reader the legacy
/// names (`interval_{j}.bin`, `hub_{i}_{j}.bin`) are fine; concurrent
/// readers — serve-layer [`Snapshot`](crate::serve::Snapshot)s running
/// queries while the owner commits — would clobber each other's scratch,
/// so each snapshot gets a unique tag woven into the names
/// (`interval_{tag}_{j}.bin`, `hub_{tag}_{i}_{j}.bin`). Tagged names keep
/// the `interval_`/`hub_` prefixes, so the scrubber still classifies them
/// as scratch and the cell-file parser never mistakes them for chains.
#[derive(Debug, Clone, Default)]
pub struct ScratchTag(Option<Arc<str>>);

impl ScratchTag {
    /// A tag namespacing scratch files under `q{n}` (serve-layer
    /// snapshots draw `n` from a process-global counter).
    pub fn numbered(n: u64) -> Self {
        Self(Some(Arc::from(format!("q{n}").as_str())))
    }

    /// Interval `j`'s scratch attribute file under this tag.
    pub fn interval_file(&self, j: u32) -> String {
        match &self.0 {
            None => GraphManifest::interval_file(j),
            Some(t) => format!("interval_{t}_{j}.bin"),
        }
    }

    /// Hub `H(i→j)`'s scratch file under this tag.
    pub fn hub_file(&self, i: u32, j: u32) -> String {
        match &self.0 {
            None => GraphManifest::hub_file(i, j),
            Some(t) => format!("hub_{t}_{i}_{j}.bin"),
        }
    }

    /// Name prefixes owned by this tag (`None` for the untagged default,
    /// whose files persist like always) — what a snapshot's drop removes.
    pub fn owned_prefixes(&self) -> Option<[String; 2]> {
        self.0
            .as_ref()
            .map(|t| [format!("interval_{t}_"), format!("hub_{t}_")])
    }
}

/// Reject a delta blob whose header tags it for a different cell than the
/// chain that listed it — checksums only prove the file is intact, not
/// that it is the file the manifest meant.
fn check_delta_cell(src: u32, dst: u32, i: u32, j: u32, name: &str) -> StorageResult<()> {
    if src != i || dst != j {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: format!("delta blob tagged ({src}, {dst}), chain expects ({i}, {j})"),
        });
    }
    Ok(())
}

/// Load sub-shard `SS(i→j)` (base blob plus any delta chain) straight from
/// a disk handle as an owned [`SubShard`].
///
/// Same file layout as [`PreparedGraph::load_subshard`], but free of the
/// graph borrow; `chain` names the cell's base generation and delta count
/// (pass [`ChainInfo::default`] for a freshly prepped graph).
pub fn load_subshard_from(
    disk: &dyn Disk,
    i: u32,
    j: u32,
    reverse: bool,
    chain: ChainInfo,
) -> EngineResult<SubShard> {
    let mut parts = load_chain_parts(disk, i, j, reverse, chain)?;
    if parts.len() == 1 {
        return Ok(parts.pop().expect("base part always present"));
    }
    Ok(merge_subshards(i, j, &parts))
}

/// Load every part of a cell's chain — the base blob first, then each
/// delta in append order — as owned [`SubShard`]s. The rewrite and
/// compaction paths need the parts individually (their raw sizes feed the
/// manifest's byte totals); plain readers use [`load_subshard_from`].
pub(crate) fn load_chain_parts(
    disk: &dyn Disk,
    i: u32,
    j: u32,
    reverse: bool,
    chain: ChainInfo,
) -> EngineResult<Vec<SubShard>> {
    let mut parts = Vec::with_capacity(chain.deltas as usize + 1);
    let name = GraphManifest::subshard_base_file(i, j, reverse, chain.gen);
    let bytes = disk.read_all(&name)?;
    parts.push(SubShard::decode(&bytes, &name)?);
    for k in 1..=chain.deltas {
        let name = GraphManifest::subshard_delta_file(i, j, reverse, chain.gen, k);
        let bytes = disk.read_all(&name)?;
        let d = SubShard::decode(&bytes, &name)?;
        check_delta_cell(d.src_interval, d.dst_interval, i, j, &name)?;
        parts.push(d);
    }
    Ok(parts)
}

/// Read hub `H(i→j)` straight from a disk handle (see
/// [`load_subshard_from`] for why this exists). Returns `None` when the
/// hub was never written.
pub fn read_hub_from<A: Attr>(
    disk: &dyn Disk,
    i: u32,
    j: u32,
) -> EngineResult<Option<(Vec<VertexId>, Vec<A>)>> {
    read_hub_named(disk, &GraphManifest::hub_file(i, j))
}

/// Read a hub blob by (possibly scratch-tagged) name; `None` when absent.
fn read_hub_named<A: Attr>(
    disk: &dyn Disk,
    name: &str,
) -> EngineResult<Option<(Vec<VertexId>, Vec<A>)>> {
    if !disk.exists(name) {
        return Ok(None);
    }
    let bytes = disk.read_all(name)?;
    let (encoding, payload) = format::read_blob_encoded(&mut bytes.as_slice(), FileKind::Hub, name)?;
    let (dsts, accs) = match encoding {
        Encoding::Raw => {
            let mut c = format::Cursor::new(&payload);
            let count = c.u32()? as usize;
            (c.u32s(count)?, A::decode_slice(c.rest()))
        }
        Encoding::DeltaVarint => {
            let (dsts, accs_off) = codec::decode_hub_dsts(&payload, name, A::SIZE)?;
            let accs = A::decode_slice(&payload[accs_off..]);
            (dsts, accs)
        }
    };
    if accs.len() != dsts.len() {
        return Err(EngineError::Invalid(format!(
            "hub {name} has {} dsts but {} accumulators",
            dsts.len(),
            accs.len()
        )));
    }
    Ok(Some((dsts, accs)))
}

/// Cheap cloneable handle for loading zero-copy views off the engine
/// thread.
///
/// Prefetch jobs run on a background worker and can only capture
/// `'static` data, never `&PreparedGraph`; a `ViewLoader` bundles exactly
/// the pieces a load needs — the disk, the read-buffer pool and the
/// checksum policy — all behind `Arc`s.
#[derive(Clone)]
pub struct ViewLoader {
    disk: Arc<dyn Disk>,
    pool: Arc<BufferPool>,
    checksums: Arc<ChecksumPolicy>,
    /// Delta-chain snapshot from the manifest this loader was built from;
    /// a dynamic commit reopens the graph, producing fresh loaders.
    chains: Arc<DeltaIndex>,
    /// Transient-failure retry policy applied to every blob read this
    /// loader issues (sync path and prefetch workers alike).
    retry: RetryPolicy,
    /// Scratch-file naming (hubs) for the graph this loader came from.
    scratch: ScratchTag,
}

impl ViewLoader {
    /// Load sub-shard `SS(i→j)` (transposed when `reverse`) as a
    /// zero-copy view: one pooled read (or a `MemDisk` handout with no
    /// copy at all), parsed and validated in place. When the cell carries
    /// a delta chain, the base and every delta blob are loaded the same
    /// way and lazily merge-iterated into one words-backed view
    /// ([`MergedSubShardView`]) — the engines never see the chain.
    ///
    /// Base and delta files alike are immutable once referenced by a
    /// manifest (compaction bumps the base *generation* instead of
    /// rewriting in place), so the verify-once policy applies to every
    /// part — and a name is marked verified only after its checksum
    /// actually passed.
    pub fn load_subshard(&self, i: u32, j: u32, reverse: bool) -> EngineResult<SubShardView> {
        let chain = self.chains.info(i, j, reverse);
        let base = self.load_part(&GraphManifest::subshard_base_file(i, j, reverse, chain.gen))?;
        if chain.deltas == 0 {
            return Ok(base);
        }
        let mut parts = Vec::with_capacity(chain.deltas as usize + 1);
        parts.push(base);
        for k in 1..=chain.deltas {
            let name = GraphManifest::subshard_delta_file(i, j, reverse, chain.gen, k);
            let part = self.load_part(&name)?;
            check_delta_cell(part.src_interval(), part.dst_interval(), i, j, &name)?;
            parts.push(part);
        }
        Ok(MergedSubShardView::merge(&parts).into_view())
    }

    /// One chain part (base or delta blob) as a zero-copy view. The read
    /// retries transient failures per this loader's [`RetryPolicy`]; the
    /// decode does not (corrupt bytes re-read identically).
    fn load_part(&self, name: &str) -> EngineResult<SubShardView> {
        let bytes = self.read_retried(name)?;
        self.decode_part(name, bytes)
    }

    /// `read_shared` with transient-failure retry, counting re-issues and
    /// giveups in the disk's [`IoProfile`](nxgraph_storage::IoProfile).
    fn read_retried(&self, name: &str) -> EngineResult<SharedBytes> {
        Ok(self
            .retry
            .run(self.disk.io_profile(), || {
                self.disk.read_shared(name, &self.pool)
            })?)
    }

    /// Decode one already-read chain part. Shared by the inline read path
    /// and the I/O-scheduler path, so both apply the identical verify-once
    /// checksum discipline.
    fn decode_part(&self, name: &str, bytes: SharedBytes) -> EngineResult<SubShardView> {
        let verify = self.checksums.should_verify(name);
        // Compressed (v3) blobs inflate into a buffer from the same pool
        // the read came from; raw blobs cast in place as before.
        let view = SubShardView::parse_pooled(bytes, name, verify, Some(&self.pool))?;
        if verify {
            self.checksums.note_verified(name);
        }
        Ok(view)
    }

    /// The disk this loader reads from.
    pub fn disk(&self) -> &Arc<dyn Disk> {
        &self.disk
    }

    /// The page-aligned read-buffer pool behind this loader.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The retry policy applied to this loader's reads.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The on-disk files backing cell `(i, j, reverse)`: the base blob
    /// first, then each delta of the chain in append order — exactly the
    /// reads [`ViewLoader::load_subshard`] would issue, exposed so an I/O
    /// scheduler can plan them without loading anything.
    pub fn subshard_part_names(&self, i: u32, j: u32, reverse: bool) -> Vec<String> {
        let chain = self.chains.info(i, j, reverse);
        let mut names = Vec::with_capacity(chain.deltas as usize + 1);
        names.push(GraphManifest::subshard_base_file(i, j, reverse, chain.gen));
        for k in 1..=chain.deltas {
            names.push(GraphManifest::subshard_delta_file(i, j, reverse, chain.gen, k));
        }
        names
    }

    /// The hub file backing `H(i→j)`, or `None` when it was never
    /// written. Hub files are stable within an engine phase (they are
    /// written during ToHub and removed only after their column's fold),
    /// so a plan-time existence check agrees with decode time.
    pub fn hub_part_name(&self, i: u32, j: u32) -> Option<String> {
        let name = self.scratch.hub_file(i, j);
        self.disk.exists(&name).then_some(name)
    }

    /// Assemble cell `(i, j)` from parts already read off disk (in
    /// [`ViewLoader::subshard_part_names`] order) — the scheduler-fed
    /// twin of [`ViewLoader::load_subshard`], bitwise-identical in every
    /// decode, checksum and merge step.
    pub fn decode_subshard(
        &self,
        i: u32,
        j: u32,
        names: &[String],
        bytes: Vec<StorageResult<SharedBytes>>,
    ) -> EngineResult<SubShardView> {
        // `bytes` can be shorter than `names` only when the session shut
        // down mid-plan, in which case its single entry is an error that
        // propagates out of the `?` below.
        let mut parts = Vec::with_capacity(names.len());
        for (k, (name, b)) in names.iter().zip(bytes).enumerate() {
            let part = self.decode_part(name, b?)?;
            if k > 0 {
                check_delta_cell(part.src_interval(), part.dst_interval(), i, j, name)?;
            }
            parts.push(part);
        }
        if parts.len() == 1 {
            return Ok(parts.pop().expect("base part always present"));
        }
        Ok(MergedSubShardView::merge(&parts).into_view())
    }

    /// Decode hub bytes already read off disk — the scheduler-fed twin of
    /// [`ViewLoader::read_hub`]'s parse step (hubs are mutable, so every
    /// read verifies unless the policy is `Never`).
    pub fn decode_hub<A: Attr>(&self, name: &str, bytes: SharedBytes) -> EngineResult<HubView<A>> {
        Ok(HubView::parse(
            bytes,
            name,
            self.checksums.should_verify_mutable(),
        )?)
    }

    /// Read hub `H(i→j)` as a zero-copy view; `None` when the hub was
    /// never written. Hubs are *rewritten with fresh content every
    /// iteration* under the same name, so the verify-once rationale does
    /// not apply — every hub read verifies (unless the policy is `Never`).
    pub fn read_hub<A: Attr>(&self, i: u32, j: u32) -> EngineResult<Option<HubView<A>>> {
        let name = self.scratch.hub_file(i, j);
        if !self.disk.exists(&name) {
            return Ok(None);
        }
        let bytes = self.read_retried(&name)?;
        Ok(Some(HubView::parse(
            bytes,
            &name,
            self.checksums.should_verify_mutable(),
        )?))
    }
}

/// Manifest key under which the prep-time [`EncodingPolicy`] is recorded
/// (as `x.encoding` in the text format), so reopening a graph restores
/// the policy its hubs should be written with.
pub const ENCODING_MANIFEST_KEY: &str = "encoding";

/// Manifest key for the aggregate raw (uncompressed) size of all
/// sub-shard blobs written at prep time.
pub const SS_RAW_BYTES_MANIFEST_KEY: &str = "subshard_raw_bytes";

/// Manifest key for the aggregate on-disk size of all sub-shard blobs
/// written at prep time; together with
/// [`SS_RAW_BYTES_MANIFEST_KEY`] it gives the blob compression ratio.
pub const SS_DISK_BYTES_MANIFEST_KEY: &str = "subshard_disk_bytes";

fn policy_from_manifest(manifest: &GraphManifest) -> EncodingPolicy {
    manifest
        .extra
        .get(ENCODING_MANIFEST_KEY)
        .and_then(|s| s.parse().ok())
        .unwrap_or_default()
}

/// A preprocessed graph on disk: manifest + degree table + file access.
pub struct PreparedGraph {
    disk: Arc<dyn Disk>,
    manifest: GraphManifest,
    out_degrees: Arc<Vec<u32>>,
    /// Page-aligned read buffers recycled across streamed loads.
    pool: Arc<BufferPool>,
    /// Blob checksum verification policy (default: verify each file's
    /// first load, skip repeats).
    checksums: Arc<ChecksumPolicy>,
    /// Encoding applied to blobs written *during* runs (hubs, dynamic
    /// rebuilds). Restored from the manifest so a graph prepped with
    /// `Auto` keeps compressing its iteration traffic after reopen.
    encoding: EncodingPolicy,
    /// Per-cell delta-chain snapshot parsed from the manifest.
    chains: Arc<DeltaIndex>,
    /// Transient-failure retry policy handed to every [`ViewLoader`]
    /// (default: 4 attempts with 1 ms doubling backoff).
    retry: RetryPolicy,
    /// Scratch-file naming for this handle's iteration files (intervals,
    /// hubs). Default (untagged) uses the legacy single-owner names;
    /// serve-layer snapshots tag theirs so concurrent queries on the same
    /// disk never clobber each other's scratch.
    scratch: ScratchTag,
}

impl PreparedGraph {
    /// Open a graph previously written by [`crate::prep::preprocess`].
    pub fn open(disk: Arc<dyn Disk>) -> EngineResult<Self> {
        let manifest = GraphManifest::load(disk.as_ref())?;
        // The degree table is generation-tagged: dynamic commits write a
        // fresh name and point the manifest at it, so this always reads
        // the table the loaded manifest committed with.
        let degree_file = manifest.degree_file_current()?;
        let raw = disk.read_all(&degree_file)?;
        let payload = format::read_blob(&mut raw.as_slice(), FileKind::Degrees, &degree_file)?;
        let out_degrees = format::decode_u32s(&payload)?;
        if out_degrees.len() as u64 != manifest.num_vertices {
            return Err(EngineError::Invalid(format!(
                "degree table has {} entries for {} vertices",
                out_degrees.len(),
                manifest.num_vertices
            )));
        }
        let encoding = policy_from_manifest(&manifest);
        let chains = Arc::new(DeltaIndex::from_manifest(&manifest)?);
        Ok(Self {
            disk,
            manifest,
            out_degrees: Arc::new(out_degrees),
            pool: BufferPool::new(),
            checksums: Arc::new(ChecksumPolicy::default()),
            encoding,
            chains,
            retry: RetryPolicy::default(),
            scratch: ScratchTag::default(),
        })
    }

    /// Construct directly (used by preprocessing, which already holds the
    /// pieces).
    pub(crate) fn from_parts(
        disk: Arc<dyn Disk>,
        manifest: GraphManifest,
        out_degrees: Arc<Vec<u32>>,
    ) -> EngineResult<Self> {
        let checksums = Arc::new(ChecksumPolicy::default());
        let pool = BufferPool::new();
        Self::from_parts_reusing(disk, manifest, out_degrees, checksums, pool)
    }

    /// Construct from parts while carrying an existing checksum policy and
    /// buffer pool across — the dynamic-graph refresh path, where dropping
    /// the policy each commit would both re-verify every unchanged file
    /// and (worse) defeat [`ChecksumPolicy::note_invalidated`] tracking of
    /// rewritten names.
    pub(crate) fn from_parts_reusing(
        disk: Arc<dyn Disk>,
        manifest: GraphManifest,
        out_degrees: Arc<Vec<u32>>,
        checksums: Arc<ChecksumPolicy>,
        pool: Arc<BufferPool>,
    ) -> EngineResult<Self> {
        let encoding = policy_from_manifest(&manifest);
        let chains = Arc::new(DeltaIndex::from_manifest(&manifest)?);
        Ok(Self {
            disk,
            manifest,
            out_degrees,
            pool,
            checksums,
            encoding,
            chains,
            retry: RetryPolicy::default(),
            scratch: ScratchTag::default(),
        })
    }

    /// The underlying disk.
    pub fn disk(&self) -> &Arc<dyn Disk> {
        &self.disk
    }

    /// The shared checksum verification policy.
    pub(crate) fn checksum_policy(&self) -> &Arc<ChecksumPolicy> {
        &self.checksums
    }

    /// The shared read-buffer pool backing streamed view loads.
    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Replace the checksum verification policy (default:
    /// [`ChecksumMode::FirstLoad`](nxgraph_storage::ChecksumMode)).
    pub fn set_checksum_policy(&mut self, policy: ChecksumPolicy) {
        self.checksums = Arc::new(policy);
    }

    /// The transient-failure retry policy applied to blob reads.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Replace the blob-read retry policy (default: 4 attempts, 1 ms
    /// deterministic doubling backoff; [`RetryPolicy::none`] disables
    /// retrying entirely).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = policy;
    }

    /// Namespace this handle's scratch files (interval attribute arrays,
    /// hubs) under `tag`. Serve-layer snapshots set a unique tag so
    /// concurrent DPU/MPU queries sharing one disk never collide.
    pub fn set_scratch_tag(&mut self, tag: ScratchTag) {
        self.scratch = tag;
    }

    /// This handle's scratch-file naming tag.
    pub fn scratch_tag(&self) -> &ScratchTag {
        &self.scratch
    }

    /// The encoding policy applied to blobs written during runs (hubs,
    /// dynamic sub-shard rewrites). Defaults to what the graph was
    /// prepped with, via the manifest.
    pub fn encoding_policy(&self) -> EncodingPolicy {
        self.encoding
    }

    /// Override the run-time write encoding policy (reads always sniff
    /// per blob, so this never affects what can be *loaded*).
    pub fn set_encoding_policy(&mut self, policy: EncodingPolicy) {
        self.encoding = policy;
    }

    /// A cloneable loader for zero-copy sub-shard/hub views (usable from
    /// background prefetch jobs).
    pub fn view_loader(&self) -> ViewLoader {
        ViewLoader {
            disk: Arc::clone(&self.disk),
            pool: Arc::clone(&self.pool),
            checksums: Arc::clone(&self.checksums),
            chains: Arc::clone(&self.chains),
            retry: self.retry,
            scratch: self.scratch.clone(),
        }
    }

    /// Delta-chain state of cell `(i, j, reverse)` — the default for any
    /// cell a dynamic update never touched.
    pub fn chain_info(&self, i: u32, j: u32, reverse: bool) -> ChainInfo {
        self.chains.info(i, j, reverse)
    }

    /// The graph manifest.
    pub fn manifest(&self) -> &GraphManifest {
        &self.manifest
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> u32 {
        self.manifest.num_vertices as u32
    }

    /// Number of edges `m`.
    pub fn num_edges(&self) -> u64 {
        self.manifest.num_edges
    }

    /// Number of intervals `P`.
    pub fn num_intervals(&self) -> u32 {
        self.manifest.num_intervals
    }

    /// Whether reverse (transposed) sub-shards exist.
    pub fn has_reverse(&self) -> bool {
        self.manifest.has_reverse
    }

    /// Out-degree table (dense, indexed by vertex id).
    pub fn out_degrees(&self) -> &Arc<Vec<u32>> {
        &self.out_degrees
    }

    /// Vertex-id range of interval `j`.
    pub fn interval_range(&self, j: u32) -> Range<VertexId> {
        let (s, e) = self.manifest.interval_range(j);
        s as VertexId..e as VertexId
    }

    /// Number of vertices in interval `j`.
    pub fn interval_len(&self, j: u32) -> usize {
        let r = self.interval_range(j);
        (r.end - r.start) as usize
    }

    /// Load sub-shard `SS(i→j)` (or the transposed `SS'(i→j)` when
    /// `reverse`) as an owned, mutable [`SubShard`] — the prep/rebuild
    /// path, merged across any delta chain. The engines use
    /// [`PreparedGraph::load_subshard_view`].
    pub fn load_subshard(&self, i: u32, j: u32, reverse: bool) -> EngineResult<SubShard> {
        load_subshard_from(self.disk.as_ref(), i, j, reverse, self.chains.info(i, j, reverse))
    }

    /// Load sub-shard `SS(i→j)` as a zero-copy [`SubShardView`].
    pub fn load_subshard_view(&self, i: u32, j: u32, reverse: bool) -> EngineResult<SubShardView> {
        self.view_loader().load_subshard(i, j, reverse)
    }

    /// Read hub `H(i→j)` as a zero-copy [`HubView`]; `None` when the hub
    /// was never written.
    pub fn read_hub_view<A: Attr>(&self, i: u32, j: u32) -> EngineResult<Option<HubView<A>>> {
        self.view_loader().read_hub(i, j)
    }

    /// On-disk size in bytes of a sub-shard cell — base blob plus any
    /// delta chain, since a streamed access reads the whole chain (for
    /// cache planning and I/O accounting).
    pub fn subshard_len(&self, i: u32, j: u32, reverse: bool) -> EngineResult<u64> {
        let chain = self.chains.info(i, j, reverse);
        let mut total = self
            .disk
            .len_of(&GraphManifest::subshard_base_file(i, j, reverse, chain.gen))?;
        for k in 1..=chain.deltas {
            total += self
                .disk
                .len_of(&GraphManifest::subshard_delta_file(i, j, reverse, chain.gen, k))?;
        }
        Ok(total)
    }

    /// Write interval `j`'s attribute array.
    pub fn write_interval<A: Attr>(&self, j: u32, vals: &[A]) -> EngineResult<()> {
        debug_assert_eq!(vals.len(), self.interval_len(j));
        let payload = A::encode_slice(vals);
        let mut buf = Vec::with_capacity(payload.len() + 32);
        format::write_blob(&mut buf, FileKind::Interval, &payload)
            .expect("vec write is infallible");
        self.disk
            .write_all_to(&self.scratch.interval_file(j), &buf)?;
        Ok(())
    }

    /// Read interval `j`'s attribute array.
    pub fn read_interval<A: Attr>(&self, j: u32) -> EngineResult<Vec<A>> {
        let name = self.scratch.interval_file(j);
        let bytes = self.disk.read_all(&name)?;
        let payload = format::read_blob(&mut bytes.as_slice(), FileKind::Interval, &name)?;
        let vals = A::decode_slice(&payload);
        if vals.len() != self.interval_len(j) {
            return Err(EngineError::Invalid(format!(
                "interval {j} holds {} values, expected {}",
                vals.len(),
                self.interval_len(j)
            )));
        }
        Ok(vals)
    }

    /// Write hub `H(i→j)`: parallel arrays of destination ids and
    /// accumulators (the "incremental values" of §III-B2).
    ///
    /// Under a compressing [`EncodingPolicy`] the ascending destination
    /// ids are delta+varint coded (format v3); accumulator bytes stay raw
    /// in either encoding, so reloaded values are always bit-exact.
    pub fn write_hub<A: Attr>(&self, i: u32, j: u32, dsts: &[VertexId], accs: &[A]) -> EngineResult<()> {
        debug_assert_eq!(dsts.len(), accs.len());
        let mut acc_bytes = Vec::with_capacity(accs.len() * A::SIZE);
        for a in accs {
            a.write_to(&mut acc_bytes);
        }
        let raw_len = 4 + dsts.len() * 4 + acc_bytes.len();
        let compressed = match self.encoding {
            EncodingPolicy::Raw => None,
            EncodingPolicy::Auto => codec::encode_hub_payload(dsts, &acc_bytes)
                .filter(|p| codec::auto_keeps(p.len(), raw_len)),
            EncodingPolicy::Compressed => codec::encode_hub_payload(dsts, &acc_bytes),
        };
        let mut buf = Vec::with_capacity(raw_len + 32);
        match compressed {
            Some(payload) => {
                format::write_blob_encoded(&mut buf, FileKind::Hub, &payload, Encoding::DeltaVarint)
                    .expect("vec write is infallible");
            }
            None => {
                let mut payload = Vec::with_capacity(raw_len);
                format::push_u32(&mut payload, dsts.len() as u32);
                for &d in dsts {
                    format::push_u32(&mut payload, d);
                }
                payload.extend_from_slice(&acc_bytes);
                format::write_blob(&mut buf, FileKind::Hub, &payload)
                    .expect("vec write is infallible");
            }
        }
        self.disk.write_all_to(&self.scratch.hub_file(i, j), &buf)?;
        Ok(())
    }

    /// Read hub `H(i→j)`. Returns `None` when the hub was never written
    /// (its source row was skipped as inactive).
    pub fn read_hub<A: Attr>(&self, i: u32, j: u32) -> EngineResult<Option<(Vec<VertexId>, Vec<A>)>> {
        read_hub_named(self.disk.as_ref(), &self.scratch.hub_file(i, j))
    }

    /// Remove hub `H(i→j)` if present (between iterations).
    pub fn remove_hub(&self, i: u32, j: u32) {
        let _ = self.disk.remove(&self.scratch.hub_file(i, j));
    }

    /// Load the reverse mapping table (`id → original index`), sorted
    /// ascending by construction of the degreeing step.
    pub fn load_reverse_mapping(&self) -> EngineResult<Vec<u64>> {
        let name = GraphManifest::reverse_mapping_file();
        let bytes = self.disk.read_all(name)?;
        let payload = format::read_blob(&mut bytes.as_slice(), FileKind::Mapping, name)?;
        let mut c = format::Cursor::new(&payload);
        let count = payload.len() / 8;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            out.push(c.u64()?);
        }
        if out.len() as u64 != self.manifest.num_vertices {
            return Err(EngineError::Invalid(format!(
                "mapping table has {} entries for {} vertices",
                out.len(),
                self.manifest.num_vertices
            )));
        }
        Ok(out)
    }

    /// Total bytes of all forward sub-shard files (≈ `m · Be`).
    pub fn total_subshard_bytes(&self) -> EngineResult<u64> {
        let p = self.num_intervals();
        let mut total = 0;
        for i in 0..p {
            for j in 0..p {
                total += self.subshard_len(i, j, false)?;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::{preprocess, PrepConfig};
    use nxgraph_storage::MemDisk;

    fn prepared() -> PreparedGraph {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let edges: Vec<(u64, u64)> = crate::fig1_example_edges()
            .into_iter()
            .map(|(s, d)| (s as u64, d as u64))
            .collect();
        preprocess(&edges, &PrepConfig::new("fig1", 4), disk).unwrap()
    }

    #[test]
    fn open_roundtrip() {
        let g = prepared();
        let g2 = PreparedGraph::open(Arc::clone(g.disk())).unwrap();
        assert_eq!(g2.num_vertices(), 7);
        assert_eq!(g2.num_edges(), 21);
        assert_eq!(g2.num_intervals(), 4);
        assert_eq!(g2.out_degrees().as_slice(), g.out_degrees().as_slice());
    }

    #[test]
    fn interval_io_roundtrip() {
        let g = prepared();
        let vals: Vec<f64> = (0..g.interval_len(0)).map(|k| k as f64 * 1.5).collect();
        g.write_interval(0, &vals).unwrap();
        assert_eq!(g.read_interval::<f64>(0).unwrap(), vals);
    }

    #[test]
    fn hub_io_roundtrip_and_missing() {
        let g = prepared();
        assert!(g.read_hub::<f64>(1, 2).unwrap().is_none());
        g.write_hub(1, 2, &[4, 5], &[0.25f64, 0.75]).unwrap();
        let (dsts, accs) = g.read_hub::<f64>(1, 2).unwrap().unwrap();
        assert_eq!(dsts, vec![4, 5]);
        assert_eq!(accs, vec![0.25, 0.75]);
        g.remove_hub(1, 2);
        assert!(g.read_hub::<f64>(1, 2).unwrap().is_none());
    }

    #[test]
    fn compressed_hub_roundtrips_bit_exact() {
        let mut g = prepared();
        let dsts = vec![4u32, 5, 6];
        let accs = vec![0.25f64, -0.75, 1e-300];
        g.write_hub(1, 2, &dsts, &accs).unwrap();
        let raw_len = g.disk().len_of(&GraphManifest::hub_file(1, 2)).unwrap();

        g.set_encoding_policy(EncodingPolicy::Compressed);
        assert_eq!(g.encoding_policy(), EncodingPolicy::Compressed);
        g.write_hub(1, 2, &dsts, &accs).unwrap();
        let comp_len = g.disk().len_of(&GraphManifest::hub_file(1, 2)).unwrap();
        assert!(comp_len < raw_len, "{comp_len} !< {raw_len}");

        // Owned and view readers sniff v3 and agree bit-for-bit.
        let (d, a) = g.read_hub::<f64>(1, 2).unwrap().unwrap();
        assert_eq!(d, dsts);
        assert_eq!(a, accs);
        let hub = g.read_hub_view::<f64>(1, 2).unwrap().unwrap();
        assert_eq!(hub.dsts(), &dsts[..]);
        for (k, &want) in accs.iter().enumerate() {
            assert_eq!(hub.acc(k).to_bits(), want.to_bits());
        }

        // Unsorted caller input falls back to raw rather than corrupting.
        g.write_hub(1, 2, &[9, 4], &[1.0f64, 2.0]).unwrap();
        let (d, a) = g.read_hub::<f64>(1, 2).unwrap().unwrap();
        assert_eq!((d, a), (vec![9, 4], vec![1.0, 2.0]));
    }

    #[test]
    fn compressed_prep_records_ratio_and_loads_identically() {
        let edges: Vec<(u64, u64)> = crate::fig1_example_edges()
            .into_iter()
            .map(|(s, d)| (s as u64, d as u64))
            .collect();
        let disk_raw: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let g_raw = preprocess(&edges, &PrepConfig::new("fig1", 4), disk_raw).unwrap();
        let disk_c: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let cfg = PrepConfig::new("fig1", 4).with_encoding(EncodingPolicy::Auto);
        let g_c = preprocess(&edges, &cfg, disk_c).unwrap();

        // The manifest records the policy and the aggregate blob ratio.
        let m = g_c.manifest();
        assert_eq!(m.extra.get(ENCODING_MANIFEST_KEY).unwrap(), "auto");
        let raw: u64 = m.extra.get(SS_RAW_BYTES_MANIFEST_KEY).unwrap().parse().unwrap();
        let disk: u64 = m.extra.get(SS_DISK_BYTES_MANIFEST_KEY).unwrap().parse().unwrap();
        assert!(disk < raw, "{disk} !< {raw}");
        assert!(g_c.total_subshard_bytes().unwrap() < g_raw.total_subshard_bytes().unwrap());

        // Reopening restores the policy; a raw-prepped graph reports Raw.
        let g2 = PreparedGraph::open(Arc::clone(g_c.disk())).unwrap();
        assert_eq!(g2.encoding_policy(), EncodingPolicy::Auto);
        assert_eq!(g_raw.encoding_policy(), EncodingPolicy::Raw);

        // Every cell decodes to the same sub-shard through both the owned
        // and the view loaders.
        for i in 0..4 {
            for j in 0..4 {
                for rev in [false, true] {
                    assert_eq!(
                        g_c.load_subshard(i, j, rev).unwrap(),
                        g_raw.load_subshard(i, j, rev).unwrap()
                    );
                    assert_eq!(
                        g_c.load_subshard_view(i, j, rev).unwrap().to_subshard(),
                        g_raw.load_subshard(i, j, rev).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn subshard_lengths_sum_to_total() {
        let g = prepared();
        let mut sum = 0;
        for i in 0..4 {
            for j in 0..4 {
                sum += g.subshard_len(i, j, false).unwrap();
            }
        }
        assert_eq!(sum, g.total_subshard_bytes().unwrap());
        assert!(sum > 0);
    }
}
