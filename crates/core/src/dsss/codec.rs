//! Delta+varint payload codecs — the compressed (format v3) encoding of
//! sub-shards and hubs.
//!
//! Destination-sorting makes every persisted column locally monotone:
//! `dsts` is strictly increasing, `offsets` is a prefix sum of per-slot
//! degrees, and each destination's `srcs` run is sorted. The v3 payload
//! therefore stores *gaps*, LEB128-coded ([`nxgraph_storage::varint`]),
//! instead of raw `u32` words:
//!
//! ```text
//! sub-shard v3 payload:
//!   [src_interval, dst_interval, num_dsts, num_edges]   4 × u32 LE
//!   varint dsts      num_dsts values: first absolute, then gaps
//!   varint degrees   num_dsts values: offsets[k+1] − offsets[k]
//!   varint srcs      per slot: first absolute, then in-run gaps
//!
//! hub v3 payload:
//!   count                                               u32 LE
//!   varint dsts      count values: first absolute, then gaps
//!   raw accumulators count × A::SIZE bytes (f64 bits are incompressible
//!                    and must round-trip bitwise)
//! ```
//!
//! Gaps in sorted id columns are small, so the common varint is one byte
//! where the raw format spends four — 2-4× smaller blobs, which is bytes
//! *not read* on every streamed iteration. Decoding inflates into an
//! aligned word buffer once per load (pooled on the view path), after
//! which the engine-facing `&[u32]` slice API is byte-identical to a raw
//! load; corrupt or truncated varint streams surface as
//! [`StorageError::Corrupt`], never as wrong arrays or panics.

use nxgraph_storage::varint::{push_varint, read_varint};
use nxgraph_storage::{StorageError, StorageResult};

use super::subshard::SubShard;

/// Fixed little-endian prefix of a v3 sub-shard payload — the same four
/// header words (src/dst interval, counts) as the raw layout.
pub(crate) const SS_FIXED_BYTES: usize = 16;

/// `Auto` keeps the compressed blob only when it is at most 15/16 of the
/// raw blob: marginal wins do not pay for the inflate pass on every load.
pub(crate) fn auto_keeps(compressed_len: usize, raw_len: usize) -> bool {
    compressed_len * 16 <= raw_len * 15
}

fn corrupt(name: &str, reason: impl Into<String>) -> StorageError {
    StorageError::Corrupt {
        name: name.to_string(),
        reason: reason.into(),
    }
}

// ---------------------------------------------------------------------------
// Sub-shards
// ---------------------------------------------------------------------------

/// The fixed header words of a v3 sub-shard payload.
pub(crate) struct SsHeader {
    pub src_interval: u32,
    pub dst_interval: u32,
    pub num_dsts: usize,
    pub num_edges: usize,
}

impl SsHeader {
    /// Length in words of the inflated payload
    /// (`header + dsts + offsets + srcs`).
    pub fn words_len(&self) -> usize {
        4 + self.num_dsts + (self.num_dsts + 1) + self.num_edges
    }
}

/// Read and sanity-check the fixed header of a v3 sub-shard payload.
///
/// The length lower bound (every varint is ≥ 1 byte) both rejects
/// truncated payloads early and caps the inflated allocation at roughly
/// 4× the compressed bytes — a header lying about its counts cannot
/// trigger an oversized buffer.
pub(crate) fn read_ss_header(payload: &[u8], name: &str) -> StorageResult<SsHeader> {
    if payload.len() < SS_FIXED_BYTES {
        return Err(corrupt(
            name,
            format!("compressed payload of {} bytes has no header", payload.len()),
        ));
    }
    let word = |k: usize| u32::from_le_bytes(payload[4 * k..4 * k + 4].try_into().unwrap());
    let h = SsHeader {
        src_interval: word(0),
        dst_interval: word(1),
        num_dsts: word(2) as usize,
        num_edges: word(3) as usize,
    };
    let min_len = SS_FIXED_BYTES + 2 * h.num_dsts + h.num_edges;
    if payload.len() < min_len {
        return Err(corrupt(
            name,
            format!(
                "compressed payload of {} bytes cannot hold {} dsts / {} edges",
                payload.len(),
                h.num_dsts,
                h.num_edges
            ),
        ));
    }
    Ok(h)
}

/// Encode a sub-shard as a v3 payload (no blob header).
///
/// Returns `None` when the columns violate the monotonicity the gap
/// coding relies on (possible only for hand-constructed shards — the
/// builder sorts); callers then fall back to the raw encoding.
pub(crate) fn encode_subshard_payload(ss: &SubShard) -> Option<Vec<u8>> {
    if ss.offsets.len() != ss.dsts.len() + 1 || ss.offsets.first() != Some(&0) {
        return None;
    }
    let mut out = Vec::with_capacity(SS_FIXED_BYTES + 2 * ss.dsts.len() + 2 * ss.srcs.len());
    for v in [
        ss.src_interval,
        ss.dst_interval,
        ss.dsts.len() as u32,
        ss.srcs.len() as u32,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    let mut prev = 0u32;
    for (k, &d) in ss.dsts.iter().enumerate() {
        if k > 0 && d <= prev {
            return None;
        }
        push_varint(&mut out, d - prev);
        prev = d;
    }
    for w in ss.offsets.windows(2) {
        if w[1] < w[0] {
            return None;
        }
        push_varint(&mut out, w[1] - w[0]);
    }
    if *ss.offsets.last().unwrap() as usize != ss.srcs.len() {
        return None;
    }
    for k in 0..ss.dsts.len() {
        let run = &ss.srcs[ss.offsets[k] as usize..ss.offsets[k + 1] as usize];
        let mut prev = 0u32;
        for (t, &s) in run.iter().enumerate() {
            if t > 0 && s < prev {
                return None;
            }
            push_varint(&mut out, s - prev);
            prev = s;
        }
    }
    Some(out)
}

/// Inflate a v3 sub-shard payload into `out`, which must hold exactly
/// [`SsHeader::words_len`] words. The output layout is identical to a raw
/// payload: 4 header words, `dsts`, `offsets`, `srcs`.
pub(crate) fn decode_subshard_into(
    payload: &[u8],
    name: &str,
    h: &SsHeader,
    out: &mut [u32],
) -> StorageResult<()> {
    debug_assert_eq!(out.len(), h.words_len());
    out[0] = h.src_interval;
    out[1] = h.dst_interval;
    out[2] = h.num_dsts as u32;
    out[3] = h.num_edges as u32;
    let mut pos = SS_FIXED_BYTES;

    // dsts: cumulative gaps (checked — a corrupt stream must error, not
    // wrap into a plausible-looking id).
    let mut prev = 0u32;
    for k in 0..h.num_dsts {
        let gap = read_varint(payload, &mut pos, name)?;
        prev = prev
            .checked_add(gap)
            .ok_or_else(|| corrupt(name, "dst gap overflows u32"))?;
        out[4 + k] = prev;
    }

    // offsets: prefix sum of per-slot degrees.
    let off_base = 4 + h.num_dsts;
    out[off_base] = 0;
    let mut off = 0u32;
    for k in 0..h.num_dsts {
        let deg = read_varint(payload, &mut pos, name)?;
        off = off
            .checked_add(deg)
            .ok_or_else(|| corrupt(name, "degree sum overflows u32"))?;
        out[off_base + 1 + k] = off;
    }
    if off as usize != h.num_edges {
        return Err(corrupt(
            name,
            format!("degrees sum to {off}, header claims {} edges", h.num_edges),
        ));
    }

    // srcs: per-run cumulative gaps, run lengths taken from the offsets
    // just decoded.
    let src_base = off_base + 1 + h.num_dsts;
    let mut idx = 0usize;
    for k in 0..h.num_dsts {
        let run = (out[off_base + 1 + k] - out[off_base + k]) as usize;
        let mut prev = 0u32;
        for _ in 0..run {
            let gap = read_varint(payload, &mut pos, name)?;
            prev = prev
                .checked_add(gap)
                .ok_or_else(|| corrupt(name, "src gap overflows u32"))?;
            out[src_base + idx] = prev;
            idx += 1;
        }
    }
    if pos != payload.len() {
        return Err(corrupt(
            name,
            format!("{} trailing bytes after varint stream", payload.len() - pos),
        ));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Hubs
// ---------------------------------------------------------------------------

/// Encode a hub as a v3 payload: varint-coded destination ids followed by
/// the raw accumulator bytes. `None` when `dsts` is not non-decreasing
/// (hub compaction emits ascending ids; arbitrary caller input falls back
/// to raw).
pub(crate) fn encode_hub_payload(dsts: &[u32], acc_bytes: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(4 + 2 * dsts.len() + acc_bytes.len());
    out.extend_from_slice(&(dsts.len() as u32).to_le_bytes());
    let mut prev = 0u32;
    for (k, &d) in dsts.iter().enumerate() {
        if k > 0 && d < prev {
            return None;
        }
        push_varint(&mut out, d - prev);
        prev = d;
    }
    out.extend_from_slice(acc_bytes);
    Some(out)
}

/// Decode the destination ids of a v3 hub payload; returns the ids and
/// the byte offset of the raw accumulator section (validated to hold
/// exactly `count × acc_size` bytes).
pub(crate) fn decode_hub_dsts(
    payload: &[u8],
    name: &str,
    acc_size: usize,
) -> StorageResult<(Vec<u32>, usize)> {
    if payload.len() < 4 {
        return Err(corrupt(name, "hub payload shorter than its count"));
    }
    let count = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
    // Lower bound: one byte per varint id plus the raw accumulators.
    if payload.len() < 4 + count + count * acc_size {
        return Err(corrupt(
            name,
            format!(
                "hub payload of {} bytes cannot hold {count} entries",
                payload.len()
            ),
        ));
    }
    let mut pos = 4usize;
    let mut dsts = Vec::with_capacity(count);
    let mut prev = 0u32;
    for _ in 0..count {
        let gap = read_varint(payload, &mut pos, name)?;
        prev = prev
            .checked_add(gap)
            .ok_or_else(|| corrupt(name, "hub dst gap overflows u32"))?;
        dsts.push(prev);
    }
    if payload.len() - pos != count * acc_size {
        return Err(corrupt(
            name,
            format!(
                "hub accumulator section holds {} bytes, expected {} for {count} entries",
                payload.len() - pos,
                count * acc_size
            ),
        ));
    }
    Ok((dsts, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SubShard {
        SubShard::from_edges(2, 1, vec![(5, 3), (4, 3), (5, 2), (4, 3), (9, 2)])
    }

    /// Inflate a v3 payload into a fresh word vector (test convenience
    /// around [`decode_subshard_into`]).
    fn decode_subshard_words(payload: &[u8], name: &str) -> StorageResult<Vec<u32>> {
        let h = read_ss_header(payload, name)?;
        let mut words = vec![0u32; h.words_len()];
        decode_subshard_into(payload, name, &h, &mut words)?;
        Ok(words)
    }

    #[test]
    fn subshard_payload_roundtrips() {
        let ss = sample();
        let payload = encode_subshard_payload(&ss).unwrap();
        let words = decode_subshard_words(&payload, "t").unwrap();
        assert_eq!(&words[..4], &[2, 1, 2, 5]);
        assert_eq!(&words[4..6], &ss.dsts[..]);
        assert_eq!(&words[6..9], &ss.offsets[..]);
        assert_eq!(&words[9..], &ss.srcs[..]);
        // Gap coding actually shrinks the columns: every id here fits in
        // one varint byte.
        assert!(payload.len() < SS_FIXED_BYTES + 4 * (2 + 3 + 5));
    }

    #[test]
    fn empty_subshard_payload_is_header_only() {
        let ss = SubShard::from_edges(0, 0, vec![]);
        let payload = encode_subshard_payload(&ss).unwrap();
        assert_eq!(payload.len(), SS_FIXED_BYTES);
        let words = decode_subshard_words(&payload, "t").unwrap();
        assert_eq!(words, vec![0, 0, 0, 0, 0]);
    }

    #[test]
    fn unsorted_columns_refuse_to_compress() {
        let mut ss = sample();
        ss.dsts.swap(0, 1);
        assert!(encode_subshard_payload(&ss).is_none());
        let mut ss = sample();
        ss.srcs.swap(2, 4);
        assert!(encode_subshard_payload(&ss).is_none());
        let mut ss = sample();
        ss.offsets[1] = 4;
        ss.offsets[2] = 2;
        assert!(encode_subshard_payload(&ss).is_none());
    }

    #[test]
    fn corrupt_streams_error_cleanly() {
        let payload = encode_subshard_payload(&sample()).unwrap();
        // Truncation at every boundary inside the varint stream.
        for cut in SS_FIXED_BYTES..payload.len() {
            assert!(
                decode_subshard_words(&payload[..cut], "t").is_err(),
                "cut at {cut}"
            );
        }
        // Trailing garbage.
        let mut long = payload.clone();
        long.push(0x01);
        assert!(decode_subshard_words(&long, "t").is_err());
        // A header lying about counts beyond the byte budget.
        let mut lie = payload.clone();
        lie[12] = 0xff; // num_edges low byte
        assert!(decode_subshard_words(&lie, "t").is_err());
    }

    #[test]
    fn hub_payload_roundtrips() {
        let dsts = [4u32, 5, 9];
        let accs: Vec<u8> = (0..24).collect();
        let payload = encode_hub_payload(&dsts, &accs).unwrap();
        let (back, off) = decode_hub_dsts(&payload, "h", 8).unwrap();
        assert_eq!(back, dsts);
        assert_eq!(&payload[off..], &accs[..]);
        // Unsorted ids fall back.
        assert!(encode_hub_payload(&[5, 4], &[0u8; 16]).is_none());
        // Duplicates (gap 0) are legal.
        let p = encode_hub_payload(&[7, 7], &[0u8; 16]).unwrap();
        assert_eq!(decode_hub_dsts(&p, "h", 8).unwrap().0, vec![7, 7]);
    }

    #[test]
    fn hub_corruption_errors_cleanly() {
        let payload = encode_hub_payload(&[1, 200, 70_000], &[9u8; 24]).unwrap();
        for cut in 0..payload.len() {
            assert!(decode_hub_dsts(&payload[..cut], "h", 8).is_err(), "cut {cut}");
        }
        let mut long = payload.clone();
        long.push(0);
        assert!(decode_hub_dsts(&long, "h", 8).is_err());
    }

    #[test]
    fn auto_threshold() {
        assert!(auto_keeps(60, 64));
        assert!(!auto_keeps(63, 64));
        assert!(!auto_keeps(64, 64));
    }
}
