//! Destination-Sorted Sub-Shards.
//!
//! Sub-shard `SS(i→j)` holds every edge with source in interval `Iᵢ` and
//! destination in interval `Iⱼ`. Edges are sorted by destination id, then
//! source id (§III-A): destination-sorting enables the compressed sparse
//! format below and gives worker threads exclusive destination ranges;
//! source-sorting within a destination makes the reads of the source
//! interval sequential, "utiliz\[ing\] the hierarchical memory structure of
//! CPU".
//!
//! The in-memory and on-disk layout is CSR keyed by destination:
//!
//! ```text
//! dsts:    [d₀ < d₁ < … < d_{k-1}]          distinct destination ids
//! offsets: [o₀ = 0, o₁, …, o_k]             edge ranges per destination
//! srcs:    [s…]                             source ids, sorted per dest
//! ```

use std::ops::Range;

use nxgraph_storage::format::{self, Encoding, EncodingPolicy, FileKind};
use nxgraph_storage::{StorageError, StorageResult};

use crate::types::VertexId;

use super::codec;

/// One destination-sorted sub-shard in compressed sparse (CSR) form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubShard {
    /// Source interval index `i`.
    pub src_interval: u32,
    /// Destination interval index `j`.
    pub dst_interval: u32,
    /// Distinct destination ids, strictly increasing (global ids).
    pub dsts: Vec<VertexId>,
    /// CSR offsets into `srcs`; `len == dsts.len() + 1`.
    pub offsets: Vec<u32>,
    /// Source ids (global), sorted within each destination's range.
    pub srcs: Vec<VertexId>,
}

impl SubShard {
    /// Build a sub-shard from `(src, dst)` edges belonging to `(i, j)`.
    ///
    /// Sorting is performed here — callers hand over edges in any order.
    /// Duplicate edges are preserved (raw crawls contain them and PageRank
    /// counts them).
    pub fn from_edges(src_interval: u32, dst_interval: u32, mut edges: Vec<(VertexId, VertexId)>) -> Self {
        edges.sort_unstable_by_key(|&(s, d)| (d, s));
        let mut dsts = Vec::new();
        let mut offsets = vec![0u32];
        let mut srcs = Vec::with_capacity(edges.len());
        for (s, d) in edges {
            if dsts.last() != Some(&d) {
                // Close the previous destination's run before opening a new
                // one — one offset write per destination, not per edge.
                if !srcs.is_empty() {
                    offsets.push(srcs.len() as u32);
                }
                dsts.push(d);
            }
            srcs.push(s);
        }
        if !srcs.is_empty() {
            offsets.push(srcs.len() as u32);
        }
        Self {
            src_interval,
            dst_interval,
            dsts,
            offsets,
            srcs,
        }
    }

    /// Number of edges stored.
    pub fn num_edges(&self) -> usize {
        self.srcs.len()
    }

    /// Number of distinct destinations.
    pub fn num_dsts(&self) -> usize {
        self.dsts.len()
    }

    /// Whether the sub-shard holds no edges.
    pub fn is_empty(&self) -> bool {
        self.srcs.is_empty()
    }

    /// Average in-degree of the destinations present — the paper's `d`
    /// parameter governing hub size.
    pub fn avg_in_degree(&self) -> f64 {
        if self.dsts.is_empty() {
            0.0
        } else {
            self.srcs.len() as f64 / self.dsts.len() as f64
        }
    }

    /// The source-id range of the edges in destination slot `pos`.
    #[inline]
    pub fn src_range(&self, pos: usize) -> Range<usize> {
        self.offsets[pos] as usize..self.offsets[pos + 1] as usize
    }

    /// Iterate `(src, dst)` pairs in (dst, src) order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.dsts.len()).flat_map(move |pos| {
            let d = self.dsts[pos];
            self.srcs[self.src_range(pos)].iter().map(move |&s| (s, d))
        })
    }

    /// Split the destination slots into contiguous position ranges of
    /// roughly `target_edges` edges each (cuts only at destination
    /// boundaries, preserving exclusive ownership). This is the
    /// fine-grained task granularity of §III-D.
    pub fn chunk_by_edges(&self, target_edges: usize) -> Vec<Range<usize>> {
        chunk_csr_by_edges(self.dsts.len(), &self.offsets, target_edges)
    }

    /// Serialised *raw* byte size (header + payload) of this sub-shard;
    /// the empirical `Be · edges` used for cache planning, I/O accounting
    /// and as the denominator of the compression ratio (compressed blobs
    /// are smaller — use the on-disk file length for actual sizes).
    pub fn encoded_len(&self) -> u64 {
        32 + 16 + 4 * (self.dsts.len() + self.offsets.len() + self.srcs.len()) as u64
    }

    /// Encode into the checksummed blob format as raw (v2) words.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(self.encoded_len() as usize - 32);
        format::push_u32(&mut payload, self.src_interval);
        format::push_u32(&mut payload, self.dst_interval);
        format::push_u32(&mut payload, self.dsts.len() as u32);
        format::push_u32(&mut payload, self.srcs.len() as u32);
        for &d in &self.dsts {
            format::push_u32(&mut payload, d);
        }
        for &o in &self.offsets {
            format::push_u32(&mut payload, o);
        }
        for &s in &self.srcs {
            format::push_u32(&mut payload, s);
        }
        let mut out = Vec::with_capacity(payload.len() + 32);
        format::write_blob(&mut out, FileKind::SubShard, &payload)
            .expect("writing to Vec cannot fail");
        out
    }

    /// Encode under an [`EncodingPolicy`]: raw v2 words, delta+varint v3,
    /// or — under `Auto` — whichever wins the ratio threshold for *this*
    /// blob. Every decoder sniffs the version per blob, so the outputs mix
    /// freely on one disk.
    pub fn encode_with(&self, policy: EncodingPolicy) -> Vec<u8> {
        if policy == EncodingPolicy::Raw {
            return self.encode();
        }
        let Some(payload) = codec::encode_subshard_payload(self) else {
            // Non-monotone hand-built columns: gap coding does not apply.
            return self.encode();
        };
        let compressed_len = payload.len() + 32;
        if policy == EncodingPolicy::Auto
            && !codec::auto_keeps(compressed_len, self.encoded_len() as usize)
        {
            return self.encode();
        }
        let mut out = Vec::with_capacity(compressed_len);
        format::write_blob_encoded(&mut out, FileKind::SubShard, &payload, Encoding::DeltaVarint)
            .expect("writing to Vec cannot fail");
        out
    }

    /// Decode from bytes produced by [`SubShard::encode`] or
    /// [`SubShard::encode_with`] (the blob version selects the path).
    pub fn decode(bytes: &[u8], name: &str) -> StorageResult<Self> {
        let mut r = bytes;
        let (encoding, payload) = format::read_blob_encoded(&mut r, FileKind::SubShard, name)?;
        let ss = match encoding {
            Encoding::Raw => {
                let mut c = format::Cursor::new(&payload);
                let src_interval = c.u32()?;
                let dst_interval = c.u32()?;
                let num_dsts = c.u32()? as usize;
                let num_edges = c.u32()? as usize;
                let dsts = c.u32s(num_dsts)?;
                let offsets = c.u32s(num_dsts + 1)?;
                let srcs = c.u32s(num_edges)?;
                if c.remaining() != 0 {
                    return Err(StorageError::Corrupt {
                        name: name.to_string(),
                        reason: format!("{} trailing bytes", c.remaining()),
                    });
                }
                Self {
                    src_interval,
                    dst_interval,
                    dsts,
                    offsets,
                    srcs,
                }
            }
            Encoding::DeltaVarint => {
                // Cold path (prep/rebuild tooling): one inflate into a
                // words buffer, then split into the owned columns.
                let h = codec::read_ss_header(&payload, name)?;
                let mut words = vec![0u32; h.words_len()];
                codec::decode_subshard_into(&payload, name, &h, &mut words)?;
                let off_base = 4 + h.num_dsts;
                Self {
                    src_interval: h.src_interval,
                    dst_interval: h.dst_interval,
                    dsts: words[4..off_base].to_vec(),
                    offsets: words[off_base..off_base + h.num_dsts + 1].to_vec(),
                    srcs: words[off_base + h.num_dsts + 1..].to_vec(),
                }
            }
        };
        ss.validate(name)?;
        Ok(ss)
    }

    /// Check structural invariants (sortedness, offset monotonicity).
    pub fn validate(&self, name: &str) -> StorageResult<()> {
        validate_csr(name, &self.dsts, &self.offsets, &self.srcs)
    }
}

/// Check the CSR structural invariants shared by [`SubShard`] and the
/// zero-copy [`SubShardView`](super::SubShardView): offsets bracket the
/// source array, destinations are strictly increasing, and each slot's
/// sources are sorted and non-empty.
pub(crate) fn validate_csr(
    name: &str,
    dsts: &[VertexId],
    offsets: &[u32],
    srcs: &[VertexId],
) -> StorageResult<()> {
    let corrupt = |reason: String| StorageError::Corrupt {
        name: name.to_string(),
        reason,
    };
    if offsets.len() != dsts.len() + 1 {
        return Err(corrupt("offsets/dsts length mismatch".into()));
    }
    if offsets.first() != Some(&0) || *offsets.last().unwrap() as usize != srcs.len() {
        return Err(corrupt("offset endpoints invalid".into()));
    }
    if !dsts.windows(2).all(|w| w[0] < w[1]) {
        return Err(corrupt("destinations not strictly increasing".into()));
    }
    if !offsets.windows(2).all(|w| w[0] <= w[1]) {
        return Err(corrupt("offsets not monotone".into()));
    }
    for pos in 0..dsts.len() {
        let r = offsets[pos] as usize..offsets[pos + 1] as usize;
        if r.is_empty() {
            return Err(corrupt(format!("destination slot {pos} has no edges")));
        }
        if !srcs[r].windows(2).all(|w| w[0] <= w[1]) {
            return Err(corrupt(format!("sources of slot {pos} unsorted")));
        }
    }
    Ok(())
}

/// Destination-boundary chunking shared by [`SubShard::chunk_by_edges`]
/// and the view.
pub(crate) fn chunk_csr_by_edges(
    num_dsts: usize,
    offsets: &[u32],
    target_edges: usize,
) -> Vec<Range<usize>> {
    let target = target_edges.max(1) as u32;
    let mut out = Vec::new();
    let mut start = 0usize;
    let mut start_off = 0u32;
    for pos in 0..num_dsts {
        let end_off = offsets[pos + 1];
        if end_off - start_off >= target {
            out.push(start..pos + 1);
            start = pos + 1;
            start_off = end_off;
        }
    }
    if start < num_dsts {
        out.push(start..num_dsts);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SubShard {
        // Edges (src → dst): deliberately unsorted input.
        SubShard::from_edges(
            2,
            1,
            vec![(5, 3), (4, 3), (5, 2), (4, 3), (9, 2)],
        )
    }

    #[test]
    fn builds_sorted_csr() {
        let ss = sample();
        assert_eq!(ss.dsts, vec![2, 3]);
        assert_eq!(ss.offsets, vec![0, 2, 5]);
        // dst 2: srcs 5, 9 sorted; dst 3: srcs 4, 4, 5 (duplicate kept).
        assert_eq!(ss.srcs, vec![5, 9, 4, 4, 5]);
        assert_eq!(ss.num_edges(), 5);
        assert_eq!(ss.num_dsts(), 2);
        assert!((ss.avg_in_degree() - 2.5).abs() < 1e-12);
        ss.validate("sample").unwrap();
    }

    #[test]
    fn iter_edges_in_dst_src_order() {
        let ss = sample();
        let edges: Vec<_> = ss.iter_edges().collect();
        assert_eq!(edges, vec![(5, 2), (9, 2), (4, 3), (4, 3), (5, 3)]);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ss = sample();
        let bytes = ss.encode();
        assert_eq!(bytes.len() as u64, ss.encoded_len());
        let back = SubShard::decode(&bytes, "t").unwrap();
        assert_eq!(ss, back);
    }

    #[test]
    fn compressed_encode_roundtrips_and_shrinks() {
        let ss = sample();
        let blob = ss.encode_with(EncodingPolicy::Compressed);
        assert!(blob.len() < ss.encoded_len() as usize);
        assert_eq!(SubShard::decode(&blob, "t").unwrap(), ss);
        // Auto keeps the compressed bytes here (every gap is one byte)…
        assert_eq!(ss.encode_with(EncodingPolicy::Auto), blob);
        // …the Raw policy is byte-identical to `encode`…
        assert_eq!(ss.encode_with(EncodingPolicy::Raw), ss.encode());
        // …and even an empty shard compresses (header-only payload beats
        // the raw layout's offsets word), so Auto keeps it.
        let empty = SubShard::from_edges(0, 0, vec![]);
        let forced = empty.encode_with(EncodingPolicy::Compressed);
        assert!(forced.len() < empty.encode().len());
        assert_eq!(empty.encode_with(EncodingPolicy::Auto), forced);
        assert_eq!(SubShard::decode(&forced, "t").unwrap(), empty);
        // A shard built from 2²⁸-wide source gaps inflates under varint
        // (five bytes per gap vs four raw) — Auto detects it and stays
        // raw; forcing Compressed still round-trips exactly.
        let wide = SubShard::from_edges(0, 0, (1u32..=14).map(|k| (k << 28, 1)).collect());
        assert_eq!(wide.encode_with(EncodingPolicy::Auto), wide.encode());
        let forced_wide = wide.encode_with(EncodingPolicy::Compressed);
        assert!(forced_wide.len() > wide.encode().len());
        assert_eq!(SubShard::decode(&forced_wide, "t").unwrap(), wide);
    }

    #[test]
    fn compressed_decode_rejects_corruption() {
        let blob = sample().encode_with(EncodingPolicy::Compressed);
        // Checksummed: any payload flip is caught.
        let mut bytes = blob.clone();
        let n = bytes.len();
        bytes[n - 2] ^= 0x5a;
        assert!(SubShard::decode(&bytes, "t").is_err());
        // Truncations die cleanly in the varint stream or the header.
        for cut in [33, n - 1] {
            assert!(SubShard::decode(&blob[..cut], "t").is_err(), "cut {cut}");
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let mut bytes = sample().encode();
        let n = bytes.len();
        bytes[n - 2] ^= 0x5a;
        assert!(SubShard::decode(&bytes, "t").is_err());
    }

    #[test]
    fn empty_subshard() {
        let ss = SubShard::from_edges(0, 0, vec![]);
        assert!(ss.is_empty());
        assert_eq!(ss.avg_in_degree(), 0.0);
        assert!(ss.chunk_by_edges(10).is_empty());
        let back = SubShard::decode(&ss.encode(), "t").unwrap();
        assert_eq!(ss, back);
    }

    #[test]
    fn chunking_respects_dst_boundaries_and_covers_all() {
        // 100 destinations with 1..=10 edges each.
        let mut edges = Vec::new();
        for d in 0..100u32 {
            for s in 0..(d % 10 + 1) {
                edges.push((s, d));
            }
        }
        let ss = SubShard::from_edges(0, 0, edges);
        for target in [1usize, 7, 50, 10_000] {
            let chunks = ss.chunk_by_edges(target);
            let mut cursor = 0;
            let mut edge_sum = 0;
            for c in &chunks {
                assert_eq!(c.start, cursor);
                cursor = c.end;
                edge_sum += (ss.offsets[c.end] - ss.offsets[c.start]) as usize;
            }
            assert_eq!(cursor, ss.num_dsts(), "target {target}");
            assert_eq!(edge_sum, ss.num_edges());
        }
    }

    #[test]
    fn chunk_sizes_near_target() {
        let edges: Vec<_> = (0..10_000u32).map(|k| (k % 97, k % 512)).collect();
        let ss = SubShard::from_edges(0, 0, edges);
        let chunks = ss.chunk_by_edges(1000);
        // All but the last chunk must carry at least the target.
        for c in &chunks[..chunks.len() - 1] {
            let edges = (ss.offsets[c.end] - ss.offsets[c.start]) as usize;
            assert!(edges >= 1000);
        }
    }

    #[test]
    fn validate_catches_bad_structures() {
        let mut ss = sample();
        ss.dsts[0] = 3; // duplicate destination → not strictly increasing
        assert!(ss.validate("t").is_err());

        let mut ss = sample();
        ss.srcs.swap(2, 4); // unsorted sources within a slot
        assert!(ss.validate("t").is_err());

        let mut ss = sample();
        ss.offsets[1] = 0;
        ss.offsets.insert(1, 0); // slot with no edges / length mismatch
        assert!(ss.validate("t").is_err());
    }
}
