//! Delta-chain merging — the read side of the streaming-update log.
//!
//! A dynamically updated cell is stored as one *base* sub-shard blob plus
//! an append-only chain of *delta* blobs, each a destination-sorted
//! sub-shard of the edges one batch added (see
//! [`DynamicGraph`](crate::dynamic::DynamicGraph)). Every part individually
//! satisfies the DSSS invariants, so the union is recovered by a k-way
//! merge in `(dst, src)` order — no re-sort, one pass over the parts.
//!
//! [`merge_edges`] is that lazy merge-iterator; [`MergedSubShardView`]
//! drives it once to materialise a words-backed [`SubShardView`], which is
//! what the loaders hand to the engines — SPU/DPU/MPU, the prefetcher and
//! the plan cache consume the merged cell through the exact same view API
//! as a bare base blob, and never learn that a chain existed.

use crate::types::VertexId;

use super::{SubShard, SubShardView};

/// Borrowed CSR columns of one chain part — the common denominator of
/// [`SubShardView`] (engine path) and owned [`SubShard`]s (the
/// rewrite/compaction path), so one merge serves both.
#[derive(Clone, Copy)]
pub(crate) struct CsrCols<'a> {
    dsts: &'a [VertexId],
    offsets: &'a [u32],
    srcs: &'a [VertexId],
}

impl<'a> From<&'a SubShardView> for CsrCols<'a> {
    fn from(v: &'a SubShardView) -> Self {
        Self {
            dsts: v.dsts(),
            offsets: v.offsets(),
            srcs: v.srcs(),
        }
    }
}

impl<'a> From<&'a SubShard> for CsrCols<'a> {
    fn from(ss: &'a SubShard) -> Self {
        Self {
            dsts: &ss.dsts,
            offsets: &ss.offsets,
            srcs: &ss.srcs,
        }
    }
}

/// Cursor over one part of a chain: the current destination slot and the
/// absolute index of the next source within it.
struct PartCursor<'a> {
    cols: CsrCols<'a>,
    /// Destination slot (`0..dsts.len()`).
    pos: usize,
    /// Absolute index into `srcs` (always within slot `pos`'s range while
    /// the cursor is live).
    idx: usize,
}

impl<'a> PartCursor<'a> {
    fn new(cols: CsrCols<'a>) -> Self {
        Self { cols, pos: 0, idx: 0 }
    }

    /// The `(dst, src)` key at the cursor, `None` when exhausted.
    #[inline]
    fn peek(&self) -> Option<(VertexId, VertexId)> {
        if self.pos >= self.cols.dsts.len() {
            return None;
        }
        Some((self.cols.dsts[self.pos], self.cols.srcs[self.idx]))
    }

    /// Advance past the current edge.
    #[inline]
    fn bump(&mut self) {
        self.idx += 1;
        while self.pos < self.cols.dsts.len()
            && self.idx >= self.cols.offsets[self.pos + 1] as usize
        {
            self.pos += 1;
        }
    }
}

/// Lazy k-way merge over destination-sorted CSR parts, yielding
/// `(src, dst)` pairs in global `(dst, src)` order. Duplicate edges are
/// preserved (raw crawls contain them and PageRank counts them).
///
/// Cost is `O(parts)` per edge with no allocation; chains are short by
/// construction (compaction folds them), so this beats heap bookkeeping.
fn merge_csr<'a>(
    parts: impl IntoIterator<Item = CsrCols<'a>>,
) -> impl Iterator<Item = (VertexId, VertexId)> + 'a {
    let mut cursors: Vec<PartCursor<'a>> = parts.into_iter().map(PartCursor::new).collect();
    std::iter::from_fn(move || {
        let mut best: Option<(usize, (VertexId, VertexId))> = None;
        for (k, c) in cursors.iter().enumerate() {
            if let Some(key) = c.peek() {
                if best.map(|(_, b)| key < b).unwrap_or(true) {
                    best = Some((k, key));
                }
            }
        }
        let (k, (dst, src)) = best?;
        cursors[k].bump();
        Some((src, dst))
    })
}

/// [`merge_csr`] over engine-facing views — the same order
/// [`SubShardView::iter_edges`] walks a single shard.
pub fn merge_edges<'a>(
    parts: &'a [SubShardView],
) -> impl Iterator<Item = (VertexId, VertexId)> + 'a {
    merge_csr(parts.iter().map(CsrCols::from))
}

/// One-pass streaming CSR build from edges arriving in `(dst, src)`
/// order — the append loop of `SubShard::from_edges`, minus its sort.
fn build_csr(
    edges: impl Iterator<Item = (VertexId, VertexId)>,
    total_edges: usize,
) -> (Vec<VertexId>, Vec<u32>, Vec<VertexId>) {
    let mut dsts: Vec<VertexId> = Vec::new();
    let mut offsets: Vec<u32> = vec![0];
    let mut srcs: Vec<VertexId> = Vec::with_capacity(total_edges);
    for (s, d) in edges {
        if dsts.last() != Some(&d) {
            if !srcs.is_empty() {
                offsets.push(srcs.len() as u32);
            }
            dsts.push(d);
        }
        srcs.push(s);
    }
    if !srcs.is_empty() {
        offsets.push(srcs.len() as u32);
    }
    (dsts, offsets, srcs)
}

/// Merge owned chain parts (base first, then deltas) into a single
/// [`SubShard`] without re-sorting — every part is already
/// destination-sorted, so the k-way merge suffices. This is the
/// compaction fold.
pub fn merge_subshards(src_interval: u32, dst_interval: u32, parts: &[SubShard]) -> SubShard {
    let total: usize = parts.iter().map(SubShard::num_edges).sum();
    let (dsts, offsets, srcs) = build_csr(merge_csr(parts.iter().map(CsrCols::from)), total);
    SubShard {
        src_interval,
        dst_interval,
        dsts,
        offsets,
        srcs,
    }
}

/// The merged read-side view over a base sub-shard and its delta chain.
///
/// Constructed by the loaders when a cell's manifest chain is non-empty:
/// one pass of [`merge_edges`] builds the merged CSR columns directly (the
/// edges arrive in `(dst, src)` order, so this is the same
/// streaming-append loop `SubShard::from_edges` runs after its sort —
/// minus the sort), and [`MergedSubShardView::into_view`] hands the result
/// to the engines as an ordinary words-backed [`SubShardView`].
pub struct MergedSubShardView {
    view: SubShardView,
    parts: usize,
}

impl MergedSubShardView {
    /// Merge `parts[0]` (the base) with its deltas. All parts must belong
    /// to the same cell; interval tags are taken from the base.
    pub fn merge(parts: &[SubShardView]) -> Self {
        assert!(!parts.is_empty(), "a chain always has a base part");
        debug_assert!(parts
            .iter()
            .all(|p| p.src_interval() == parts[0].src_interval()
                && p.dst_interval() == parts[0].dst_interval()));
        let total_edges: usize = parts.iter().map(|p| p.num_edges()).sum();
        let (dsts, offsets, srcs) = build_csr(merge_edges(parts), total_edges);
        Self {
            view: SubShardView::from_columns(
                parts[0].src_interval(),
                parts[0].dst_interval(),
                dsts,
                offsets,
                srcs,
            ),
            parts: parts.len(),
        }
    }

    /// Number of chain parts (base + deltas) that fed the merge.
    pub fn parts_merged(&self) -> usize {
        self.parts
    }

    /// The merged engine-facing view.
    pub fn into_view(self) -> SubShardView {
        self.view
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsss::SubShard;

    fn view(edges: Vec<(VertexId, VertexId)>) -> SubShardView {
        SubShardView::from(&SubShard::from_edges(0, 0, edges))
    }

    #[test]
    fn merge_equals_from_edges_of_the_concat() {
        let base = vec![(5, 3), (4, 3), (5, 2), (9, 2)];
        let d1 = vec![(1, 3), (7, 2), (2, 8)];
        let d2 = vec![(4, 3), (0, 0)]; // duplicate edge (4,3) must survive
        let parts = [view(base.clone()), view(d1.clone()), view(d2.clone())];
        let merged = MergedSubShardView::merge(&parts);
        assert_eq!(merged.parts_merged(), 3);
        let got = merged.into_view();
        let mut all = base;
        all.extend(d1);
        all.extend(d2);
        let want = SubShard::from_edges(0, 0, all);
        assert_eq!(got.to_subshard(), want);
        // The lazy iterator walks the same order as the merged view.
        assert_eq!(
            merge_edges(&parts).collect::<Vec<_>>(),
            want.iter_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn merge_subshards_equals_sorted_concat() {
        let a = SubShard::from_edges(1, 2, vec![(9, 8), (3, 8), (3, 7)]);
        let b = SubShard::from_edges(1, 2, vec![(3, 8), (1, 6), (2, 9)]);
        let c = SubShard::from_edges(1, 2, vec![]);
        let merged = merge_subshards(1, 2, &[a.clone(), b.clone(), c]);
        let mut all: Vec<_> = a.iter_edges().collect();
        all.extend(b.iter_edges());
        assert_eq!(merged, SubShard::from_edges(1, 2, all));
        merged.validate("merged").unwrap();
    }

    #[test]
    fn merging_the_base_alone_is_the_identity() {
        let base = view(vec![(3, 1), (2, 1), (9, 4)]);
        let merged = MergedSubShardView::merge(std::slice::from_ref(&base)).into_view();
        assert_eq!(merged, base);
    }

    #[test]
    fn empty_parts_merge_cleanly() {
        let parts = [view(vec![]), view(vec![(1, 2)]), view(vec![])];
        let merged = MergedSubShardView::merge(&parts).into_view();
        assert_eq!(merged.to_subshard(), SubShard::from_edges(0, 0, vec![(1, 2)]));
        let all_empty = [view(vec![]), view(vec![])];
        let merged = MergedSubShardView::merge(&all_empty).into_view();
        assert!(merged.is_empty());
        assert_eq!(merged.offsets(), &[0]);
    }
}
