//! Zero-copy read-side views over sub-shard and hub blobs.
//!
//! The streamed hot path used to pay three copies per sub-shard access:
//! `read_blob` copied the payload out of the reader, the checksum walked
//! it byte-at-a-time, and [`SubShard::decode`] copied it again into three
//! owned vectors. [`SubShardView`] removes all of them: the raw blob
//! (header included) stays in one [`SharedBytes`] allocation — a pooled
//! page-aligned read buffer, or the `Arc<Vec<u8>>` a `MemDisk` already
//! holds — and the typed regions are borrowed from it as `&[u32]` slices.
//! Structural invariants are validated once at parse time, exactly like
//! the owned decoder, so downstream kernels index without re-checking.
//!
//! The cast requires 4-byte alignment and a little-endian host. Pooled
//! buffers are page-aligned by construction and the 32-byte header keeps
//! every payload region word-aligned behind them; if either precondition
//! fails (an exotically-aligned `Arc<Vec<u8>>`, a big-endian target) the
//! parse transparently falls back to one aligned native-endian copy of
//! the payload words — correctness never depends on the fast path.
//!
//! [`SubShard`] remains the build/prep-side representation (mutable
//! vectors, sorting, encoding); engines only ever touch views.

use std::ops::Range;
use std::sync::Arc;

use nxgraph_storage::format::{self, Encoding, FileKind};
use nxgraph_storage::{BufferPool, SharedBytes, StorageError, StorageResult};

use crate::types::{Attr, VertexId};

use super::codec;
use super::subshard::{chunk_csr_by_edges, validate_csr};
use super::SubShard;

/// Payload words preceding the `dsts` array: src/dst interval, counts.
const SS_HEADER_WORDS: usize = 4;

/// Storage behind a view's typed slices.
enum Backing {
    /// Borrowed straight from the blob; alignment and endianness were
    /// verified at parse time.
    Bytes {
        bytes: SharedBytes,
        /// Byte offset of the payload within the blob (past the header).
        payload_off: usize,
    },
    /// Aligned native-endian copy of the payload words — the misaligned /
    /// big-endian fallback, and the representation of views built from an
    /// owned [`SubShard`].
    Words(Arc<Vec<u32>>),
}

/// A read-only sub-shard decoded in place over its on-disk bytes.
///
/// Mirrors the accessors of [`SubShard`] (`dsts`/`offsets`/`srcs` become
/// methods returning `&[u32]`) and is what [`ShardStore`] caches and the
/// engines stream.
///
/// [`ShardStore`]: crate::engine::store::ShardStore
pub struct SubShardView {
    src_interval: u32,
    dst_interval: u32,
    num_dsts: usize,
    num_edges: usize,
    backing: Backing,
}

impl SubShardView {
    /// Parse (and validate) a view over an encoded sub-shard blob.
    ///
    /// `verify_checksum` gates the payload hash only — header fields and
    /// structural invariants are always checked (see
    /// [`ChecksumPolicy`](nxgraph_storage::ChecksumPolicy)).
    pub fn parse(bytes: SharedBytes, name: &str, verify_checksum: bool) -> StorageResult<Self> {
        Self::parse_pooled(bytes, name, verify_checksum, None)
    }

    /// [`SubShardView::parse`] with an inflation pool: a delta+varint
    /// (format v3) blob decodes into a page-aligned buffer borrowed from
    /// `pool` — returned when the view drops, so steady-state streaming of
    /// compressed shards allocates nothing — and the typed slices are cast
    /// over it exactly like a raw load. Raw blobs never touch the pool
    /// (they cast in place). This is the entry point of the streamed
    /// engine path ([`ViewLoader`](super::ViewLoader)), which runs on the
    /// prefetcher's decode thread when prefetch is on, keeping inflation
    /// off the compute thread.
    pub fn parse_pooled(
        bytes: SharedBytes,
        name: &str,
        verify_checksum: bool,
        pool: Option<&Arc<BufferPool>>,
    ) -> StorageResult<Self> {
        let (encoding, payload_range) = format::parse_blob_encoded(
            bytes.as_slice(),
            FileKind::SubShard,
            name,
            verify_checksum,
        )?;
        let view = match encoding {
            Encoding::Raw => Self::over_raw(bytes, payload_range, name)?,
            Encoding::DeltaVarint => {
                Self::inflate(&bytes.as_slice()[payload_range], name, pool)?
            }
        };
        validate_csr(name, view.dsts(), view.offsets(), view.srcs())?;
        Ok(view)
    }

    /// Build the zero-copy (or copying-fallback) view over a raw payload.
    fn over_raw(
        bytes: SharedBytes,
        payload_range: Range<usize>,
        name: &str,
    ) -> StorageResult<Self> {
        let corrupt = |reason: String| StorageError::Corrupt {
            name: name.to_string(),
            reason,
        };
        let payload = &bytes.as_slice()[payload_range.clone()];
        if !payload.len().is_multiple_of(4) || payload.len() < SS_HEADER_WORDS * 4 {
            return Err(corrupt(format!("payload of {} bytes malformed", payload.len())));
        }
        let word = |k: usize| {
            u32::from_le_bytes(payload[4 * k..4 * k + 4].try_into().unwrap())
        };
        let (src_interval, dst_interval) = (word(0), word(1));
        let num_dsts = word(2) as usize;
        let num_edges = word(3) as usize;
        let expect_words = SS_HEADER_WORDS + num_dsts + (num_dsts + 1) + num_edges;
        if payload.len() != expect_words * 4 {
            return Err(corrupt(format!(
                "payload holds {} words, expected {expect_words}",
                payload.len() / 4
            )));
        }
        let backing = match format::cast_u32s(payload) {
            Some(_) => Backing::Bytes {
                payload_off: payload_range.start,
                bytes,
            },
            // Misaligned or big-endian: one aligned native copy.
            None => Backing::Words(Arc::new(
                payload
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                    .collect(),
            )),
        };
        Ok(Self {
            src_interval,
            dst_interval,
            num_dsts,
            num_edges,
            backing,
        })
    }

    /// Inflate a delta+varint payload into word storage: a pooled aligned
    /// buffer when available (castable like a raw read), else a fresh
    /// word vector (and always on big-endian hosts).
    fn inflate(
        payload: &[u8],
        name: &str,
        pool: Option<&Arc<BufferPool>>,
    ) -> StorageResult<Self> {
        let h = codec::read_ss_header(payload, name)?;
        let words_len = h.words_len();
        let backing = 'pooled: {
            if let Some(pool) = pool {
                let mut buf = pool.take(words_len * 4);
                if let Some(out) = format::cast_u32s_mut(buf.as_mut_slice()) {
                    codec::decode_subshard_into(payload, name, &h, out)?;
                    break 'pooled Backing::Bytes {
                        bytes: SharedBytes::Pooled(Arc::new(buf)),
                        payload_off: 0,
                    };
                }
            }
            let mut words = vec![0u32; words_len];
            codec::decode_subshard_into(payload, name, &h, &mut words)?;
            Backing::Words(Arc::new(words))
        };
        Ok(Self {
            src_interval: h.src_interval,
            dst_interval: h.dst_interval,
            num_dsts: h.num_dsts,
            num_edges: h.num_edges,
            backing,
        })
    }

    /// The whole payload as native `u32` words.
    #[inline]
    fn words(&self) -> &[u32] {
        let n = SS_HEADER_WORDS + self.num_dsts + (self.num_dsts + 1) + self.num_edges;
        match &self.backing {
            Backing::Bytes { bytes, payload_off } => {
                let b = &bytes.as_slice()[*payload_off..*payload_off + 4 * n];
                debug_assert!(
                    (b.as_ptr() as usize).is_multiple_of(4) && cfg!(target_endian = "little")
                );
                // Safety: alignment, endianness and length were verified in
                // `parse` (a `Bytes` backing is only built when `cast_u32s`
                // succeeds on this exact region).
                unsafe { std::slice::from_raw_parts(b.as_ptr().cast::<u32>(), n) }
            }
            Backing::Words(w) => w,
        }
    }

    /// Source interval index `i`.
    #[inline]
    pub fn src_interval(&self) -> u32 {
        self.src_interval
    }

    /// Destination interval index `j`.
    #[inline]
    pub fn dst_interval(&self) -> u32 {
        self.dst_interval
    }

    /// Distinct destination ids, strictly increasing (global ids).
    #[inline]
    pub fn dsts(&self) -> &[VertexId] {
        &self.words()[SS_HEADER_WORDS..SS_HEADER_WORDS + self.num_dsts]
    }

    /// CSR offsets into `srcs`; `len == num_dsts() + 1`.
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        let start = SS_HEADER_WORDS + self.num_dsts;
        &self.words()[start..start + self.num_dsts + 1]
    }

    /// Source ids (global), sorted within each destination's range.
    #[inline]
    pub fn srcs(&self) -> &[VertexId] {
        let start = SS_HEADER_WORDS + 2 * self.num_dsts + 1;
        &self.words()[start..start + self.num_edges]
    }

    /// Number of edges stored.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Number of distinct destinations.
    #[inline]
    pub fn num_dsts(&self) -> usize {
        self.num_dsts
    }

    /// Whether the sub-shard holds no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_edges == 0
    }

    /// Bytes of backing storage this view keeps resident: the whole blob
    /// for zero-copy raw views, the *inflated* word buffer for
    /// compressed (or fallback-copied) views. This — not the on-disk
    /// file length, which a delta+varint blob undercuts 2-4× — is what a
    /// cache must charge against a memory budget.
    pub fn resident_bytes(&self) -> u64 {
        match &self.backing {
            Backing::Bytes { bytes, .. } => bytes.len() as u64,
            Backing::Words(w) => (w.len() * 4) as u64,
        }
    }

    /// Average in-degree of the destinations present (the paper's `d`).
    pub fn avg_in_degree(&self) -> f64 {
        if self.num_dsts == 0 {
            0.0
        } else {
            self.num_edges as f64 / self.num_dsts as f64
        }
    }

    /// The source-id range of the edges in destination slot `pos`.
    #[inline]
    pub fn src_range(&self, pos: usize) -> Range<usize> {
        let offsets = self.offsets();
        offsets[pos] as usize..offsets[pos + 1] as usize
    }

    /// Iterate `(src, dst)` pairs in (dst, src) order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        let (dsts, offsets, srcs) = (self.dsts(), self.offsets(), self.srcs());
        (0..dsts.len()).flat_map(move |pos| {
            let d = dsts[pos];
            srcs[offsets[pos] as usize..offsets[pos + 1] as usize]
                .iter()
                .map(move |&s| (s, d))
        })
    }

    /// Destination-boundary chunks of roughly `target_edges` edges each
    /// (see [`SubShard::chunk_by_edges`]).
    pub fn chunk_by_edges(&self, target_edges: usize) -> Vec<Range<usize>> {
        chunk_csr_by_edges(self.num_dsts, self.offsets(), target_edges)
    }

    /// Materialise an owned [`SubShard`] (tests and tooling; engines never
    /// need this).
    pub fn to_subshard(&self) -> SubShard {
        SubShard {
            src_interval: self.src_interval,
            dst_interval: self.dst_interval,
            dsts: self.dsts().to_vec(),
            offsets: self.offsets().to_vec(),
            srcs: self.srcs().to_vec(),
        }
    }
}

impl SubShardView {
    /// Build a words-backed view directly from already-valid CSR columns —
    /// the output side of the delta-chain merge
    /// ([`MergedSubShardView`](super::MergedSubShardView)). No validation
    /// is performed: the columns come from views that were each validated
    /// at parse time, and the merge preserves the CSR invariants by
    /// construction.
    pub(crate) fn from_columns(
        src_interval: u32,
        dst_interval: u32,
        dsts: Vec<VertexId>,
        offsets: Vec<u32>,
        srcs: Vec<VertexId>,
    ) -> Self {
        debug_assert_eq!(offsets.len(), dsts.len() + 1);
        debug_assert_eq!(*offsets.last().unwrap_or(&0) as usize, srcs.len());
        let mut words =
            Vec::with_capacity(SS_HEADER_WORDS + dsts.len() + offsets.len() + srcs.len());
        words.extend_from_slice(&[
            src_interval,
            dst_interval,
            dsts.len() as u32,
            srcs.len() as u32,
        ]);
        words.extend_from_slice(&dsts);
        words.extend_from_slice(&offsets);
        words.extend_from_slice(&srcs);
        Self {
            src_interval,
            dst_interval,
            num_dsts: dsts.len(),
            num_edges: srcs.len(),
            backing: Backing::Words(Arc::new(words)),
        }
    }
}

impl From<&SubShard> for SubShardView {
    /// Build a view over an owned sub-shard (one copy into the words
    /// backing). Used by benches and in-memory tooling; no validation is
    /// performed — the `SubShard` is trusted as-is.
    fn from(ss: &SubShard) -> Self {
        let mut words =
            Vec::with_capacity(SS_HEADER_WORDS + ss.dsts.len() + ss.offsets.len() + ss.srcs.len());
        words.extend_from_slice(&[
            ss.src_interval,
            ss.dst_interval,
            ss.dsts.len() as u32,
            ss.srcs.len() as u32,
        ]);
        words.extend_from_slice(&ss.dsts);
        words.extend_from_slice(&ss.offsets);
        words.extend_from_slice(&ss.srcs);
        Self {
            src_interval: ss.src_interval,
            dst_interval: ss.dst_interval,
            num_dsts: ss.dsts.len(),
            num_edges: ss.srcs.len(),
            backing: Backing::Words(Arc::new(words)),
        }
    }
}

impl PartialEq for SubShardView {
    fn eq(&self, other: &Self) -> bool {
        self.src_interval == other.src_interval
            && self.dst_interval == other.dst_interval
            && self.dsts() == other.dsts()
            && self.offsets() == other.offsets()
            && self.srcs() == other.srcs()
    }
}

impl Eq for SubShardView {}

impl std::fmt::Debug for SubShardView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubShardView")
            .field("src_interval", &self.src_interval)
            .field("dst_interval", &self.dst_interval)
            .field("dsts", &self.dsts())
            .field("offsets", &self.offsets())
            .field("srcs", &self.srcs())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Hub views
// ---------------------------------------------------------------------------

/// Storage behind a hub view.
enum HubBacking<A> {
    /// Borrowed from the blob: `dsts` casts to `&[u32]` (the region sits
    /// at a word-aligned offset), accumulators decode per element on
    /// access — `A`'s alignment (8 for `f64`) is not guaranteed in-place.
    Bytes {
        bytes: SharedBytes,
        dsts_off: usize,
        accs_off: usize,
    },
    /// Decoded fallback (misaligned destination region / big-endian).
    Owned { dsts: Vec<VertexId>, accs: Vec<A> },
}

/// A read-only hub `H(i→j)` decoded in place: parallel destination ids
/// and accumulator values (the "incremental values" of §III-B2).
pub struct HubView<A: Attr> {
    count: usize,
    backing: HubBacking<A>,
}

impl<A: Attr> HubView<A> {
    /// Parse (and length-check) a view over an encoded hub blob. Raw (v2)
    /// blobs decode in place; delta+varint (v3) blobs inflate their
    /// destination ids into an owned vector (the accumulator section is
    /// raw bytes in both encodings).
    pub fn parse(bytes: SharedBytes, name: &str, verify_checksum: bool) -> StorageResult<Self> {
        let (encoding, payload_range) =
            format::parse_blob_encoded(bytes.as_slice(), FileKind::Hub, name, verify_checksum)?;
        let payload = &bytes.as_slice()[payload_range.clone()];
        if encoding == Encoding::DeltaVarint {
            let (dsts, accs_off) = codec::decode_hub_dsts(payload, name, A::SIZE)?;
            let accs = A::decode_slice(&payload[accs_off..]);
            return Ok(Self {
                count: dsts.len(),
                backing: HubBacking::Owned { dsts, accs },
            });
        }
        let corrupt = |reason: String| StorageError::Corrupt {
            name: name.to_string(),
            reason,
        };
        if payload.len() < 4 {
            return Err(corrupt("hub payload shorter than its count".into()));
        }
        let count = u32::from_le_bytes(payload[0..4].try_into().unwrap()) as usize;
        let expect = 4 + count * 4 + count * A::SIZE;
        if payload.len() != expect {
            return Err(corrupt(format!(
                "hub payload of {} bytes, expected {expect} for {count} entries",
                payload.len()
            )));
        }
        let dsts_off = payload_range.start + 4;
        let accs_off = dsts_off + count * 4;
        let backing = match format::cast_u32s(&payload[4..4 + count * 4]) {
            Some(_) => HubBacking::Bytes {
                bytes,
                dsts_off,
                accs_off,
            },
            None => {
                let dsts = format::decode_u32s(&payload[4..4 + count * 4])
                    .expect("length checked above");
                let accs = A::decode_slice(&payload[4 + count * 4..]);
                HubBacking::Owned { dsts, accs }
            }
        };
        Ok(Self { count, backing })
    }

    /// Number of (destination, accumulator) entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the hub holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Destination ids, ascending (hubs are compacted from id-ordered
    /// accumulator buffers).
    #[inline]
    pub fn dsts(&self) -> &[VertexId] {
        match &self.backing {
            HubBacking::Bytes { bytes, dsts_off, .. } => {
                let b = &bytes.as_slice()[*dsts_off..*dsts_off + 4 * self.count];
                // Safety: `Bytes` is only built when `cast_u32s` succeeded
                // on this exact region in `parse`.
                unsafe { std::slice::from_raw_parts(b.as_ptr().cast::<u32>(), self.count) }
            }
            HubBacking::Owned { dsts, .. } => dsts,
        }
    }

    /// The `k`-th accumulator, decoded on access (one fixed-size
    /// little-endian read — what the owned decoder did per element, minus
    /// the intermediate vector).
    #[inline]
    pub fn acc(&self, k: usize) -> A {
        match &self.backing {
            HubBacking::Bytes { bytes, accs_off, .. } => {
                A::read_from(&bytes.as_slice()[*accs_off + k * A::SIZE..])
            }
            HubBacking::Owned { accs, .. } => accs[k],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SubShard {
        SubShard::from_edges(2, 1, vec![(5, 3), (4, 3), (5, 2), (4, 3), (9, 2)])
    }

    fn shared(bytes: Vec<u8>) -> SharedBytes {
        SharedBytes::from(bytes)
    }

    #[test]
    fn view_equals_owned_decode() {
        let ss = sample();
        let bytes = ss.encode();
        let owned = SubShard::decode(&bytes, "t").unwrap();
        let view = SubShardView::parse(shared(bytes), "t", true).unwrap();
        assert_eq!(view.src_interval(), owned.src_interval);
        assert_eq!(view.dst_interval(), owned.dst_interval);
        assert_eq!(view.dsts(), &owned.dsts[..]);
        assert_eq!(view.offsets(), &owned.offsets[..]);
        assert_eq!(view.srcs(), &owned.srcs[..]);
        assert_eq!(view.num_edges(), owned.num_edges());
        assert_eq!(view.num_dsts(), owned.num_dsts());
        assert_eq!(view.to_subshard(), owned);
        assert_eq!(
            view.iter_edges().collect::<Vec<_>>(),
            owned.iter_edges().collect::<Vec<_>>()
        );
        for target in [1usize, 2, 100] {
            assert_eq!(view.chunk_by_edges(target), owned.chunk_by_edges(target));
        }
    }

    #[test]
    fn view_from_owned_subshard_matches() {
        let ss = sample();
        let via_bytes = SubShardView::parse(shared(ss.encode()), "t", true).unwrap();
        let via_owned = SubShardView::from(&ss);
        assert_eq!(via_bytes, via_owned);
        assert_eq!(via_owned.to_subshard(), ss);
    }

    #[test]
    fn view_rejects_corruption_and_truncation() {
        let bytes = sample().encode();
        // Payload corruption → checksum.
        let mut corrupt = bytes.clone();
        let n = corrupt.len();
        corrupt[n - 2] ^= 0x5a;
        assert!(SubShardView::parse(shared(corrupt.clone()), "t", true).is_err());
        // Same corruption with verification skipped: the structural
        // validator still rejects it or — if the flip lands in a benign
        // spot — the parse succeeds; either way no panic. This flip lands
        // in `srcs` and breaks per-slot sortedness.
        let _ = SubShardView::parse(shared(corrupt), "t", false);
        // Truncation → short payload.
        assert!(SubShardView::parse(shared(bytes[..bytes.len() - 4].to_vec()), "t", true).is_err());
        // Count lies → word-count mismatch.
        let mut lie = bytes.clone();
        lie[32 + 12] ^= 0x01; // num_edges word
        assert!(SubShardView::parse(shared(lie), "t", false).is_err());
    }

    #[test]
    fn compressed_view_equals_raw_view() {
        use nxgraph_storage::format::EncodingPolicy;

        let ss = sample();
        let raw = SubShardView::parse(shared(ss.encode()), "t", true).unwrap();
        let blob = ss.encode_with(EncodingPolicy::Compressed);
        assert!(blob.len() < ss.encode().len());
        // Pool-less parse inflates into an owned words vector.
        let v = SubShardView::parse(shared(blob.clone()), "t", true).unwrap();
        assert_eq!(v, raw);
        assert_eq!(v.to_subshard(), ss);
        // Pooled parse inflates into a page-aligned pool buffer that
        // returns to the pool when the view drops.
        let pool = BufferPool::new();
        let v = SubShardView::parse_pooled(shared(blob.clone()), "t", true, Some(&pool)).unwrap();
        assert_eq!(v, raw);
        assert_eq!(
            v.iter_edges().collect::<Vec<_>>(),
            raw.iter_edges().collect::<Vec<_>>()
        );
        drop(v);
        assert_eq!(pool.idle(), 1, "inflation buffer must be recycled");

        // Corruption is caught by the checksum; with verification skipped
        // the varint decoder or the structural validator rejects garbage
        // without panicking.
        let mut corrupt = blob.clone();
        let n = corrupt.len();
        corrupt[n - 1] ^= 0xff;
        assert!(SubShardView::parse(shared(corrupt.clone()), "t", true).is_err());
        let _ = SubShardView::parse(shared(corrupt), "t", false);
        // Truncation inside the varint stream is a clean error either way.
        assert!(
            SubShardView::parse_pooled(
                shared(blob[..n - 2].to_vec()),
                "t",
                false,
                Some(&pool)
            )
            .is_err()
        );
    }

    #[test]
    fn empty_view_roundtrips() {
        let ss = SubShard::from_edges(0, 0, vec![]);
        let view = SubShardView::parse(shared(ss.encode()), "t", true).unwrap();
        assert!(view.is_empty());
        assert_eq!(view.num_dsts(), 0);
        assert_eq!(view.avg_in_degree(), 0.0);
        assert!(view.chunk_by_edges(8).is_empty());
        assert_eq!(view.to_subshard(), ss);
    }

    #[test]
    fn hub_view_decodes_entries() {
        // Encode a hub the way PreparedGraph::write_hub does.
        let dsts = [4u32, 5, 9];
        let accs = [0.25f64, 0.75, -2.0];
        let mut payload = Vec::new();
        format::push_u32(&mut payload, dsts.len() as u32);
        for &d in &dsts {
            format::push_u32(&mut payload, d);
        }
        for a in &accs {
            a.write_to(&mut payload);
        }
        let mut blob = Vec::new();
        format::write_blob(&mut blob, FileKind::Hub, &payload).unwrap();
        let hub = HubView::<f64>::parse(shared(blob.clone()), "h", true).unwrap();
        assert_eq!(hub.len(), 3);
        assert_eq!(hub.dsts(), &dsts[..]);
        for (k, &want) in accs.iter().enumerate() {
            assert_eq!(hub.acc(k), want);
        }
        // Length lies are rejected.
        let mut bad = Vec::new();
        format::write_blob(&mut bad, FileKind::Hub, &payload[..payload.len() - 1]).unwrap();
        assert!(HubView::<f64>::parse(shared(bad), "h", true).is_err());
    }
}
