//! Online maintenance: background compaction and checksum scrubbing.
//!
//! A long-running dynamic graph must do three things off the commit path:
//! fold delta chains that have grown past their thresholds, re-verify
//! on-disk blobs for silent corruption (the verify-once [`ChecksumPolicy`]
//! deliberately never re-reads a file after its first load), and reclaim
//! files that crashes or folds left unreferenced. [`MaintenanceThread`]
//! does the first two on one background thread; the third stays with the
//! owner ([`DynamicGraph::compact`](crate::dynamic::DynamicGraph::compact)).
//!
//! ## Concurrency protocol
//!
//! The owner and the maintenance thread share a [`StoreShared`]: the disk,
//! a `state` mutex holding the committed manifest + degree table + an
//! epoch counter, and a `gate` mutex. Lock order is **gate → state**,
//! never the reverse. `add_edges` takes only `state` (for its whole
//! commit); the maintenance thread holds `gate` for the duration of each
//! fold/scrub pass but takes `state` only for snapshots and the final
//! commit — the expensive merge runs with *no* lock held, so an append is
//! never blocked behind a fold. If an append lands between a fold's
//! snapshot and its commit, the fold detects the changed [`ChainInfo`],
//! discards its output and retries. The owner quiesces maintenance
//! entirely (rebuilds, explicit compaction) by holding `gate`.
//!
//! Fold commits reuse the manifest save as their durability point, so the
//! crash story is unchanged from inline compaction: at any cut the
//! manifest references either the old chain or the new base, never a
//! half-state. Files a fold supersedes are *not* removed by the thread —
//! a pinned [`PreparedGraph`](crate::dsss::PreparedGraph) (the owner's or
//! any serve-layer [`Snapshot`](crate::serve::Snapshot)) may still be
//! reading them — but queued on `pending_sweep`, tagged with the epoch
//! whose manifest first stopped referencing them. Reclamation is
//! generation-refcounted: `pins` counts live readers per epoch, and a
//! queued file is removed only once every pin at an epoch older than its
//! tag has dropped (see [`StoreState::drain_safe_sweeps`]).
//!
//! ## Scrubbing
//!
//! The scrubber walks every file on the disk at idle priority (folds
//! preempt it between files), classifying each by name against the
//! manifest. Referenced blobs are *deep*-verified — header, exact length,
//! payload checksum, and for sub-shards a full decode, a cell-tag
//! cross-check against the file name, and a canonical re-encode — because
//! a single bit flip can turn the
//! version tag of a raw blob into the compressed tag while the payload
//! checksum still passes; only decoding catches that. Corrupt referenced
//! blobs are quarantined (`quarantine.<name>`) so subsequent loads fail
//! hard instead of computing garbage; corrupt unreferenced files are
//! swept; clean orphans are only counted (reclaiming them is the owner's
//! sweep).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use nxgraph_storage::format::{self, Encoding, FileKind};
use nxgraph_storage::manifest::{ChainInfo, MANIFEST_FILE, MANIFEST_TMP_FILE};
use nxgraph_storage::{
    ChecksumPolicy, Disk, EncodingPolicy, GraphManifest, RetryPolicy, StorageError,
};

use crate::dsss::{self, SubShard};
use crate::error::{EngineError, EngineResult};

/// Name prefix under which the scrubber parks corrupt referenced blobs.
pub const QUARANTINE_PREFIX: &str = "quarantine.";

/// Committed store state shared between a
/// [`DynamicGraph`](crate::dynamic::DynamicGraph) and its maintenance
/// thread. `epoch` bumps on every commit; the owner refreshes its pinned
/// snapshot when it observes a newer epoch.
pub(crate) struct StoreState {
    pub manifest: GraphManifest,
    pub out_degrees: Arc<Vec<u32>>,
    pub epoch: u64,
    /// Superseded files awaiting reclamation, each tagged with the first
    /// epoch whose manifest no longer references it. A pin at an older
    /// epoch may still read the file; `drain_safe_sweeps` releases an
    /// entry only once no such pin remains.
    pub pending_sweep: Vec<(u64, String)>,
    /// Live reader pins per epoch: the owner's pinned snapshot plus every
    /// serve-layer [`Snapshot`](crate::serve::Snapshot). The refcount is
    /// what converts "owner refreshes, then sweep" into
    /// generation-refcounted reclamation.
    pub pins: BTreeMap<u64, usize>,
    /// Set while a full re-preprocessing is rewriting prep-time file names
    /// in place; new pins wait it out (`StoreShared::pin_latest`).
    pub rebuilding: bool,
}

impl StoreState {
    /// The oldest epoch any live pin still reads (`u64::MAX` when there
    /// are no pins at all).
    pub fn min_pinned(&self) -> u64 {
        self.pins.keys().next().copied().unwrap_or(u64::MAX)
    }

    /// Queue files superseded by the commit that just bumped `epoch`.
    pub fn queue_superseded(&mut self, names: impl IntoIterator<Item = String>) {
        let epoch = self.epoch;
        self.pending_sweep.extend(names.into_iter().map(|n| (epoch, n)));
    }

    /// Take every queued file no pin can still read: an entry tagged `e`
    /// is needed by manifests *older* than `e`, so it is safe once the
    /// minimum pinned epoch has reached `e`.
    pub fn drain_safe_sweeps(&mut self) -> Vec<String> {
        let min = self.min_pinned();
        let mut safe = Vec::new();
        self.pending_sweep.retain(|(e, name)| {
            if *e <= min {
                safe.push(name.clone());
                false
            } else {
                true
            }
        });
        safe
    }
}

/// The disk plus the two shared locks. Lock order: `gate` → `state`.
pub(crate) struct StoreShared {
    pub disk: Arc<dyn Disk>,
    pub state: Mutex<StoreState>,
    /// Held by the maintenance thread for each fold/scrub pass and by the
    /// owner to quiesce maintenance around rebuilds and explicit
    /// compaction.
    pub gate: Mutex<()>,
    /// Signalled on every pin release and rebuild-flag change.
    pub pins_cv: Condvar,
    /// The verify-once policy shared by every reader of this store, so
    /// sweeps triggered by a snapshot drop invalidate the same cache the
    /// owner's loads go through. Replaced wholesale on rebuild.
    pub checksums: Mutex<Arc<ChecksumPolicy>>,
}

impl StoreShared {
    /// Add a reader pin at `epoch`.
    pub fn pin(&self, epoch: u64) {
        *self.state.lock().pins.entry(epoch).or_insert(0) += 1;
    }

    /// Pin the latest committed state, returning the parts a snapshot
    /// needs. Blocks while a rebuild is rewriting prep-time names in
    /// place (the one commit that cannot coexist with older readers).
    pub fn pin_latest(&self) -> (GraphManifest, Arc<Vec<u32>>, u64) {
        let mut st = self.state.lock();
        while st.rebuilding {
            self.pins_cv.wait(&mut st);
        }
        let epoch = st.epoch;
        *st.pins.entry(epoch).or_insert(0) += 1;
        (st.manifest.clone(), Arc::clone(&st.out_degrees), epoch)
    }

    /// Drop a reader pin. The caller should follow with [`reclaim`]
    /// (outside any other lock) so newly-safe files are actually removed.
    pub fn unpin(&self, epoch: u64) {
        let mut st = self.state.lock();
        match st.pins.get_mut(&epoch) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                st.pins.remove(&epoch);
            }
            None => debug_assert!(false, "unpin of unpinned epoch {epoch}"),
        }
        drop(st);
        self.pins_cv.notify_all();
    }

    /// Remove every queued file whose protecting pins are gone, returning
    /// `(files, bytes)` reclaimed. Removal happens outside the state lock;
    /// each name leaves the verify-once cache with it.
    pub fn reclaim(&self) -> (usize, u64) {
        let safe = self.state.lock().drain_safe_sweeps();
        let checksums = Arc::clone(&self.checksums.lock());
        let (mut files, mut bytes) = (0usize, 0u64);
        for name in &safe {
            bytes += self.disk.len_of(name).unwrap_or(0);
            if self.disk.remove(name).is_ok() {
                files += 1;
            }
            checksums.note_invalidated(name);
        }
        (files, bytes)
    }

    /// Live pin count at `epoch` (tests assert the no-sweep-while-pinned
    /// contract through this).
    pub fn pin_count(&self, epoch: u64) -> usize {
        self.state.lock().pins.get(&epoch).copied().unwrap_or(0)
    }

    /// Block until the caller's pin at `epoch` is the only pin left, with
    /// the rebuild flag raised so no new pin can slip in afterwards.
    /// Pair with [`end_exclusive`].
    pub fn begin_exclusive(&self, epoch: u64) {
        let mut st = self.state.lock();
        st.rebuilding = true;
        while !(st.pins.len() == 1 && st.pins.get(&epoch) == Some(&1)) {
            self.pins_cv.wait(&mut st);
        }
    }

    /// Lower the rebuild flag and wake waiting pinners.
    pub fn end_exclusive(&self) {
        self.state.lock().rebuilding = false;
        self.pins_cv.notify_all();
    }
}

/// Result of one scrub pass over every file on the disk.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Files read and examined (skipped names not included).
    pub files_scanned: usize,
    /// Files whose verification passed.
    pub clean: usize,
    /// Referenced files whose verification failed; each was quarantined
    /// under [`QUARANTINE_PREFIX`] and will hard-error on its next load.
    pub corrupt: Vec<String>,
    /// Unreferenced files whose verification failed; each was removed.
    pub swept: Vec<String>,
    /// Unreferenced but intact files (plus existing quarantine copies),
    /// left for the owner's orphan sweep to reclaim.
    pub orphans: usize,
    /// Total bytes read and hashed.
    pub bytes_scanned: u64,
}

impl ScrubReport {
    /// Whether no referenced blob failed verification.
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// Counters published by a [`MaintenanceThread`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintStats {
    /// Chains folded to a new base generation.
    pub cells_folded: u64,
    /// Fold attempts discarded because an append committed between the
    /// chain snapshot and the fold's commit (the fold retried).
    pub fold_races: u64,
    /// Completed scrub passes.
    pub scrubs: u64,
    /// Jobs re-queued after a transient storage fault (EIO, EINTR, short
    /// read, ENOSPC): the worker backs off and retries instead of dying.
    pub transient_retries: u64,
}

type PauseHook = Arc<dyn Fn() + Send + Sync>;

#[derive(Default)]
struct CtlState {
    /// Cells signalled as due for folding, FIFO, deduplicated.
    due: VecDeque<(u32, u32, bool)>,
    scrub_requests: u64,
    scrubs_done: u64,
    last_scrub: Option<ScrubReport>,
    /// Whether the worker is currently inside a job (gate held).
    active: bool,
    shutdown: bool,
    stats: MaintStats,
    /// First background-fold error, surfaced by `wait_idle`.
    fold_error: Option<String>,
    /// Test rendezvous: called after a fold's merge completes, before its
    /// commit takes the state lock.
    pause_hook: Option<PauseHook>,
}

struct Ctl {
    m: Mutex<CtlState>,
    cv: Condvar,
}

/// Handle to the background maintenance thread of one dynamic graph.
///
/// Spawned by
/// [`DynamicConfig::background`](crate::dynamic::DynamicConfig::background);
/// dropped (shut down and joined) with the owning
/// [`DynamicGraph`](crate::dynamic::DynamicGraph).
pub struct MaintenanceThread {
    ctl: Arc<Ctl>,
    handle: Option<JoinHandle<()>>,
}

impl MaintenanceThread {
    pub(crate) fn spawn(
        shared: Arc<StoreShared>,
        encoding: EncodingPolicy,
        checksums: Arc<ChecksumPolicy>,
        auto_scrub: bool,
    ) -> Self {
        let ctl = Arc::new(Ctl {
            m: Mutex::new(CtlState::default()),
            cv: Condvar::new(),
        });
        let worker_ctl = Arc::clone(&ctl);
        let handle = std::thread::Builder::new()
            .name("nxgraph-maint".into())
            .spawn(move || worker(shared, worker_ctl, encoding, checksums, auto_scrub))
            .expect("failed to spawn maintenance thread");
        Self {
            ctl,
            handle: Some(handle),
        }
    }

    /// Queue cells for background folding (deduplicated against the
    /// queue). Returns immediately.
    pub(crate) fn signal_cells(&self, cells: &[(u32, u32, bool)]) {
        let mut st = self.ctl.m.lock();
        for &cell in cells {
            if !st.due.contains(&cell) {
                st.due.push_back(cell);
            }
        }
        drop(st);
        self.ctl.cv.notify_all();
    }

    /// Block until every queued fold and requested scrub has completed.
    /// Surfaces the first background-fold error, if any.
    pub fn wait_idle(&self) -> EngineResult<()> {
        let mut st = self.ctl.m.lock();
        loop {
            if let Some(e) = st.fold_error.take() {
                return Err(EngineError::Invalid(format!(
                    "background maintenance failed: {e}"
                )));
            }
            if st.shutdown
                || (st.due.is_empty() && !st.active && st.scrub_requests <= st.scrubs_done)
            {
                return Ok(());
            }
            self.ctl.cv.wait(&mut st);
        }
    }

    /// Request a scrub pass and block until it completes, returning its
    /// report. Queued folds run first (the scrubber is idle-priority).
    pub fn scrub_now(&self) -> EngineResult<ScrubReport> {
        let mut st = self.ctl.m.lock();
        st.scrub_requests += 1;
        let target = st.scrub_requests;
        self.ctl.cv.notify_all();
        loop {
            if let Some(e) = st.fold_error.take() {
                return Err(EngineError::Invalid(format!(
                    "background maintenance failed: {e}"
                )));
            }
            if st.shutdown {
                return Err(EngineError::Invalid(
                    "maintenance thread shut down before the scrub completed".into(),
                ));
            }
            if st.scrubs_done >= target {
                return Ok(st.last_scrub.clone().expect("completed scrub has a report"));
            }
            self.ctl.cv.wait(&mut st);
        }
    }

    /// Counters for folds, fold races and scrub passes.
    pub fn stats(&self) -> MaintStats {
        self.ctl.m.lock().stats
    }

    /// The most recent completed scrub report, if any.
    pub fn last_scrub(&self) -> Option<ScrubReport> {
        self.ctl.m.lock().last_scrub.clone()
    }

    /// Install (or clear) a rendezvous hook called once per fold job, after
    /// its first merge completes and *before* its commit takes the state
    /// lock (retries after a lost race skip the hook). Test-only
    /// instrumentation: parking the hook proves an append can commit while
    /// a fold is in flight.
    pub fn set_fold_pause(&self, hook: Option<PauseHook>) {
        self.ctl.m.lock().pause_hook = hook;
    }
}

impl Drop for MaintenanceThread {
    fn drop(&mut self) {
        {
            let mut st = self.ctl.m.lock();
            st.shutdown = true;
        }
        self.ctl.cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

enum Job {
    Fold((u32, u32, bool)),
    Scrub { target: u64 },
}

/// How many transient-fault retries one maintenance job gets before its
/// error is treated as terminal and surfaced through `fold_error`.
const MAX_TRANSIENT_ATTEMPTS: u32 = 8;

/// Whether a failed maintenance job is worth re-queueing after backoff.
/// Only transient storage faults qualify; corruption and logic errors are
/// terminal.
fn is_transient(e: &EngineError) -> bool {
    matches!(e, EngineError::Storage(s) if s.is_transient())
}

fn worker(
    shared: Arc<StoreShared>,
    ctl: Arc<Ctl>,
    encoding: EncodingPolicy,
    checksums: Arc<ChecksumPolicy>,
    auto_scrub: bool,
) {
    let retry = RetryPolicy::default();
    // Worker-local retry budgets; cleared when a job finally succeeds or
    // is surfaced as terminal.
    let mut fold_attempts: HashMap<(u32, u32, bool), u32> = HashMap::new();
    let mut scrub_attempts: u32 = 0;
    loop {
        let job = {
            let mut st = ctl.m.lock();
            loop {
                if st.shutdown {
                    return;
                }
                // Folds before scrubs: the scrubber is idle-priority.
                if let Some(cell) = st.due.pop_front() {
                    st.active = true;
                    break Job::Fold(cell);
                }
                if st.scrub_requests > st.scrubs_done {
                    st.active = true;
                    break Job::Scrub {
                        target: st.scrub_requests,
                    };
                }
                ctl.cv.wait(&mut st);
            }
        };
        // Backoff to apply after the gate is released, so a retrying
        // worker never blocks appends or the owner's quiesce while asleep.
        let mut backoff: Option<Duration> = None;
        {
            let _gate = shared.gate.lock();
            match job {
                Job::Fold(cell) => {
                    let pause = ctl.m.lock().pause_hook.clone();
                    match fold_cell(&shared, cell, encoding, &checksums, pause.as_ref()) {
                        Ok(outcome) => {
                            fold_attempts.remove(&cell);
                            let mut st = ctl.m.lock();
                            st.stats.fold_races += outcome.races;
                            if outcome.folded {
                                st.stats.cells_folded += 1;
                                if auto_scrub {
                                    // Coalescing: one pending scrub covers
                                    // any number of completed folds.
                                    st.scrub_requests = st.scrub_requests.max(st.scrubs_done + 1);
                                }
                            }
                        }
                        Err(e) => {
                            let attempt = fold_attempts.get(&cell).copied().unwrap_or(0);
                            let mut st = ctl.m.lock();
                            if is_transient(&e) && attempt + 1 < MAX_TRANSIENT_ATTEMPTS {
                                fold_attempts.insert(cell, attempt + 1);
                                st.stats.transient_retries += 1;
                                backoff = Some(retry.backoff_for(attempt));
                                // Front of the queue: the cell keeps its
                                // place, and `wait_idle` keeps waiting until
                                // it resolves one way or the other.
                                if !st.due.contains(&cell) {
                                    st.due.push_front(cell);
                                }
                            } else {
                                fold_attempts.remove(&cell);
                                st.fold_error.get_or_insert(e.to_string());
                            }
                        }
                    }
                }
                Job::Scrub { target } => {
                    let manifest = shared.state.lock().manifest.clone();
                    let mut should_yield = || {
                        let st = ctl.m.lock();
                        !st.due.is_empty() || st.shutdown
                    };
                    match scrub_files(
                        shared.disk.as_ref(),
                        &manifest,
                        Some(&checksums),
                        &mut should_yield,
                    ) {
                        Ok(Some(report)) => {
                            scrub_attempts = 0;
                            let mut st = ctl.m.lock();
                            st.scrubs_done = st.scrubs_done.max(target);
                            st.stats.scrubs += 1;
                            st.last_scrub = Some(report);
                        }
                        // Yielded to a fold: leave the request pending; the
                        // pick loop re-runs the scrub fresh afterwards.
                        Ok(None) => {}
                        Err(e) => {
                            let mut st = ctl.m.lock();
                            if is_transient(&e) && scrub_attempts + 1 < MAX_TRANSIENT_ATTEMPTS {
                                scrub_attempts += 1;
                                st.stats.transient_retries += 1;
                                backoff = Some(retry.backoff_for(scrub_attempts - 1));
                                // `scrubs_done` stays behind `target`, so the
                                // request remains pending and re-runs.
                            } else {
                                scrub_attempts = 0;
                                st.fold_error.get_or_insert(e.to_string());
                                st.scrubs_done = st.scrubs_done.max(target);
                            }
                        }
                    }
                }
            }
        }
        let mut st = ctl.m.lock();
        st.active = false;
        drop(st);
        ctl.cv.notify_all();
        if let Some(d) = backoff {
            std::thread::sleep(d);
        }
    }
}

pub(crate) struct FoldOutcome {
    pub(crate) folded: bool,
    pub(crate) races: u64,
}

/// How many times a fold re-snapshots after losing a race to an append
/// before giving up (the next append past the threshold re-signals the
/// cell, so giving up never strands a chain).
const MAX_FOLD_ATTEMPTS: u32 = 16;

/// Fold one cell's chain into a new base generation without ever holding
/// the state lock across the merge. See the module docs for the protocol.
pub(crate) fn fold_cell(
    shared: &StoreShared,
    (i, j, reverse): (u32, u32, bool),
    encoding: EncodingPolicy,
    checksums: &ChecksumPolicy,
    mut pause: Option<&PauseHook>,
) -> EngineResult<FoldOutcome> {
    let disk = shared.disk.as_ref();
    let mut races = 0u64;
    for _ in 0..MAX_FOLD_ATTEMPTS {
        let chain = shared.state.lock().manifest.chain_info(i, j, reverse)?;
        if chain.deltas == 0 {
            return Ok(FoldOutcome {
                folded: false,
                races,
            });
        }
        // Merge with no lock held. A concurrent owner-side fold (explicit
        // compact) may sweep these files under us — treat NotFound as a
        // race, not corruption.
        let base_name = GraphManifest::subshard_base_file(i, j, reverse, chain.gen);
        let loaded = (|| -> EngineResult<(Vec<SubShard>, u64)> {
            let parts = dsss::load_chain_parts(disk, i, j, reverse, chain)?;
            let old_disk = disk.len_of(&base_name)? + chain.delta_bytes;
            Ok((parts, old_disk))
        })();
        let (parts, old_disk) = match loaded {
            Ok(x) => x,
            Err(EngineError::Storage(StorageError::NotFound(_))) => {
                races += 1;
                continue;
            }
            Err(e) => return Err(e),
        };
        let old_raw: u64 = parts.iter().map(|p| p.encoded_len()).sum();
        let merged = dsss::merge_subshards(i, j, &parts);
        let blob = merged.encode_with(encoding);
        // Fire once per fold job: a retry after a lost race must not park
        // again, or a reusable barrier on the other side would deadlock.
        if let Some(hook) = pause.take() {
            hook();
        }
        let new_gen = chain.gen + 1;
        let new_name = GraphManifest::subshard_base_file(i, j, reverse, new_gen);
        disk.write_all_to(&new_name, &blob)?;
        let mut st = shared.state.lock();
        if st.manifest.chain_info(i, j, reverse)? != chain {
            // An append (or owner fold) committed since the snapshot; the
            // merge is stale. Discard and retry from the new chain state.
            drop(st);
            let _ = disk.remove(&new_name);
            checksums.note_invalidated(&new_name);
            races += 1;
            continue;
        }
        let mut manifest = st.manifest.clone();
        manifest.set_chain_info(
            i,
            j,
            reverse,
            ChainInfo {
                gen: new_gen,
                ..ChainInfo::default()
            },
        );
        crate::dynamic::apply_byte_totals(
            &mut manifest,
            merged.encoded_len() as i64 - old_raw as i64,
            blob.len() as i64 - old_disk as i64,
        );
        manifest.save(disk)?;
        st.manifest = manifest;
        st.epoch += 1;
        st.queue_superseded(crate::dynamic::chain_files(i, j, reverse, chain));
        return Ok(FoldOutcome {
            folded: true,
            races,
        });
    }
    Ok(FoldOutcome {
        folded: false,
        races,
    })
}

// ---------------------------------------------------------------------------
// Scrubbing
// ---------------------------------------------------------------------------

/// What a file name means to the current manifest.
enum FileClass {
    /// Never examined: the manifest itself (parsed = validated), an
    /// in-flight manifest tmp (sweeping it here could race the owner's
    /// save between write and rename), or a name this layer doesn't own.
    Skip,
    /// An existing quarantine copy: counted as an orphan, never verified.
    Quarantined,
    /// A sub-shard base or delta the manifest references.
    RefSubShard { i: u32, j: u32 },
    /// The degree table generation the manifest references.
    RefDegrees,
    /// The mapping tables (always referenced).
    RefMapping,
    /// Run-scratch files rewritten every iteration (intervals, hubs):
    /// verified shallowly, swept if corrupt.
    Scratch(FileKind),
    /// A file this layer owns but the manifest does not reference.
    Orphan,
}

/// Degree-table generation encoded in a file name, if it is one.
pub(crate) fn parse_degrees_file(name: &str) -> Option<u32> {
    if name == GraphManifest::degree_file() {
        return Some(0);
    }
    name.strip_prefix("degrees.g")?
        .strip_suffix(".bin")?
        .parse()
        .ok()
}

/// Parse any sub-shard cell file — generation-tagged chain names *and*
/// plain prep-time `[r]ss_i_j.bin` names (reported as generation 0) —
/// into `(i, j, reverse, gen, delta_index)`.
pub(crate) fn parse_cell_file(name: &str) -> Option<(u32, u32, bool, u32, Option<u32>)> {
    if let Some(parsed) = crate::dynamic::parse_chain_file(name) {
        return Some(parsed);
    }
    let rest = name.strip_suffix(".bin")?;
    let (reverse, rest) = match rest.strip_prefix("rss_") {
        Some(r) => (true, r),
        None => (false, rest.strip_prefix("ss_")?),
    };
    let (i, j) = rest.split_once('_')?;
    Some((i.parse().ok()?, j.parse().ok()?, reverse, 0, None))
}

/// Whether a parsed cell file is referenced by `manifest`'s chain state.
pub(crate) fn cell_referenced(
    manifest: &GraphManifest,
    (i, j, reverse, gen, delta): (u32, u32, bool, u32, Option<u32>),
) -> EngineResult<bool> {
    let p = manifest.num_intervals;
    if i >= p || j >= p || (reverse && !manifest.has_reverse) {
        return Ok(false);
    }
    let chain = manifest.chain_info(i, j, reverse)?;
    Ok(gen == chain.gen
        && match delta {
            None => true,
            Some(k) => k >= 1 && k <= chain.deltas,
        })
}

fn classify(name: &str, manifest: &GraphManifest) -> EngineResult<FileClass> {
    if name == MANIFEST_FILE || name == MANIFEST_TMP_FILE {
        return Ok(FileClass::Skip);
    }
    if name.starts_with(QUARANTINE_PREFIX) {
        return Ok(FileClass::Quarantined);
    }
    if let Some(parsed) = parse_cell_file(name) {
        let (i, j, _, _, _) = parsed;
        return Ok(if cell_referenced(manifest, parsed)? {
            FileClass::RefSubShard { i, j }
        } else {
            FileClass::Orphan
        });
    }
    if let Some(gen) = parse_degrees_file(name) {
        return Ok(if gen == manifest.degrees_gen()? {
            FileClass::RefDegrees
        } else {
            FileClass::Orphan
        });
    }
    if name == GraphManifest::mapping_file() || name == GraphManifest::reverse_mapping_file() {
        return Ok(FileClass::RefMapping);
    }
    if name.starts_with("interval_") && name.ends_with(".bin") {
        return Ok(FileClass::Scratch(FileKind::Interval));
    }
    if name.starts_with("hub_") && name.ends_with(".bin") {
        return Ok(FileClass::Scratch(FileKind::Hub));
    }
    Ok(FileClass::Skip)
}

/// Verify one file's bytes against its class. `Ok(())` = intact.
fn verify_file(
    bytes: &[u8],
    name: &str,
    class: &FileClass,
    manifest: &GraphManifest,
) -> Result<(), StorageError> {
    let corrupt = |reason: String| StorageError::Corrupt {
        name: name.to_string(),
        reason,
    };
    let (kind, encoding) = format::verify_blob(bytes, name)?;
    let expect_kind = |want: FileKind| {
        if kind == want {
            Ok(())
        } else {
            Err(corrupt(format!("expected {want:?}, header says {kind:?}")))
        }
    };
    match class {
        FileClass::Skip | FileClass::Quarantined => Ok(()),
        FileClass::RefSubShard { i, j } => {
            expect_kind(FileKind::SubShard)?;
            // Deep decode: catches the v2↔v3 version-tag flip the payload
            // checksum cannot see, plus any structural damage. Every writer
            // tags the blob with the cell its name claims (base and delta,
            // forward and reverse alike).
            let ss = SubShard::decode(bytes, name)?;
            if ss.src_interval != *i || ss.dst_interval != *j {
                return Err(corrupt(format!(
                    "blob tagged ({}, {}), name says ({i}, {j})",
                    ss.src_interval, ss.dst_interval
                )));
            }
            // Canonicality: every writer emits the deterministic encoding
            // for the version it stamps, so a referenced blob must re-encode
            // to its own bytes. This closes the residual version-flip case
            // where the foreign decoder happens to accept the payload.
            let policy = match encoding {
                Encoding::Raw => EncodingPolicy::Raw,
                Encoding::DeltaVarint => EncodingPolicy::Compressed,
            };
            if ss.encode_with(policy) != bytes {
                return Err(corrupt("blob is not the canonical encoding of its contents".into()));
            }
            Ok(())
        }
        FileClass::RefDegrees => {
            expect_kind(FileKind::Degrees)?;
            let payload = format::read_blob(&mut &bytes[..], FileKind::Degrees, name)?;
            let n = format::decode_u32s(&payload)
                .map_err(|e| corrupt(format!("undecodable degree table: {e}")))?
                .len() as u64;
            if n != manifest.num_vertices {
                return Err(corrupt(format!(
                    "degree table has {n} entries for {} vertices",
                    manifest.num_vertices
                )));
            }
            Ok(())
        }
        FileClass::RefMapping => {
            expect_kind(FileKind::Mapping)?;
            let payload = format::read_blob(&mut &bytes[..], FileKind::Mapping, name)?;
            if payload.len() as u64 != manifest.num_vertices * 8 {
                return Err(corrupt(format!(
                    "mapping table is {} bytes for {} vertices",
                    payload.len(),
                    manifest.num_vertices
                )));
            }
            Ok(())
        }
        FileClass::Scratch(want) => expect_kind(*want),
        // Orphans get the kind-agnostic header + checksum check only: the
        // name may be a leftover from any generation, so there is no
        // manifest state to deep-check against.
        FileClass::Orphan => Ok(()),
    }
}

/// One scrub pass over every file on `disk`, classified against
/// `manifest`. Returns `Ok(None)` if `should_yield` turned true between
/// files (the caller re-runs the pass later). `checksums`, when given,
/// is told about every file this pass removes or quarantines.
pub(crate) fn scrub_files(
    disk: &dyn Disk,
    manifest: &GraphManifest,
    checksums: Option<&ChecksumPolicy>,
    should_yield: &mut dyn FnMut() -> bool,
) -> EngineResult<Option<ScrubReport>> {
    let mut names = disk.list();
    names.sort_unstable();
    let mut report = ScrubReport::default();
    let invalidate = |name: &str| {
        if let Some(cs) = checksums {
            cs.note_invalidated(name);
        }
    };
    for name in names {
        if should_yield() {
            return Ok(None);
        }
        let class = classify(&name, manifest)?;
        match class {
            FileClass::Skip => continue,
            FileClass::Quarantined => {
                report.orphans += 1;
                continue;
            }
            _ => {}
        }
        // A file listed at pass start may be swept under us (the owner's
        // orphan sweep runs unsynchronised): vanished = not our problem.
        let bytes = match disk.read_all(&name) {
            Ok(b) => b,
            Err(StorageError::NotFound(_)) => continue,
            Err(e) => return Err(e.into()),
        };
        report.files_scanned += 1;
        report.bytes_scanned += bytes.len() as u64;
        let verdict = verify_file(&bytes, &name, &class, manifest);
        match (verdict, &class) {
            (Ok(()), FileClass::Orphan) => report.orphans += 1,
            (Ok(()), _) => report.clean += 1,
            (Err(_), FileClass::Orphan) | (Err(_), FileClass::Scratch(_)) => {
                // Nothing references it (orphan) or the next iteration
                // rewrites it wholesale (scratch): corrupt copies are
                // safe to drop on the spot.
                let _ = disk.remove(&name);
                invalidate(&name);
                report.swept.push(name);
            }
            (Err(_), _) => {
                // A referenced blob failed verification. Park the bytes
                // under a quarantine name and remove the original, so the
                // next load of this cell fails hard (NotFound) instead of
                // feeding damaged data to an engine.
                disk.write_all_to(&format!("{QUARANTINE_PREFIX}{name}"), &bytes)?;
                let _ = disk.remove(&name);
                invalidate(&name);
                report.corrupt.push(name);
            }
        }
    }
    report.corrupt.sort_unstable();
    report.swept.sort_unstable();
    Ok(Some(report))
}

/// Scrub a prepared-graph disk standalone (the CLI `scrub` subcommand):
/// loads the manifest, then runs one full pass.
pub fn scrub(disk: &dyn Disk) -> EngineResult<ScrubReport> {
    let manifest = GraphManifest::load(disk)?;
    Ok(scrub_files(disk, &manifest, None, &mut || false)?
        .expect("an un-yieldable scrub always completes"))
}
