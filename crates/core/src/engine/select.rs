//! Strategy selection from the memory budget (§III-B).
//!
//! SPU needs ping-pong copies of every interval: `2·n·Ba` bytes. If the
//! budget covers that, SPU is "always preferred over DPU" (Exp 3). With a
//! partial budget, `Q = ⌊B_M/(2·n·Ba)·P⌋` intervals stay resident and MPU
//! applies; with none, DPU. The degree table (4 bytes/vertex, needed by
//! scatter-style programs) is charged against the budget first.

use nxgraph_storage::budget::ResidencyPlan;

use super::Strategy;

/// Bytes per vertex of the always-resident out-degree table.
pub const DEGREE_TABLE_BYTES_PER_VERTEX: u64 = 4;

/// Resolve the strategy and residency plan for a graph of `n` vertices,
/// `p` intervals, `value_size`-byte attributes and `budget` bytes.
pub fn choose_strategy(n: u64, p: u32, value_size: usize, budget: u64) -> (Strategy, ResidencyPlan) {
    let effective = budget.saturating_sub(n * DEGREE_TABLE_BYTES_PER_VERTEX);
    let plan = ResidencyPlan::compute(n, p as usize, value_size as u64, effective);
    let strategy = if plan.is_spu() {
        Strategy::Spu
    } else if plan.is_dpu() {
        Strategy::Dpu
    } else {
        Strategy::Mpu
    };
    (strategy, plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_is_spu() {
        let (s, plan) = choose_strategy(1_000_000, 16, 8, u64::MAX);
        assert_eq!(s, Strategy::Spu);
        assert!(plan.is_spu());
    }

    #[test]
    fn tiny_budget_is_dpu() {
        let (s, plan) = choose_strategy(1_000_000, 16, 8, 4_000_000);
        // Degree table alone eats the budget.
        assert_eq!(s, Strategy::Dpu);
        assert!(plan.is_dpu());
    }

    #[test]
    fn middle_budget_is_mpu() {
        // n=1M, Ba=8 → ping-pong 16 MB; degrees 4 MB. Budget 12 MB →
        // 8 MB effective → Q = 8 of 16.
        let (s, plan) = choose_strategy(1_000_000, 16, 8, 12_000_000);
        assert_eq!(s, Strategy::Mpu);
        assert_eq!(plan.resident_intervals, 8);
    }

    #[test]
    fn threshold_is_exact() {
        let n = 1000u64;
        let full = n * 4 + 2 * n * 8;
        assert_eq!(choose_strategy(n, 4, 8, full).0, Strategy::Spu);
        assert_ne!(choose_strategy(n, 4, 8, full - 1).0, Strategy::Spu);
    }

    #[test]
    fn strategy_monotone_in_budget() {
        // As budget grows the resident count must not shrink.
        let mut last = 0usize;
        for budget in (0..30_000u64).step_by(1000) {
            let (_, plan) = choose_strategy(1000, 8, 8, budget);
            assert!(plan.resident_intervals >= last);
            last = plan.resident_intervals;
        }
    }
}
