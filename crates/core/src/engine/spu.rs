//! Single-Phase Update (§III-B1).
//!
//! Every interval lives in memory as a **ping-pong pair**: one copy holds
//! the previous iteration's attributes (read side), the other receives this
//! iteration's results; at the end of the iteration the copies swap, so
//! switching iterations costs nothing. Sub-shards stream from disk (or from
//! the leftover-budget cache). Per iteration, I/O is at most
//! `m·Be + 2n·Ba − B_M` — the minimum of all strategies.
//!
//! Two synchronisation flavours (§IV preamble): `Callback` issues
//! fine-grained destination-chunk tasks; `Lock` issues one task per
//! sub-shard, guarding each destination interval with a lock (the paper's
//! alternative implementation). Both traverse row-major — within one row a
//! destination interval is touched by exactly one direction's sub-shard,
//! so the fold order per accumulator is the fixed row order and results
//! are bitwise-identical at any thread count under either flavour.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::dsss::{PreparedGraph, SubShardView};
use crate::error::EngineResult;
use crate::parallel::{run_tasks, split_ranges};
use crate::program::VertexProgram;
use crate::types::{Attr, VertexId};

use super::iosched::IoSession;
use super::kernel::absorb_row;
use super::prefetch::{JobStream, Jobs, Prefetcher};
use super::state::{finalize_range, AccBuf};
use super::store::ShardStore;
use super::{Activity, EngineConfig};

/// Run to convergence under SPU. Returns (values, iterations, edges
/// traversed).
pub fn run_spu<P: VertexProgram>(
    g: &PreparedGraph,
    prog: &P,
    cfg: &EngineConfig,
) -> EngineResult<(Vec<P::Value>, usize, u64)> {
    let n = g.num_vertices();
    let p = g.num_intervals();

    // Ping-pong intervals and the degree table are resident; leftover
    // budget actively caches sub-shards (§III-B1 "Before initialization,
    // the SPU engine will actively allocate spaces for ping-pong
    // intervals. If there are still memory budget left, sub-shards will
    // also be actively loaded").
    let resident = 2 * n as u64 * P::Value::SIZE as u64 + n as u64 * 4;
    let cache_budget = cfg.memory_budget.saturating_sub(resident);
    let mut store = ShardStore::new(g);
    store.plan_cache(cache_budget, cfg.direction)?;

    let mut prev: Vec<P::Value> = (0..n).map(|v| prog.init(v)).collect();
    let mut next = prev.clone();
    let mut activity = Activity::init(g, prog);

    // Background decode workers for streamed (uncached) rows; both sync
    // flavours consume the same row-major stream.
    let prefetcher = cfg
        .prefetch
        .then(|| Prefetcher::with_workers(cfg.decode_workers()));

    let mut accs: Vec<Option<Mutex<AccBuf<P>>>> = (0..p)
        .map(|j| {
            let r = g.interval_range(j);
            Some(Mutex::new(AccBuf::new(prog, r.start, (r.end - r.start) as usize)))
        })
        .collect();

    let mut iterations = 0;
    let mut edges_traversed = 0u64;

    for _ in 0..cfg.max_iterations {
        iterations += 1;
        for a in accs.iter_mut().flatten() {
            a.get_mut().reset(prog);
        }

        // Row-major traversal under either sync flavour; all tasks of a
        // row run concurrently and the prefetcher decodes row i+1's
        // streamed sub-shards while row i is absorbed (cached shards cost
        // nothing). One row at a time also keeps the Lock flavour
        // deterministic: each destination interval's fold order is the row
        // order, not the lock-acquisition order of a whole-iteration sweep.
        let rows: Vec<(bool, u32)> = ShardStore::dirs(cfg.direction)
            .iter()
            .flat_map(|&reverse| {
                (0..p).filter(|&i| !activity.row_skippable(i)).map(move |i| (reverse, i))
            })
            .collect();
        // Cache hits are resolved up-front and consumed directly; only
        // cache misses become prefetch jobs, at single sub-shard
        // granularity so the ring never holds more than `slots()` decoded
        // sub-shards beyond the row being absorbed (row-sized jobs would
        // keep several rows resident, outside the memory-budget
        // accounting).
        let mut cached_rows: Vec<Vec<Option<Arc<SubShardView>>>> =
            Vec::with_capacity(rows.len());
        let mut misses: Vec<(u32, u32, bool)> = Vec::new();
        for &(reverse, i) in &rows {
            let hits: Vec<Option<Arc<SubShardView>>> =
                (0..p).map(|j| store.cached(i, j, reverse)).collect();
            for (j, hit) in hits.iter().enumerate() {
                if hit.is_none() {
                    misses.push((i, j as u32, reverse));
                }
            }
            cached_rows.push(hits);
        }
        // With the I/O scheduler on, the iteration's misses become one
        // access plan whose reads are issued in batched layout order by a
        // dedicated I/O thread; each job then decodes its parked bytes.
        // Delivery order (and so every fold) is unchanged either way.
        let session = cfg.io_scheduler.then(|| {
            let loader = g.view_loader();
            let plan = misses
                .iter()
                .map(|&(i, j, rev)| loader.subshard_part_names(i, j, rev))
                .collect();
            IoSession::start(
                Arc::clone(loader.disk()),
                Arc::clone(loader.pool()),
                plan,
                cfg.io_queue_depth,
                loader.retry_policy(),
                cfg.io_deadline,
            )
        });
        let mut jobs: Jobs<EngineResult<SubShardView>> = Vec::with_capacity(misses.len());
        for (seq, &(i, j, reverse)) in misses.iter().enumerate() {
            let loader = g.view_loader();
            match session.as_ref().map(IoSession::client) {
                Some(client) => jobs.push(Box::new(move || {
                    let names = loader.subshard_part_names(i, j, reverse);
                    loader.decode_subshard(i, j, &names, client.take(seq))
                })),
                None => jobs.push(Box::new(move || loader.load_subshard(i, j, reverse))),
            }
        }
        let mut stream = JobStream::new(prefetcher.as_ref(), jobs);
        for (&(_, i), hits) in rows.iter().zip(cached_rows) {
            let mut shards: Vec<Option<Arc<SubShardView>>> =
                Vec::with_capacity(p as usize);
            for hit in hits {
                let ss = match hit {
                    Some(ss) => ss,
                    None => Arc::new(stream.next().expect("one job per miss")?),
                };
                edges_traversed += ss.num_edges() as u64;
                shards.push(Some(ss));
            }
            let r = g.interval_range(i);
            absorb_row(
                prog,
                &shards,
                &prev[r.start as usize..r.end as usize],
                r.start,
                &mut accs,
                cfg.threads,
                cfg.edges_per_task,
                cfg.sync,
            );
        }
        drop(stream);

        // Finalise every interval as one flat batch of destination-range
        // chunks (apply is elementwise, so chunking does not affect the
        // values). One batch — not one per interval — so a handful of
        // large intervals still spreads across all workers.
        let changed_flags: Vec<AtomicBool> = (0..p).map(|_| AtomicBool::new(false)).collect();
        {
            let bufs: Vec<&AccBuf<P>> = accs
                .iter_mut()
                .map(|a| &*a.as_mut().expect("all intervals present in SPU").get_mut())
                .collect();
            let mut rest: &mut [P::Value] = &mut next;
            let mut tasks: Vec<(u32, usize, &mut [P::Value])> = Vec::new();
            for j in 0..p {
                let len = g.interval_len(j);
                let (mut slice, r2) = rest.split_at_mut(len);
                rest = r2;
                for range in split_ranges(len, cfg.threads) {
                    let (chunk, srest) = std::mem::take(&mut slice).split_at_mut(range.len());
                    slice = srest;
                    tasks.push((j, range.start, chunk));
                }
            }
            let prev_ref = &prev;
            let bufs_ref = &bufs;
            let flags = &changed_flags;
            run_tasks(cfg.threads, tasks, |(j, off, out)| {
                let r = g.interval_range(j);
                let lo = r.start as usize + off;
                let ch = finalize_range(
                    prog,
                    bufs_ref[j as usize],
                    off,
                    &prev_ref[lo..lo + out.len()],
                    out,
                );
                if ch {
                    flags[j as usize].store(true, Ordering::Relaxed);
                }
            });
        }
        std::mem::swap(&mut prev, &mut next);

        let changed: Vec<bool> = changed_flags
            .iter()
            .map(|f| f.load(Ordering::Relaxed))
            .collect();
        let all_inactive = activity.advance(&changed);
        let done = if P::ALWAYS_APPLY {
            !changed.iter().any(|&c| c)
        } else {
            all_inactive
        };
        if done {
            break;
        }
    }

    Ok((prev, iterations, edges_traversed))
}

// `VertexId` is used in the interval geometry; keep the import honest.
const _: fn(VertexId) = |_| {};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::pagerank::PageRank;
    use crate::engine::SyncMode;
    use crate::prep::{preprocess, PrepConfig};
    use nxgraph_storage::{Disk, MemDisk};

    fn graph(p: u32) -> PreparedGraph {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let edges: Vec<(u64, u64)> = crate::fig1_example_edges()
            .into_iter()
            .map(|(s, d)| (s as u64, d as u64))
            .collect();
        preprocess(&edges, &PrepConfig::new("fig1", p), disk).unwrap()
    }

    #[test]
    fn pagerank_matches_reference_on_fig1() {
        let g = graph(4);
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let cfg = EngineConfig::default().with_max_iterations(10).with_threads(3);
        let (vals, iters, edges) = run_spu(&g, &prog, &cfg).unwrap();
        assert_eq!(iters, 10);
        assert_eq!(edges, 21 * 10);
        let expect = crate::reference::pagerank(
            g.num_vertices(),
            &crate::fig1_example_edges(),
            g.out_degrees(),
            10,
        );
        for (a, b) in vals.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn io_scheduler_is_bitwise_identical() {
        let g = graph(4);
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        // Tiny budget forces streaming so the scheduler actually runs.
        let base = EngineConfig::default().with_max_iterations(6).with_budget(1);
        let (off, ..) = run_spu(&g, &prog, &base).unwrap();
        let (on, ..) =
            run_spu(&g, &prog, &base.clone().with_io_scheduler(true)).unwrap();
        assert_eq!(off.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                   on.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn callback_and_lock_agree() {
        let g = graph(3);
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let cb = run_spu(
            &g,
            &prog,
            &EngineConfig::default().with_max_iterations(5),
        )
        .unwrap()
        .0;
        let lk = run_spu(
            &g,
            &prog,
            &EngineConfig::default()
                .with_max_iterations(5)
                .with_sync(SyncMode::Lock),
        )
        .unwrap()
        .0;
        for (a, b) in cb.iter().zip(&lk) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn result_invariant_to_thread_count_and_p() {
        let mut reference: Option<Vec<f64>> = None;
        for p in [1u32, 2, 4, 7] {
            let g = graph(p);
            let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
            for threads in [1usize, 4] {
                let (vals, _, _) = run_spu(
                    &g,
                    &prog,
                    &EngineConfig::default()
                        .with_max_iterations(8)
                        .with_threads(threads),
                )
                .unwrap();
                match &reference {
                    None => reference = Some(vals),
                    Some(r) => {
                        for (a, b) in vals.iter().zip(r) {
                            assert!((a - b).abs() < 1e-12, "P={p} t={threads}");
                        }
                    }
                }
            }
        }
    }
}
