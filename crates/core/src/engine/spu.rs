//! Single-Phase Update (§III-B1).
//!
//! Every interval lives in memory as a **ping-pong pair**: one copy holds
//! the previous iteration's attributes (read side), the other receives this
//! iteration's results; at the end of the iteration the copies swap, so
//! switching iterations costs nothing. Sub-shards stream from disk (or from
//! the leftover-budget cache). Per iteration, I/O is at most
//! `m·Be + 2n·Ba − B_M` — the minimum of all strategies.
//!
//! Two synchronisation flavours (§IV preamble): `Callback` issues
//! fine-grained destination-chunk tasks row by row; `Lock` issues one task
//! per sub-shard across the *whole* iteration, guarding each destination
//! interval with a lock (sub-shards of different rows overlap freely, which
//! is the paper's alternative implementation).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::dsss::{PreparedGraph, SubShardView};
use crate::error::EngineResult;
use crate::parallel::run_tasks;
use crate::program::VertexProgram;
use crate::types::{Attr, VertexId};

use super::kernel::{absorb_chunk, absorb_row};
use super::prefetch::{JobStream, Jobs, Prefetcher};
use super::state::{finalize_interval, AccBuf};
use super::store::ShardStore;
use super::{Activity, EngineConfig, SyncMode};

/// Run to convergence under SPU. Returns (values, iterations, edges
/// traversed).
pub fn run_spu<P: VertexProgram>(
    g: &PreparedGraph,
    prog: &P,
    cfg: &EngineConfig,
) -> EngineResult<(Vec<P::Value>, usize, u64)> {
    let n = g.num_vertices();
    let p = g.num_intervals();

    // Ping-pong intervals and the degree table are resident; leftover
    // budget actively caches sub-shards (§III-B1 "Before initialization,
    // the SPU engine will actively allocate spaces for ping-pong
    // intervals. If there are still memory budget left, sub-shards will
    // also be actively loaded").
    let resident = 2 * n as u64 * P::Value::SIZE as u64 + n as u64 * 4;
    let cache_budget = cfg.memory_budget.saturating_sub(resident);
    let mut store = ShardStore::new(g);
    store.plan_cache(cache_budget, cfg.direction)?;

    let mut prev: Vec<P::Value> = (0..n).map(|v| prog.init(v)).collect();
    let mut next = prev.clone();
    let mut activity = Activity::init(g, prog);

    // Background decode thread for streamed (uncached) rows; Lock mode
    // loads everything up-front inside its task sweep, so only the
    // Callback row stream benefits.
    let prefetcher = (cfg.prefetch && cfg.sync == SyncMode::Callback).then(Prefetcher::new);

    let mut accs: Vec<Option<Mutex<AccBuf<P>>>> = (0..p)
        .map(|j| {
            let r = g.interval_range(j);
            Some(Mutex::new(AccBuf::new(prog, r.start, (r.end - r.start) as usize)))
        })
        .collect();

    let mut iterations = 0;
    let mut edges_traversed = 0u64;

    for _ in 0..cfg.max_iterations {
        iterations += 1;
        for a in accs.iter_mut().flatten() {
            a.get_mut().reset(prog);
        }

        match cfg.sync {
            SyncMode::Callback => {
                // Row-major traversal; all chunks of a row run concurrently
                // and the prefetcher decodes row i+1's streamed sub-shards
                // while row i is absorbed (cached shards cost nothing).
                let rows: Vec<(bool, u32)> = ShardStore::dirs(cfg.direction)
                    .iter()
                    .flat_map(|&reverse| {
                        (0..p).filter(|&i| !activity.row_skippable(i)).map(move |i| (reverse, i))
                    })
                    .collect();
                // Cache hits are resolved up-front and consumed directly;
                // only cache misses become prefetch jobs, at single
                // sub-shard granularity so the ring never holds more than
                // RING_SLOTS decoded sub-shards beyond the row being
                // absorbed (row-sized jobs would keep ~3 rows resident,
                // outside the memory-budget accounting).
                let mut cached_rows: Vec<Vec<Option<Arc<SubShardView>>>> =
                    Vec::with_capacity(rows.len());
                let mut jobs: Jobs<EngineResult<SubShardView>> = Vec::new();
                for &(reverse, i) in &rows {
                    let hits: Vec<Option<Arc<SubShardView>>> =
                        (0..p).map(|j| store.cached(i, j, reverse)).collect();
                    for (j, hit) in hits.iter().enumerate() {
                        if hit.is_none() {
                            let loader = g.view_loader();
                            let j = j as u32;
                            jobs.push(Box::new(move || {
                                loader.load_subshard(i, j, reverse)
                            }));
                        }
                    }
                    cached_rows.push(hits);
                }
                let mut stream = JobStream::new(prefetcher.as_ref(), jobs);
                for (&(_, i), hits) in rows.iter().zip(cached_rows) {
                    let mut shards: Vec<Option<Arc<SubShardView>>> =
                        Vec::with_capacity(p as usize);
                    for hit in hits {
                        let ss = match hit {
                            Some(ss) => ss,
                            None => Arc::new(stream.next().expect("one job per miss")?),
                        };
                        edges_traversed += ss.num_edges() as u64;
                        shards.push(Some(ss));
                    }
                    let r = g.interval_range(i);
                    absorb_row(
                        prog,
                        &shards,
                        &prev[r.start as usize..r.end as usize],
                        r.start,
                        &mut accs,
                        cfg.threads,
                        cfg.edges_per_task,
                        SyncMode::Callback,
                    );
                }
            }
            SyncMode::Lock => {
                // One task per sub-shard, all rows at once; destination
                // intervals are guarded by their lock.
                let mut tasks: Vec<(u32, u32, Arc<SubShardView>)> = Vec::new();
                for &reverse in ShardStore::dirs(cfg.direction) {
                    for i in 0..p {
                        if activity.row_skippable(i) {
                            continue;
                        }
                        for j in 0..p {
                            let ss = store.get(i, j, reverse)?;
                            edges_traversed += ss.num_edges() as u64;
                            if !ss.is_empty() {
                                tasks.push((i, j, ss));
                            }
                        }
                    }
                }
                let prev_ref = &prev;
                let accs_ref = &accs;
                run_tasks(cfg.threads, tasks, |(i, j, ss)| {
                    let r = g.interval_range(i);
                    let mut guard = accs_ref[j as usize]
                        .as_ref()
                        .expect("all intervals present in SPU")
                        .lock();
                    let buf = &mut *guard;
                    let base = buf.base;
                    absorb_chunk(
                        prog,
                        &ss,
                        0..ss.num_dsts(),
                        &prev_ref[r.start as usize..r.end as usize],
                        r.start,
                        &mut buf.acc,
                        &mut buf.has,
                        base,
                    );
                });
            }
        }

        // Finalise every interval in parallel (apply + activity flags).
        let changed_flags: Vec<AtomicBool> = (0..p).map(|_| AtomicBool::new(false)).collect();
        {
            let mut rest: &mut [P::Value] = &mut next;
            let mut tasks: Vec<(u32, &mut [P::Value])> = Vec::with_capacity(p as usize);
            for j in 0..p {
                let len = g.interval_len(j);
                let (slice, r2) = rest.split_at_mut(len);
                rest = r2;
                tasks.push((j, slice));
            }
            let prev_ref = &prev;
            let accs_ref = &accs;
            let flags = &changed_flags;
            run_tasks(cfg.threads, tasks, |(j, out)| {
                let r = g.interval_range(j);
                let guard = accs_ref[j as usize]
                    .as_ref()
                    .expect("all intervals present in SPU")
                    .lock();
                let ch = finalize_interval(
                    prog,
                    &guard,
                    &prev_ref[r.start as usize..r.end as usize],
                    out,
                );
                if ch {
                    flags[j as usize].store(true, Ordering::Relaxed);
                }
            });
        }
        std::mem::swap(&mut prev, &mut next);

        let changed: Vec<bool> = changed_flags
            .iter()
            .map(|f| f.load(Ordering::Relaxed))
            .collect();
        let all_inactive = activity.advance(&changed);
        let done = if P::ALWAYS_APPLY {
            !changed.iter().any(|&c| c)
        } else {
            all_inactive
        };
        if done {
            break;
        }
    }

    Ok((prev, iterations, edges_traversed))
}

// `VertexId` is used in the interval geometry; keep the import honest.
const _: fn(VertexId) = |_| {};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::pagerank::PageRank;
    use crate::prep::{preprocess, PrepConfig};
    use nxgraph_storage::{Disk, MemDisk};

    fn graph(p: u32) -> PreparedGraph {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let edges: Vec<(u64, u64)> = crate::fig1_example_edges()
            .into_iter()
            .map(|(s, d)| (s as u64, d as u64))
            .collect();
        preprocess(&edges, &PrepConfig::new("fig1", p), disk).unwrap()
    }

    #[test]
    fn pagerank_matches_reference_on_fig1() {
        let g = graph(4);
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let cfg = EngineConfig::default().with_max_iterations(10).with_threads(3);
        let (vals, iters, edges) = run_spu(&g, &prog, &cfg).unwrap();
        assert_eq!(iters, 10);
        assert_eq!(edges, 21 * 10);
        let expect = crate::reference::pagerank(
            g.num_vertices(),
            &crate::fig1_example_edges(),
            g.out_degrees(),
            10,
        );
        for (a, b) in vals.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn callback_and_lock_agree() {
        let g = graph(3);
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let cb = run_spu(
            &g,
            &prog,
            &EngineConfig::default().with_max_iterations(5),
        )
        .unwrap()
        .0;
        let lk = run_spu(
            &g,
            &prog,
            &EngineConfig::default()
                .with_max_iterations(5)
                .with_sync(SyncMode::Lock),
        )
        .unwrap()
        .0;
        for (a, b) in cb.iter().zip(&lk) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn result_invariant_to_thread_count_and_p() {
        let mut reference: Option<Vec<f64>> = None;
        for p in [1u32, 2, 4, 7] {
            let g = graph(p);
            let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
            for threads in [1usize, 4] {
                let (vals, _, _) = run_spu(
                    &g,
                    &prog,
                    &EngineConfig::default()
                        .with_max_iterations(8)
                        .with_threads(threads),
                )
                .unwrap();
                match &reference {
                    None => reference = Some(vals),
                    Some(r) => {
                        for (a, b) in vals.iter().zip(r) {
                            assert!((a - b).abs() < 1e-12, "P={p} t={threads}");
                        }
                    }
                }
            }
        }
    }
}
