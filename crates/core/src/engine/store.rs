//! Sub-shard access with optional in-memory caching.
//!
//! "If there are still memory budget left, sub-shards will also be actively
//! loaded from disk to memory" (§III-B1). [`ShardStore`] plans a cache from
//! the leftover budget in row-major traversal order, then serves sub-shards
//! either from memory (no I/O counted — the bytes never move again) or by
//! streaming from disk (counted by the disk's [`IoCounters`]).
//!
//! [`IoCounters`]: nxgraph_storage::IoCounters

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::dsss::{PreparedGraph, SubShardView};
use crate::error::EngineResult;
use crate::program::Direction;

/// Cache key: `(i, j, reverse)`.
type Key = (u32, u32, bool);

/// Cached or streamed access to the sub-shards of one prepared graph.
pub struct ShardStore<'g> {
    graph: &'g PreparedGraph,
    cache: HashMap<Key, Arc<SubShardView>>,
    cached_bytes: u64,
    /// Single-slot MRU over the *streamed* path: consecutive `get`s of the
    /// same uncached `(i, j, reverse)` reuse the last decoded view instead
    /// of re-reading and re-validating the file. The slot never substitutes
    /// for a disk read that a differently-keyed access would have made, so
    /// it cannot change which files an engine pass touches.
    mru: Mutex<Option<(Key, Arc<SubShardView>)>>,
}

impl<'g> ShardStore<'g> {
    /// A store with an empty cache (pure streaming).
    pub fn new(graph: &'g PreparedGraph) -> Self {
        Self {
            graph,
            cache: HashMap::new(),
            cached_bytes: 0,
            mru: Mutex::new(None),
        }
    }

    /// Directions a program needs, as (reverse?) flags.
    pub fn dirs(direction: Direction) -> &'static [bool] {
        match direction {
            Direction::Forward => &[false],
            Direction::Reverse => &[true],
            Direction::Both => &[false, true],
        }
    }

    /// Greedily cache sub-shards (row-major, forward before reverse) until
    /// `budget` bytes are used. Returns the bytes actually cached.
    ///
    /// The budget is charged in *resident* bytes
    /// ([`SubShardView::resident_bytes`]): a delta+varint (format v3)
    /// blob is 2-4× smaller on disk than the word buffer it inflates to
    /// in memory, so charging file lengths would silently blow the
    /// memory budget on compressed graphs. The file length still serves
    /// as a cheap pre-read filter — for raw blobs it *is* the resident
    /// size, so the filter stops before a wasted read; it can only ever
    /// stop early (never admit too much), since admission itself charges
    /// the real resident size.
    ///
    /// The initial loads count as disk reads (they are the "initial load
    /// from disk" of §III-B1); subsequent `get`s of cached shards are free.
    pub fn plan_cache(&mut self, budget: u64, direction: Direction) -> EngineResult<u64> {
        let p = self.graph.num_intervals();
        'outer: for &reverse in Self::dirs(direction) {
            for i in 0..p {
                for j in 0..p {
                    let len = self.graph.subshard_len(i, j, reverse)?;
                    if self.cached_bytes + len > budget {
                        break 'outer;
                    }
                    let ss = Arc::new(self.graph.load_subshard_view(i, j, reverse)?);
                    let resident = ss.resident_bytes();
                    if self.cached_bytes + resident > budget {
                        // Inflated past the remaining budget: stream this
                        // cell (and the rest) instead of caching it.
                        break 'outer;
                    }
                    self.cache.insert((i, j, reverse), ss);
                    self.cached_bytes += resident;
                }
            }
        }
        Ok(self.cached_bytes)
    }

    /// Bytes held by the cache.
    pub fn cached_bytes(&self) -> u64 {
        self.cached_bytes
    }

    /// Number of cached sub-shards.
    pub fn cached_count(&self) -> usize {
        self.cache.len()
    }

    /// Fetch sub-shard `(i, j)`; cached copies are returned without I/O,
    /// an immediately repeated streamed key reuses the MRU slot, anything
    /// else streams from disk.
    pub fn get(&self, i: u32, j: u32, reverse: bool) -> EngineResult<Arc<SubShardView>> {
        let key = (i, j, reverse);
        if let Some(ss) = self.cache.get(&key) {
            return Ok(Arc::clone(ss));
        }
        let mut mru = self.mru.lock();
        if let Some((k, ss)) = mru.as_ref() {
            if *k == key {
                return Ok(Arc::clone(ss));
            }
        }
        let ss = Arc::new(self.graph.load_subshard_view(i, j, reverse)?);
        *mru = Some((key, Arc::clone(&ss)));
        Ok(ss)
    }

    /// The cached copy of `(i, j)`, if any — never touches the disk. Used
    /// by the prefetcher to decide which shards still need a background
    /// load.
    pub fn cached(&self, i: u32, j: u32, reverse: bool) -> Option<Arc<SubShardView>> {
        self.cache.get(&(i, j, reverse)).map(Arc::clone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::{preprocess, PrepConfig};
    use nxgraph_storage::{Disk, MemDisk};

    fn graph() -> PreparedGraph {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let edges: Vec<(u64, u64)> = crate::fig1_example_edges()
            .into_iter()
            .map(|(s, d)| (s as u64, d as u64))
            .collect();
        preprocess(&edges, &PrepConfig::new("fig1", 4), disk).unwrap()
    }

    #[test]
    fn plan_cache_charges_resident_bytes_for_compressed_shards() {
        use nxgraph_storage::EncodingPolicy;
        // A dense small-id graph compresses ~3-4×, so its inflated views
        // occupy far more memory than the files suggest. A budget equal
        // to the on-disk total must NOT admit every shard.
        let raw: Vec<(u64, u64)> = (0..4000u64).map(|k| (k % 61, k % 97)).collect();
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let cfg = PrepConfig::forward_only("dense", 4)
            .with_encoding(EncodingPolicy::Auto);
        let g = preprocess(&raw, &cfg, disk).unwrap();
        let disk_total = g.total_subshard_bytes().unwrap();
        // Sanity: compression actually kicked in for this fixture.
        let sample = g.load_subshard_view(0, 0, false).unwrap();
        assert!(sample.resident_bytes() > g.subshard_len(0, 0, false).unwrap());

        let mut store = ShardStore::new(&g);
        let cached = store.plan_cache(disk_total, Direction::Forward).unwrap();
        assert!(cached <= disk_total, "resident charge must respect the budget");
        assert!(
            store.cached_count() < 16,
            "a disk-sized budget cannot hold all inflated shards"
        );
        // A budget sized for the inflated views admits everything, and
        // the reported total is the resident sum, not the file sum.
        let resident_total: u64 = (0..4)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .map(|(i, j)| g.load_subshard_view(i, j, false).unwrap().resident_bytes())
            .sum();
        let mut store = ShardStore::new(&g);
        let cached = store.plan_cache(2 * resident_total, Direction::Forward).unwrap();
        assert_eq!(cached, resident_total);
        assert_eq!(store.cached_count(), 16);
    }

    #[test]
    fn zero_budget_streams_everything() {
        let g = graph();
        let mut store = ShardStore::new(&g);
        assert_eq!(store.plan_cache(0, Direction::Forward).unwrap(), 0);
        let before = g.disk().counters().read_bytes();
        store.get(2, 1, false).unwrap();
        assert!(g.disk().counters().read_bytes() > before);
    }

    #[test]
    fn full_budget_caches_everything_and_gets_are_free() {
        let g = graph();
        let mut store = ShardStore::new(&g);
        let cached = store.plan_cache(u64::MAX, Direction::Forward).unwrap();
        assert_eq!(cached, g.total_subshard_bytes().unwrap());
        assert_eq!(store.cached_count(), 16);
        let before = g.disk().counters().read_bytes();
        for i in 0..4 {
            for j in 0..4 {
                store.get(i, j, false).unwrap();
            }
        }
        assert_eq!(g.disk().counters().read_bytes(), before);
    }

    #[test]
    fn partial_budget_caches_prefix() {
        let g = graph();
        let total = g.total_subshard_bytes().unwrap();
        let mut store = ShardStore::new(&g);
        let cached = store.plan_cache(total / 2, Direction::Forward).unwrap();
        assert!(cached <= total / 2);
        assert!(store.cached_count() > 0);
        assert!(store.cached_count() < 16);
    }

    #[test]
    fn both_directions_cached_in_order() {
        let g = graph();
        let mut store = ShardStore::new(&g);
        store.plan_cache(u64::MAX, Direction::Both).unwrap();
        assert_eq!(store.cached_count(), 32);
        // Reverse shard served from cache.
        let before = g.disk().counters().read_bytes();
        store.get(0, 0, true).unwrap();
        assert_eq!(g.disk().counters().read_bytes(), before);
    }

    #[test]
    fn cached_gets_return_the_same_arc() {
        let g = graph();
        let mut store = ShardStore::new(&g);
        store.plan_cache(u64::MAX, Direction::Forward).unwrap();
        let a = store.get(1, 2, false).unwrap();
        let b = store.get(1, 2, false).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "cache must hand out one allocation");
        assert!(Arc::ptr_eq(&a, &store.cached(1, 2, false).unwrap()));
    }

    #[test]
    fn mru_reuses_repeated_streamed_gets_without_io() {
        let g = graph();
        let store = ShardStore::new(&g); // zero budget: everything streams
        let a = store.get(2, 1, false).unwrap();
        let before = g.disk().counters().read_bytes();
        let b = store.get(2, 1, false).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "repeat must come from the MRU slot");
        assert_eq!(g.disk().counters().read_bytes(), before, "no re-read");
        // A different key evicts the slot and streams.
        let c = store.get(2, 2, false).unwrap();
        assert!(g.disk().counters().read_bytes() > before);
        let c2 = store.get(2, 2, false).unwrap();
        assert!(Arc::ptr_eq(&c, &c2));
        // The original key now streams again (single slot only).
        let a2 = store.get(2, 1, false).unwrap();
        assert!(!Arc::ptr_eq(&a, &a2));
        assert_eq!(*a, *a2);
    }

    #[test]
    fn streamed_shard_equals_cached_shard() {
        let g = graph();
        let mut cached_store = ShardStore::new(&g);
        cached_store.plan_cache(u64::MAX, Direction::Forward).unwrap();
        let streaming = ShardStore::new(&g);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(
                    *cached_store.get(i, j, false).unwrap(),
                    *streaming.get(i, j, false).unwrap()
                );
            }
        }
    }
}
