//! The NXgraph update engines.
//!
//! [`run`] is the single entry point: it resolves the update strategy from
//! the memory budget (§III-B: SPU when two copies of every interval fit,
//! DPU when none do, MPU in between), executes Algorithm 1 with the chosen
//! engine, and reports wall time, iteration count and byte-exact I/O.

pub mod dpu;
pub mod iosched;
pub mod kernel;
pub mod mpu;
pub mod prefetch;
pub mod select;
pub mod spu;
pub mod state;
pub mod store;

use std::time::{Duration, Instant};

use nxgraph_storage::IoSnapshot;

use crate::dsss::PreparedGraph;
use crate::error::{EngineError, EngineResult};
use crate::program::{Direction, VertexProgram};
use crate::types::Attr;

pub use iosched::{IoClient, IoSession};
pub use prefetch::{JobStream, Prefetcher};
pub use select::choose_strategy;
pub use state::{finalize_interval, AccBuf};
pub use store::ShardStore;

/// Update strategy (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Pick automatically from the memory budget (MPU semantics: "NXgraph
    /// uses MPU by default", degrading to SPU/DPU at the extremes).
    Auto,
    /// Single-Phase Update: all intervals ping-pong in memory.
    Spu,
    /// Double-Phase Update: fully disk-resident, hub-mediated.
    Dpu,
    /// Mixed-Phase Update: `Q` resident intervals, hubs for the rest.
    Mpu,
}

/// Synchronisation mechanism between worker threads (§IV preamble: the
/// callback-signal and interval-lock implementations; "either one can
/// always outperform the other" depending on workload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncMode {
    /// Fine-grained destination-chunk tasks, completion via the pool —
    /// lock-free on the data path.
    Callback,
    /// One task per sub-shard guarded by a per-interval lock.
    Lock,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Memory budget in bytes (`B_M`). Governs strategy selection, interval
    /// residency and sub-shard caching.
    pub memory_budget: u64,
    /// Update strategy; `Auto` derives SPU/MPU/DPU from the budget.
    pub strategy: Strategy,
    /// Thread synchronisation flavour.
    pub sync: SyncMode,
    /// Hard iteration cap (PageRank in the paper runs a fixed 10).
    pub max_iterations: usize,
    /// Edge direction the program consumes.
    pub direction: Direction,
    /// Fine-grained task granularity: target edges per chunk task
    /// ("several thousands of edges", §III-D).
    pub edges_per_task: usize,
    /// Background prefetch of the next sub-shard/hub while the kernel
    /// works on the current one (DPU ToHub/FromHub and SPU's streamed
    /// rows), using [`decode_workers`](Self::decode_workers) decode
    /// threads. Results and I/O totals are identical either way — only
    /// latency changes. Defaults to on exactly when the *effective*
    /// thread count exceeds one (on a forced single-thread run the
    /// background decoder would only add context switches);
    /// [`with_threads`](Self::with_threads) re-derives it.
    pub prefetch: bool,
    /// Route each iteration's sub-shard/hub reads through the
    /// [`iosched`] I/O thread: batched, layout-ordered submissions per
    /// window of the access plan instead of decode-paced single reads.
    /// Delivery order is unchanged, so results are bitwise-identical with
    /// the scheduler on or off. Off by default (it adds a thread; it pays
    /// off when the disk, not decode, is the bottleneck).
    pub io_scheduler: bool,
    /// Plan entries per scheduler issue window (clamped to at least
    /// [`iosched::MIN_QUEUE_DEPTH`]); larger windows mean longer
    /// sequential read batches but more parked memory.
    pub io_queue_depth: usize,
    /// Hung-I/O watchdog deadline for scheduled reads: how long a decode
    /// job waits on the reorder buffer before the wait converts into a
    /// typed `StorageError::Stalled` and the iteration cancels cleanly.
    /// `None` (the default) waits forever. Only effective with
    /// [`io_scheduler`](Self::io_scheduler) on — unscheduled blocking
    /// reads have no cancellation point.
    pub io_deadline: Option<Duration>,
}

/// `NXGRAPH_THREADS` environment override for the default thread count
/// (used by CI to exercise the whole suite at a fixed parallelism).
/// Ignored when unset, empty, unparsable or zero.
fn env_threads() -> Option<usize> {
    std::env::var("NXGRAPH_THREADS")
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&t| t >= 1)
}

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

impl Default for EngineConfig {
    fn default() -> Self {
        let threads = env_threads().unwrap_or_else(host_threads);
        Self {
            threads,
            memory_budget: u64::MAX,
            strategy: Strategy::Auto,
            sync: SyncMode::Callback,
            max_iterations: 50,
            direction: Direction::Forward,
            edges_per_task: 8192,
            prefetch: threads > 1,
            io_scheduler: false,
            io_queue_depth: iosched::DEFAULT_QUEUE_DEPTH,
            io_deadline: None,
        }
    }
}

impl EngineConfig {
    /// Builder-style thread override. Re-derives the `prefetch` default
    /// from the *effective* thread count (a forced `with_threads(1)` run
    /// must not spawn background decoders); chain
    /// [`with_prefetch`](Self::with_prefetch) *after* this to force the
    /// setting either way.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self.prefetch = self.threads > 1;
        self
    }

    /// How many background decode workers the prefetcher gets: one per
    /// engine thread, capped at four (the consumer folds results serially
    /// per row, so a wider decode fan-out only buys queue depth).
    pub fn decode_workers(&self) -> usize {
        self.threads.clamp(1, 4)
    }

    /// Builder-style budget override.
    pub fn with_budget(mut self, bytes: u64) -> Self {
        self.memory_budget = bytes;
        self
    }

    /// Builder-style strategy override.
    pub fn with_strategy(mut self, s: Strategy) -> Self {
        self.strategy = s;
        self
    }

    /// Builder-style sync override.
    pub fn with_sync(mut self, s: SyncMode) -> Self {
        self.sync = s;
        self
    }

    /// Builder-style iteration cap.
    pub fn with_max_iterations(mut self, iters: usize) -> Self {
        self.max_iterations = iters;
        self
    }

    /// Builder-style direction override.
    pub fn with_direction(mut self, d: Direction) -> Self {
        self.direction = d;
        self
    }

    /// Builder-style prefetch override.
    pub fn with_prefetch(mut self, prefetch: bool) -> Self {
        self.prefetch = prefetch;
        self
    }

    /// Builder-style I/O scheduler toggle.
    pub fn with_io_scheduler(mut self, on: bool) -> Self {
        self.io_scheduler = on;
        self
    }

    /// Builder-style scheduler window size (clamped to at least
    /// [`iosched::MIN_QUEUE_DEPTH`]).
    pub fn with_io_queue_depth(mut self, depth: usize) -> Self {
        self.io_queue_depth = depth.max(iosched::MIN_QUEUE_DEPTH);
        self
    }

    /// Builder-style hung-I/O watchdog deadline (scheduled reads only;
    /// `None` disables the watchdog).
    pub fn with_io_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.io_deadline = deadline;
        self
    }
}

/// Execution report for one engine run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// The strategy actually executed (never `Auto`).
    pub strategy: Strategy,
    /// Iterations performed.
    pub iterations: usize,
    /// Wall-clock time of the traversal (excludes preprocessing).
    pub elapsed: Duration,
    /// Disk traffic during the run (byte-exact).
    pub io: IoSnapshot,
    /// Total edges folded by `absorb` across all iterations.
    pub edges_traversed: u64,
}

impl RunStats {
    /// Million traversed edges per second — the paper's Fig 11 metric.
    pub fn mteps(&self) -> f64 {
        if self.elapsed.is_zero() {
            return 0.0;
        }
        self.edges_traversed as f64 / 1e6 / self.elapsed.as_secs_f64()
    }
}

/// Run `prog` over `graph` to completion (convergence or the iteration
/// cap) and return the final per-vertex values plus statistics.
pub fn run<P: VertexProgram>(
    graph: &PreparedGraph,
    prog: &P,
    cfg: &EngineConfig,
) -> EngineResult<(Vec<P::Value>, RunStats)> {
    if cfg.direction != Direction::Forward && !graph.has_reverse() {
        return Err(EngineError::Invalid(
            "program needs reverse sub-shards; preprocess with build_reverse".into(),
        ));
    }
    if cfg.max_iterations == 0 {
        return Err(EngineError::Invalid("max_iterations must be positive".into()));
    }
    let strategy = match cfg.strategy {
        Strategy::Auto => {
            choose_strategy(
                graph.num_vertices() as u64,
                graph.num_intervals(),
                P::Value::SIZE,
                cfg.memory_budget,
            )
            .0
        }
        s => s,
    };
    let start_io = graph.disk().counters().snapshot();
    let start = Instant::now();
    let (values, iterations, edges) = match strategy {
        Strategy::Spu => spu::run_spu(graph, prog, cfg)?,
        Strategy::Dpu => dpu::run_dpu(graph, prog, cfg)?,
        Strategy::Mpu => mpu::run_mpu(graph, prog, cfg)?,
        Strategy::Auto => unreachable!("resolved above"),
    };
    let elapsed = start.elapsed();
    let io = graph.disk().counters().snapshot().delta(&start_io);
    Ok((
        values,
        RunStats {
            strategy,
            iterations,
            elapsed,
            io,
            edges_traversed: edges,
        },
    ))
}

/// Shared per-iteration bookkeeping: interval activity (§II-B).
pub(crate) struct Activity {
    /// Active flag per interval.
    pub active: Vec<bool>,
    /// Whether the program ever deactivates intervals (monotone programs
    /// only; global recompute programs keep everything active).
    pub tracks: bool,
}

impl Activity {
    /// Initial activity from the program's `initially_active`.
    pub fn init<P: VertexProgram>(graph: &PreparedGraph, prog: &P) -> Self {
        let p = graph.num_intervals();
        let tracks = !P::ALWAYS_APPLY;
        let mut active = vec![false; p as usize];
        for j in 0..p {
            let r = graph.interval_range(j);
            active[j as usize] =
                !tracks || r.clone().any(|v| prog.initially_active(v));
        }
        Self { active, tracks }
    }

    /// Whether source row `i` may be skipped this iteration.
    pub fn row_skippable(&self, i: u32) -> bool {
        self.tracks && !self.active[i as usize]
    }

    /// Install the next iteration's flags; returns `true` when every
    /// interval went inactive (global termination for monotone programs).
    pub fn advance(&mut self, changed: &[bool]) -> bool {
        if !self.tracks {
            return false;
        }
        for (a, &c) in self.active.iter_mut().zip(changed) {
            *a = c;
        }
        self.active.iter().all(|&a| !a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = EngineConfig::default();
        assert!(cfg.threads >= 1);
        assert_eq!(cfg.strategy, Strategy::Auto);
        assert_eq!(cfg.sync, SyncMode::Callback);
        assert!(cfg.edges_per_task > 0);
        // Prefetch defaults on exactly when the effective thread count
        // (NXGRAPH_THREADS override, else host parallelism) exceeds one.
        assert_eq!(cfg.threads, env_threads().unwrap_or_else(host_threads));
        assert_eq!(cfg.prefetch, cfg.threads > 1);
    }

    #[test]
    fn with_threads_rederives_prefetch() {
        // Regression: a forced single-thread run used to keep the
        // host-derived prefetch default and still spawn the decode thread.
        let cfg = EngineConfig::default().with_prefetch(true).with_threads(1);
        assert!(!cfg.prefetch, "threads=1 must disable prefetch by default");
        let cfg = EngineConfig::default().with_threads(4);
        assert!(cfg.prefetch, "multi-thread runs default prefetch on");
        // An explicit override *after* the thread override still wins.
        let cfg = EngineConfig::default().with_threads(1).with_prefetch(true);
        assert!(cfg.prefetch);
        let cfg = EngineConfig::default().with_threads(8).with_prefetch(false);
        assert!(!cfg.prefetch);
    }

    #[test]
    fn decode_workers_track_threads() {
        assert_eq!(EngineConfig::default().with_threads(1).decode_workers(), 1);
        assert_eq!(EngineConfig::default().with_threads(3).decode_workers(), 3);
        // Capped: a huge thread count does not explode the decode pool.
        assert_eq!(EngineConfig::default().with_threads(64).decode_workers(), 4);
    }

    #[test]
    fn builder_chains() {
        let cfg = EngineConfig::default()
            .with_threads(2)
            .with_budget(1024)
            .with_strategy(Strategy::Dpu)
            .with_sync(SyncMode::Lock)
            .with_max_iterations(7)
            .with_direction(Direction::Both)
            .with_prefetch(false)
            .with_io_scheduler(true)
            .with_io_queue_depth(32);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.memory_budget, 1024);
        assert_eq!(cfg.strategy, Strategy::Dpu);
        assert_eq!(cfg.sync, SyncMode::Lock);
        assert_eq!(cfg.max_iterations, 7);
        assert_eq!(cfg.direction, Direction::Both);
        assert!(!cfg.prefetch);
        assert!(cfg.io_scheduler);
        assert_eq!(cfg.io_queue_depth, 32);
    }

    #[test]
    fn io_scheduler_defaults_off_and_depth_is_clamped() {
        let cfg = EngineConfig::default();
        assert!(!cfg.io_scheduler);
        assert_eq!(cfg.io_queue_depth, iosched::DEFAULT_QUEUE_DEPTH);
        // A degenerate depth cannot undercut the deadlock-safety floor.
        let cfg = cfg.with_io_queue_depth(1);
        assert_eq!(cfg.io_queue_depth, iosched::MIN_QUEUE_DEPTH);
    }

    #[test]
    fn mteps_math() {
        let stats = RunStats {
            strategy: Strategy::Spu,
            iterations: 2,
            elapsed: Duration::from_secs(2),
            io: IoSnapshot::default(),
            edges_traversed: 4_000_000,
        };
        assert!((stats.mteps() - 2.0).abs() < 1e-12);
    }
}
