//! Double-Phase Update (§III-B2).
//!
//! Fully disk-based: intervals are loaded only when accessed, and every
//! sub-shard streams from disk. Consistency across the two phases is
//! mediated by **hubs** — per-sub-shard files of (destination id,
//! incremental value) pairs:
//!
//! * **ToHub** iterates sub-shards *by row*, loading each source interval
//!   once per iteration, computing each sub-shard's incremental
//!   contributions and writing them to its hub.
//! * **FromHub** iterates *by column*, folding the column's hubs into the
//!   destination interval and writing it back once per iteration.
//!
//! Per iteration: `Bread ≤ m·Be + n·Ba + m·(Ba+Bv)/d`,
//! `Bwrite ≤ n·Ba + m·(Ba+Bv)/d` — independent of `P` and the budget, so
//! DPU "can scale to very large graphs or very small memory budget".

use std::sync::Arc;

use crate::dsss::{HubView, PreparedGraph, SubShardView};
use crate::error::EngineResult;
use crate::program::VertexProgram;
use crate::types::VertexId;

use super::iosched::IoSession;
use super::kernel::absorb_single;
use super::prefetch::{JobStream, Jobs, Prefetcher};
use super::state::{finalize_interval_par, AccBuf};
use super::store::ShardStore;
use super::{Activity, EngineConfig};

/// Run to convergence under DPU. Returns (values, iterations, edges
/// traversed).
pub fn run_dpu<P: VertexProgram>(
    g: &PreparedGraph,
    prog: &P,
    cfg: &EngineConfig,
) -> EngineResult<(Vec<P::Value>, usize, u64)> {
    let p = g.num_intervals();

    // Initialise interval files on disk.
    for j in 0..p {
        let r = g.interval_range(j);
        let vals: Vec<P::Value> = r.map(|v| prog.init(v)).collect();
        g.write_interval(j, &vals)?;
    }
    let mut activity = Activity::init(g, prog);

    // One background decode thread for the whole run; each row/column
    // below drives it through its own ordered JobStream.
    let prefetcher = cfg
        .prefetch
        .then(|| Prefetcher::with_workers(cfg.decode_workers()));

    let mut iterations = 0;
    let mut edges_traversed = 0u64;

    for _ in 0..cfg.max_iterations {
        iterations += 1;

        // ------------------------------------------------------------------
        // ToHub phase: rows. Load interval i once, write hubs H(i→*); the
        // prefetcher decodes sub-shard (i, j+1) while (i, j) is absorbed.
        // ------------------------------------------------------------------
        for i in 0..p {
            if activity.row_skippable(i) {
                continue;
            }
            let src_vals: Vec<P::Value> = g.read_interval(i)?;
            let r_i = g.interval_range(i);
            let keys: Vec<(u32, bool)> = (0..p)
                .flat_map(|j| {
                    ShardStore::dirs(cfg.direction).iter().map(move |&reverse| (j, reverse))
                })
                .collect();
            // With the I/O scheduler on, the row becomes one access plan
            // whose reads a dedicated I/O thread issues in batched layout
            // order; delivery order (and so every fold) is unchanged.
            let session = cfg.io_scheduler.then(|| {
                let loader = g.view_loader();
                let plan = keys
                    .iter()
                    .map(|&(j, rev)| loader.subshard_part_names(i, j, rev))
                    .collect();
                IoSession::start(
                    Arc::clone(loader.disk()),
                    Arc::clone(loader.pool()),
                    plan,
                    cfg.io_queue_depth,
                    loader.retry_policy(),
                    cfg.io_deadline,
                )
            });
            let mut jobs: Jobs<EngineResult<SubShardView>> = Vec::with_capacity(keys.len());
            for (seq, &(j, reverse)) in keys.iter().enumerate() {
                let loader = g.view_loader();
                match session.as_ref().map(IoSession::client) {
                    Some(client) => jobs.push(Box::new(move || {
                        let names = loader.subshard_part_names(i, j, reverse);
                        loader.decode_subshard(i, j, &names, client.take(seq))
                    })),
                    None => jobs.push(Box::new(move || loader.load_subshard(i, j, reverse))),
                }
            }
            let mut stream = JobStream::new(prefetcher.as_ref(), jobs);
            for j in 0..p {
                let r_j = g.interval_range(j);
                let mut buf: AccBuf<P> =
                    AccBuf::new(prog, r_j.start, (r_j.end - r_j.start) as usize);
                for _ in ShardStore::dirs(cfg.direction) {
                    let ss = Arc::new(stream.next().expect("one job per (j, dir)")?);
                    edges_traversed += ss.num_edges() as u64;
                    absorb_single(
                        prog,
                        &ss,
                        &src_vals,
                        r_i.start,
                        &mut buf,
                        cfg.threads,
                        cfg.edges_per_task,
                    );
                }
                let (dsts, accs) = buf.compact();
                if !dsts.is_empty() {
                    g.write_hub(i, j, &dsts, &accs)?;
                }
            }
        }

        // ------------------------------------------------------------------
        // FromHub phase: columns. Fold hubs H(*→j), apply, write interval;
        // the prefetcher decodes hub (i+1, j) while (i, j) merges.
        // ------------------------------------------------------------------
        let mut changed = vec![false; p as usize];
        let mut any_changed = false;
        for j in 0..p {
            let r_j = g.interval_range(j);
            let len = (r_j.end - r_j.start) as usize;
            // PageRank-style programs never read the old value in apply, so
            // FromHub skips the extra n·Ba read (matching Table II);
            // monotone programs (BFS/WCC) need it.
            let old: Vec<P::Value> = if P::APPLY_NEEDS_OLD {
                g.read_interval(j)?
            } else {
                r_j.clone().map(|v| prog.init(v)).collect()
            };
            let mut buf: AccBuf<P> = AccBuf::new(prog, r_j.start, len);
            type Hub<P> = Option<HubView<<P as VertexProgram>::Accum>>;
            // Hubs are stable within the phase (written in ToHub, removed
            // only after this column folds), so planning by name up-front
            // sees exactly the hubs the jobs will read. Absent hubs become
            // empty plan entries the scheduler parks immediately.
            let session = cfg.io_scheduler.then(|| {
                let loader = g.view_loader();
                let plan = (0..p)
                    .map(|i| loader.hub_part_name(i, j).map(|n| vec![n]).unwrap_or_default())
                    .collect();
                IoSession::start(
                    Arc::clone(loader.disk()),
                    Arc::clone(loader.pool()),
                    plan,
                    cfg.io_queue_depth,
                    loader.retry_policy(),
                    cfg.io_deadline,
                )
            });
            let mut jobs: Jobs<EngineResult<Hub<P>>> = Vec::with_capacity(p as usize);
            for (seq, i) in (0..p).enumerate() {
                let loader = g.view_loader();
                match session.as_ref().map(IoSession::client) {
                    Some(client) => jobs.push(Box::new(move || {
                        match loader.hub_part_name(i, j) {
                            Some(name) => {
                                let mut bytes = client.take(seq);
                                let b = bytes.pop().expect("one part per hub plan")?;
                                loader.decode_hub::<P::Accum>(&name, b).map(Some)
                            }
                            None => {
                                // Nothing planned for this seq; still take
                                // it so the scheduler frontier advances.
                                client.take(seq);
                                Ok(None)
                            }
                        }
                    })),
                    None => jobs.push(Box::new(move || loader.read_hub::<P::Accum>(i, j))),
                }
            }
            let mut stream = JobStream::new(prefetcher.as_ref(), jobs);
            // Collect the column's hubs in row order, then fold them as
            // one destination-range-parallel batch — per-slot merge order
            // stays the row order, so the result is bitwise-identical to
            // the serial fold. Hubs are sparse (m·(Ba+Bv)/d per column in
            // Table II terms), so holding one column's worth is cheap.
            let mut hubs: Vec<HubView<P::Accum>> = Vec::new();
            let mut hub_rows: Vec<u32> = Vec::new();
            for i in 0..p {
                if let Some(hub) = stream.next().expect("one job per row")? {
                    hubs.push(hub);
                    hub_rows.push(i);
                }
            }
            buf.merge_hub_views_par(prog, &hubs, cfg.threads);
            drop(hubs);
            for i in hub_rows {
                g.remove_hub(i, j);
            }
            let mut new_vals = old.clone();
            let ch = finalize_interval_par(prog, &buf, &old, &mut new_vals, cfg.threads);
            g.write_interval(j, &new_vals)?;
            changed[j as usize] = ch;
            any_changed |= ch;
        }

        let all_inactive = activity.advance(&changed);
        let done = if P::ALWAYS_APPLY {
            // Without real old values the change flags are meaningless;
            // run the configured iteration count (the paper also runs
            // PageRank for a fixed 10 iterations).
            P::APPLY_NEEDS_OLD && !any_changed
        } else {
            all_inactive
        };
        if done {
            break;
        }
    }

    // Gather output (the paper's final traversal over intervals).
    let mut out: Vec<P::Value> = Vec::with_capacity(g.num_vertices() as usize);
    for j in 0..p {
        out.extend(g.read_interval::<P::Value>(j)?);
    }
    Ok((out, iterations, edges_traversed))
}

const _: fn(VertexId) = |_| {};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::pagerank::PageRank;
    use crate::engine::spu::run_spu;
    use crate::prep::{preprocess, PrepConfig};
    use nxgraph_storage::{Disk, MemDisk};

    fn graph(p: u32) -> PreparedGraph {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let edges: Vec<(u64, u64)> = crate::fig1_example_edges()
            .into_iter()
            .map(|(s, d)| (s as u64, d as u64))
            .collect();
        preprocess(&edges, &PrepConfig::new("fig1", p), disk).unwrap()
    }

    #[test]
    fn dpu_equals_spu_for_pagerank() {
        for p in [1u32, 3, 4] {
            let g = graph(p);
            let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
            let cfg = EngineConfig::default().with_max_iterations(6);
            let (dpu_vals, dpu_iters, dpu_edges) = run_dpu(&g, &prog, &cfg).unwrap();
            let (spu_vals, spu_iters, spu_edges) = run_spu(&g, &prog, &cfg).unwrap();
            assert_eq!(dpu_iters, spu_iters);
            assert_eq!(dpu_edges, spu_edges);
            for (a, b) in dpu_vals.iter().zip(&spu_vals) {
                assert!((a - b).abs() < 1e-12, "P={p}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn io_scheduler_is_bitwise_identical() {
        let g = graph(4);
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let base = EngineConfig::default().with_max_iterations(6);
        let (off, ..) = run_dpu(&g, &prog, &base).unwrap();
        let (on, ..) =
            run_dpu(&g, &prog, &base.clone().with_io_scheduler(true)).unwrap();
        assert_eq!(off.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                   on.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn dpu_writes_and_consumes_hubs() {
        let g = graph(4);
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let cfg = EngineConfig::default().with_max_iterations(1);
        run_dpu(&g, &prog, &cfg).unwrap();
        // All hubs consumed and removed by FromHub.
        for i in 0..4 {
            for j in 0..4 {
                assert!(g.read_hub::<f64>(i, j).unwrap().is_none());
            }
        }
        // Interval traffic happened.
        let io = g.disk().counters().snapshot();
        assert!(io.written_bytes > 0);
        assert!(io.read_bytes > 0);
    }
}
