//! Double-buffered background prefetch for the disk-streaming engines.
//!
//! The DPU ToHub/FromHub passes, SPU's streaming path and MPU's phase B
//! rows / phase C shard+hub columns consume one file after another in a
//! deterministic order, decoding each synchronously between compute
//! steps. [`Prefetcher`] moves that deserialization onto a single
//! background thread with a two-slot ring: while the kernel folds the
//! current sub-shard, the worker is already reading and decoding the
//! next one, hiding I/O and decode latency behind compute.
//!
//! The design is std-only: a worker thread plus two bounded
//! [`std::sync::mpsc::sync_channel`]s (jobs in, results out), each of
//! [`RING_SLOTS`] capacity, which bounds decoded-ahead memory to the ring
//! depth. Results come back strictly in submission order — [`JobStream`]
//! enforces the submit-ahead/pop-in-order discipline and is the only
//! intended way to drive a [`Prefetcher`].
//!
//! Prefetching reorders *when* files are read relative to compute, never
//! *what* is read or the values computed from it, so `prefetch: true` and
//! `prefetch: false` produce bitwise-identical results and byte-identical
//! I/O totals (`tests/pipeline.rs` pins this across the oracle matrix).

use std::any::Any;
use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

/// Depth of the prefetch ring: how many results may be decoded ahead of
/// the consumer.
pub const RING_SLOTS: usize = 2;

/// Type-erased unit of background work.
type Job = Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>;

/// An ordered list of loader jobs for one [`JobStream`].
pub type Jobs<T> = Vec<Box<dyn FnOnce() -> T + Send>>;

/// A single background worker decoding jobs ahead of the engine loop.
///
/// At most one [`JobStream`] may drive a `Prefetcher` at a time (results
/// are matched to submissions purely by order).
pub struct Prefetcher {
    jobs: Option<SyncSender<Job>>,
    results: Receiver<Box<dyn Any + Send>>,
    worker: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawn the background worker.
    pub fn new() -> Self {
        let (jobs_tx, jobs_rx) = sync_channel::<Job>(RING_SLOTS);
        let (results_tx, results_rx) = sync_channel::<Box<dyn Any + Send>>(RING_SLOTS);
        let worker = std::thread::Builder::new()
            .name("nxgraph-prefetch".into())
            .spawn(move || {
                while let Ok(job) = jobs_rx.recv() {
                    if results_tx.send(job()).is_err() {
                        break;
                    }
                }
            })
            .expect("failed to spawn prefetch worker");
        Self {
            jobs: Some(jobs_tx),
            results: results_rx,
            worker: Some(worker),
        }
    }

    /// Queue `f` on the worker. Blocks when [`RING_SLOTS`] jobs are
    /// already waiting (the ring's back-pressure).
    fn submit<T, F>(&self, f: F)
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.jobs
            .as_ref()
            .expect("prefetcher already shut down")
            .send(Box::new(move || Box::new(f()) as Box<dyn Any + Send>))
            .expect("prefetch worker died");
    }

    /// Receive the oldest outstanding result, which must have been
    /// submitted with the same `T`.
    fn pop<T: Send + 'static>(&self) -> T {
        *self
            .results
            .recv()
            .expect("prefetch worker died")
            .downcast::<T>()
            .expect("prefetch result popped out of submission order")
    }

    /// Discard the oldest outstanding result regardless of type (early
    /// stream teardown on error paths).
    fn discard(&self) {
        let _ = self.results.recv();
    }
}

impl Default for Prefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        // Close the job channel, drain whatever the worker still produces,
        // then join it.
        self.jobs.take();
        while self.results.recv().is_ok() {}
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
    }
}

/// An ordered stream of jobs, executed ahead on a [`Prefetcher`] when one
/// is supplied, inline otherwise.
///
/// With a prefetcher, up to [`RING_SLOTS`] jobs run ahead of the consumer;
/// [`JobStream::next`] pops the oldest result and immediately tops the
/// ring back up, keeping the worker busy while the caller computes.
/// Without one (`prefetch: false`), each job runs inline at `next`,
/// reproducing strictly synchronous behaviour.
pub struct JobStream<'p, T> {
    prefetcher: Option<&'p Prefetcher>,
    pending: VecDeque<Box<dyn FnOnce() -> T + Send>>,
    in_flight: usize,
}

impl<'p, T: Send + 'static> JobStream<'p, T> {
    /// Build a stream over `jobs`, priming the ring when prefetching.
    pub fn new(prefetcher: Option<&'p Prefetcher>, jobs: Jobs<T>) -> Self {
        let mut s = Self {
            prefetcher,
            pending: jobs.into(),
            in_flight: 0,
        };
        s.fill();
        s
    }

    fn fill(&mut self) {
        if let Some(pf) = self.prefetcher {
            while self.in_flight < RING_SLOTS {
                let Some(job) = self.pending.pop_front() else {
                    break;
                };
                pf.submit(job);
                self.in_flight += 1;
            }
        }
    }
}

impl<T: Send + 'static> Iterator for JobStream<'_, T> {
    type Item = T;

    /// The next job's result, in submission order.
    fn next(&mut self) -> Option<T> {
        match self.prefetcher {
            Some(pf) if self.in_flight > 0 => {
                let t = pf.pop::<T>();
                self.in_flight -= 1;
                self.fill();
                Some(t)
            }
            Some(_) => None,
            None => self.pending.pop_front().map(|job| job()),
        }
    }
}

impl<T> Drop for JobStream<'_, T> {
    fn drop(&mut self) {
        // Abandoned mid-stream (error propagation): flush outstanding
        // results so the next stream's pops stay aligned with its submits.
        if let Some(pf) = self.prefetcher {
            for _ in 0..self.in_flight {
                pf.discard();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn jobs_returning(values: Vec<u32>) -> Vec<Box<dyn FnOnce() -> u32 + Send>> {
        values
            .into_iter()
            .map(|v| Box::new(move || v) as Box<dyn FnOnce() -> u32 + Send>)
            .collect()
    }

    #[test]
    fn inline_stream_preserves_order() {
        let mut s = JobStream::new(None, jobs_returning((0..10).collect()));
        for want in 0..10 {
            assert_eq!(s.next(), Some(want));
        }
        assert_eq!(s.next(), None);
    }

    #[test]
    fn prefetched_stream_preserves_order() {
        let pf = Prefetcher::new();
        let mut s = JobStream::new(Some(&pf), jobs_returning((0..57).collect()));
        for want in 0..57 {
            assert_eq!(s.next(), Some(want));
        }
        assert_eq!(s.next(), None);
    }

    #[test]
    fn jobs_run_ahead_of_consumption() {
        let pf = Prefetcher::new();
        let started = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
            .map(|k| {
                let started = Arc::clone(&started);
                Box::new(move || {
                    started.fetch_add(1, Ordering::SeqCst);
                    k
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let mut s = JobStream::new(Some(&pf), jobs);
        // Without popping anything, the ring should eventually have run at
        // least one job in the background.
        for _ in 0..1000 {
            if started.load(Ordering::SeqCst) >= 1 {
                break;
            }
            std::thread::yield_now();
        }
        assert!(started.load(Ordering::SeqCst) >= 1, "no job ran ahead");
        assert_eq!(s.next(), Some(0));
    }

    #[test]
    fn sequential_streams_share_one_prefetcher() {
        let pf = Prefetcher::new();
        // Different result types back to back: ordering discipline keeps
        // the downcasts aligned.
        let mut a = JobStream::new(Some(&pf), jobs_returning(vec![7, 8]));
        assert_eq!(a.next(), Some(7));
        assert_eq!(a.next(), Some(8));
        drop(a);
        let jobs: Vec<Box<dyn FnOnce() -> String + Send>> =
            vec![Box::new(|| "x".to_string()), Box::new(|| "y".to_string())];
        let mut b = JobStream::new(Some(&pf), jobs);
        assert_eq!(b.next().as_deref(), Some("x"));
        assert_eq!(b.next().as_deref(), Some("y"));
    }

    #[test]
    fn abandoned_stream_drains_cleanly() {
        let pf = Prefetcher::new();
        {
            let mut s = JobStream::new(Some(&pf), jobs_returning((0..20).collect()));
            assert_eq!(s.next(), Some(0));
            // Drop with results still in flight.
        }
        // A fresh stream must still see its own results, not stale ones.
        let mut s = JobStream::new(Some(&pf), jobs_returning(vec![99]));
        assert_eq!(s.next(), Some(99));
    }

    #[test]
    fn drop_joins_worker() {
        let pf = Prefetcher::new();
        let mut s = JobStream::new(Some(&pf), jobs_returning(vec![1]));
        assert_eq!(s.next(), Some(1));
        drop(s);
        drop(pf); // must not hang
    }
}
