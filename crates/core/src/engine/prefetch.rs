//! Multi-worker background prefetch for the disk-streaming engines.
//!
//! The DPU ToHub/FromHub passes, SPU's streaming path and MPU's phase B
//! rows / phase C shard+hub columns consume one file after another in a
//! deterministic order, decoding each synchronously between compute
//! steps. [`Prefetcher`] moves that deserialization onto a pool of
//! background decode workers with a small ring of look-ahead slots: while
//! the kernel folds the current sub-shard, the workers are already
//! reading and decoding the next ones, hiding I/O and decode latency
//! behind compute.
//!
//! The design is std-only: `workers` decode threads share a job queue
//! tagged with submission sequence numbers; finished results land in a
//! reorder buffer keyed by the same sequence, so the consumer always
//! receives results **strictly in submission order** no matter which
//! worker finished first. [`JobStream`] enforces the
//! submit-ahead/pop-in-order discipline — it keeps at most
//! [`Prefetcher::slots`] jobs in flight (`workers + 1`, at least
//! [`RING_SLOTS`]), which bounds decoded-ahead memory to the ring depth —
//! and is the only intended way to drive a [`Prefetcher`].
//!
//! Prefetching reorders *when* files are read relative to compute, never
//! *what* is read or the values computed from it, so `prefetch: true` and
//! `prefetch: false` produce bitwise-identical results and byte-identical
//! I/O totals (`tests/pipeline.rs` pins this across the oracle matrix),
//! and the result does not depend on the worker count either.
//!
//! With the I/O scheduler on ([`super::iosched`]), jobs stop issuing their
//! own reads: a dedicated I/O thread reads each file per the iteration's
//! access plan and parks the raw bytes, and the job merely takes and
//! decodes them. The reorder buffer here still delivers results in
//! submission order, so scheduling composes with prefetch without
//! changing a single delivered byte.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// Minimum depth of the prefetch ring: how many results may be decoded
/// ahead of the consumer even with a single decode worker.
pub const RING_SLOTS: usize = 2;

/// Type-erased unit of background work.
type Job = Box<dyn FnOnce() -> Box<dyn Any + Send> + Send>;

/// A finished job: the value it produced, or the panic it raised.
type Outcome = Result<Box<dyn Any + Send>, Box<dyn Any + Send>>;

/// An ordered list of loader jobs for one [`JobStream`].
pub type Jobs<T> = Vec<Box<dyn FnOnce() -> T + Send>>;

struct State {
    /// Pending jobs, tagged with their submission sequence number.
    jobs: VecDeque<(u64, Job)>,
    /// Finished jobs awaiting in-order pickup (the reorder buffer).
    results: BTreeMap<u64, Outcome>,
    /// Sequence number of the next submission.
    next_submit: u64,
    /// Sequence number the consumer pops next.
    next_pop: u64,
    /// Set on drop; workers exit once the job queue drains.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for jobs.
    job_cv: Condvar,
    /// The consumer waits here for the next in-order result.
    result_cv: Condvar,
}

/// A pool of background decode workers feeding an in-order result stream.
///
/// At most one [`JobStream`] may drive a `Prefetcher` at a time (results
/// are matched to submissions purely by sequence number).
pub struct Prefetcher {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Prefetcher {
    /// Spawn a single decode worker (the minimal useful prefetcher).
    pub fn new() -> Self {
        Self::with_workers(1)
    }

    /// Spawn `workers` decode workers (at least one).
    pub fn with_workers(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                results: BTreeMap::new(),
                next_submit: 0,
                next_pop: 0,
                shutdown: false,
            }),
            job_cv: Condvar::new(),
            result_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name("nxgraph-prefetch".into())
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn prefetch worker")
            })
            .collect();
        Self {
            shared,
            workers: handles,
        }
    }

    /// How many jobs a [`JobStream`] keeps in flight on this prefetcher:
    /// one per decode worker plus one ready result, never less than
    /// [`RING_SLOTS`].
    pub fn slots(&self) -> usize {
        (self.workers.len() + 1).max(RING_SLOTS)
    }

    /// Queue `f` for background execution. Never blocks; the ring bound
    /// is enforced by [`JobStream`], the only intended caller.
    fn submit<T, F>(&self, f: F)
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let mut st = self.shared.state.lock();
        let seq = st.next_submit;
        st.next_submit += 1;
        st.jobs
            .push_back((seq, Box::new(move || Box::new(f()) as Box<dyn Any + Send>)));
        self.shared.job_cv.notify_one();
    }

    /// Receive the oldest outstanding result, which must have been
    /// submitted with the same `T`. A panic raised by the job resumes
    /// here, on the consumer.
    fn pop<T: Send + 'static>(&self) -> T {
        match self.pop_outcome() {
            Ok(boxed) => *boxed
                .downcast::<T>()
                .expect("prefetch result popped out of submission order"),
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Discard the oldest outstanding result regardless of type or panic
    /// (early stream teardown on error paths).
    fn discard(&self) {
        let _ = self.pop_outcome();
    }

    fn pop_outcome(&self) -> Outcome {
        let mut st = self.shared.state.lock();
        let seq = st.next_pop;
        loop {
            if let Some(out) = st.results.remove(&seq) {
                st.next_pop += 1;
                return out;
            }
            self.shared.result_cv.wait(&mut st);
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (seq, job) = {
            let mut st = shared.state.lock();
            loop {
                if let Some(j) = st.jobs.pop_front() {
                    break j;
                }
                if st.shutdown {
                    return;
                }
                shared.job_cv.wait(&mut st);
            }
        };
        let out = catch_unwind(AssertUnwindSafe(job));
        let mut st = shared.state.lock();
        st.results.insert(seq, out);
        shared.result_cv.notify_all();
    }
}

impl Default for Prefetcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        // Workers finish whatever is queued (a dropped JobStream has
        // already discarded its in-flight results), then exit.
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.job_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// An ordered stream of jobs, executed ahead on a [`Prefetcher`] when one
/// is supplied, inline otherwise.
///
/// With a prefetcher, up to [`Prefetcher::slots`] jobs run ahead of the
/// consumer; [`JobStream::next`] pops the oldest result and immediately
/// tops the ring back up, keeping the workers busy while the caller
/// computes. Without one (`prefetch: false`), each job runs inline at
/// `next`, reproducing strictly synchronous behaviour.
pub struct JobStream<'p, T> {
    prefetcher: Option<&'p Prefetcher>,
    pending: VecDeque<Box<dyn FnOnce() -> T + Send>>,
    in_flight: usize,
}

impl<'p, T: Send + 'static> JobStream<'p, T> {
    /// Build a stream over `jobs`, priming the ring when prefetching.
    pub fn new(prefetcher: Option<&'p Prefetcher>, jobs: Jobs<T>) -> Self {
        let mut s = Self {
            prefetcher,
            pending: jobs.into(),
            in_flight: 0,
        };
        s.fill();
        s
    }

    fn fill(&mut self) {
        if let Some(pf) = self.prefetcher {
            while self.in_flight < pf.slots() {
                let Some(job) = self.pending.pop_front() else {
                    break;
                };
                pf.submit(job);
                self.in_flight += 1;
            }
        }
    }
}

impl<T: Send + 'static> Iterator for JobStream<'_, T> {
    type Item = T;

    /// The next job's result, in submission order.
    fn next(&mut self) -> Option<T> {
        match self.prefetcher {
            Some(pf) if self.in_flight > 0 => {
                // Decrement before popping: a job panic resumes out of
                // `pop`, and Drop must not wait for this already-consumed
                // sequence number again.
                self.in_flight -= 1;
                let t = pf.pop::<T>();
                self.fill();
                Some(t)
            }
            Some(_) => None,
            None => self.pending.pop_front().map(|job| job()),
        }
    }
}

impl<T> Drop for JobStream<'_, T> {
    fn drop(&mut self) {
        // Abandoned mid-stream (error propagation): flush outstanding
        // results so the next stream's pops stay aligned with its submits.
        if let Some(pf) = self.prefetcher {
            for _ in 0..self.in_flight {
                pf.discard();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn jobs_returning(values: Vec<u32>) -> Vec<Box<dyn FnOnce() -> u32 + Send>> {
        values
            .into_iter()
            .map(|v| Box::new(move || v) as Box<dyn FnOnce() -> u32 + Send>)
            .collect()
    }

    #[test]
    fn inline_stream_preserves_order() {
        let mut s = JobStream::new(None, jobs_returning((0..10).collect()));
        for want in 0..10 {
            assert_eq!(s.next(), Some(want));
        }
        assert_eq!(s.next(), None);
    }

    #[test]
    fn prefetched_stream_preserves_order() {
        let pf = Prefetcher::new();
        let mut s = JobStream::new(Some(&pf), jobs_returning((0..57).collect()));
        for want in 0..57 {
            assert_eq!(s.next(), Some(want));
        }
        assert_eq!(s.next(), None);
    }

    #[test]
    fn multi_worker_stream_preserves_order() {
        // With several workers racing on a shared queue, jobs finish out
        // of order; the reorder buffer must still hand results back in
        // submission order.
        for workers in [2, 3, 4, 8] {
            let pf = Prefetcher::with_workers(workers);
            assert_eq!(pf.slots(), (workers + 1).max(RING_SLOTS));
            let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..97usize)
                .map(|k| {
                    Box::new(move || {
                        // Earlier jobs sleep longer so later ones finish
                        // first whenever the OS allows real overlap.
                        if k % 7 == 0 {
                            std::thread::sleep(std::time::Duration::from_micros(200));
                        }
                        k
                    }) as Box<dyn FnOnce() -> usize + Send>
                })
                .collect();
            let got: Vec<usize> = JobStream::new(Some(&pf), jobs).collect();
            assert_eq!(got, (0..97).collect::<Vec<_>>(), "workers = {workers}");
        }
    }

    #[test]
    fn jobs_run_ahead_of_consumption() {
        let pf = Prefetcher::new();
        let started = Arc::new(AtomicUsize::new(0));
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..4usize)
            .map(|k| {
                let started = Arc::clone(&started);
                Box::new(move || {
                    started.fetch_add(1, Ordering::SeqCst);
                    k
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let mut s = JobStream::new(Some(&pf), jobs);
        // Without popping anything, the ring should eventually have run at
        // least one job in the background.
        for _ in 0..1000 {
            if started.load(Ordering::SeqCst) >= 1 {
                break;
            }
            std::thread::yield_now();
        }
        assert!(started.load(Ordering::SeqCst) >= 1, "no job ran ahead");
        assert_eq!(s.next(), Some(0));
    }

    #[test]
    fn sequential_streams_share_one_prefetcher() {
        let pf = Prefetcher::with_workers(3);
        // Different result types back to back: ordering discipline keeps
        // the downcasts aligned.
        let mut a = JobStream::new(Some(&pf), jobs_returning(vec![7, 8]));
        assert_eq!(a.next(), Some(7));
        assert_eq!(a.next(), Some(8));
        drop(a);
        let jobs: Vec<Box<dyn FnOnce() -> String + Send>> =
            vec![Box::new(|| "x".to_string()), Box::new(|| "y".to_string())];
        let mut b = JobStream::new(Some(&pf), jobs);
        assert_eq!(b.next().as_deref(), Some("x"));
        assert_eq!(b.next().as_deref(), Some("y"));
    }

    #[test]
    fn abandoned_stream_drains_cleanly() {
        let pf = Prefetcher::with_workers(2);
        {
            let mut s = JobStream::new(Some(&pf), jobs_returning((0..20).collect()));
            assert_eq!(s.next(), Some(0));
            // Drop with results still in flight.
        }
        // A fresh stream must still see its own results, not stale ones.
        let mut s = JobStream::new(Some(&pf), jobs_returning(vec![99]));
        assert_eq!(s.next(), Some(99));
    }

    #[test]
    fn drop_joins_worker() {
        let pf = Prefetcher::with_workers(4);
        let mut s = JobStream::new(Some(&pf), jobs_returning(vec![1]));
        assert_eq!(s.next(), Some(1));
        drop(s);
        drop(pf); // must not hang
    }

    #[test]
    fn job_panic_reaches_consumer_and_pool_survives() {
        let pf = Prefetcher::with_workers(2);
        let jobs: Vec<Box<dyn FnOnce() -> u32 + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("decode failed")),
            Box::new(|| 3),
        ];
        let mut s = JobStream::new(Some(&pf), jobs);
        assert_eq!(s.next(), Some(1));
        let err = std::panic::catch_unwind(AssertUnwindSafe(|| s.next()));
        assert!(err.is_err(), "panic must surface on the consumer");
        drop(s);
        // The worker that ran the panicking job must still be alive.
        let mut t = JobStream::new(Some(&pf), jobs_returning(vec![42]));
        assert_eq!(t.next(), Some(42));
    }
}
