//! The per-sub-shard update kernel and its parallel task machinery
//! (§III-D: fine-grained parallelism in each Destination-Sorted Sub-Shard).
//!
//! Within a sub-shard, edges of one destination are contiguous, so slicing
//! the destination axis hands each worker an exclusive accumulator range —
//! "no thread locks or atomic operations are required to maintain
//! consistency". [`absorb_row`] builds those slices and runs them on the
//! worker pool ([`SyncMode::Callback`]); the coarse alternative locks whole
//! destination intervals ([`SyncMode::Lock`]).

use std::ops::Range;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::dsss::SubShardView;
use crate::parallel::run_tasks;
use crate::program::VertexProgram;
use crate::types::VertexId;

use super::state::AccBuf;
use super::SyncMode;

/// Fold the edges of `ss` whose destination slots lie in `pos_range` into
/// the accumulator slice `acc`/`has`, which covers global destination ids
/// `[slice_base, slice_base + acc.len())`.
///
/// `src_vals` holds the source interval's previous-iteration attributes,
/// starting at global id `src_base`.
///
/// Flat-edge iteration: the CSR layout guarantees each destination's
/// sources form one contiguous `srcs` run, so the whole run is handed to
/// [`VertexProgram::absorb_run`] at once and `has[slot]` is written at most
/// once per destination — not once per edge as the old scalar walk did.
#[inline]
#[allow(clippy::too_many_arguments)] // hot-path kernel: explicit slices beat a params struct
pub fn absorb_chunk<P: VertexProgram>(
    prog: &P,
    ss: &SubShardView,
    pos_range: Range<usize>,
    src_vals: &[P::Value],
    src_base: VertexId,
    acc: &mut [P::Accum],
    has: &mut [u8],
    slice_base: VertexId,
) {
    let (dsts, offsets, srcs) = (ss.dsts(), ss.offsets(), ss.srcs());
    for pos in pos_range {
        let d = dsts[pos];
        let slot = (d - slice_base) as usize;
        let run = &srcs[offsets[pos] as usize..offsets[pos + 1] as usize];
        if prog.absorb_run(d, run, src_vals, src_base, &mut acc[slot]) {
            has[slot] = 1;
        }
    }
}

/// One fine-grained task: a destination chunk of a sub-shard plus the
/// exclusive accumulator slice it owns.
struct ChunkTask<'a, P: VertexProgram> {
    ss: Arc<SubShardView>,
    pos_range: Range<usize>,
    acc: &'a mut [P::Accum],
    has: &'a mut [u8],
    slice_base: VertexId,
}

/// Carve disjoint accumulator slices for each destination chunk of `ss`.
///
/// Chunks are position ranges in ascending destination order, so slices can
/// be split off the buffer front-to-back.
fn carve_tasks<'a, P: VertexProgram>(
    ss: &Arc<SubShardView>,
    chunks: Vec<Range<usize>>,
    buf: &'a mut AccBuf<P>,
) -> Vec<ChunkTask<'a, P>> {
    let mut tasks = Vec::with_capacity(chunks.len());
    let mut acc_rest: &'a mut [P::Accum] = &mut buf.acc[..];
    let mut has_rest: &'a mut [u8] = &mut buf.has[..];
    let mut cursor = buf.base;
    let dsts = ss.dsts();
    for chunk in chunks {
        let dst_lo = dsts[chunk.start];
        let dst_hi = dsts[chunk.end - 1] + 1;
        debug_assert!(dst_lo >= cursor, "chunks must be ascending");
        let skip = (dst_lo - cursor) as usize;
        let take = (dst_hi - dst_lo) as usize;
        // Split by value to keep the `'a` lifetime on the carved slices.
        let (acc, rest) = std::mem::take(&mut acc_rest).split_at_mut(skip).1.split_at_mut(take);
        acc_rest = rest;
        let (has, rest) = std::mem::take(&mut has_rest).split_at_mut(skip).1.split_at_mut(take);
        has_rest = rest;
        cursor = dst_hi;
        tasks.push(ChunkTask {
            ss: Arc::clone(ss),
            pos_range: chunk,
            acc,
            has,
            slice_base: dst_lo,
        });
    }
    tasks
}

/// Process one source row's sub-shards against a set of destination
/// accumulators.
///
/// `shards[j]` (when present) is the sub-shard from the current source
/// interval into destination interval `j`; `accs[j]` (when present) is that
/// interval's accumulator. Only pairs where both are present are processed.
#[allow(clippy::too_many_arguments)] // mirrors absorb_chunk's explicit data-path signature
pub fn absorb_row<P: VertexProgram>(
    prog: &P,
    shards: &[Option<Arc<SubShardView>>],
    src_vals: &[P::Value],
    src_base: VertexId,
    accs: &mut [Option<Mutex<AccBuf<P>>>],
    threads: usize,
    edges_per_task: usize,
    sync: SyncMode,
) {
    match sync {
        SyncMode::Callback => {
            // Fine-grained: chunk every sub-shard by destination ranges and
            // run all chunks of the row concurrently.
            let mut tasks = Vec::new();
            for (buf_opt, ss_opt) in accs.iter_mut().zip(shards.iter()) {
                let (Some(ss), Some(buf)) = (ss_opt, buf_opt.as_mut()) else {
                    continue;
                };
                if ss.is_empty() {
                    continue;
                }
                let chunks = ss.chunk_by_edges(edges_per_task);
                tasks.extend(carve_tasks(ss, chunks, buf.get_mut()));
            }
            run_tasks(threads, tasks, |t: ChunkTask<'_, P>| {
                absorb_chunk(
                    prog,
                    &t.ss,
                    t.pos_range,
                    src_vals,
                    src_base,
                    t.acc,
                    t.has,
                    t.slice_base,
                );
            });
        }
        SyncMode::Lock => {
            // Coarse-grained: one task per sub-shard, locking the whole
            // destination interval for its duration.
            let mut tasks = Vec::new();
            for (j, ss) in shards.iter().enumerate() {
                if let (Some(ss), Some(_)) = (ss, accs.get(j).and_then(|b| b.as_ref())) {
                    if !ss.is_empty() {
                        tasks.push((j, Arc::clone(ss)));
                    }
                }
            }
            let accs = &*accs;
            run_tasks(threads, tasks, |(j, ss): (usize, Arc<SubShardView>)| {
                let mut guard = accs[j].as_ref().expect("checked above").lock();
                let buf = &mut *guard;
                let base = buf.base;
                absorb_chunk(
                    prog,
                    &ss,
                    0..ss.num_dsts(),
                    src_vals,
                    src_base,
                    &mut buf.acc,
                    &mut buf.has,
                    base,
                );
            });
        }
    }
}

/// Fold one sub-shard into one accumulator with chunk-level parallelism.
///
/// Used by the hub-producing passes (DPU ToHub, MPU phase B/C) where a
/// single `(i, j)` pair is updated at a time; hub targets never conflict,
/// so fine-grained chunking applies under either sync mode ("DPU can
/// overlap the four sub-shards … since their write destinations, i.e.
/// their hubs, do not overlap", §III-B2).
pub fn absorb_single<P: VertexProgram>(
    prog: &P,
    ss: &Arc<SubShardView>,
    src_vals: &[P::Value],
    src_base: VertexId,
    buf: &mut AccBuf<P>,
    threads: usize,
    edges_per_task: usize,
) {
    if ss.is_empty() {
        return;
    }
    let chunks = ss.chunk_by_edges(edges_per_task);
    let tasks = carve_tasks(ss, chunks, buf);
    run_tasks(threads, tasks, |t: ChunkTask<'_, P>| {
        absorb_chunk(
            prog,
            &t.ss,
            t.pos_range,
            src_vals,
            src_base,
            t.acc,
            t.has,
            t.slice_base,
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsss::SubShard;

    struct Sum;

    impl VertexProgram for Sum {
        type Value = f64;
        type Accum = f64;
        const APPLY_NEEDS_OLD: bool = false;
        const ALWAYS_APPLY: bool = true;

        fn init(&self, _v: VertexId) -> f64 {
            0.0
        }

        fn zero(&self) -> f64 {
            0.0
        }

        fn absorb(&self, _s: VertexId, sv: &f64, _d: VertexId, acc: &mut f64) -> bool {
            *acc += sv;
            true
        }

        fn combine(&self, a: &mut f64, b: &f64) {
            *a += b;
        }

        fn apply(&self, _v: VertexId, _old: &f64, acc: &f64, _got: bool) -> f64 {
            *acc
        }
    }

    /// Sub-shard from interval [0,4) into [4,8): every src → every dst.
    fn dense_shard() -> Arc<SubShardView> {
        let mut edges = Vec::new();
        for s in 0..4u32 {
            for d in 4..8u32 {
                edges.push((s, d));
            }
        }
        Arc::new(SubShardView::from(&SubShard::from_edges(0, 1, edges)))
    }

    fn run_mode(sync: SyncMode, threads: usize, edges_per_task: usize) -> Vec<f64> {
        let prog = Sum;
        let ss = dense_shard();
        let src_vals = vec![1.0, 2.0, 3.0, 4.0];
        let mut accs: Vec<Option<Mutex<AccBuf<Sum>>>> = vec![
            None,
            Some(Mutex::new(AccBuf::new(&prog, 4, 4))),
        ];
        let shards = vec![None, Some(ss)];
        absorb_row(
            &prog, &shards, &src_vals, 0, &mut accs, threads, edges_per_task, sync,
        );
        accs[1].take().unwrap().into_inner().acc
    }

    #[test]
    fn callback_and_lock_agree() {
        // Every dst receives 1+2+3+4 = 10.
        for threads in [1, 4] {
            for ept in [1, 2, 100] {
                assert_eq!(run_mode(SyncMode::Callback, threads, ept), vec![10.0; 4]);
            }
            assert_eq!(run_mode(SyncMode::Lock, threads, 8), vec![10.0; 4]);
        }
    }

    #[test]
    fn absorb_chunk_respects_pos_range() {
        let prog = Sum;
        let ss = dense_shard();
        let src_vals = vec![1.0; 4];
        let mut acc = vec![0.0; 4];
        let mut has = vec![0u8; 4];
        // Only destination slots 1..3 (ids 5 and 6).
        absorb_chunk(&prog, &ss, 1..3, &src_vals, 0, &mut acc, &mut has, 4);
        assert_eq!(acc, vec![0.0, 4.0, 4.0, 0.0]);
        assert_eq!(has, vec![0, 1, 1, 0]);
    }

    #[test]
    fn carve_handles_gaps() {
        // Destinations 10 and 14 within an interval starting at 8:
        // slices must skip the gap correctly.
        let prog = Sum;
        let ss = Arc::new(SubShardView::from(&SubShard::from_edges(
            0,
            1,
            vec![(0, 10), (1, 14)],
        )));
        let mut buf = AccBuf::<Sum>::new(&prog, 8, 8);
        let chunks = ss.chunk_by_edges(1);
        assert_eq!(chunks.len(), 2);
        let tasks = carve_tasks(&ss, chunks, &mut buf);
        assert_eq!(tasks.len(), 2);
        assert_eq!(tasks[0].slice_base, 10);
        assert_eq!(tasks[0].acc.len(), 1);
        assert_eq!(tasks[1].slice_base, 14);
        assert_eq!(tasks[1].acc.len(), 1);
    }

    #[test]
    fn source_active_filter_is_respected() {
        struct Gated;
        impl VertexProgram for Gated {
            type Value = f64;
            type Accum = f64;
            const APPLY_NEEDS_OLD: bool = false;
            const ALWAYS_APPLY: bool = true;
            fn init(&self, _v: VertexId) -> f64 {
                0.0
            }
            fn zero(&self) -> f64 {
                0.0
            }
            fn source_active(&self, _s: VertexId, v: &f64) -> bool {
                *v > 2.0
            }
            fn absorb(&self, _s: VertexId, sv: &f64, _d: VertexId, acc: &mut f64) -> bool {
                *acc += sv;
                true
            }
            fn combine(&self, a: &mut f64, b: &f64) {
                *a += b;
            }
            fn apply(&self, _v: VertexId, _o: &f64, acc: &f64, _g: bool) -> f64 {
                *acc
            }
        }
        let prog = Gated;
        let ss = dense_shard();
        let src_vals = vec![1.0, 2.0, 3.0, 4.0];
        let mut acc = vec![0.0; 4];
        let mut has = vec![0u8; 4];
        absorb_chunk(&prog, &ss, 0..4, &src_vals, 0, &mut acc, &mut has, 4);
        // Only sources 3.0 and 4.0 pass the gate.
        assert_eq!(acc, vec![7.0; 4]);
        assert_eq!(has, vec![1; 4]);

        // When no source passes, the run contributes nothing and the
        // per-destination has flag must stay clear.
        let low_vals = vec![1.0; 4];
        let mut acc = vec![0.0; 4];
        let mut has = vec![0u8; 4];
        absorb_chunk(&prog, &ss, 0..4, &low_vals, 0, &mut acc, &mut has, 4);
        assert_eq!(acc, vec![0.0; 4]);
        assert_eq!(has, vec![0; 4]);
    }
}
