//! Mixed-Phase Update (§III-B3) — the default strategy.
//!
//! `Q` of the `P` intervals stay memory-resident as ping-pong pairs
//! (`Q = ⌊B_M/(2·n·Ba)·P⌋`); the remaining `P−Q` live on disk. Of the `P²`
//! sub-shards only the `(P−Q)²` whose source *and* destination are on disk
//! need hubs; every other sub-shard updates SPU-style:
//!
//! * **Phase A** — resident rows × resident columns, pure SPU order.
//! * **Phase B** — each on-disk row `i` is loaded once: resident columns
//!   update in memory, on-disk columns write hubs (ToHub).
//! * **Phase C** — each on-disk column `j` is assembled: resident rows
//!   absorb directly from the resident ping-pong values, on-disk rows fold
//!   their hubs (FromHub); the interval is written back once.
//!
//! At `Q = P` this degenerates to SPU, at `Q = 0` to DPU; in between the
//! I/O amount interpolates Table II's MPU row.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::dsss::{HubView, PreparedGraph, SubShardView};
use crate::error::EngineResult;
use crate::parallel::{run_tasks, split_ranges};
use crate::program::VertexProgram;
use crate::types::{Attr, VertexId};

use super::iosched::IoSession;
use super::kernel::{absorb_row, absorb_single};
use super::prefetch::{JobStream, Jobs, Prefetcher};
use super::select::choose_strategy;
use super::state::{finalize_interval_par, finalize_range, AccBuf};
use super::store::ShardStore;
use super::{Activity, EngineConfig};

/// One unit of phase C's mixed stream: the resident-row sub-shards of a
/// column followed by the column's hubs, prefetched in consumption order.
enum ColItem<A: Attr> {
    Shard(SubShardView),
    Hub(Option<HubView<A>>),
}

/// Pop the next sub-shard for a key sequence whose cache hits were
/// resolved up-front (misses stream, in order, possibly decoded ahead).
fn next_shard(
    hits: &mut VecDeque<Option<Arc<SubShardView>>>,
    stream: &mut JobStream<'_, EngineResult<SubShardView>>,
) -> EngineResult<Arc<SubShardView>> {
    match hits.pop_front().expect("one resolved hit per key") {
        Some(ss) => Ok(ss),
        None => Ok(Arc::new(stream.next().expect("one job per miss")?)),
    }
}

/// Run to convergence under MPU. Returns (values, iterations, edges
/// traversed).
pub fn run_mpu<P: VertexProgram>(
    g: &PreparedGraph,
    prog: &P,
    cfg: &EngineConfig,
) -> EngineResult<(Vec<P::Value>, usize, u64)> {
    let n = g.num_vertices();
    let p = g.num_intervals();
    let (_, plan) = choose_strategy(n as u64, p, P::Value::SIZE, cfg.memory_budget);
    let q = plan.resident_intervals as u32;

    // Resident vertex prefix [0, res_end).
    let res_end: VertexId = if q == 0 { 0 } else { g.interval_range(q - 1).end };
    let mut prev_res: Vec<P::Value> = (0..res_end).map(|v| prog.init(v)).collect();
    let mut next_res = prev_res.clone();

    // On-disk intervals initialised on disk.
    for j in q..p {
        let r = g.interval_range(j);
        let vals: Vec<P::Value> = r.map(|v| prog.init(v)).collect();
        g.write_interval(j, &vals)?;
    }

    // Leftover budget caches sub-shards.
    let mut store = ShardStore::new(g);
    store.plan_cache(plan.shard_cache_bytes, cfg.direction)?;

    let mut activity = Activity::init(g, prog);

    // One background decode thread for the whole run; phase B's row
    // streams and phase C's shard+hub streams drive it through ordered
    // JobStreams (phase A reads via the cache/store and has nothing to
    // overlap).
    let prefetcher = cfg
        .prefetch
        .then(|| Prefetcher::with_workers(cfg.decode_workers()));

    // Accumulators for resident destination intervals (reused).
    let mut accs_res: Vec<Option<Mutex<AccBuf<P>>>> = (0..p)
        .map(|j| {
            if j < q {
                let r = g.interval_range(j);
                Some(Mutex::new(AccBuf::new(prog, r.start, (r.end - r.start) as usize)))
            } else {
                None
            }
        })
        .collect();

    let mut iterations = 0;
    let mut edges_traversed = 0u64;

    for _ in 0..cfg.max_iterations {
        iterations += 1;
        for a in accs_res.iter_mut().flatten() {
            a.get_mut().reset(prog);
        }
        let mut changed = vec![false; p as usize];

        // ------------------------------------------------------------------
        // Phase A: resident rows into resident columns (SPU order).
        // ------------------------------------------------------------------
        for &reverse in ShardStore::dirs(cfg.direction) {
            for i in 0..q {
                if activity.row_skippable(i) {
                    continue;
                }
                let mut shards: Vec<Option<Arc<SubShardView>>> = vec![None; p as usize];
                for j in 0..q {
                    let ss = store.get(i, j, reverse)?;
                    edges_traversed += ss.num_edges() as u64;
                    shards[j as usize] = Some(ss);
                }
                let r = g.interval_range(i);
                absorb_row(
                    prog,
                    &shards,
                    &prev_res[r.start as usize..r.end as usize],
                    r.start,
                    &mut accs_res,
                    cfg.threads,
                    cfg.edges_per_task,
                    cfg.sync,
                );
            }
        }

        // ------------------------------------------------------------------
        // Phase B: on-disk rows; resident columns in memory, on-disk
        // columns to hubs. All of a row's sub-shard loads feed one ordered
        // stream (cache hits resolved up-front, misses decoded in the
        // background), so the kernel folds sub-shard (i, j) while (i, j+1)
        // is already being read and validated.
        // ------------------------------------------------------------------
        let dirs = ShardStore::dirs(cfg.direction);
        for i in q..p {
            if activity.row_skippable(i) {
                continue;
            }
            let src_vals: Vec<P::Value> = g.read_interval(i)?;
            let r_i = g.interval_range(i);
            // Keys in exact consumption order: resident destinations per
            // direction, then hub destinations with both directions folded
            // per column.
            let mut keys: Vec<(u32, bool)> = Vec::new();
            for &reverse in dirs {
                keys.extend((0..q).map(|j| (j, reverse)));
            }
            for j in q..p {
                keys.extend(dirs.iter().map(|&reverse| (j, reverse)));
            }
            let mut hits: VecDeque<Option<Arc<SubShardView>>> = keys
                .iter()
                .map(|&(j, reverse)| store.cached(i, j, reverse))
                .collect();
            let misses: Vec<(u32, bool)> = keys
                .iter()
                .zip(&hits)
                .filter(|(_, hit)| hit.is_none())
                .map(|(&k, _)| k)
                .collect();
            // With the I/O scheduler on, the row's misses become one access
            // plan whose reads a dedicated I/O thread issues in batched
            // layout order; delivery order (and so every fold) is unchanged.
            let session = cfg.io_scheduler.then(|| {
                let loader = g.view_loader();
                let plan = misses
                    .iter()
                    .map(|&(j, rev)| loader.subshard_part_names(i, j, rev))
                    .collect();
                IoSession::start(
                    Arc::clone(loader.disk()),
                    Arc::clone(loader.pool()),
                    plan,
                    cfg.io_queue_depth,
                    loader.retry_policy(),
                    cfg.io_deadline,
                )
            });
            let mut jobs: Jobs<EngineResult<SubShardView>> = Vec::with_capacity(misses.len());
            for (seq, &(j, reverse)) in misses.iter().enumerate() {
                let loader = g.view_loader();
                match session.as_ref().map(IoSession::client) {
                    Some(client) => jobs.push(Box::new(move || {
                        let names = loader.subshard_part_names(i, j, reverse);
                        loader.decode_subshard(i, j, &names, client.take(seq))
                    })),
                    None => jobs.push(Box::new(move || loader.load_subshard(i, j, reverse))),
                }
            }
            let mut stream = JobStream::new(prefetcher.as_ref(), jobs);
            // Resident destinations: SPU-like, straight into accs_res.
            for _ in dirs {
                let mut shards: Vec<Option<Arc<SubShardView>>> = vec![None; p as usize];
                for j in 0..q {
                    let ss = next_shard(&mut hits, &mut stream)?;
                    edges_traversed += ss.num_edges() as u64;
                    shards[j as usize] = Some(ss);
                }
                absorb_row(
                    prog,
                    &shards,
                    &src_vals,
                    r_i.start,
                    &mut accs_res,
                    cfg.threads,
                    cfg.edges_per_task,
                    cfg.sync,
                );
            }
            // On-disk destinations: ToHub. Both directions fold into the
            // same hub before writing.
            for j in q..p {
                let r_j = g.interval_range(j);
                let mut buf: AccBuf<P> =
                    AccBuf::new(prog, r_j.start, (r_j.end - r_j.start) as usize);
                for _ in dirs {
                    let ss = next_shard(&mut hits, &mut stream)?;
                    edges_traversed += ss.num_edges() as u64;
                    absorb_single(
                        prog,
                        &ss,
                        &src_vals,
                        r_i.start,
                        &mut buf,
                        cfg.threads,
                        cfg.edges_per_task,
                    );
                }
                let (dsts, accs) = buf.compact();
                if !dsts.is_empty() {
                    g.write_hub(i, j, &dsts, &accs)?;
                }
            }
        }

        // Finalise resident intervals (all their contributions arrived in
        // phases A and B) as one flat batch of destination-range chunks.
        // Keep prev_res intact — phase C reads it.
        if q > 0 {
            let bufs: Vec<&AccBuf<P>> = accs_res[..q as usize]
                .iter_mut()
                .map(|a| &*a.as_mut().expect("resident").get_mut())
                .collect();
            let changed_flags: Vec<AtomicBool> =
                (0..q).map(|_| AtomicBool::new(false)).collect();
            let mut rest: &mut [P::Value] = &mut next_res;
            let mut tasks: Vec<(u32, usize, &mut [P::Value])> = Vec::new();
            for j in 0..q {
                let len = g.interval_len(j);
                let (mut slice, r2) = rest.split_at_mut(len);
                rest = r2;
                for range in split_ranges(len, cfg.threads) {
                    let (chunk, srest) = std::mem::take(&mut slice).split_at_mut(range.len());
                    slice = srest;
                    tasks.push((j, range.start, chunk));
                }
            }
            let prev_ref = &prev_res;
            let bufs_ref = &bufs;
            let flags = &changed_flags;
            run_tasks(cfg.threads, tasks, |(j, off, out)| {
                let r = g.interval_range(j);
                let lo = r.start as usize + off;
                let ch = finalize_range(
                    prog,
                    bufs_ref[j as usize],
                    off,
                    &prev_ref[lo..lo + out.len()],
                    out,
                );
                if ch {
                    flags[j as usize].store(true, Ordering::Relaxed);
                }
            });
            for j in 0..q as usize {
                changed[j] = changed_flags[j].load(Ordering::Relaxed);
            }
        }

        // ------------------------------------------------------------------
        // Phase C: on-disk columns; resident rows absorb directly, on-disk
        // rows fold hubs. One mixed stream per column carries the
        // resident-row sub-shards followed by the column's hubs, so hub
        // reads overlap the tail of the shard absorbs.
        // ------------------------------------------------------------------
        let mut any_changed = changed.iter().any(|&c| c);
        for j in q..p {
            let r_j = g.interval_range(j);
            let len = (r_j.end - r_j.start) as usize;
            let old: Vec<P::Value> = if P::APPLY_NEEDS_OLD {
                g.read_interval(j)?
            } else {
                r_j.clone().map(|v| prog.init(v)).collect()
            };
            let mut buf: AccBuf<P> = AccBuf::new(prog, r_j.start, len);
            // Shard keys in consumption order (activity filter applied now;
            // flags do not change within an iteration).
            let mut keys: Vec<(u32, bool)> = Vec::new();
            for &reverse in dirs {
                keys.extend((0..q).filter(|&i| !activity.row_skippable(i)).map(|i| (i, reverse)));
            }
            let mut hits: VecDeque<Option<Arc<SubShardView>>> = keys
                .iter()
                .map(|&(i, reverse)| store.cached(i, j, reverse))
                .collect();
            let misses: Vec<(u32, bool)> = keys
                .iter()
                .zip(&hits)
                .filter(|(_, hit)| hit.is_none())
                .map(|(&k, _)| k)
                .collect();
            // One access plan for the whole mixed stream: shard misses
            // first, then the column's hubs, in exact consumption order.
            let session = cfg.io_scheduler.then(|| {
                let loader = g.view_loader();
                let plan: Vec<Vec<String>> = misses
                    .iter()
                    .map(|&(i, rev)| loader.subshard_part_names(i, j, rev))
                    .chain((q..p).map(|i| {
                        loader.hub_part_name(i, j).map(|n| vec![n]).unwrap_or_default()
                    }))
                    .collect();
                IoSession::start(
                    Arc::clone(loader.disk()),
                    Arc::clone(loader.pool()),
                    plan,
                    cfg.io_queue_depth,
                    loader.retry_policy(),
                    cfg.io_deadline,
                )
            });
            let mut jobs: Jobs<EngineResult<ColItem<P::Accum>>> = Vec::new();
            for (seq, &(i, reverse)) in misses.iter().enumerate() {
                let loader = g.view_loader();
                match session.as_ref().map(IoSession::client) {
                    Some(client) => jobs.push(Box::new(move || {
                        let names = loader.subshard_part_names(i, j, reverse);
                        loader
                            .decode_subshard(i, j, &names, client.take(seq))
                            .map(ColItem::Shard)
                    })),
                    None => jobs.push(Box::new(move || {
                        loader.load_subshard(i, j, reverse).map(ColItem::Shard)
                    })),
                }
            }
            for (seq, i) in (q..p).enumerate().map(|(k, i)| (misses.len() + k, i)) {
                let loader = g.view_loader();
                match session.as_ref().map(IoSession::client) {
                    Some(client) => jobs.push(Box::new(move || {
                        match loader.hub_part_name(i, j) {
                            Some(name) => {
                                let mut bytes = client.take(seq);
                                let b = bytes.pop().expect("one part per hub plan")?;
                                loader.decode_hub::<P::Accum>(&name, b).map(Some).map(ColItem::Hub)
                            }
                            None => {
                                client.take(seq);
                                Ok(ColItem::Hub(None))
                            }
                        }
                    })),
                    None => jobs.push(Box::new(move || {
                        loader.read_hub::<P::Accum>(i, j).map(ColItem::Hub)
                    })),
                }
            }
            let mut stream = JobStream::new(prefetcher.as_ref(), jobs);
            for (i, _) in keys {
                let ss = match hits.pop_front().expect("one resolved hit per key") {
                    Some(ss) => ss,
                    None => match stream.next().expect("one job per miss")? {
                        ColItem::Shard(ss) => Arc::new(ss),
                        ColItem::Hub(_) => unreachable!("hubs follow all shard jobs"),
                    },
                };
                edges_traversed += ss.num_edges() as u64;
                let r_i = g.interval_range(i);
                absorb_single(
                    prog,
                    &ss,
                    &prev_res[r_i.start as usize..r_i.end as usize],
                    r_i.start,
                    &mut buf,
                    cfg.threads,
                    cfg.edges_per_task,
                );
            }
            // Collect the column's hubs in row order, then fold them as
            // one destination-range-parallel batch (bitwise-identical to
            // the serial fold; see `merge_hub_views_par`).
            let mut hubs: Vec<HubView<P::Accum>> = Vec::new();
            let mut hub_rows: Vec<u32> = Vec::new();
            for i in q..p {
                let hub = match stream.next().expect("one job per hub")? {
                    ColItem::Hub(h) => h,
                    ColItem::Shard(_) => unreachable!("all shard items already consumed"),
                };
                if let Some(hub) = hub {
                    hubs.push(hub);
                    hub_rows.push(i);
                }
            }
            buf.merge_hub_views_par(prog, &hubs, cfg.threads);
            drop(hubs);
            for i in hub_rows {
                g.remove_hub(i, j);
            }
            let mut new_vals = old.clone();
            let ch = finalize_interval_par(prog, &buf, &old, &mut new_vals, cfg.threads);
            g.write_interval(j, &new_vals)?;
            changed[j as usize] = ch;
            any_changed |= ch;
        }

        std::mem::swap(&mut prev_res, &mut next_res);

        let all_inactive = activity.advance(&changed);
        let done = if P::ALWAYS_APPLY {
            // Resident intervals have real old values; disk intervals only
            // when APPLY_NEEDS_OLD. Early termination is sound only when
            // every change flag is trustworthy.
            (q == p || P::APPLY_NEEDS_OLD) && !any_changed
        } else {
            all_inactive
        };
        if done {
            break;
        }
    }

    // Gather: resident prefix + on-disk intervals.
    let mut out = prev_res;
    out.truncate(res_end as usize);
    for j in q..p {
        out.extend(g.read_interval::<P::Value>(j)?);
    }
    Ok((out, iterations, edges_traversed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SyncMode;
    use crate::algo::pagerank::PageRank;
    use crate::engine::spu::run_spu;
    use crate::prep::{preprocess, PrepConfig};
    use nxgraph_storage::{Disk, MemDisk};

    fn graph(p: u32) -> PreparedGraph {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let edges: Vec<(u64, u64)> = crate::fig1_example_edges()
            .into_iter()
            .map(|(s, d)| (s as u64, d as u64))
            .collect();
        preprocess(&edges, &PrepConfig::new("fig1", p), disk).unwrap()
    }

    /// Budget that yields Q resident intervals out of P for the Fig 1
    /// graph with f64 values.
    fn budget_for_q(g: &PreparedGraph, q: u32) -> u64 {
        let n = g.num_vertices() as u64;
        let p = g.num_intervals() as u64;
        // effective = q/p * 2*n*Ba (+ degree table 4n).
        4 * n + (2 * n * 8) * q as u64 / p + 1
    }

    #[test]
    fn mpu_equals_spu_at_every_q() {
        let cfg0 = EngineConfig::default().with_max_iterations(6);
        let g = graph(4);
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let (want, _, want_edges) = run_spu(&g, &prog, &cfg0).unwrap();
        for q in 0..=4u32 {
            let g = graph(4);
            let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
            let cfg = cfg0.clone().with_budget(budget_for_q(&g, q));
            let (vals, _, edges) = run_mpu(&g, &prog, &cfg).unwrap();
            assert_eq!(edges, want_edges, "q={q}");
            for (a, b) in vals.iter().zip(&want) {
                assert!((a - b).abs() < 1e-12, "q={q}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn io_scheduler_is_bitwise_identical_at_every_q() {
        for q in 0..=4u32 {
            let g = graph(4);
            let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
            let base = EngineConfig::default()
                .with_max_iterations(6)
                .with_budget(budget_for_q(&g, q));
            let (off, ..) = run_mpu(&g, &prog, &base).unwrap();
            let (on, ..) =
                run_mpu(&g, &prog, &base.clone().with_io_scheduler(true)).unwrap();
            assert_eq!(off.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                       on.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                       "q={q}");
        }
    }

    #[test]
    fn mpu_lock_mode_agrees() {
        let g = graph(4);
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let cfg = EngineConfig::default()
            .with_max_iterations(5)
            .with_budget(budget_for_q(&g, 2));
        let (cb, _, _) = run_mpu(&g, &prog, &cfg).unwrap();
        let (lk, _, _) = run_mpu(&g, &prog, &cfg.clone().with_sync(SyncMode::Lock)).unwrap();
        for (a, b) in cb.iter().zip(&lk) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }
}
