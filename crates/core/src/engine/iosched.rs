//! Per-iteration I/O scheduling.
//!
//! The strategy drivers (SPU/DPU/MPU) already enumerate each iteration's
//! disk accesses in a fixed order — the row/column walk of Algorithm 1.
//! Without scheduling, those reads are issued one file at a time from the
//! prefetcher's decode workers, interleaved with decoding; the resulting
//! request stream hops between shard files in whatever order decode slots
//! free up. This module separates *issue order* from *delivery order*:
//!
//! * The driver hands an [`IoSession`] the iteration's **access plan** —
//!   one entry per decode job (`seq`), each naming the files that job
//!   needs (a sub-shard's base+delta chain, a hub, or nothing when the
//!   hub was never written).
//! * A dedicated I/O thread walks the plan in **windows** of
//!   `queue_depth` consecutive seqs. Within a window, reads are reordered
//!   by on-disk layout (natural file-name order, so `ss_0_2` precedes
//!   `ss_0_10` and a cell's base blob precedes its deltas) and issued
//!   back-to-back — large sequential batches per shard file instead of
//!   decode-paced single reads.
//! * Results are parked per `seq`; decode jobs (still submitted through
//!   the existing prefetch reorder buffer in plan order) block in
//!   [`IoClient::take`] until their bytes arrive. Delivery order — and
//!   therefore every checksum, decode and fold — is identical to the
//!   unscheduled path at every thread count, which is what keeps
//!   scheduler-on/off runs bitwise-identical.
//!
//! Look-ahead is bounded: window `w` is issued only once the consumer has
//! drained everything below window `w - 2`, so at most three windows of
//! read buffers are ever parked. That gate cannot deadlock: the decode
//! pool runs at most four workers ([`EngineConfig::decode_workers`]
//! (super::EngineConfig::decode_workers)), the minimum window is
//! [`MIN_QUEUE_DEPTH`] seqs, and jobs start in plan order — so every take
//! a worker can block on lies inside an already-issued window.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use nxgraph_storage::{
    BufferPool, Disk, IoProfile, RetryPolicy, SharedBytes, StorageError, StorageResult,
};

/// Default number of plan entries per issue window.
pub const DEFAULT_QUEUE_DEPTH: usize = 16;

/// Smallest permitted window: below four seqs the look-ahead gate could
/// stall a four-worker decode pool (see the deadlock argument above).
pub const MIN_QUEUE_DEPTH: usize = 4;

/// One planned read: `(seq, part, name)` — decode job `seq` needs file
/// `name` as its `part`-th input.
pub type PlannedRead = (usize, usize, String);

// The layout ordering lives in the storage crate (the paced-device
// emulation shares it); re-exported here because it is the scheduler's
// reorder key.
pub use nxgraph_storage::{layout_key, LayoutToken};

/// Partition an access plan into issue windows: consecutive groups of
/// `depth` seqs, each internally reordered by [`layout_key`] (ties broken
/// by `(seq, part)` so the result is a deterministic permutation of the
/// plan's reads). Pure — the unit under the permutation proptest.
pub fn plan_windows(plan: &[Vec<String>], depth: usize) -> Vec<Vec<PlannedRead>> {
    let depth = depth.max(MIN_QUEUE_DEPTH);
    let mut windows = Vec::with_capacity(plan.len().div_ceil(depth));
    for chunk in plan.chunks(depth) {
        let base = windows.len() * depth;
        let mut window: Vec<PlannedRead> = chunk
            .iter()
            .enumerate()
            .flat_map(|(off, names)| {
                names
                    .iter()
                    .enumerate()
                    .map(move |(part, name)| (base + off, part, name.clone()))
            })
            .collect();
        window.sort_by(|a, b| {
            layout_key(&a.2)
                .cmp(&layout_key(&b.2))
                .then_with(|| (a.0, a.1).cmp(&(b.0, b.1)))
        });
        windows.push(window);
    }
    windows
}

/// Per-seq parked results: `None` until every part of the seq has been
/// read, then `Some` until the consumer takes it.
type SeqResult = Vec<StorageResult<SharedBytes>>;

struct State {
    /// Parked results, indexed by seq. Taken entries revert to `None`.
    ready: Vec<Option<SeqResult>>,
    /// Whether each seq has been taken by its decode job.
    taken: Vec<bool>,
    /// Length of the contiguous taken prefix — the consumer's frontier.
    frontier: usize,
    /// Set by [`IoSession::drop`]; unblocks both sides.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled on new parked results and on frontier/shutdown changes.
    cv: Condvar,
    profile: Option<Arc<IoProfile>>,
    /// Hung-I/O watchdog: how long a consumer waits for its seq before
    /// the wait converts into [`StorageError::Stalled`]. `None` waits
    /// forever (the pre-watchdog behaviour).
    deadline: Option<Duration>,
    /// The planned file names per seq, for naming a stalled read.
    plan: Vec<Vec<String>>,
}

/// The consumer half: cloned into decode-job closures.
#[derive(Clone)]
pub struct IoClient {
    shared: Arc<Shared>,
}

impl IoClient {
    /// Block until seq `seq`'s reads are all parked, then take them (in
    /// part order). After session shutdown, returns a synthesized error
    /// per missing part instead of blocking forever. With a watchdog
    /// deadline configured, a wait that exceeds it returns a typed
    /// [`StorageError::Stalled`] (and flags the session for shutdown so
    /// every other waiter unblocks promptly) — a hung device cancels the
    /// iteration instead of deadlocking the reorder buffer.
    pub fn take(&self, seq: usize) -> SeqResult {
        let started = Instant::now();
        let mut st = self.shared.state.lock();
        loop {
            if let Some(parts) = st.ready[seq].take() {
                st.taken[seq] = true;
                while st.frontier < st.taken.len() && st.taken[st.frontier] {
                    st.frontier += 1;
                }
                self.shared.cv.notify_all();
                if let Some(p) = &self.shared.profile {
                    for _ in 0..parts.len() {
                        p.dequeue();
                    }
                }
                return parts;
            }
            if st.shutdown {
                return vec![Err(StorageError::Io(std::io::Error::other(
                    "i/o scheduler shut down before this read was served",
                )))];
            }
            match self.shared.deadline {
                None => self.shared.cv.wait(&mut st),
                Some(deadline) => {
                    let Some(remaining) = deadline.checked_sub(started.elapsed()) else {
                        // Deadline tripped: poison the session so sibling
                        // waiters fail fast instead of each burning a full
                        // deadline, then surface the typed error.
                        st.shutdown = true;
                        self.shared.cv.notify_all();
                        drop(st);
                        if let Some(p) = &self.shared.profile {
                            p.record_stall();
                        }
                        let name = self
                            .shared
                            .plan
                            .get(seq)
                            .and_then(|names| names.first())
                            .cloned()
                            .unwrap_or_else(|| format!("seq {seq}"));
                        return vec![Err(StorageError::Stalled {
                            name,
                            waited_ms: started.elapsed().as_millis() as u64,
                        })];
                    };
                    let _ = self.shared.cv.wait_for(&mut st, remaining);
                }
            }
        }
    }
}

/// One iteration-phase's scheduled I/O: owns the issuing thread; dropping
/// the session shuts the thread down even when the consumer abandoned the
/// plan early (an error mid-iteration discards the remaining jobs).
pub struct IoSession {
    shared: Arc<Shared>,
    thread: Option<JoinHandle<()>>,
}

impl IoSession {
    /// Start scheduling `plan` against `disk`: one I/O thread issues each
    /// window's reads in layout order — retrying transient failures per
    /// `retry` — parking results for [`IoClient::take`]. A `deadline`
    /// arms the hung-I/O watchdog on every take.
    pub fn start(
        disk: Arc<dyn Disk>,
        pool: Arc<BufferPool>,
        plan: Vec<Vec<String>>,
        depth: usize,
        retry: RetryPolicy,
        deadline: Option<Duration>,
    ) -> Self {
        let depth = depth.max(MIN_QUEUE_DEPTH);
        let profile = disk.io_profile().cloned();
        let windows = plan_windows(&plan, depth);
        let parts_per_seq: Vec<usize> = plan.iter().map(Vec::len).collect();
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                ready: (0..plan.len()).map(|_| None).collect(),
                taken: vec![false; plan.len()],
                frontier: 0,
                shutdown: false,
            }),
            cv: Condvar::new(),
            profile,
            deadline,
            plan,
        });
        let worker = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("nxgraph-iosched".into())
            .spawn(move || {
                issue_loop(&worker, &*disk, &pool, &windows, &parts_per_seq, depth, retry)
            })
            .expect("spawn io scheduler thread");
        Self {
            shared,
            thread: Some(thread),
        }
    }

    /// A cloneable consumer handle.
    pub fn client(&self) -> IoClient {
        IoClient {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Drop for IoSession {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.cv.notify_all();
        }
        if let Some(t) = self.thread.take() {
            // The issuer may be stuck inside a genuinely hung read; give
            // it a bounded grace period to observe the shutdown flag and
            // exit, then detach rather than inherit the hang. A detached
            // issuer only touches state it co-owns via `Arc` and exits at
            // its next gate/park check.
            let grace = Instant::now();
            while !t.is_finished() && grace.elapsed() < Duration::from_millis(500) {
                std::thread::sleep(Duration::from_millis(1));
            }
            if t.is_finished() {
                let _ = t.join();
            }
        }
    }
}

fn issue_loop(
    shared: &Shared,
    disk: &dyn Disk,
    pool: &Arc<BufferPool>,
    windows: &[Vec<PlannedRead>],
    parts_per_seq: &[usize],
    depth: usize,
    retry: RetryPolicy,
) {
    for (w, window) in windows.iter().enumerate() {
        // Look-ahead gate: don't run more than two windows past the
        // consumer — bounds parked memory to ~3 windows of blobs.
        let threshold = w.saturating_sub(2) * depth;
        {
            let mut st = shared.state.lock();
            while st.frontier < threshold.min(st.taken.len()) && !st.shutdown {
                shared.cv.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
        }
        if let Some(p) = &shared.profile {
            p.record_sched_batch(window.len() as u64);
        }
        // Reads happen outside the lock; a seq is parked (and its waiters
        // woken) the moment its last part lands, so decoding overlaps the
        // rest of the window's reads.
        let base = w * depth;
        let seqs_in_window = parts_per_seq.len().min(base + depth) - base;
        let mut pending: Vec<Vec<Option<StorageResult<SharedBytes>>>> = (0..seqs_in_window)
            .map(|off| (0..parts_per_seq[base + off]).map(|_| None).collect())
            .collect();
        let mut remaining: Vec<usize> = (0..seqs_in_window)
            .map(|off| parts_per_seq[base + off])
            .collect();
        let park = |seq: usize, parts: SeqResult| {
            let mut st = shared.state.lock();
            st.ready[seq] = Some(parts);
            shared.cv.notify_all();
            st.shutdown
        };
        // Seqs with no reads at all (absent hubs) complete immediately.
        for (off, &rem) in remaining.iter().enumerate() {
            if rem == 0 && park(base + off, Vec::new()) {
                return;
            }
        }
        for (seq, part, name) in window {
            let res = retry.run(disk.io_profile(), || disk.read_shared(name, pool));
            if let Some(p) = &shared.profile {
                p.enqueue();
            }
            let off = seq - base;
            pending[off][*part] = Some(res);
            remaining[off] -= 1;
            if remaining[off] == 0 {
                let parts = std::mem::take(&mut pending[off])
                    .into_iter()
                    .map(|r| r.expect("all parts read"))
                    .collect();
                if park(*seq, parts) {
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxgraph_storage::MemDisk;

    #[test]
    fn plan_windows_is_a_permutation_of_the_plan() {
        let plan: Vec<Vec<String>> = (0..23)
            .map(|s| {
                (0..(s % 3))
                    .map(|p| format!("ss_{}_{p}.bin", s % 7))
                    .collect()
            })
            .collect();
        let windows = plan_windows(&plan, 4);
        let mut seen: Vec<PlannedRead> = windows.into_iter().flatten().collect();
        seen.sort();
        let mut want: Vec<PlannedRead> = plan
            .iter()
            .enumerate()
            .flat_map(|(s, names)| {
                names
                    .iter()
                    .enumerate()
                    .map(move |(p, n)| (s, p, n.clone()))
            })
            .collect();
        want.sort();
        assert_eq!(seen, want);
    }

    #[test]
    fn session_delivers_every_seq_in_any_take_order() {
        let disk = Arc::new(MemDisk::new());
        let mut plan = Vec::new();
        for s in 0..20usize {
            if s % 5 == 4 {
                plan.push(Vec::new()); // absent hub
                continue;
            }
            let name = format!("f_{s}.bin");
            disk.write_all_to(&name, &vec![s as u8; 64 + s]).unwrap();
            plan.push(vec![name]);
        }
        let pool = BufferPool::new();
        let session = IoSession::start(
            disk as Arc<dyn Disk>,
            pool,
            plan.clone(),
            4,
            RetryPolicy::none(),
            None,
        );
        let client = session.client();
        for (s, planned) in plan.iter().enumerate() {
            let parts = client.take(s);
            if planned.is_empty() {
                assert!(parts.is_empty());
            } else {
                assert_eq!(parts.len(), 1);
                let bytes = parts.into_iter().next().unwrap().unwrap();
                assert_eq!(bytes.as_slice(), &vec![s as u8; 64 + s][..]);
            }
        }
    }

    #[test]
    fn read_errors_are_delivered_not_panicked() {
        let disk = Arc::new(MemDisk::new());
        disk.write_all_to("ok.bin", b"fine").unwrap();
        let plan = vec![
            vec!["ok.bin".to_string()],
            vec!["missing.bin".to_string()],
            vec!["ok.bin".to_string()],
            vec!["ok.bin".to_string()],
        ];
        let pool = BufferPool::new();
        let session = IoSession::start(
            disk as Arc<dyn Disk>,
            pool,
            plan,
            4,
            RetryPolicy::none(),
            None,
        );
        let client = session.client();
        assert!(client.take(0)[0].is_ok());
        assert!(matches!(
            client.take(1)[0],
            Err(StorageError::NotFound(_))
        ));
        // Abandon seqs 2 and 3: dropping the session must not hang.
    }

    #[test]
    fn early_drop_shuts_down_cleanly() {
        let disk = Arc::new(MemDisk::new());
        let mut plan = Vec::new();
        for s in 0..200usize {
            let name = format!("f_{s}.bin");
            disk.write_all_to(&name, &[1u8; 32]).unwrap();
            plan.push(vec![name]);
        }
        let pool = BufferPool::new();
        let session = IoSession::start(
            disk as Arc<dyn Disk>,
            pool,
            plan,
            4,
            RetryPolicy::none(),
            None,
        );
        let client = session.client();
        // Take only the first few; the gate keeps most windows unissued.
        for s in 0..3 {
            assert!(client.take(s)[0].is_ok());
        }
        drop(session); // must join, not hang
        // A take after shutdown gets an error, not a hang.
        assert!(client.take(100).iter().all(|r| r.is_err()));
    }

    #[test]
    fn scheduler_reads_retry_transient_faults() {
        use nxgraph_storage::{FaultDisk, FaultOp, FaultPlan, FaultRule};
        let mem = Arc::new(MemDisk::new());
        let mut plan = Vec::new();
        for s in 0..8usize {
            let name = format!("f_{s}.bin");
            mem.write_all_to(&name, &[s as u8; 64]).unwrap();
            plan.push(vec![name]);
        }
        // Every file's first bulk read faults; the second succeeds.
        let fault_plan = FaultPlan::new().with_rule(FaultRule {
            name_contains: "f_".into(),
            op: FaultOp::Read,
            kind: nxgraph_storage::FaultKind::ReadError,
            first: 0,
            count: 1,
        });
        let disk: Arc<dyn Disk> = Arc::new(FaultDisk::new(mem, fault_plan));
        let profile = disk.io_profile().unwrap().clone();
        let session = IoSession::start(
            Arc::clone(&disk),
            BufferPool::new(),
            plan,
            4,
            RetryPolicy::default(),
            None,
        );
        let client = session.client();
        for s in 0..8 {
            let parts = client.take(s);
            assert!(parts[0].is_ok(), "seq {s} should be healed by retry");
        }
        let snap = profile.snapshot();
        assert_eq!(snap.retries, 8, "one retry per faulted first read");
        assert_eq!(snap.giveups, 0);
        assert_eq!(snap.injected_faults, 8);
    }

    #[test]
    fn watchdog_converts_a_stalled_read_into_a_typed_error() {
        use nxgraph_storage::{FaultDisk, FaultKind, FaultOp, FaultPlan, FaultRule};
        let mem = Arc::new(MemDisk::new());
        mem.write_all_to("slow.bin", &[7u8; 32]).unwrap();
        // The only read stalls for 2 s; the watchdog deadline is 100 ms.
        let fault_plan = FaultPlan::new().with_rule(FaultRule {
            name_contains: "slow".into(),
            op: FaultOp::Read,
            kind: FaultKind::Stall(Duration::from_secs(2)),
            first: 0,
            count: 1,
        });
        let disk: Arc<dyn Disk> = Arc::new(FaultDisk::new(mem, fault_plan));
        let profile = disk.io_profile().unwrap().clone();
        let started = Instant::now();
        let session = IoSession::start(
            Arc::clone(&disk),
            BufferPool::new(),
            vec![vec!["slow.bin".to_string()]],
            4,
            RetryPolicy::none(),
            Some(Duration::from_millis(100)),
        );
        let client = session.client();
        let parts = client.take(0);
        match &parts[0] {
            Err(StorageError::Stalled { name, waited_ms }) => {
                assert_eq!(name, "slow.bin");
                assert!(*waited_ms >= 100, "waited only {waited_ms} ms");
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_millis(1500),
            "watchdog must fire well before the 2 s stall ends (took {:?})",
            started.elapsed()
        );
        assert_eq!(profile.snapshot().stalls, 1);
        // Dropping the session must detach from the stuck issuer rather
        // than inherit its hang.
        let drop_started = Instant::now();
        drop(session);
        assert!(
            drop_started.elapsed() < Duration::from_millis(1500),
            "drop waited on a hung issuer for {:?}",
            drop_started.elapsed()
        );
    }

    #[test]
    fn watchdog_with_generous_deadline_never_fires_on_healthy_reads() {
        let disk = Arc::new(MemDisk::new());
        let mut plan = Vec::new();
        for s in 0..12usize {
            let name = format!("f_{s}.bin");
            disk.write_all_to(&name, &[s as u8; 64]).unwrap();
            plan.push(vec![name]);
        }
        let session = IoSession::start(
            disk as Arc<dyn Disk>,
            BufferPool::new(),
            plan,
            4,
            RetryPolicy::default(),
            Some(Duration::from_secs(30)),
        );
        let client = session.client();
        for s in 0..12 {
            assert!(client.take(s)[0].is_ok());
        }
    }
}
