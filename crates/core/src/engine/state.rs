//! Per-interval accumulator state shared by all three update strategies.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::dsss::HubView;
use crate::parallel::{run_tasks, split_ranges};
use crate::program::VertexProgram;
use crate::types::VertexId;

/// Accumulators (and has-message flags) for one destination interval.
///
/// `acc[k]` belongs to vertex `base + k`. In SPU these live for the whole
/// run; in DPU they are compacted into hubs after each `(i, j)` sub-shard
/// pass; in MPU both uses coexist.
pub struct AccBuf<P: VertexProgram> {
    /// First vertex id of the interval.
    pub base: VertexId,
    /// One accumulator per vertex of the interval.
    pub acc: Vec<P::Accum>,
    /// 1 when the vertex received at least one message this pass.
    pub has: Vec<u8>,
}

impl<P: VertexProgram> AccBuf<P> {
    /// Fresh zeroed buffer for an interval of `len` vertices starting at
    /// `base`.
    pub fn new(prog: &P, base: VertexId, len: usize) -> Self {
        Self {
            base,
            acc: vec![prog.zero(); len],
            has: vec![0u8; len],
        }
    }

    /// Reset to the zero state (reused across iterations to avoid
    /// reallocation — the "workhorse collection" pattern).
    pub fn reset(&mut self, prog: &P) {
        self.acc.fill(prog.zero());
        self.has.fill(0);
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.acc.len()
    }

    /// Whether the buffer covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// Compact into hub form: the (global id, accumulator) pairs of
    /// vertices that received messages. Destination ids come out sorted
    /// because the buffer is id-ordered.
    pub fn compact(&self) -> (Vec<VertexId>, Vec<P::Accum>) {
        let mut dsts = Vec::new();
        let mut accs = Vec::new();
        for k in 0..self.acc.len() {
            if self.has[k] != 0 {
                dsts.push(self.base + k as VertexId);
                accs.push(self.acc[k]);
            }
        }
        (dsts, accs)
    }

    /// Merge a hub (written by [`AccBuf::compact`]) back in via the
    /// program's `combine`.
    pub fn merge_hub(&mut self, prog: &P, dsts: &[VertexId], accs: &[P::Accum]) {
        debug_assert_eq!(dsts.len(), accs.len());
        for (&d, a) in dsts.iter().zip(accs) {
            self.merge_one(prog, d, a);
        }
    }

    /// Merge a zero-copy [`HubView`] — same semantics as
    /// [`AccBuf::merge_hub`], decoding each accumulator straight out of
    /// the blob with no intermediate vectors.
    pub fn merge_hub_view(&mut self, prog: &P, hub: &HubView<P::Accum>) {
        let dsts = hub.dsts();
        for (k, &d) in dsts.iter().enumerate() {
            self.merge_one(prog, d, &hub.acc(k));
        }
    }

    #[inline]
    fn merge_one(&mut self, prog: &P, d: VertexId, a: &P::Accum) {
        let k = (d - self.base) as usize;
        if self.has[k] == 0 {
            self.acc[k] = *a;
            self.has[k] = 1;
        } else {
            prog.combine(&mut self.acc[k], a);
        }
    }

    /// Merge a whole column's hubs at once with destination-range
    /// parallelism: the buffer is sliced into disjoint vertex ranges and
    /// each task folds *every* hub's entries for its range, in hub order.
    ///
    /// Per destination slot the merge order equals the sequential
    /// `merge_hub_view(hubs[0]); merge_hub_view(hubs[1]); …` order, so the
    /// result is bitwise-identical to the serial fold at any thread count.
    /// Must be called from outside the worker pool (it submits a batch).
    pub fn merge_hub_views_par(
        &mut self,
        prog: &P,
        hubs: &[HubView<P::Accum>],
        threads: usize,
    ) {
        if hubs.is_empty() {
            return;
        }
        if threads <= 1 || self.len() <= 1 {
            for hub in hubs {
                self.merge_hub_view(prog, hub);
            }
            return;
        }
        let base = self.base;
        #[allow(clippy::type_complexity)]
        let mut tasks: Vec<(VertexId, &mut [P::Accum], &mut [u8])> = Vec::new();
        let mut acc_rest: &mut [P::Accum] = &mut self.acc;
        let mut has_rest: &mut [u8] = &mut self.has;
        let mut start = 0usize;
        for range in split_ranges(acc_rest.len(), threads) {
            let (acc, ar) = std::mem::take(&mut acc_rest).split_at_mut(range.len());
            let (has, hr) = std::mem::take(&mut has_rest).split_at_mut(range.len());
            acc_rest = ar;
            has_rest = hr;
            tasks.push((base + start as VertexId, acc, has));
            start = range.end;
        }
        run_tasks(threads, tasks, |(lo, acc, has)| {
            let hi = lo + acc.len() as VertexId;
            for hub in hubs {
                let dsts = hub.dsts();
                // Hub destinations are sorted; binary-search the slice of
                // entries landing in [lo, hi).
                let from = dsts.partition_point(|&d| d < lo);
                let to = dsts.partition_point(|&d| d < hi);
                for (k, &dst) in (from..to).zip(&dsts[from..to]) {
                    let slot = (dst - lo) as usize;
                    let a = hub.acc(k);
                    if has[slot] == 0 {
                        acc[slot] = a;
                        has[slot] = 1;
                    } else {
                        prog.combine(&mut acc[slot], &a);
                    }
                }
            }
        });
    }
}

/// Finalise one destination interval: fold accumulators into new values.
///
/// `old` and `out` both cover the interval (`out` may alias a ping-pong
/// "next" buffer). Returns whether any vertex changed, which drives the
/// interval activity of §II-B.
pub fn finalize_interval<P: VertexProgram>(
    prog: &P,
    buf: &AccBuf<P>,
    old: &[P::Value],
    out: &mut [P::Value],
) -> bool {
    debug_assert_eq!(old.len(), buf.len());
    debug_assert_eq!(out.len(), buf.len());
    finalize_range(prog, buf, 0, old, out)
}

/// Finalise the sub-range of an interval starting `offset` vertices in:
/// `old`/`out` cover positions `offset .. offset + out.len()` of `buf`.
///
/// This is the chunk body behind the parallel finalizers — `apply` is
/// elementwise, so any chunking of the interval produces bitwise-identical
/// values to the serial sweep.
pub fn finalize_range<P: VertexProgram>(
    prog: &P,
    buf: &AccBuf<P>,
    offset: usize,
    old: &[P::Value],
    out: &mut [P::Value],
) -> bool {
    debug_assert_eq!(old.len(), out.len());
    debug_assert!(offset + out.len() <= buf.len());
    let mut any = false;
    for (idx, k) in (offset..offset + out.len()).enumerate() {
        let v = buf.base + k as VertexId;
        let got = buf.has[k] != 0;
        let new = if got || P::ALWAYS_APPLY {
            prog.apply(v, &old[idx], &buf.acc[k], got)
        } else {
            old[idx]
        };
        if prog.changed(&old[idx], &new) {
            any = true;
        }
        out[idx] = new;
    }
    any
}

/// Parallel [`finalize_interval`]: slices the interval into per-thread
/// chunks and applies them as one pool batch. Bitwise-identical to the
/// serial version (elementwise apply over disjoint ranges). Must be called
/// from outside the worker pool.
pub fn finalize_interval_par<P: VertexProgram>(
    prog: &P,
    buf: &AccBuf<P>,
    old: &[P::Value],
    out: &mut [P::Value],
    threads: usize,
) -> bool {
    debug_assert_eq!(old.len(), buf.len());
    debug_assert_eq!(out.len(), buf.len());
    if threads <= 1 || buf.len() <= 1 {
        return finalize_interval(prog, buf, old, out);
    }
    let any = AtomicBool::new(false);
    #[allow(clippy::type_complexity)]
    let mut tasks: Vec<(usize, &[P::Value], &mut [P::Value])> = Vec::new();
    let mut old_rest = old;
    let mut out_rest = out;
    let mut offset = 0usize;
    for range in split_ranges(buf.len(), threads) {
        let (o, orest) = old_rest.split_at(range.len());
        let (w, wrest) = std::mem::take(&mut out_rest).split_at_mut(range.len());
        old_rest = orest;
        out_rest = wrest;
        tasks.push((offset, o, w));
        offset = range.end;
    }
    run_tasks(threads, tasks, |(off, o, w)| {
        if finalize_range(prog, buf, off, o, w) {
            any.store(true, Ordering::Relaxed);
        }
    });
    any.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::VertexProgram;

    struct Sum;

    impl VertexProgram for Sum {
        type Value = f64;
        type Accum = f64;
        const APPLY_NEEDS_OLD: bool = false;
        const ALWAYS_APPLY: bool = true;

        fn init(&self, _v: VertexId) -> f64 {
            0.0
        }

        fn zero(&self) -> f64 {
            0.0
        }

        fn absorb(&self, _s: VertexId, sv: &f64, _d: VertexId, acc: &mut f64) -> bool {
            *acc += sv;
            true
        }

        fn combine(&self, a: &mut f64, b: &f64) {
            *a += b;
        }

        fn apply(&self, _v: VertexId, _old: &f64, acc: &f64, _got: bool) -> f64 {
            *acc
        }
    }

    #[test]
    fn compact_and_merge_roundtrip() {
        let p = Sum;
        let mut a = AccBuf::<Sum>::new(&p, 10, 5);
        a.acc[1] = 2.5;
        a.has[1] = 1;
        a.acc[4] = 7.0;
        a.has[4] = 1;
        let (dsts, accs) = a.compact();
        assert_eq!(dsts, vec![11, 14]);
        assert_eq!(accs, vec![2.5, 7.0]);

        let mut b = AccBuf::<Sum>::new(&p, 10, 5);
        b.acc[4] = 1.0;
        b.has[4] = 1;
        b.merge_hub(&p, &dsts, &accs);
        assert_eq!(b.acc[1], 2.5);
        assert_eq!(b.acc[4], 8.0);
        assert_eq!(b.has, vec![0, 1, 0, 0, 1]);
    }

    #[test]
    fn reset_clears() {
        let p = Sum;
        let mut a = AccBuf::<Sum>::new(&p, 0, 3);
        a.acc[0] = 9.0;
        a.has[0] = 1;
        a.reset(&p);
        assert_eq!(a.acc, vec![0.0; 3]);
        assert_eq!(a.has, vec![0; 3]);
    }

    #[test]
    fn finalize_reports_changes() {
        let p = Sum;
        let mut buf = AccBuf::<Sum>::new(&p, 0, 2);
        buf.acc[0] = 3.0;
        buf.has[0] = 1;
        let old = vec![3.0, 0.0];
        let mut out = vec![0.0; 2];
        // Vertex 0: 3.0 → 3.0 unchanged; vertex 1: ALWAYS_APPLY applies
        // acc 0.0 over old 0.0, unchanged.
        assert!(!finalize_interval(&p, &buf, &old, &mut out));
        assert_eq!(out, vec![3.0, 0.0]);

        buf.acc[1] = 5.0;
        buf.has[1] = 1;
        assert!(finalize_interval(&p, &buf, &old, &mut out));
        assert_eq!(out, vec![3.0, 5.0]);
    }

    /// A monotone min program to exercise the !ALWAYS_APPLY path.
    struct Min;

    impl VertexProgram for Min {
        type Value = u32;
        type Accum = u32;
        const APPLY_NEEDS_OLD: bool = true;
        const ALWAYS_APPLY: bool = false;

        fn init(&self, _v: VertexId) -> u32 {
            u32::MAX
        }

        fn zero(&self) -> u32 {
            u32::MAX
        }

        fn absorb(&self, _s: VertexId, sv: &u32, _d: VertexId, acc: &mut u32) -> bool {
            *acc = (*acc).min(sv.saturating_add(1));
            true
        }

        fn combine(&self, a: &mut u32, b: &u32) {
            *a = (*a).min(*b);
        }

        fn apply(&self, _v: VertexId, old: &u32, acc: &u32, _got: bool) -> u32 {
            (*old).min(*acc)
        }
    }

    #[test]
    fn finalize_keeps_old_without_messages() {
        let p = Min;
        let buf = AccBuf::<Min>::new(&p, 0, 2);
        let old = vec![4u32, 9];
        let mut out = vec![0u32; 2];
        assert!(!finalize_interval(&p, &buf, &old, &mut out));
        assert_eq!(out, old);
    }

    #[test]
    fn parallel_finalize_matches_serial_bitwise() {
        let p = Sum;
        let len = 103;
        let mut buf = AccBuf::<Sum>::new(&p, 5, len);
        for k in 0..len {
            if k % 3 != 0 {
                buf.acc[k] = k as f64 * 0.1;
                buf.has[k] = 1;
            }
        }
        let old: Vec<f64> = (0..len).map(|k| k as f64 * 0.01).collect();
        let mut serial = vec![0.0f64; len];
        let s_ch = finalize_interval(&p, &buf, &old, &mut serial);
        for threads in [1usize, 2, 4, 8] {
            let mut par = vec![0.0f64; len];
            let p_ch = finalize_interval_par(&p, &buf, &old, &mut par, threads);
            assert_eq!(s_ch, p_ch, "threads={threads}");
            assert!(
                serial.iter().zip(&par).all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads={threads}"
            );
        }
    }

    fn hub(dsts: &[VertexId], accs: &[f64]) -> HubView<f64> {
        use nxgraph_storage::format::{self, FileKind};
        use nxgraph_storage::SharedBytes;
        let mut payload = Vec::new();
        format::push_u32(&mut payload, dsts.len() as u32);
        for &d in dsts {
            format::push_u32(&mut payload, d);
        }
        for a in accs {
            use crate::types::Attr;
            a.write_to(&mut payload);
        }
        let mut blob = Vec::new();
        format::write_blob(&mut blob, FileKind::Hub, &payload).unwrap();
        HubView::parse(SharedBytes::from(blob), "h", true).unwrap()
    }

    #[test]
    fn parallel_hub_merge_matches_serial_bitwise() {
        let p = Sum;
        let len = 64usize;
        let hubs = vec![
            hub(&[3, 7, 40, 63], &[0.1, 0.2, 0.3, 0.4]),
            hub(&[0, 7, 39, 40], &[1.5, 2.5, 3.5, 4.5]),
            hub(&[7, 62], &[-0.25, 8.0]),
        ];
        let mut serial = AccBuf::<Sum>::new(&p, 0, len);
        serial.acc[7] = 9.0;
        serial.has[7] = 1;
        for h in &hubs {
            serial.merge_hub_view(&p, h);
        }
        for threads in [1usize, 2, 4, 8] {
            let mut par = AccBuf::<Sum>::new(&p, 0, len);
            par.acc[7] = 9.0;
            par.has[7] = 1;
            par.merge_hub_views_par(&p, &hubs, threads);
            assert_eq!(serial.has, par.has, "threads={threads}");
            assert!(
                serial
                    .acc
                    .iter()
                    .zip(&par.acc)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "threads={threads}"
            );
        }
    }
}
