//! Per-interval accumulator state shared by all three update strategies.

use crate::dsss::HubView;
use crate::program::VertexProgram;
use crate::types::VertexId;

/// Accumulators (and has-message flags) for one destination interval.
///
/// `acc[k]` belongs to vertex `base + k`. In SPU these live for the whole
/// run; in DPU they are compacted into hubs after each `(i, j)` sub-shard
/// pass; in MPU both uses coexist.
pub struct AccBuf<P: VertexProgram> {
    /// First vertex id of the interval.
    pub base: VertexId,
    /// One accumulator per vertex of the interval.
    pub acc: Vec<P::Accum>,
    /// 1 when the vertex received at least one message this pass.
    pub has: Vec<u8>,
}

impl<P: VertexProgram> AccBuf<P> {
    /// Fresh zeroed buffer for an interval of `len` vertices starting at
    /// `base`.
    pub fn new(prog: &P, base: VertexId, len: usize) -> Self {
        Self {
            base,
            acc: vec![prog.zero(); len],
            has: vec![0u8; len],
        }
    }

    /// Reset to the zero state (reused across iterations to avoid
    /// reallocation — the "workhorse collection" pattern).
    pub fn reset(&mut self, prog: &P) {
        self.acc.fill(prog.zero());
        self.has.fill(0);
    }

    /// Number of vertices covered.
    pub fn len(&self) -> usize {
        self.acc.len()
    }

    /// Whether the buffer covers no vertices.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// Compact into hub form: the (global id, accumulator) pairs of
    /// vertices that received messages. Destination ids come out sorted
    /// because the buffer is id-ordered.
    pub fn compact(&self) -> (Vec<VertexId>, Vec<P::Accum>) {
        let mut dsts = Vec::new();
        let mut accs = Vec::new();
        for k in 0..self.acc.len() {
            if self.has[k] != 0 {
                dsts.push(self.base + k as VertexId);
                accs.push(self.acc[k]);
            }
        }
        (dsts, accs)
    }

    /// Merge a hub (written by [`AccBuf::compact`]) back in via the
    /// program's `combine`.
    pub fn merge_hub(&mut self, prog: &P, dsts: &[VertexId], accs: &[P::Accum]) {
        debug_assert_eq!(dsts.len(), accs.len());
        for (&d, a) in dsts.iter().zip(accs) {
            self.merge_one(prog, d, a);
        }
    }

    /// Merge a zero-copy [`HubView`] — same semantics as
    /// [`AccBuf::merge_hub`], decoding each accumulator straight out of
    /// the blob with no intermediate vectors.
    pub fn merge_hub_view(&mut self, prog: &P, hub: &HubView<P::Accum>) {
        let dsts = hub.dsts();
        for (k, &d) in dsts.iter().enumerate() {
            self.merge_one(prog, d, &hub.acc(k));
        }
    }

    #[inline]
    fn merge_one(&mut self, prog: &P, d: VertexId, a: &P::Accum) {
        let k = (d - self.base) as usize;
        if self.has[k] == 0 {
            self.acc[k] = *a;
            self.has[k] = 1;
        } else {
            prog.combine(&mut self.acc[k], a);
        }
    }
}

/// Finalise one destination interval: fold accumulators into new values.
///
/// `old` and `out` both cover the interval (`out` may alias a ping-pong
/// "next" buffer). Returns whether any vertex changed, which drives the
/// interval activity of §II-B.
pub fn finalize_interval<P: VertexProgram>(
    prog: &P,
    buf: &AccBuf<P>,
    old: &[P::Value],
    out: &mut [P::Value],
) -> bool {
    debug_assert_eq!(old.len(), buf.len());
    debug_assert_eq!(out.len(), buf.len());
    let mut any = false;
    for k in 0..buf.len() {
        let v = buf.base + k as VertexId;
        let got = buf.has[k] != 0;
        let new = if got || P::ALWAYS_APPLY {
            prog.apply(v, &old[k], &buf.acc[k], got)
        } else {
            old[k]
        };
        if prog.changed(&old[k], &new) {
            any = true;
        }
        out[k] = new;
    }
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::VertexProgram;

    struct Sum;

    impl VertexProgram for Sum {
        type Value = f64;
        type Accum = f64;
        const APPLY_NEEDS_OLD: bool = false;
        const ALWAYS_APPLY: bool = true;

        fn init(&self, _v: VertexId) -> f64 {
            0.0
        }

        fn zero(&self) -> f64 {
            0.0
        }

        fn absorb(&self, _s: VertexId, sv: &f64, _d: VertexId, acc: &mut f64) -> bool {
            *acc += sv;
            true
        }

        fn combine(&self, a: &mut f64, b: &f64) {
            *a += b;
        }

        fn apply(&self, _v: VertexId, _old: &f64, acc: &f64, _got: bool) -> f64 {
            *acc
        }
    }

    #[test]
    fn compact_and_merge_roundtrip() {
        let p = Sum;
        let mut a = AccBuf::<Sum>::new(&p, 10, 5);
        a.acc[1] = 2.5;
        a.has[1] = 1;
        a.acc[4] = 7.0;
        a.has[4] = 1;
        let (dsts, accs) = a.compact();
        assert_eq!(dsts, vec![11, 14]);
        assert_eq!(accs, vec![2.5, 7.0]);

        let mut b = AccBuf::<Sum>::new(&p, 10, 5);
        b.acc[4] = 1.0;
        b.has[4] = 1;
        b.merge_hub(&p, &dsts, &accs);
        assert_eq!(b.acc[1], 2.5);
        assert_eq!(b.acc[4], 8.0);
        assert_eq!(b.has, vec![0, 1, 0, 0, 1]);
    }

    #[test]
    fn reset_clears() {
        let p = Sum;
        let mut a = AccBuf::<Sum>::new(&p, 0, 3);
        a.acc[0] = 9.0;
        a.has[0] = 1;
        a.reset(&p);
        assert_eq!(a.acc, vec![0.0; 3]);
        assert_eq!(a.has, vec![0; 3]);
    }

    #[test]
    fn finalize_reports_changes() {
        let p = Sum;
        let mut buf = AccBuf::<Sum>::new(&p, 0, 2);
        buf.acc[0] = 3.0;
        buf.has[0] = 1;
        let old = vec![3.0, 0.0];
        let mut out = vec![0.0; 2];
        // Vertex 0: 3.0 → 3.0 unchanged; vertex 1: ALWAYS_APPLY applies
        // acc 0.0 over old 0.0, unchanged.
        assert!(!finalize_interval(&p, &buf, &old, &mut out));
        assert_eq!(out, vec![3.0, 0.0]);

        buf.acc[1] = 5.0;
        buf.has[1] = 1;
        assert!(finalize_interval(&p, &buf, &old, &mut out));
        assert_eq!(out, vec![3.0, 5.0]);
    }

    /// A monotone min program to exercise the !ALWAYS_APPLY path.
    struct Min;

    impl VertexProgram for Min {
        type Value = u32;
        type Accum = u32;
        const APPLY_NEEDS_OLD: bool = true;
        const ALWAYS_APPLY: bool = false;

        fn init(&self, _v: VertexId) -> u32 {
            u32::MAX
        }

        fn zero(&self) -> u32 {
            u32::MAX
        }

        fn absorb(&self, _s: VertexId, sv: &u32, _d: VertexId, acc: &mut u32) -> bool {
            *acc = (*acc).min(sv.saturating_add(1));
            true
        }

        fn combine(&self, a: &mut u32, b: &u32) {
            *a = (*a).min(*b);
        }

        fn apply(&self, _v: VertexId, old: &u32, acc: &u32, _got: bool) -> u32 {
            (*old).min(*acc)
        }
    }

    #[test]
    fn finalize_keeps_old_without_messages() {
        let p = Min;
        let buf = AccBuf::<Min>::new(&p, 0, 2);
        let old = vec![4u32, 9];
        let mut out = vec![0u32; 2];
        assert!(!finalize_interval(&p, &buf, &old, &mut out));
        assert_eq!(out, old);
    }
}
