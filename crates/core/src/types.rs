//! Fundamental types: vertex ids and fixed-size attribute encoding.

/// Dense vertex identifier, produced by degreeing (§III-A).
///
/// Ids are contiguous `0..n`; the paper stores an interval as "only
/// attributes of vertices and an offset of the first vertex", which requires
/// exactly this density. `u32` bounds graphs at ~4.2 B vertices — beyond
/// Yahoo-web, the paper's largest dataset.
pub type VertexId = u32;

/// A fixed-size, plain-old-data vertex attribute.
///
/// Interval and hub files store attributes as flat little-endian arrays;
/// this trait supplies the encoding without any `unsafe` transmutes. All
/// engine data paths are generic over `Attr`, so a program may use `f64`
/// ranks, `u32` labels, or packed structs.
pub trait Attr: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {
    /// Encoded size in bytes (`Ba` in the paper's notation).
    const SIZE: usize;

    /// Append the little-endian encoding of `self` to `buf`.
    fn write_to(&self, buf: &mut Vec<u8>);

    /// Decode from exactly [`Self::SIZE`] bytes.
    fn read_from(bytes: &[u8]) -> Self;

    /// Encode a slice of attributes into a byte vector.
    fn encode_slice(vals: &[Self]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(vals.len() * Self::SIZE);
        for v in vals {
            v.write_to(&mut buf);
        }
        buf
    }

    /// Decode a byte vector into attributes. Panics if `bytes` is not a
    /// whole number of attributes (file headers are checksummed upstream,
    /// so a mismatch here is a logic error, not bad input).
    fn decode_slice(bytes: &[u8]) -> Vec<Self> {
        assert!(
            bytes.len().is_multiple_of(Self::SIZE),
            "byte length {} not a multiple of attr size {}",
            bytes.len(),
            Self::SIZE
        );
        bytes.chunks_exact(Self::SIZE).map(Self::read_from).collect()
    }
}

impl Attr for u32 {
    const SIZE: usize = 4;

    fn write_to(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }

    fn read_from(bytes: &[u8]) -> Self {
        u32::from_le_bytes(bytes[..4].try_into().unwrap())
    }
}

impl Attr for u64 {
    const SIZE: usize = 8;

    fn write_to(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }

    fn read_from(bytes: &[u8]) -> Self {
        u64::from_le_bytes(bytes[..8].try_into().unwrap())
    }
}

impl Attr for f64 {
    const SIZE: usize = 8;

    fn write_to(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }

    fn read_from(bytes: &[u8]) -> Self {
        f64::from_le_bytes(bytes[..8].try_into().unwrap())
    }
}

impl Attr for f32 {
    const SIZE: usize = 4;

    fn write_to(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }

    fn read_from(bytes: &[u8]) -> Self {
        f32::from_le_bytes(bytes[..4].try_into().unwrap())
    }
}

impl Attr for (u32, u32) {
    const SIZE: usize = 8;

    fn write_to(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.0.to_le_bytes());
        buf.extend_from_slice(&self.1.to_le_bytes());
    }

    fn read_from(bytes: &[u8]) -> Self {
        (
            u32::from_le_bytes(bytes[..4].try_into().unwrap()),
            u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
        )
    }
}

impl Attr for (f64, u32) {
    const SIZE: usize = 12;

    fn write_to(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.0.to_le_bytes());
        buf.extend_from_slice(&self.1.to_le_bytes());
    }

    fn read_from(bytes: &[u8]) -> Self {
        (
            f64::from_le_bytes(bytes[..8].try_into().unwrap()),
            u32::from_le_bytes(bytes[8..12].try_into().unwrap()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<A: Attr>(vals: Vec<A>) {
        let bytes = A::encode_slice(&vals);
        assert_eq!(bytes.len(), vals.len() * A::SIZE);
        assert_eq!(A::decode_slice(&bytes), vals);
    }

    #[test]
    fn u32_roundtrip() {
        roundtrip(vec![0u32, 1, u32::MAX]);
    }

    #[test]
    fn u64_roundtrip() {
        roundtrip(vec![0u64, u64::MAX, 42]);
    }

    #[test]
    fn f64_roundtrip() {
        roundtrip(vec![0.0f64, -1.5, f64::INFINITY, 1e-300]);
    }

    #[test]
    fn f32_roundtrip() {
        roundtrip(vec![0.0f32, 3.25, f32::NEG_INFINITY]);
    }

    #[test]
    fn pair_roundtrip() {
        roundtrip(vec![(0u32, 5u32), (u32::MAX, 0)]);
        roundtrip(vec![(1.5f64, 7u32)]);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn decode_rejects_ragged() {
        let _ = u32::decode_slice(&[1, 2, 3]);
    }
}
