//! Persistent worker pool with scoped batch execution.
//!
//! NXgraph's engines issue a *batch* of independent tasks per row/phase and
//! barrier on completion — hundreds of batches per run. Spawning OS threads
//! per batch costs more than many batches' work, so a process-wide pool of
//! workers is created lazily and reused; the submitting thread always
//! participates, so `threads = 1` runs entirely inline.
//!
//! The pool is **sized to the request**: it starts at
//! `available_parallelism() − 1` workers and grows whenever a
//! [`run_tasks`] call asks for more concurrency than has been spawned so
//! far (capped at [`MAX_POOL_WORKERS`]), so a forced `--threads N` above
//! the host's core count still gets N-way task interleaving instead of
//! being silently clamped by whoever touched the pool first.
//!
//! Tasks may borrow the submitter's stack: [`run_tasks`] does not return
//! until every task finished, which is the safety contract that lets the
//! type-erased batch pointer cross thread boundaries (see the `Safety`
//! notes inline).

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::OnceLock;

use parking_lot::{Condvar, Mutex};

/// Execute `tasks` using up to `threads` workers (including the calling
/// thread); `f` consumes each task.
///
/// Order of execution is unspecified. A panic inside `f` is re-raised on
/// the calling thread after the batch drains (worker threads survive).
pub fn run_tasks<T, F>(threads: usize, tasks: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let threads = threads.max(1);
    if tasks.is_empty() {
        return;
    }
    if threads == 1 || tasks.len() == 1 {
        for t in tasks {
            f(t);
        }
        return;
    }
    global_pool().run(threads, tasks, &f);
}

/// Split the range `0..len` into at most `parts` contiguous sub-ranges of
/// near-equal length. Used to slice destination intervals into per-task
/// chunks.
///
/// Returns an empty vector when `len == 0`.
pub fn split_ranges(len: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, len);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for k in 0..parts {
        let sz = base + usize::from(k < extra);
        out.push(start..start + sz);
        start += sz;
    }
    debug_assert_eq!(start, len);
    out
}

// ---------------------------------------------------------------------------
// Pool internals
// ---------------------------------------------------------------------------

/// Type-erased batch: a function pointer plus a context pointer into the
/// submitter's stack frame.
#[derive(Clone, Copy)]
struct BatchRef {
    run: unsafe fn(*const ()),
    ctx: *const (),
}

// Safety: the context outlives the batch because `Pool::run` blocks until
// every worker finished with it.
unsafe impl Send for BatchRef {}

/// Hard ceiling on pool workers: a `run_tasks(threads, …)` request above
/// this is clamped (far beyond any real core count; prevents a buggy
/// caller from fork-bombing the process with OS threads).
pub const MAX_POOL_WORKERS: usize = 256;

struct PoolState {
    /// Currently published batch, if any.
    batch: Option<BatchRef>,
    /// Monotone batch counter; workers use it to detect new work.
    epoch: u64,
    /// Workers still inside the current batch.
    active: usize,
    /// Worker threads spawned so far (grows with demand, never shrinks).
    spawned: usize,
    /// Pool shutdown flag (used only by tests tearing down).
    shutdown: bool,
}

struct Pool {
    state: Mutex<PoolState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// The process-wide pool, created on first use and kept for the process
/// lifetime (worker threads are detached; the allocation is intentionally
/// leaked).
fn global_pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .saturating_sub(1)
            .max(1);
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            state: Mutex::new(PoolState {
                batch: None,
                epoch: 0,
                active: 0,
                spawned: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }));
        pool.ensure_workers(workers);
        pool
    })
}

/// One task slot, claimed at most once via the batch cursor.
///
/// `cursor.fetch_add` hands out each index to exactly one thread, so slots
/// need no lock: the claiming thread has exclusive access to its cell. The
/// submitter's writes are published to workers by the pool's state mutex
/// (batch publication happens-before any worker reads the batch).
struct TaskSlot<T>(UnsafeCell<Option<T>>);

// Safety: see above — exclusive per-index access via the cursor.
unsafe impl<T: Send> Sync for TaskSlot<T> {}

struct Ctx<'f, T> {
    tasks: Vec<TaskSlot<T>>,
    cursor: AtomicUsize,
    /// Worker participation permits (the submitter is not counted).
    permits: AtomicIsize,
    f: &'f (dyn Fn(T) + Sync),
    panicked: AtomicBool,
}

impl Pool {
    /// Grow the worker set to at least `want` threads (clamped to
    /// [`MAX_POOL_WORKERS`]). Idempotent and cheap when already large
    /// enough; never shrinks.
    fn ensure_workers(&'static self, want: usize) {
        let want = want.min(MAX_POOL_WORKERS);
        let mut st = self.state.lock();
        while st.spawned < want {
            std::thread::Builder::new()
                .name("nxgraph-worker".into())
                .spawn(move || self.worker_loop())
                .expect("failed to spawn pool worker");
            st.spawned += 1;
        }
    }

    fn worker_loop(&self) {
        let mut seen_epoch = 0u64;
        loop {
            let batch = {
                let mut st = self.state.lock();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.batch.is_some() && st.epoch != seen_epoch {
                        seen_epoch = st.epoch;
                        st.active += 1;
                        break st.batch.unwrap();
                    }
                    self.work_cv.wait(&mut st);
                }
            };
            // Safety: `Pool::run` keeps the context alive until `active`
            // returns to zero, which we signal below.
            unsafe { (batch.run)(batch.ctx) };
            let mut st = self.state.lock();
            st.active -= 1;
            if st.active == 0 {
                self.done_cv.notify_all();
            }
        }
    }

    fn run<T: Send>(&'static self, threads: usize, tasks: Vec<T>, f: &(dyn Fn(T) + Sync)) {
        // Size the pool to the request: the submitter participates too, so
        // `threads`-way concurrency needs `threads − 1` workers.
        self.ensure_workers(threads.saturating_sub(1));
        let ctx = Ctx {
            tasks: tasks.into_iter().map(|t| TaskSlot(UnsafeCell::new(Some(t)))).collect(),
            cursor: AtomicUsize::new(0),
            permits: AtomicIsize::new(threads as isize - 1),
            f,
            panicked: AtomicBool::new(false),
        };

        unsafe fn drain<T: Send>(p: *const ()) {
            // Safety: p was created from a live `Ctx` in `run` below and
            // `run` blocks until all workers exit this function.
            let ctx = unsafe { &*(p as *const Ctx<'_, T>) };
            if ctx.permits.fetch_sub(1, Ordering::AcqRel) <= 0 {
                return; // concurrency limit reached for this batch
            }
            drain_inline(ctx);
        }

        fn drain_inline<T: Send>(ctx: &Ctx<'_, T>) {
            loop {
                let i = ctx.cursor.fetch_add(1, Ordering::Relaxed);
                if i >= ctx.tasks.len() {
                    return;
                }
                // Safety: `i` came from the cursor, so this thread is the
                // only one ever touching slot `i` (see `TaskSlot`).
                let task = unsafe { (*ctx.tasks[i].0.get()).take() };
                if let Some(task) = task {
                    let r = catch_unwind(AssertUnwindSafe(|| (ctx.f)(task)));
                    if r.is_err() {
                        ctx.panicked.store(true, Ordering::Release);
                    }
                }
            }
        }

        // Publish the batch.
        {
            let mut st = self.state.lock();
            // Wait for any other submitter's batch to finish first.
            while st.batch.is_some() || st.active > 0 {
                self.done_cv.wait(&mut st);
            }
            st.batch = Some(BatchRef {
                run: drain::<T>,
                ctx: &ctx as *const Ctx<'_, T> as *const (),
            });
            st.epoch += 1;
            self.work_cv.notify_all();
        }

        // The submitter always participates (without consuming a permit).
        drain_inline(&ctx);

        // Barrier: retract the batch and wait for stragglers.
        {
            let mut st = self.state.lock();
            st.batch = None;
            while st.active > 0 {
                self.done_cv.wait(&mut st);
            }
            self.done_cv.notify_all();
        }

        if ctx.panicked.load(Ordering::Acquire) {
            panic!("worker task panicked");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_task_once() {
        let counter = AtomicUsize::new(0);
        let tasks: Vec<usize> = (0..1000).collect();
        run_tasks(8, tasks, |t| {
            counter.fetch_add(t + 1, Ordering::Relaxed);
        });
        // Σ (t+1) for t in 0..1000 = 500500.
        assert_eq!(counter.load(Ordering::Relaxed), 500_500);
    }

    #[test]
    fn single_thread_path() {
        let counter = AtomicUsize::new(0);
        run_tasks(1, vec![1, 2, 3], |t| {
            counter.fetch_add(t, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 6);
    }

    #[test]
    fn empty_tasks_is_noop() {
        run_tasks(4, Vec::<usize>::new(), |_| panic!("should not run"));
    }

    #[test]
    fn tasks_may_borrow_mutable_disjoint_slices() {
        let mut data = vec![0u64; 64];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(8).collect();
        run_tasks(4, chunks, |chunk| {
            for x in chunk {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    #[should_panic(expected = "worker task panicked")]
    fn worker_panics_propagate() {
        run_tasks(2, (0..64).collect(), |t: i32| {
            if t == 33 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn many_sequential_batches_are_cheap() {
        // Regression guard for the per-batch overhead that motivated the
        // persistent pool: 1000 barriers must complete quickly.
        let counter = AtomicUsize::new(0);
        let start = std::time::Instant::now();
        for _ in 0..1000 {
            run_tasks(4, vec![1usize, 2, 3, 4, 5, 6, 7, 8], |t| {
                counter.fetch_add(t, Ordering::Relaxed);
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 36_000);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(5),
            "1000 batches took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn concurrent_submitters_serialise_safely() {
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..50 {
                        run_tasks(3, vec![1usize; 16], |t| {
                            total.fetch_add(t, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 4 * 50 * 16);
    }

    /// Rendezvous: every task parks until `want` tasks are running at
    /// once, so the batch can only finish if the pool really provides
    /// `want`-way concurrency. On hosts with fewer cores the old
    /// fixed-size pool deadlocks here (it never grows past
    /// `available_parallelism() − 1` workers).
    fn rendezvous(want: usize) {
        let inside = AtomicUsize::new(0);
        let go = AtomicBool::new(false);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        run_tasks(want, vec![(); want], |()| {
            inside.fetch_add(1, Ordering::SeqCst);
            loop {
                if inside.load(Ordering::SeqCst) >= want {
                    go.store(true, Ordering::SeqCst);
                }
                if go.load(Ordering::SeqCst) {
                    return;
                }
                assert!(
                    std::time::Instant::now() < deadline,
                    "pool never reached {want}-way concurrency"
                );
                std::thread::yield_now();
            }
        });
        assert_eq!(inside.load(Ordering::SeqCst), want);
    }

    #[test]
    fn pool_provides_requested_concurrency() {
        rendezvous(4);
    }

    #[test]
    fn pool_grows_beyond_first_request() {
        // A small first call must not cap later, larger requests.
        run_tasks(2, vec![1usize, 2, 3, 4], |_| {});
        rendezvous(6);
    }

    #[test]
    fn split_ranges_covers_exactly() {
        for (len, parts) in [(10, 3), (10, 10), (10, 20), (1, 1), (7, 2)] {
            let ranges = split_ranges(len, parts);
            assert!(ranges.len() <= parts);
            let mut cursor = 0;
            for r in &ranges {
                assert_eq!(r.start, cursor);
                assert!(!r.is_empty());
                cursor = r.end;
            }
            assert_eq!(cursor, len);
        }
        assert!(split_ranges(0, 5).is_empty());
    }

    #[test]
    fn split_ranges_is_balanced() {
        let ranges = split_ranges(100, 7);
        let sizes: Vec<_> = ranges.iter().map(|r| r.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "{sizes:?}");
    }
}
