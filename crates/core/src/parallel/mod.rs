//! Multi-threading substrate.
//!
//! NXgraph's parallel model (§III-D) is *task*-shaped: an update pass
//! produces a list of independent tasks (a destination range of one
//! sub-shard plus the exclusive accumulator slice it writes), and a fixed
//! set of worker threads drains them. [`pool`] implements that substrate on
//! scoped threads and a crossbeam channel — no work item ever shares a
//! mutable destination, so the data path is lock-free by construction.

pub mod pool;

pub use pool::{run_tasks, split_ranges};
