//! Sharding — the second preprocessing step (§III-A).
//!
//! Divides the dense id space into `P` equal-sized intervals and the
//! pre-shard edges into `P²` destination-sorted sub-shards, writing each to
//! the target disk together with the degree table, mapping tables and the
//! manifest. Optionally also writes the transposed sub-shards (needed by
//! reverse-direction programs: WCC's undirected traversal and SCC's
//! backward phase).

use std::sync::Arc;

use nxgraph_storage::format::{self, EncodingPolicy, FileKind};
use nxgraph_storage::manifest::GraphManifest;
use nxgraph_storage::Disk;

use crate::dsss::{
    PreparedGraph, SubShard, ENCODING_MANIFEST_KEY, SS_DISK_BYTES_MANIFEST_KEY,
    SS_RAW_BYTES_MANIFEST_KEY,
};
use crate::error::{EngineError, EngineResult};
use crate::types::VertexId;

use super::degree::Degreeing;
use super::PrepConfig;

/// Write the full DSSS representation of `deg` onto `disk`.
///
/// Sub-shard blobs are encoded under `cfg.encoding`; the policy plus the
/// aggregate raw-vs-on-disk byte totals (the compression ratio) are
/// recorded as manifest extras.
pub fn shard(
    deg: &Degreeing,
    cfg: &PrepConfig,
    disk: Arc<dyn Disk>,
) -> EngineResult<PreparedGraph> {
    if cfg.num_intervals == 0 {
        return Err(EngineError::Invalid("P must be positive".into()));
    }
    if deg.num_vertices == 0 {
        return Err(EngineError::Invalid(
            "cannot shard an empty graph (no edges)".into(),
        ));
    }
    let p = cfg.num_intervals;
    let mut manifest = GraphManifest::new(
        cfg.name.as_str(),
        deg.num_vertices as u64,
        deg.edges.len() as u64,
        p,
        cfg.build_reverse,
    );
    let interval_len = manifest.interval_len() as VertexId;
    let interval_of = |v: VertexId| (v / interval_len).min(p - 1);

    // Bucket edges into the P×P grid, then build each sub-shard.
    let mut sizes = write_grid(&deg.edges, p, interval_of, false, cfg.encoding, disk.as_ref())?;
    if cfg.build_reverse {
        let transposed: Vec<(VertexId, VertexId)> =
            deg.edges.iter().map(|&(s, d)| (d, s)).collect();
        let rev = write_grid(&transposed, p, interval_of, true, cfg.encoding, disk.as_ref())?;
        sizes.0 += rev.0;
        sizes.1 += rev.1;
    }
    manifest
        .extra
        .insert(ENCODING_MANIFEST_KEY.to_string(), cfg.encoding.to_string());
    manifest
        .extra
        .insert(SS_RAW_BYTES_MANIFEST_KEY.to_string(), sizes.0.to_string());
    manifest
        .extra
        .insert(SS_DISK_BYTES_MANIFEST_KEY.to_string(), sizes.1.to_string());

    // Degree table.
    let mut blob = Vec::new();
    format::write_blob(
        &mut blob,
        FileKind::Degrees,
        &format::encode_u32s(&deg.out_degrees),
    )
    .expect("vec write is infallible");
    disk.write_all_to(GraphManifest::degree_file(), &blob)?;

    // Reverse mapping (id → original index), u64 little-endian array.
    let mut payload = Vec::with_capacity(deg.index_of.len() * 8);
    for &idx in &deg.index_of {
        format::push_u64(&mut payload, idx);
    }
    let mut blob = Vec::new();
    format::write_blob(&mut blob, FileKind::Mapping, &payload).expect("vec write is infallible");
    disk.write_all_to(GraphManifest::reverse_mapping_file(), &blob)?;

    manifest.save(disk.as_ref())?;
    PreparedGraph::from_parts(disk, manifest, Arc::new(deg.out_degrees.clone()))
}

/// Bucket `edges` by (source interval, destination interval) and write one
/// sub-shard file per cell. Returns `(raw_bytes, disk_bytes)` — what the
/// grid would occupy raw vs what was actually written, the aggregate
/// compression ratio recorded in the manifest.
fn write_grid(
    edges: &[(VertexId, VertexId)],
    p: u32,
    interval_of: impl Fn(VertexId) -> u32,
    reverse: bool,
    encoding: EncodingPolicy,
    disk: &dyn Disk,
) -> EngineResult<(u64, u64)> {
    let cells = (p as usize) * (p as usize);
    let mut buckets: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); cells];
    for &(s, d) in edges {
        let cell = interval_of(s) as usize * p as usize + interval_of(d) as usize;
        buckets[cell].push((s, d));
    }
    let (mut raw_bytes, mut disk_bytes) = (0u64, 0u64);
    for i in 0..p {
        for j in 0..p {
            let cell = i as usize * p as usize + j as usize;
            let ss = SubShard::from_edges(i, j, std::mem::take(&mut buckets[cell]));
            let name = if reverse {
                GraphManifest::rev_subshard_file(i, j)
            } else {
                GraphManifest::subshard_file(i, j)
            };
            let blob = ss.encode_with(encoding);
            raw_bytes += ss.encoded_len();
            disk_bytes += blob.len() as u64;
            disk.write_all_to(&name, &blob)?;
        }
    }
    Ok((raw_bytes, disk_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::degree::degree;
    use crate::prep::PrepConfig;
    use nxgraph_storage::MemDisk;
    use std::collections::HashSet;

    fn fig1_raw() -> Vec<(u64, u64)> {
        crate::fig1_example_edges()
            .into_iter()
            .map(|(s, d)| (s as u64, d as u64))
            .collect()
    }

    #[test]
    fn every_edge_lands_in_exactly_one_subshard() {
        let deg = degree(&fig1_raw());
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let g = shard(&deg, &PrepConfig::forward_only("fig1", 4), disk).unwrap();
        let mut collected = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                let ss = g.load_subshard(i, j, false).unwrap();
                for (s, d) in ss.iter_edges() {
                    // Membership invariant.
                    assert!(g.interval_range(i).contains(&s));
                    assert!(g.interval_range(j).contains(&d));
                    collected.push((s, d));
                }
            }
        }
        let mut want = deg.edges.clone();
        want.sort_unstable();
        collected.sort_unstable();
        assert_eq!(collected, want);
    }

    #[test]
    fn matches_paper_fig1_grid() {
        // P=4 with 7 vertices → intervals {0,1},{2,3},{4,5},{6}: exactly
        // the paper's Fig 1 layout.
        let deg = degree(&fig1_raw());
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let g = shard(&deg, &PrepConfig::forward_only("fig1", 4), disk).unwrap();
        // SS3.2 (paper 1-based) = our (2,1): edges 5→2, 4→3, 5→3.
        let ss = g.load_subshard(2, 1, false).unwrap();
        let edges: Vec<_> = ss.iter_edges().collect();
        assert_eq!(edges, vec![(5, 2), (4, 3), (5, 3)]);
        // SS1.1 = our (0,0): empty.
        assert!(g.load_subshard(0, 0, false).unwrap().is_empty());
        // SS4.4 = our (3,3): empty (no 6→6 edge).
        assert!(g.load_subshard(3, 3, false).unwrap().is_empty());
    }

    #[test]
    fn reverse_shards_are_the_transpose() {
        let deg = degree(&fig1_raw());
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let g = shard(&deg, &PrepConfig::new("fig1", 3), disk).unwrap();
        let mut fwd = HashSet::new();
        let mut rev = HashSet::new();
        for i in 0..3 {
            for j in 0..3 {
                fwd.extend(g.load_subshard(i, j, false).unwrap().iter_edges());
                rev.extend(
                    g.load_subshard(i, j, true)
                        .unwrap()
                        .iter_edges()
                        .map(|(s, d)| (d, s)),
                );
            }
        }
        assert_eq!(fwd, rev);
    }

    #[test]
    fn rejects_empty_graph_and_zero_p() {
        let deg = degree(&[]);
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        assert!(shard(&deg, &PrepConfig::forward_only("e", 4), Arc::clone(&disk)).is_err());
        let deg = degree(&[(0, 1)]);
        assert!(shard(&deg, &PrepConfig::forward_only("e", 0), disk).is_err());
    }

    #[test]
    fn p_larger_than_n_works() {
        let deg = degree(&[(0u64, 1u64), (1, 2)]);
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let g = shard(&deg, &PrepConfig::forward_only("tiny", 8), disk).unwrap();
        assert_eq!(g.num_intervals(), 8);
        let mut total = 0;
        for i in 0..8 {
            for j in 0..8 {
                total += g.load_subshard(i, j, false).unwrap().num_edges();
            }
        }
        assert_eq!(total, 2);
    }
}
