//! Out-of-core preprocessing — sharding a graph that never fits in memory.
//!
//! [`preprocess`](super::preprocess) holds the whole pre-shard (every edge)
//! resident while degreeing and bucketing, which caps it at graphs that fit
//! in RAM — exactly what the paper's out-of-core setting rules out. This
//! module shards from a *stream* of edge chunks instead, holding at most
//! one interval row's edges plus the `O(n)` degree table at a time:
//!
//! 1. **Spill pass** — each chunk is appended to one of `P` row spill
//!    files, partitioned by source interval (and, for reverse sub-shards,
//!    to `P` transposed spills partitioned by destination interval), as
//!    raw little-endian `(u32, u32)` records. Degrees accumulate on the
//!    fly. Nothing but the current chunk and `P` write buffers is
//!    resident.
//! 2. **Row pass** — each spill is read back, bucketed by destination
//!    interval, encoded sub-shard by sub-shard under the configured
//!    [`EncodingPolicy`], written, and the spill deleted. Peak memory is
//!    one row (`≈ m/P` edges), the knob the paper turns with `P`.
//!
//! The stream must use dense ids `0..n` directly (the identity mapping) —
//! synthetic generators such as R-MAT already do. This skips the global
//! sort/dedup of degreeing, which is what would force the whole edge list
//! into memory.

use std::sync::Arc;

use nxgraph_storage::format::{self, FileKind};
use nxgraph_storage::manifest::GraphManifest;
use nxgraph_storage::{Disk, DiskWrite, StorageError};

use crate::dsss::{
    PreparedGraph, SubShard, ENCODING_MANIFEST_KEY, SS_DISK_BYTES_MANIFEST_KEY,
    SS_RAW_BYTES_MANIFEST_KEY,
};
use crate::error::{EngineError, EngineResult};
use crate::types::VertexId;

use super::PrepConfig;

/// Spill write-buffer size per row file; 8-byte records are batched into
/// buffers this large before hitting the disk trait.
const SPILL_BUF: usize = 256 * 1024;

/// Row spill file name (deleted before the manifest is saved).
fn spill_name(reverse: bool, i: u32) -> String {
    format!("prep_spill_{}_{i}.tmp", if reverse { "r" } else { "f" })
}

/// A set of `P` append-only spill writers with small batching buffers.
struct Spills {
    writers: Vec<Box<dyn DiskWrite>>,
    bufs: Vec<Vec<u8>>,
}

impl Spills {
    fn create(disk: &dyn Disk, p: u32, reverse: bool) -> EngineResult<Self> {
        let mut writers = Vec::with_capacity(p as usize);
        for i in 0..p {
            writers.push(disk.create(&spill_name(reverse, i))?);
        }
        Ok(Self { writers, bufs: vec![Vec::new(); p as usize] })
    }

    fn push(&mut self, row: u32, s: VertexId, d: VertexId) -> EngineResult<()> {
        let buf = &mut self.bufs[row as usize];
        format::push_u32(buf, s);
        format::push_u32(buf, d);
        if buf.len() >= SPILL_BUF {
            self.writers[row as usize].write_all(buf).map_err(StorageError::from)?;
            buf.clear();
        }
        Ok(())
    }

    fn finish(self) -> EngineResult<()> {
        for (mut w, buf) in self.writers.into_iter().zip(self.bufs) {
            if !buf.is_empty() {
                w.write_all(&buf).map_err(StorageError::from)?;
            }
            w.finish()?;
        }
        Ok(())
    }
}

/// Shard a stream of edge chunks onto `disk` without ever holding the
/// full edge list in memory. `num_vertices` fixes the dense id space up
/// front; every edge endpoint must be `< num_vertices`.
///
/// Chunks may be any size; the generator (not this function) decides how
/// much of the graph exists in memory at once. Returns the opened
/// [`PreparedGraph`], bit-compatible with [`preprocess`](super::preprocess)
/// output for the same dense-id edge sequence.
pub fn preprocess_streamed<C, I>(
    num_vertices: u32,
    chunks: I,
    cfg: &PrepConfig,
    disk: Arc<dyn Disk>,
) -> EngineResult<PreparedGraph>
where
    C: IntoIterator<Item = (VertexId, VertexId)>,
    I: IntoIterator<Item = C>,
{
    if cfg.num_intervals == 0 {
        return Err(EngineError::Invalid("P must be positive".into()));
    }
    if num_vertices == 0 {
        return Err(EngineError::Invalid(
            "cannot shard an empty graph (no vertices)".into(),
        ));
    }
    let p = cfg.num_intervals;
    let mut manifest =
        GraphManifest::new(cfg.name.as_str(), num_vertices as u64, 0, p, cfg.build_reverse);
    let interval_len = manifest.interval_len() as VertexId;
    let interval_of = |v: VertexId| (v / interval_len).min(p - 1);

    // ---- Spill pass -----------------------------------------------------
    let mut out_degrees = vec![0u32; num_vertices as usize];
    let mut fwd = Spills::create(disk.as_ref(), p, false)?;
    let mut rev = if cfg.build_reverse {
        Some(Spills::create(disk.as_ref(), p, true)?)
    } else {
        None
    };
    let mut num_edges = 0u64;
    for chunk in chunks {
        for (s, d) in chunk {
            if s >= num_vertices || d >= num_vertices {
                return Err(EngineError::Invalid(format!(
                    "edge ({s}, {d}) outside dense id space 0..{num_vertices}"
                )));
            }
            out_degrees[s as usize] += 1;
            num_edges += 1;
            fwd.push(interval_of(s), s, d)?;
            if let Some(rev) = rev.as_mut() {
                rev.push(interval_of(d), d, s)?;
            }
        }
    }
    if num_edges == 0 {
        return Err(EngineError::Invalid(
            "cannot shard an empty graph (no edges)".into(),
        ));
    }
    fwd.finish()?;
    if let Some(rev) = rev {
        rev.finish()?;
    }
    manifest.num_edges = num_edges;

    // ---- Row pass -------------------------------------------------------
    let (mut raw_bytes, mut disk_bytes) = (0u64, 0u64);
    let dirs: &[bool] = if cfg.build_reverse { &[false, true] } else { &[false] };
    for &reverse in dirs {
        for i in 0..p {
            let name = spill_name(reverse, i);
            let records = disk.open(&name)?.read_to_vec()?;
            let mut buckets: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); p as usize];
            for rec in records.chunks_exact(8) {
                let s = u32::from_le_bytes(rec[..4].try_into().expect("4-byte src"));
                let d = u32::from_le_bytes(rec[4..].try_into().expect("4-byte dst"));
                buckets[interval_of(d) as usize].push((s, d));
            }
            drop(records);
            for (j, bucket) in buckets.into_iter().enumerate() {
                let ss = SubShard::from_edges(i, j as u32, bucket);
                let file = if reverse {
                    GraphManifest::rev_subshard_file(i, j as u32)
                } else {
                    GraphManifest::subshard_file(i, j as u32)
                };
                let blob = ss.encode_with(cfg.encoding);
                raw_bytes += ss.encoded_len();
                disk_bytes += blob.len() as u64;
                disk.write_all_to(&file, &blob)?;
            }
            disk.remove(&name)?;
        }
    }
    manifest
        .extra
        .insert(ENCODING_MANIFEST_KEY.to_string(), cfg.encoding.to_string());
    manifest
        .extra
        .insert(SS_RAW_BYTES_MANIFEST_KEY.to_string(), raw_bytes.to_string());
    manifest
        .extra
        .insert(SS_DISK_BYTES_MANIFEST_KEY.to_string(), disk_bytes.to_string());

    // Degree table (the only O(n) state this path keeps resident).
    let mut blob = Vec::new();
    format::write_blob(&mut blob, FileKind::Degrees, &format::encode_u32s(&out_degrees))
        .expect("vec write is infallible");
    disk.write_all_to(GraphManifest::degree_file(), &blob)?;

    // Identity reverse mapping: id i maps to index i.
    let mut payload = Vec::with_capacity(num_vertices as usize * 8);
    for id in 0..num_vertices {
        format::push_u64(&mut payload, id as u64);
    }
    let mut blob = Vec::new();
    format::write_blob(&mut blob, FileKind::Mapping, &payload).expect("vec write is infallible");
    disk.write_all_to(GraphManifest::reverse_mapping_file(), &blob)?;

    manifest.save(disk.as_ref())?;
    PreparedGraph::from_parts(disk, manifest, Arc::new(out_degrees))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::{preprocess, PrepConfig};
    use nxgraph_storage::{EncodingPolicy, MemDisk};

    fn fig1_dense() -> Vec<(VertexId, VertexId)> {
        crate::fig1_example_edges()
    }

    /// Same dense-id edges through both paths → byte-identical sub-shards
    /// and identical degree/manifest state.
    #[test]
    fn streamed_matches_classic_on_dense_input() {
        for enc in [EncodingPolicy::Raw, EncodingPolicy::Auto] {
            let cfg = PrepConfig::new("fig1", 4).with_encoding(enc);
            let classic_disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
            let raw: Vec<(u64, u64)> =
                fig1_dense().iter().map(|&(s, d)| (s as u64, d as u64)).collect();
            let classic = preprocess(&raw, &cfg, Arc::clone(&classic_disk)).unwrap();

            let streamed_disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
            // Chunked three edges at a time to exercise chunk boundaries.
            let chunks: Vec<Vec<(VertexId, VertexId)>> =
                fig1_dense().chunks(3).map(|c| c.to_vec()).collect();
            let streamed =
                preprocess_streamed(7, chunks, &cfg, Arc::clone(&streamed_disk)).unwrap();

            assert_eq!(streamed.num_vertices(), classic.num_vertices());
            assert_eq!(streamed.num_edges(), classic.num_edges());
            assert_eq!(streamed.out_degrees(), classic.out_degrees());
            for i in 0..4 {
                for j in 0..4 {
                    for rev in [false, true] {
                        let a = classic.load_subshard(i, j, rev).unwrap();
                        let b = streamed.load_subshard(i, j, rev).unwrap();
                        assert_eq!(
                            a.iter_edges().collect::<Vec<_>>(),
                            b.iter_edges().collect::<Vec<_>>(),
                            "cell ({i},{j}) rev={rev} enc={enc:?}"
                        );
                    }
                }
            }
            // Spills cleaned up.
            for i in 0..4 {
                assert!(!streamed_disk.exists(&spill_name(false, i)));
                assert!(!streamed_disk.exists(&spill_name(true, i)));
            }
        }
    }

    #[test]
    fn rejects_out_of_range_ids_and_empty_streams() {
        let cfg = PrepConfig::forward_only("bad", 2);
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let err = preprocess_streamed(3, vec![vec![(0u32, 5u32)]], &cfg, Arc::clone(&disk));
        assert!(err.is_err());
        let empty: Vec<Vec<(VertexId, VertexId)>> = Vec::new();
        assert!(preprocess_streamed(3, empty, &cfg, Arc::clone(&disk)).is_err());
        assert!(preprocess_streamed(0, vec![vec![(0u32, 1u32)]], &cfg, disk).is_err());
    }
}
