//! Preprocessing pipeline: degreeing then sharding (§III-A).

pub mod degree;
pub mod shard;
pub mod stream;

use std::sync::Arc;

use nxgraph_storage::{Disk, EncodingPolicy};

use crate::dsss::PreparedGraph;
use crate::error::EngineResult;

pub use degree::{degree, Degreeing};
pub use shard::shard;
pub use stream::preprocess_streamed;

/// Configuration for [`preprocess`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrepConfig {
    /// Graph name recorded in the manifest.
    pub name: String,
    /// Number of intervals `P`. The paper finds `P = 12 … 48` to be good
    /// practice (Exp 2); at least one interval must fit in memory.
    pub num_intervals: u32,
    /// Also build transposed sub-shards (required by WCC/SCC).
    pub build_reverse: bool,
    /// On-disk blob encoding (format v3): `Raw` words, delta+varint
    /// `Compressed`, or per-blob `Auto`. Recorded in the manifest so hub
    /// writes during runs follow the same policy.
    pub encoding: EncodingPolicy,
}

impl PrepConfig {
    /// A forward-plus-reverse configuration (the common case).
    pub fn new(name: impl Into<String>, num_intervals: u32) -> Self {
        Self {
            name: name.into(),
            num_intervals,
            build_reverse: true,
            encoding: EncodingPolicy::default(),
        }
    }

    /// Forward-only (halves preprocessing output for PageRank/BFS-only
    /// workloads).
    pub fn forward_only(name: impl Into<String>, num_intervals: u32) -> Self {
        Self {
            name: name.into(),
            num_intervals,
            build_reverse: false,
            encoding: EncodingPolicy::default(),
        }
    }

    /// Builder-style encoding override.
    pub fn with_encoding(mut self, encoding: EncodingPolicy) -> Self {
        self.encoding = encoding;
        self
    }
}

/// Full preprocessing: degree the raw index pairs, shard onto `disk`, and
/// return the opened [`PreparedGraph`].
pub fn preprocess(
    raw_edges: &[(u64, u64)],
    cfg: &PrepConfig,
    disk: Arc<dyn Disk>,
) -> EngineResult<PreparedGraph> {
    let deg = degree::degree(raw_edges);
    shard::shard(&deg, cfg, disk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nxgraph_storage::MemDisk;

    #[test]
    fn end_to_end_prep() {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let raw = vec![(10u64, 20u64), (20, 30), (30, 10), (10, 30)];
        let g = preprocess(&raw, &PrepConfig::new("tri", 2), disk).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_reverse());
        assert_eq!(g.out_degrees().as_slice(), &[2, 1, 1]);
    }

    #[test]
    fn forward_only_skips_reverse() {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let g = preprocess(
            &[(0, 1), (1, 0)],
            &PrepConfig::forward_only("pair", 2),
            disk,
        )
        .unwrap();
        assert!(!g.has_reverse());
        assert!(g.load_subshard(0, 0, true).is_err());
    }
}
