//! Degreeing — the first preprocessing step (§III-A).
//!
//! Raw inputs identify vertices by *indices*: arbitrary, possibly sparse
//! numbers (the real Yahoo-web crawl has far more indices than connected
//! vertices). Degreeing maps every index that actually appears in an edge
//! to a dense, contiguous *id* `0..n`, eliminates isolated indices, and
//! computes in/out degree tables. Ids are assigned in ascending index
//! order, preserving whatever locality the input numbering had.

use crate::types::VertexId;

/// Output of the degreeing step: the "pre-shard" plus mapping tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Degreeing {
    /// Number of non-isolated vertices `n`.
    pub num_vertices: u32,
    /// Edges rewritten to dense ids (the paper's *pre-shard*).
    pub edges: Vec<(VertexId, VertexId)>,
    /// Out-degree per id.
    pub out_degrees: Vec<u32>,
    /// In-degree per id.
    pub in_degrees: Vec<u32>,
    /// Reverse mapping: `index_of[id]` is the original index (the paper's
    /// "reverse-mapping file"). Sorted ascending by construction.
    pub index_of: Vec<u64>,
}

impl Degreeing {
    /// Forward lookup: original index → dense id (the "mapping file"
    /// direction). `None` for isolated/unknown indices. O(log n) via
    /// binary search over the sorted reverse mapping.
    pub fn id_of(&self, index: u64) -> Option<VertexId> {
        self.index_of.binary_search(&index).ok().map(|i| i as VertexId)
    }
}

/// Run degreeing over raw index pairs.
///
/// Panics if the input would exceed the `u32` id space.
pub fn degree(raw_edges: &[(u64, u64)]) -> Degreeing {
    // Collect every endpoint index, sort, dedup → dense id assignment.
    let mut indices = Vec::with_capacity(raw_edges.len() * 2);
    for &(s, d) in raw_edges {
        indices.push(s);
        indices.push(d);
    }
    indices.sort_unstable();
    indices.dedup();
    assert!(
        indices.len() <= u32::MAX as usize,
        "graph exceeds u32 id space"
    );
    let n = indices.len() as u32;

    let id_of = |index: u64| -> VertexId {
        indices
            .binary_search(&index)
            .expect("endpoint index must be present") as VertexId
    };

    let mut edges = Vec::with_capacity(raw_edges.len());
    let mut out_degrees = vec![0u32; n as usize];
    let mut in_degrees = vec![0u32; n as usize];
    for &(s, d) in raw_edges {
        let (s, d) = (id_of(s), id_of(d));
        out_degrees[s as usize] += 1;
        in_degrees[d as usize] += 1;
        edges.push((s, d));
    }

    Degreeing {
        num_vertices: n,
        edges,
        out_degrees,
        in_degrees,
        index_of: indices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compacts_sparse_indices() {
        // Indices 100, 5000, 77 — with everything between isolated.
        let raw = vec![(100u64, 5000u64), (77, 100), (5000, 77)];
        let d = degree(&raw);
        assert_eq!(d.num_vertices, 3);
        assert_eq!(d.index_of, vec![77, 100, 5000]);
        // id order follows index order: 77→0, 100→1, 5000→2.
        assert_eq!(d.edges, vec![(1, 2), (0, 1), (2, 0)]);
        assert_eq!(d.out_degrees, vec![1, 1, 1]);
        assert_eq!(d.in_degrees, vec![1, 1, 1]);
    }

    #[test]
    fn mapping_is_a_bijection() {
        let raw: Vec<(u64, u64)> = (0..100).map(|k| (k * 13 % 61, k * 7 % 61)).collect();
        let d = degree(&raw);
        for (id, &index) in d.index_of.iter().enumerate() {
            assert_eq!(d.id_of(index), Some(id as VertexId));
        }
        assert_eq!(d.id_of(999_999), None);
    }

    #[test]
    fn degrees_sum_to_edge_count() {
        let raw: Vec<(u64, u64)> = (0..500).map(|k| (k % 17, (k * 3) % 23)).collect();
        let d = degree(&raw);
        assert_eq!(d.out_degrees.iter().sum::<u32>() as usize, raw.len());
        assert_eq!(d.in_degrees.iter().sum::<u32>() as usize, raw.len());
    }

    #[test]
    fn duplicate_edges_kept() {
        let raw = vec![(1u64, 2u64), (1, 2), (1, 2)];
        let d = degree(&raw);
        assert_eq!(d.edges.len(), 3);
        assert_eq!(d.out_degrees[0], 3);
    }

    #[test]
    fn self_loops_counted_both_ways() {
        let d = degree(&[(4u64, 4u64)]);
        assert_eq!(d.num_vertices, 1);
        assert_eq!(d.out_degrees, vec![1]);
        assert_eq!(d.in_degrees, vec![1]);
    }

    #[test]
    fn empty_input() {
        let d = degree(&[]);
        assert_eq!(d.num_vertices, 0);
        assert!(d.edges.is_empty());
    }
}
