//! The vertex-program abstraction (Algorithm 1 of the paper).
//!
//! An iteration performs, for every sub-shard `SS(i→j)`,
//! `Ij = Update(Ij, Ii, SS(i→j))`: attributes of the *source* interval and
//! the edges of the sub-shard produce new attributes for the *destination*
//! interval. We decompose `Update` into three pieces so the same program
//! runs unmodified under SPU, DPU and MPU:
//!
//! * [`VertexProgram::absorb`] — folds one edge `(src → dst)` into the
//!   destination's accumulator. Runs inside a sub-shard where both
//!   endpoints are known, which is what lets programs filter per-edge
//!   (e.g. the SCC backward phase only accepts same-colour edges).
//! * [`VertexProgram::combine`] — merges two accumulators. DPU stores
//!   per-sub-shard accumulators in *hubs* and merges them in the FromHub
//!   phase; `absorb` followed by `combine` must be associative and
//!   commutative across edges for the strategies to agree.
//! * [`VertexProgram::apply`] — finalises a destination vertex once all
//!   sub-shards of its column have been folded.
//!
//! Activity (§II-B): an interval is *inactive* when no vertex in it changed
//! during an iteration; sub-shards whose source interval is inactive are
//! skipped — but only for programs whose `apply` folds the old value
//! ([`VertexProgram::APPLY_NEEDS_OLD`], i.e. monotone programs like BFS),
//! where a skipped message is recoverable from the old attribute. Global
//! recompute programs (PageRank) keep every interval active and terminate
//! on a fixed iteration count or global convergence.

use crate::types::{Attr, VertexId};

/// A synchronous vertex computation runnable by every NXgraph engine.
pub trait VertexProgram: Send + Sync {
    /// Per-vertex attribute stored in intervals (`Ba` bytes each).
    type Value: Attr;

    /// Incremental value accumulated per destination and stored in DPU
    /// hubs ("the attributes stored in a hub are incremental values",
    /// §III-B2).
    type Accum: Attr;

    /// Whether `apply` reads the previous value. When `false` (PageRank),
    /// DPU's FromHub phase skips re-reading interval files, matching the
    /// paper's Table II byte counts.
    const APPLY_NEEDS_OLD: bool;

    /// Whether `apply` must run for every vertex each iteration even
    /// without incoming messages (global recompute programs). When `false`
    /// (BFS/WCC/SCC), vertices without messages keep their value.
    const ALWAYS_APPLY: bool;

    /// Initial attribute of vertex `v` (the paper's `Initialize`).
    fn init(&self, v: VertexId) -> Self::Value;

    /// Whether vertex `v` starts active (BFS: only the root).
    fn initially_active(&self, _v: VertexId) -> bool {
        true
    }

    /// The identity accumulator.
    fn zero(&self) -> Self::Accum;

    /// Fold the edge `src → dst` into `acc`. Returns `true` if a message
    /// was contributed (drives the has-message tracking that gates
    /// `apply` for non-[`ALWAYS_APPLY`](Self::ALWAYS_APPLY) programs).
    fn absorb(
        &self,
        src: VertexId,
        src_val: &Self::Value,
        dst: VertexId,
        acc: &mut Self::Accum,
    ) -> bool;

    /// Merge accumulator `b` into `a` (hub merging). Must satisfy
    /// `absorb(e₁); absorb(e₂) ≡ combine(absorb(e₁), absorb(e₂))` for the
    /// three strategies to produce identical results.
    fn combine(&self, a: &mut Self::Accum, b: &Self::Accum);

    /// Cheap per-source filter: when `false`, the kernel skips all of
    /// `src`'s edges without calling `absorb` (e.g. unreached BFS
    /// vertices).
    fn source_active(&self, _src: VertexId, _val: &Self::Value) -> bool {
        true
    }

    /// Fold a whole destination's source run into `acc`, returning whether
    /// any edge contributed a message.
    ///
    /// Destination-sorted sub-shards guarantee `srcs` is the contiguous,
    /// source-sorted run of one destination, so this is the kernel's inner
    /// loop: the flat-edge hot path calls it once per destination instead
    /// of once per edge. `src_vals[s - src_base]` is source `s`'s
    /// previous-iteration attribute.
    ///
    /// The default is the scalar per-edge walk and is always correct.
    /// Programs with cheap, reassociable accumulators (PageRank, HITS,
    /// PPR) override it with a 4-way unrolled loop that accumulates into
    /// independent lanes and folds them through [`combine`](Self::combine);
    /// any override must agree with the default up to accumulator
    /// reassociation.
    fn absorb_run(
        &self,
        dst: VertexId,
        srcs: &[VertexId],
        src_vals: &[Self::Value],
        src_base: VertexId,
        acc: &mut Self::Accum,
    ) -> bool {
        let mut any = false;
        for &s in srcs {
            let sv = &src_vals[(s - src_base) as usize];
            if self.source_active(s, sv) && self.absorb(s, sv, dst, acc) {
                any = true;
            }
        }
        any
    }

    /// Finalise vertex `v` after all columns folded. `got_messages` tells
    /// whether any `absorb` contributed this iteration.
    fn apply(
        &self,
        v: VertexId,
        old: &Self::Value,
        acc: &Self::Accum,
        got_messages: bool,
    ) -> Self::Value;

    /// Whether the transition `old → new` counts as a change for activity
    /// tracking and convergence. Defaults to inequality; numeric programs
    /// override with an epsilon.
    fn changed(&self, old: &Self::Value, new: &Self::Value) -> bool {
        old != new
    }
}

/// Direction in which a program consumes edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Use the forward sub-shards (updates flow src → dst).
    Forward,
    /// Use the reverse (transposed) sub-shards.
    Reverse,
    /// Use both per iteration (undirected semantics, e.g. WCC).
    Both,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial "count incoming edges" program exercising the trait
    /// surface (and serving as documentation of the contract).
    struct CountIncoming;

    impl VertexProgram for CountIncoming {
        type Value = u32;
        type Accum = u32;
        const APPLY_NEEDS_OLD: bool = false;
        const ALWAYS_APPLY: bool = true;

        fn init(&self, _v: VertexId) -> u32 {
            0
        }

        fn zero(&self) -> u32 {
            0
        }

        fn absorb(&self, _s: VertexId, _sv: &u32, _d: VertexId, acc: &mut u32) -> bool {
            *acc += 1;
            true
        }

        fn combine(&self, a: &mut u32, b: &u32) {
            *a += b;
        }

        fn apply(&self, _v: VertexId, _old: &u32, acc: &u32, _got: bool) -> u32 {
            *acc
        }
    }

    #[test]
    fn absorb_combine_associativity() {
        let p = CountIncoming;
        // absorb twice into one accumulator…
        let mut a = p.zero();
        p.absorb(0, &0, 9, &mut a);
        p.absorb(1, &0, 9, &mut a);
        // …must equal absorbing into two and combining.
        let mut b1 = p.zero();
        let mut b2 = p.zero();
        p.absorb(0, &0, 9, &mut b1);
        p.absorb(1, &0, 9, &mut b2);
        p.combine(&mut b1, &b2);
        assert_eq!(a, b1);
    }

    #[test]
    fn default_changed_is_inequality() {
        let p = CountIncoming;
        assert!(p.changed(&1, &2));
        assert!(!p.changed(&2, &2));
    }

    #[test]
    fn defaults() {
        let p = CountIncoming;
        assert!(p.initially_active(0));
        assert!(p.source_active(0, &0));
    }
}
