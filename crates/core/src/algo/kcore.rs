//! k-core decomposition membership.
//!
//! The *k-core* of a graph is the maximal subgraph in which every vertex
//! has (undirected) degree ≥ k. Computed by iterated peeling: every
//! iteration recounts each vertex's surviving neighbours over both edge
//! directions and kills vertices that fall below `k`; a fixpoint is the
//! k-core. Peeling is monotone (vertices only ever die), so the synchronous
//! engine converges in at most `n` iterations and usually far fewer.
//!
//! Expects an *undirected ingestion* (each edge present in both
//! directions, the paper's §II-A convention), and traverses forward
//! sub-shards only so each neighbour is counted exactly once.

use crate::dsss::PreparedGraph;
use crate::engine::{self, EngineConfig, RunStats};
use crate::error::EngineResult;
use crate::program::{Direction, VertexProgram};
use crate::types::VertexId;

/// Value: 1 while the vertex survives, 0 once peeled.
pub struct KCore {
    k: u32,
}

impl KCore {
    /// Membership program for the `k`-core.
    pub fn new(k: u32) -> Self {
        Self { k }
    }
}

impl VertexProgram for KCore {
    type Value = u32;
    type Accum = u32;
    // Recount every iteration; needs the old alive flag to peel.
    const APPLY_NEEDS_OLD: bool = true;
    const ALWAYS_APPLY: bool = true;

    fn init(&self, _v: VertexId) -> u32 {
        1
    }

    fn zero(&self) -> u32 {
        0
    }

    fn source_active(&self, _src: VertexId, val: &u32) -> bool {
        *val == 1
    }

    fn absorb(&self, _src: VertexId, _src_val: &u32, _dst: VertexId, acc: &mut u32) -> bool {
        *acc += 1;
        true
    }

    fn combine(&self, a: &mut u32, b: &u32) {
        *a += *b;
    }

    fn apply(&self, _v: VertexId, old: &u32, acc: &u32, _got: bool) -> u32 {
        // acc = number of surviving neighbours (each undirected edge was
        // ingested in both directions, so Both-direction absorb counts each
        // neighbour once per original undirected edge).
        if *old == 1 && *acc >= self.k {
            1
        } else {
            0
        }
    }
}

/// Compute k-core membership flags (1 = in the k-core).
pub fn kcore(g: &PreparedGraph, k: u32, cfg: &EngineConfig) -> EngineResult<(Vec<u32>, RunStats)> {
    let prog = KCore::new(k);
    let mut cfg = cfg.clone();
    cfg.direction = Direction::Forward;
    cfg.max_iterations = cfg.max_iterations.max(g.num_vertices() as usize + 1);
    engine::run(g, &prog, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::{preprocess, PrepConfig};
    use nxgraph_storage::{Disk, MemDisk};
    use std::sync::Arc;

    /// Undirected edge helper: emits both directions.
    fn undirected(pairs: &[(u64, u64)]) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(pairs.len() * 2);
        for &(a, b) in pairs {
            out.push((a, b));
            out.push((b, a));
        }
        out
    }

    fn run(pairs: &[(u64, u64)], k: u32) -> Vec<u32> {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let g = preprocess(&undirected(pairs), &PrepConfig::new("kcore", 3), disk).unwrap();
        kcore(&g, k, &EngineConfig::default()).unwrap().0
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 plus tail 2-3: 2-core = the triangle.
        let flags = run(&[(0, 1), (1, 2), (2, 0), (2, 3)], 2);
        assert_eq!(flags, vec![1, 1, 1, 0]);
    }

    #[test]
    fn chain_peels_completely() {
        // A path has no 2-core: peeling cascades from both ends.
        let flags = run(&[(0, 1), (1, 2), (2, 3), (3, 4)], 2);
        assert_eq!(flags, vec![0; 5]);
    }

    #[test]
    fn clique_survives_high_k() {
        // K5: every vertex has degree 4 → 4-core is everything, 5-core
        // nothing.
        let mut pairs = Vec::new();
        for a in 0..5u64 {
            for b in a + 1..5 {
                pairs.push((a, b));
            }
        }
        assert_eq!(run(&pairs, 4), vec![1; 5]);
        assert_eq!(run(&pairs, 5), vec![0; 5]);
    }

    #[test]
    fn one_core_keeps_everything_connected() {
        let flags = run(&[(0, 1), (1, 2)], 1);
        assert_eq!(flags, vec![1, 1, 1]);
    }

    #[test]
    fn matches_reference_peeling_on_random_graph() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let n = 40u64;
        let mut pairs = Vec::new();
        for _ in 0..120 {
            let a = rng.random_range(0..n);
            let b = rng.random_range(0..n);
            if a != b {
                // Canonicalise so (a,b) and (b,a) dedup to one undirected
                // edge; otherwise the engine would count a neighbour twice
                // while the HashSet reference counts it once.
                pairs.push((a.min(b), a.max(b)));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let k = 3;
        let flags = run(&pairs, k);

        // Reference: classic peeling on the undirected simple graph.
        let mut idx: Vec<u64> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
        idx.sort_unstable();
        idx.dedup();
        let nn = idx.len();
        let mut adj = vec![std::collections::HashSet::new(); nn];
        for &(a, b) in &pairs {
            let ai = idx.binary_search(&a).unwrap();
            let bi = idx.binary_search(&b).unwrap();
            adj[ai].insert(bi);
            adj[bi].insert(ai);
        }
        let mut alive = vec![true; nn];
        loop {
            let mut changed = false;
            for v in 0..nn {
                if alive[v] {
                    let deg = adj[v].iter().filter(|&&u| alive[u]).count();
                    if (deg as u32) < k {
                        alive[v] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // NOTE: the engine counts multiplicity; the random graph was
        // dedup'd to a simple graph so counts agree.
        let expect: Vec<u32> = alive.iter().map(|&a| u32::from(a)).collect();
        assert_eq!(flags, expect);
    }
}
