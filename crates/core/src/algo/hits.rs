//! HITS (Hyperlink-Induced Topic Search): authority and hub scores.
//!
//! Alternating propagation: `auth(v) = Σ hub(u)` over in-edges `u→v`
//! (forward sub-shards), `hub(v) = Σ auth(w)` over out-edges `v→w`
//! (reverse sub-shards), each followed by L2 normalisation. Built as two
//! one-iteration engine runs per HITS iteration, the same orchestration
//! pattern as SCC — current scores flow into the next run through the
//! program's `init`.

use std::sync::Arc;

use nxgraph_storage::IoSnapshot;

use crate::dsss::PreparedGraph;
use crate::engine::{self, EngineConfig};
use crate::error::{EngineError, EngineResult};
use crate::program::{Direction, VertexProgram};
use crate::types::VertexId;

/// Result of a HITS computation.
#[derive(Debug, Clone)]
pub struct HitsOutcome {
    /// Authority score per vertex (L2-normalised).
    pub authorities: Vec<f64>,
    /// Hub score per vertex (L2-normalised).
    pub hubs: Vec<f64>,
    /// HITS iterations performed.
    pub iterations: usize,
    /// Total disk traffic.
    pub io: IoSnapshot,
    /// Wall time.
    pub elapsed: std::time::Duration,
}

/// One half-step: sum the companion score over one edge direction.
struct SumNeighbors {
    /// Scores of the *other* side from the previous half-step.
    companion: Arc<Vec<f64>>,
}

impl VertexProgram for SumNeighbors {
    type Value = f64;
    type Accum = f64;
    const APPLY_NEEDS_OLD: bool = false;
    const ALWAYS_APPLY: bool = true;

    fn init(&self, v: VertexId) -> f64 {
        self.companion[v as usize]
    }

    fn zero(&self) -> f64 {
        0.0
    }

    fn absorb(&self, src: VertexId, _src_val: &f64, _dst: VertexId, acc: &mut f64) -> bool {
        // Read the companion table directly: `init` seeds Value with the
        // companion score, but going through the table keeps this correct
        // even for sources whose interval was never finalised.
        *acc += self.companion[src as usize];
        true
    }

    fn combine(&self, a: &mut f64, b: &f64) {
        *a += *b;
    }

    fn absorb_run(
        &self,
        _dst: VertexId,
        srcs: &[VertexId],
        _src_vals: &[f64],
        _src_base: VertexId,
        acc: &mut f64,
    ) -> bool {
        if srcs.is_empty() {
            return false;
        }
        // Shared 4-lane ILP unroll over the companion table (absorb
        // ignores src_vals by design — see the comment on `absorb`).
        let run = super::unrolled_table_sum(srcs, &self.companion);
        self.combine(acc, &run);
        true
    }

    fn apply(&self, _v: VertexId, _old: &f64, acc: &f64, _got: bool) -> f64 {
        *acc
    }
}

fn l2_normalise(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Run `iterations` of HITS. Requires reverse sub-shards.
pub fn hits(
    g: &PreparedGraph,
    iterations: usize,
    cfg: &EngineConfig,
) -> EngineResult<HitsOutcome> {
    if !g.has_reverse() {
        return Err(EngineError::Invalid(
            "HITS needs reverse sub-shards; preprocess with build_reverse".into(),
        ));
    }
    if iterations == 0 {
        return Err(EngineError::Invalid("iterations must be positive".into()));
    }
    let n = g.num_vertices() as usize;
    let start = std::time::Instant::now();
    let io0 = g.disk().counters().snapshot();

    let mut auth = vec![1.0 / (n as f64).sqrt(); n];
    let mut hub = auth.clone();

    let mut step_cfg = cfg.clone();
    step_cfg.max_iterations = 1;

    for _ in 0..iterations {
        // auth(v) = Σ hub(u) over in-edges: forward direction.
        step_cfg.direction = Direction::Forward;
        let prog = SumNeighbors {
            companion: Arc::new(hub.clone()),
        };
        let (mut new_auth, _) = engine::run(g, &prog, &step_cfg)?;
        l2_normalise(&mut new_auth);
        auth = new_auth;

        // hub(v) = Σ auth(w) over out-edges: reverse direction.
        step_cfg.direction = Direction::Reverse;
        let prog = SumNeighbors {
            companion: Arc::new(auth.clone()),
        };
        let (mut new_hub, _) = engine::run(g, &prog, &step_cfg)?;
        l2_normalise(&mut new_hub);
        hub = new_hub;
    }

    Ok(HitsOutcome {
        authorities: auth,
        hubs: hub,
        iterations,
        io: g.disk().counters().snapshot().delta(&io0),
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::{preprocess, PrepConfig};
    use nxgraph_storage::{Disk, MemDisk};

    fn prepare(raw: &[(u64, u64)]) -> PreparedGraph {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        preprocess(raw, &PrepConfig::new("hits", 3), disk).unwrap()
    }

    #[test]
    fn matches_reference_on_fig1() {
        let edges = crate::fig1_example_edges();
        let raw: Vec<(u64, u64)> = edges.iter().map(|&(s, d)| (s as u64, d as u64)).collect();
        let g = prepare(&raw);
        let out = hits(&g, 12, &EngineConfig::default()).unwrap();
        let (ea, eh) = crate::reference::hits(7, &edges, 12);
        for (a, b) in out.authorities.iter().zip(&ea) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
        for (a, b) in out.hubs.iter().zip(&eh) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }

    #[test]
    fn star_graph_extremes() {
        // Many sources point at one sink: the sink is the top authority,
        // the sources are the hubs.
        let raw: Vec<(u64, u64)> = (1..6u64).map(|s| (s, 0)).collect();
        let g = prepare(&raw);
        let out = hits(&g, 10, &EngineConfig::default()).unwrap();
        let best_auth = out
            .authorities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best_auth, 0);
        assert!(out.hubs[0] < 1e-12, "the sink is no hub");
    }

    #[test]
    fn scores_are_normalised() {
        let raw: Vec<(u64, u64)> = crate::fig1_example_edges()
            .iter()
            .map(|&(s, d)| (s as u64, d as u64))
            .collect();
        let g = prepare(&raw);
        let out = hits(&g, 5, &EngineConfig::default()).unwrap();
        let na: f64 = out.authorities.iter().map(|x| x * x).sum();
        let nh: f64 = out.hubs.iter().map(|x| x * x).sum();
        assert!((na - 1.0).abs() < 1e-9);
        assert!((nh - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_inputs() {
        let raw: Vec<(u64, u64)> = vec![(0, 1)];
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let g = preprocess(&raw, &PrepConfig::forward_only("fw", 2), disk).unwrap();
        assert!(hits(&g, 5, &EngineConfig::default()).is_err());
        let g2 = prepare(&raw);
        assert!(hits(&g2, 0, &EngineConfig::default()).is_err());
    }
}
