//! Breadth-First Search — Algorithms 2–4 of the paper.
//!
//! Depths start at `∞` (`u32::MAX`) except the root at 0; each iteration
//! propagates `depth + 1` along out-edges and keeps the minimum. Only the
//! root's interval starts active, and the engine's interval activity
//! tracking (§II-B) expands the frontier exactly as the paper describes:
//! "update the destination vertex attribute with the minimum depth
//! propagated from all its source vertices until no vertex can be
//! updated."

use crate::program::VertexProgram;
use crate::types::VertexId;

/// Depth value representing "unreached".
pub const UNREACHED: u32 = u32::MAX;

/// BFS program rooted at a given vertex.
pub struct Bfs {
    root: VertexId,
}

impl Bfs {
    /// BFS from `root`.
    pub fn new(root: VertexId) -> Self {
        Self { root }
    }

    /// The root vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }
}

impl VertexProgram for Bfs {
    type Value = u32;
    type Accum = u32;
    const APPLY_NEEDS_OLD: bool = true;
    const ALWAYS_APPLY: bool = false;

    fn init(&self, v: VertexId) -> u32 {
        if v == self.root {
            0
        } else {
            UNREACHED
        }
    }

    fn initially_active(&self, v: VertexId) -> bool {
        v == self.root
    }

    fn zero(&self) -> u32 {
        UNREACHED
    }

    fn source_active(&self, _src: VertexId, val: &u32) -> bool {
        *val != UNREACHED
    }

    fn absorb(&self, _src: VertexId, src_val: &u32, _dst: VertexId, acc: &mut u32) -> bool {
        let cand = src_val.saturating_add(1);
        if cand < *acc {
            *acc = cand;
        }
        true
    }

    fn combine(&self, a: &mut u32, b: &u32) {
        *a = (*a).min(*b);
    }

    fn apply(&self, _v: VertexId, old: &u32, acc: &u32, _got: bool) -> u32 {
        (*old).min(*acc)
    }
}

/// The paper's BFS `Output`: the maximum finite depth (depth of the BFS
/// spanning tree). `None` when only the root is reachable… the root itself
/// always yields `Some(0)`.
pub fn max_depth(depths: &[u32]) -> Option<u32> {
    depths.iter().copied().filter(|&d| d != UNREACHED).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_marks_only_root() {
        let b = Bfs::new(3);
        assert_eq!(b.init(3), 0);
        assert_eq!(b.init(0), UNREACHED);
        assert!(b.initially_active(3));
        assert!(!b.initially_active(2));
    }

    #[test]
    fn absorb_takes_minimum() {
        let b = Bfs::new(0);
        let mut acc = b.zero();
        b.absorb(1, &5, 9, &mut acc);
        assert_eq!(acc, 6);
        b.absorb(2, &2, 9, &mut acc);
        assert_eq!(acc, 3);
        b.absorb(3, &9, 9, &mut acc);
        assert_eq!(acc, 3);
    }

    #[test]
    fn unreached_source_never_underflows() {
        let b = Bfs::new(0);
        let mut acc = b.zero();
        // source_active filters these in the engine, but absorb must still
        // be safe: MAX + 1 saturates and never beats a real depth.
        b.absorb(1, &UNREACHED, 2, &mut acc);
        assert_eq!(acc, UNREACHED);
    }

    #[test]
    fn apply_is_monotone() {
        let b = Bfs::new(0);
        assert_eq!(b.apply(1, &4, &7, true), 4);
        assert_eq!(b.apply(1, &7, &4, true), 4);
    }

    #[test]
    fn max_depth_ignores_unreached() {
        assert_eq!(max_depth(&[0, 2, UNREACHED, 1]), Some(2));
        assert_eq!(max_depth(&[UNREACHED]), None);
    }
}
