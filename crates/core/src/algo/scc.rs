//! Strongly Connected Components by forward colouring + backward
//! confirmation.
//!
//! The engine is a synchronous, direction-fixed update machine, so SCC is
//! built as *rounds* of two engine runs (this is the standard
//! colouring/FW-BW decomposition used by out-of-core systems; the paper
//! evaluates SCC as one of its targeted-query workloads without spelling
//! out its decomposition):
//!
//! 1. **Forward colouring** — every unassigned vertex starts coloured with
//!    its own id; maximum colours propagate along forward edges to a
//!    fixpoint. A vertex whose final colour equals its own id is a *root*;
//!    all members of a root's SCC share the root's colour (they have
//!    identical ancestor sets among unassigned vertices).
//! 2. **Backward confirmation** — roots propagate reachability along
//!    *reverse* edges, restricted to vertices of the same colour. A vertex
//!    confirmed here both reaches (membership of the colour class) and is
//!    reached from the root — i.e. it is in the root's SCC.
//!
//! Confirmed vertices are assigned their colour as the SCC label (thus the
//! label is the **maximum vertex id of the component**) and removed from
//! further rounds. Each round assigns at least every current root, so the
//! loop terminates.

use std::sync::Arc;

use nxgraph_storage::IoSnapshot;

use crate::dsss::PreparedGraph;
use crate::engine::{self, EngineConfig};
use crate::error::{EngineError, EngineResult};
use crate::program::{Direction, VertexProgram};
use crate::types::VertexId;

/// Label meaning "not yet assigned to an SCC".
pub const UNASSIGNED: u32 = u32::MAX;

/// Result of an SCC computation.
#[derive(Debug, Clone)]
pub struct SccOutcome {
    /// Per-vertex SCC label: the maximum vertex id of the component.
    pub labels: Vec<u32>,
    /// Number of FW-BW rounds performed.
    pub rounds: usize,
    /// Total iterations across all engine runs.
    pub iterations: usize,
    /// Wall time of the whole computation.
    pub elapsed: std::time::Duration,
    /// Total disk traffic.
    pub io: IoSnapshot,
    /// Total edges folded.
    pub edges_traversed: u64,
}

/// Forward max-colour propagation among unassigned vertices.
struct FwColor {
    assigned: Arc<Vec<u32>>,
}

impl VertexProgram for FwColor {
    type Value = u32;
    type Accum = u32;
    const APPLY_NEEDS_OLD: bool = true;
    const ALWAYS_APPLY: bool = false;

    fn init(&self, v: VertexId) -> u32 {
        v
    }

    fn initially_active(&self, v: VertexId) -> bool {
        self.assigned[v as usize] == UNASSIGNED
    }

    fn zero(&self) -> u32 {
        0
    }

    fn source_active(&self, src: VertexId, _val: &u32) -> bool {
        self.assigned[src as usize] == UNASSIGNED
    }

    fn absorb(&self, _src: VertexId, src_val: &u32, dst: VertexId, acc: &mut u32) -> bool {
        if self.assigned[dst as usize] != UNASSIGNED {
            return false;
        }
        if *src_val > *acc {
            *acc = *src_val;
        }
        true
    }

    fn combine(&self, a: &mut u32, b: &u32) {
        *a = (*a).max(*b);
    }

    fn apply(&self, v: VertexId, old: &u32, acc: &u32, _got: bool) -> u32 {
        if self.assigned[v as usize] != UNASSIGNED {
            *old
        } else {
            (*old).max(*acc)
        }
    }
}

/// Backward reachability from roots, gated on equal colours.
struct BwConfirm {
    assigned: Arc<Vec<u32>>,
    colors: Arc<Vec<u32>>,
}

impl VertexProgram for BwConfirm {
    type Value = u32; // 1 = confirmed member of its colour's SCC
    type Accum = u32;
    const APPLY_NEEDS_OLD: bool = true;
    const ALWAYS_APPLY: bool = false;

    fn init(&self, v: VertexId) -> u32 {
        let unassigned = self.assigned[v as usize] == UNASSIGNED;
        u32::from(unassigned && self.colors[v as usize] == v)
    }

    fn initially_active(&self, v: VertexId) -> bool {
        self.init(v) == 1
    }

    fn zero(&self) -> u32 {
        0
    }

    fn source_active(&self, src: VertexId, val: &u32) -> bool {
        *val == 1 && self.assigned[src as usize] == UNASSIGNED
    }

    fn absorb(&self, src: VertexId, _src_val: &u32, dst: VertexId, acc: &mut u32) -> bool {
        // Reverse edge src ⇢ dst stands for original edge dst → src: dst
        // can reach src. Membership requires matching colours.
        let d = dst as usize;
        if self.assigned[d] == UNASSIGNED && self.colors[d] == self.colors[src as usize] {
            *acc = 1;
            true
        } else {
            false
        }
    }

    fn combine(&self, a: &mut u32, b: &u32) {
        *a = (*a).max(*b);
    }

    fn apply(&self, _v: VertexId, old: &u32, acc: &u32, _got: bool) -> u32 {
        (*old).max(*acc)
    }
}

/// Compute SCC labels for a prepared graph (requires reverse sub-shards).
pub fn run(g: &PreparedGraph, cfg: &EngineConfig) -> EngineResult<SccOutcome> {
    if !g.has_reverse() {
        return Err(EngineError::Invalid(
            "SCC needs reverse sub-shards; preprocess with build_reverse".into(),
        ));
    }
    let n = g.num_vertices() as usize;
    let start = std::time::Instant::now();
    let io_start = g.disk().counters().snapshot();

    let mut assigned = vec![UNASSIGNED; n];
    let mut rounds = 0;
    let mut iterations = 0;
    let mut edges_traversed = 0;

    // Inner runs need diameter-many iterations; cap generously.
    let inner_iters = (n + 1).max(cfg.max_iterations);

    while assigned.contains(&UNASSIGNED) {
        rounds += 1;
        let frozen = Arc::new(assigned.clone());

        // 1. Forward colouring to fixpoint.
        let fw = FwColor {
            assigned: Arc::clone(&frozen),
        };
        let mut fw_cfg = cfg.clone();
        fw_cfg.direction = Direction::Forward;
        fw_cfg.max_iterations = inner_iters;
        let (colors, fw_stats) = engine::run(g, &fw, &fw_cfg)?;
        iterations += fw_stats.iterations;
        edges_traversed += fw_stats.edges_traversed;

        // 2. Backward confirmation within colour classes.
        let bw = BwConfirm {
            assigned: Arc::clone(&frozen),
            colors: Arc::new(colors),
        };
        let mut bw_cfg = cfg.clone();
        bw_cfg.direction = Direction::Reverse;
        bw_cfg.max_iterations = inner_iters;
        let (confirmed, bw_stats) = engine::run(g, &bw, &bw_cfg)?;
        iterations += bw_stats.iterations;
        edges_traversed += bw_stats.edges_traversed;

        // 3. Assign confirmed vertices.
        let colors = &bw.colors;
        let mut assigned_this_round = 0usize;
        for v in 0..n {
            if assigned[v] == UNASSIGNED && confirmed[v] == 1 {
                assigned[v] = colors[v];
                assigned_this_round += 1;
            }
        }
        debug_assert!(
            assigned_this_round > 0,
            "each round must assign at least its roots"
        );
        if assigned_this_round == 0 {
            return Err(EngineError::Invalid(
                "SCC made no progress (internal invariant violated)".into(),
            ));
        }
    }

    Ok(SccOutcome {
        labels: assigned,
        rounds,
        iterations,
        elapsed: start.elapsed(),
        io: g.disk().counters().snapshot().delta(&io_start),
        edges_traversed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prep::{preprocess, PrepConfig};
    use nxgraph_storage::{Disk, MemDisk};

    fn prepare(edges: &[(u64, u64)], p: u32) -> PreparedGraph {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        preprocess(edges, &PrepConfig::new("scc-test", p), disk).unwrap()
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        // 0↔1 cycle, 2↔3 cycle, bridge 1→2: two SCCs of size 2.
        let g = prepare(&[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)], 2);
        let out = run(&g, &EngineConfig::default()).unwrap();
        assert_eq!(out.labels, vec![1, 1, 3, 3]);
        assert!(out.rounds >= 1);
    }

    #[test]
    fn dag_is_all_singletons() {
        // 0→1→2→3 path: four singleton SCCs labelled by themselves.
        let g = prepare(&[(0, 1), (1, 2), (2, 3)], 2);
        let out = run(&g, &EngineConfig::default()).unwrap();
        assert_eq!(out.labels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn full_cycle_is_one_component() {
        let g = prepare(&[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], 3);
        let out = run(&g, &EngineConfig::default()).unwrap();
        assert_eq!(out.labels, vec![4; 5]);
        assert_eq!(out.rounds, 1);
    }

    #[test]
    fn fig1_matches_tarjan() {
        let raw: Vec<(u64, u64)> = crate::fig1_example_edges()
            .iter()
            .map(|&(s, d)| (s as u64, d as u64))
            .collect();
        let g = prepare(&raw, 4);
        let out = run(&g, &EngineConfig::default()).unwrap();
        let expect = crate::reference::scc(7, &crate::fig1_example_edges());
        assert_eq!(out.labels, expect);
    }
}
