//! PageRank as a [`VertexProgram`].
//!
//! The paper's primary workload: `p(v) = (1−δ)/n + δ · Σ p(u)/outdeg(u)`
//! over in-edges `u → v`, with damping `δ = 0.85`. A vertex's scatter value
//! is its rank divided by its out-degree, the incremental value stored in
//! DPU hubs is the partial sum — exactly the "8-byte vertex attribute"
//! configuration the paper uses for its I/O model (§III-C).
//!
//! Dangling mass is not redistributed (matching the reference oracle and
//! the common out-of-core implementations the paper compares against), so
//! total mass may shrink below 1 on graphs with dangling vertices.

use std::sync::Arc;

use crate::program::VertexProgram;
use crate::types::VertexId;

/// PageRank program.
pub struct PageRank {
    n: f64,
    damping: f64,
    epsilon: f64,
    out_degrees: Arc<Vec<u32>>,
}

impl PageRank {
    /// Standard PageRank (damping 0.85, exact change detection).
    pub fn new(num_vertices: u32, out_degrees: Arc<Vec<u32>>) -> Self {
        Self {
            n: num_vertices as f64,
            damping: 0.85,
            epsilon: 0.0,
            out_degrees,
        }
    }

    /// Override the damping factor.
    pub fn with_damping(mut self, damping: f64) -> Self {
        assert!((0.0..=1.0).contains(&damping));
        self.damping = damping;
        self
    }

    /// Convergence tolerance: a vertex counts as changed only when its
    /// rank moved by more than `epsilon`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }
}

impl VertexProgram for PageRank {
    type Value = f64;
    type Accum = f64;
    const APPLY_NEEDS_OLD: bool = false;
    const ALWAYS_APPLY: bool = true;

    fn init(&self, _v: VertexId) -> f64 {
        1.0 / self.n
    }

    fn zero(&self) -> f64 {
        0.0
    }

    fn absorb(&self, src: VertexId, src_val: &f64, _dst: VertexId, acc: &mut f64) -> bool {
        // Every source inside a sub-shard has at least one out-edge, so the
        // degree is never zero here.
        *acc += *src_val / self.out_degrees[src as usize] as f64;
        true
    }

    fn combine(&self, a: &mut f64, b: &f64) {
        *a += *b;
    }

    fn apply(&self, _v: VertexId, _old: &f64, acc: &f64, _got: bool) -> f64 {
        (1.0 - self.damping) / self.n + self.damping * *acc
    }

    fn changed(&self, old: &f64, new: &f64) -> bool {
        (old - new).abs() > self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cycle() -> PageRank {
        PageRank::new(2, Arc::new(vec![1, 1]))
    }

    #[test]
    fn absorb_divides_by_out_degree() {
        let p = PageRank::new(4, Arc::new(vec![2, 1, 1, 1]));
        let mut acc = 0.0;
        p.absorb(0, &0.5, 3, &mut acc);
        assert!((acc - 0.25).abs() < 1e-15);
        p.absorb(1, &0.5, 3, &mut acc);
        assert!((acc - 0.75).abs() < 1e-15);
    }

    #[test]
    fn apply_mixes_teleport_and_damped_sum() {
        let p = two_cycle();
        let v = p.apply(0, &0.0, &0.5, true);
        assert!((v - (0.15 / 2.0 + 0.85 * 0.5)).abs() < 1e-15);
    }

    #[test]
    fn fixed_point_of_symmetric_cycle_is_uniform() {
        // On a 2-cycle the uniform distribution is stationary.
        let p = two_cycle();
        let rank = 0.5;
        let contribution = rank / 1.0;
        let next = p.apply(0, &rank, &contribution, true);
        assert!((next - rank).abs() < 1e-15);
    }

    #[test]
    fn epsilon_gates_changed() {
        let p = two_cycle().with_epsilon(1e-3);
        assert!(!p.changed(&0.5, &0.5005));
        assert!(p.changed(&0.5, &0.502));
    }

    #[test]
    #[should_panic]
    fn rejects_bad_damping() {
        let _ = two_cycle().with_damping(1.5);
    }
}
