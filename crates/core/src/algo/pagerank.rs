//! PageRank as a [`VertexProgram`].
//!
//! The paper's primary workload: `p(v) = (1−δ)/n + δ · Σ p(u)/outdeg(u)`
//! over in-edges `u → v`, with damping `δ = 0.85`. A vertex's scatter value
//! is its rank divided by its out-degree, the incremental value stored in
//! DPU hubs is the partial sum — exactly the "8-byte vertex attribute"
//! configuration the paper uses for its I/O model (§III-C).
//!
//! Dangling mass is not redistributed (matching the reference oracle and
//! the common out-of-core implementations the paper compares against), so
//! total mass may shrink below 1 on graphs with dangling vertices.

use std::sync::Arc;

use crate::program::VertexProgram;
use crate::types::VertexId;

/// PageRank program.
pub struct PageRank {
    n: f64,
    damping: f64,
    epsilon: f64,
    /// Reciprocal out-degree per vertex, computed once at construction:
    /// the absorb hot loop multiplies instead of dividing, keeping the
    /// 4-lane unroll throughput-bound on the FPU adders/multipliers
    /// rather than the (unpipelined) divider. Vertices with no out-edges
    /// map to 0.0 — they never appear as sub-shard sources.
    inv_deg: Vec<f64>,
}

impl PageRank {
    /// Standard PageRank (damping 0.85, exact change detection).
    pub fn new(num_vertices: u32, out_degrees: Arc<Vec<u32>>) -> Self {
        let inv_deg = out_degrees
            .iter()
            .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f64 })
            .collect();
        Self {
            n: num_vertices as f64,
            damping: 0.85,
            epsilon: 0.0,
            inv_deg,
        }
    }

    /// Override the damping factor.
    pub fn with_damping(mut self, damping: f64) -> Self {
        assert!((0.0..=1.0).contains(&damping));
        self.damping = damping;
        self
    }

    /// Convergence tolerance: a vertex counts as changed only when its
    /// rank moved by more than `epsilon`.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }
}

impl VertexProgram for PageRank {
    type Value = f64;
    type Accum = f64;
    const APPLY_NEEDS_OLD: bool = false;
    const ALWAYS_APPLY: bool = true;

    fn init(&self, _v: VertexId) -> f64 {
        1.0 / self.n
    }

    fn zero(&self) -> f64 {
        0.0
    }

    fn absorb(&self, src: VertexId, src_val: &f64, _dst: VertexId, acc: &mut f64) -> bool {
        // Every source inside a sub-shard has at least one out-edge, so
        // inv_deg is never the 0.0 placeholder here.
        *acc += *src_val * self.inv_deg[src as usize];
        true
    }

    fn combine(&self, a: &mut f64, b: &f64) {
        *a += *b;
    }

    fn absorb_run(
        &self,
        _dst: VertexId,
        srcs: &[VertexId],
        src_vals: &[f64],
        src_base: VertexId,
        acc: &mut f64,
    ) -> bool {
        if srcs.is_empty() {
            return false;
        }
        // 4-way ILP unroll (shared lane loop), one combine fold at the end.
        let run = super::unrolled_weighted_sum(srcs, src_vals, src_base as usize, &self.inv_deg);
        self.combine(acc, &run);
        true
    }

    fn apply(&self, _v: VertexId, _old: &f64, acc: &f64, _got: bool) -> f64 {
        (1.0 - self.damping) / self.n + self.damping * *acc
    }

    fn changed(&self, old: &f64, new: &f64) -> bool {
        (old - new).abs() > self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_cycle() -> PageRank {
        PageRank::new(2, Arc::new(vec![1, 1]))
    }

    #[test]
    fn absorb_divides_by_out_degree() {
        let p = PageRank::new(4, Arc::new(vec![2, 1, 1, 1]));
        let mut acc = 0.0;
        p.absorb(0, &0.5, 3, &mut acc);
        assert!((acc - 0.25).abs() < 1e-15);
        p.absorb(1, &0.5, 3, &mut acc);
        assert!((acc - 0.75).abs() < 1e-15);
    }

    #[test]
    fn apply_mixes_teleport_and_damped_sum() {
        let p = two_cycle();
        let v = p.apply(0, &0.0, &0.5, true);
        assert!((v - (0.15 / 2.0 + 0.85 * 0.5)).abs() < 1e-15);
    }

    #[test]
    fn fixed_point_of_symmetric_cycle_is_uniform() {
        // On a 2-cycle the uniform distribution is stationary.
        let p = two_cycle();
        let rank = 0.5;
        let contribution = rank / 1.0;
        let next = p.apply(0, &rank, &contribution, true);
        assert!((next - rank).abs() < 1e-15);
    }

    #[test]
    fn epsilon_gates_changed() {
        let p = two_cycle().with_epsilon(1e-3);
        assert!(!p.changed(&0.5, &0.5005));
        assert!(p.changed(&0.5, &0.502));
    }

    #[test]
    #[should_panic]
    fn rejects_bad_damping() {
        let _ = two_cycle().with_damping(1.5);
    }

    #[test]
    fn unrolled_absorb_run_matches_scalar_walk() {
        // Runs of every length 0..=13 cover the 4-lane body and all tail
        // shapes; compare against per-edge absorb (the trait default).
        let n = 16u32;
        let degs: Vec<u32> = (0..n).map(|v| v % 5 + 1).collect();
        let p = PageRank::new(n, Arc::new(degs));
        let src_base = 2u32;
        let src_vals: Vec<f64> = (0..n - src_base).map(|k| 0.01 + k as f64 * 0.37).collect();
        for len in 0..=13usize {
            let srcs: Vec<u32> = (0..len as u32).map(|k| src_base + (k * 7) % (n - src_base)).collect();
            let mut srcs = srcs;
            srcs.sort_unstable();
            let mut unrolled = 0.25;
            let got_u = p.absorb_run(9, &srcs, &src_vals, src_base, &mut unrolled);
            let mut scalar = 0.25;
            let mut got_s = false;
            for &s in &srcs {
                got_s |= p.absorb(s, &src_vals[(s - src_base) as usize], 9, &mut scalar);
            }
            assert_eq!(got_u, got_s, "len {len}");
            assert!(
                (unrolled - scalar).abs() < 1e-14,
                "len {len}: {unrolled} vs {scalar}"
            );
        }
    }
}
