//! Weakly Connected Components.
//!
//! Minimum-label propagation over the *undirected* view of the graph: each
//! vertex starts labelled with its own id and repeatedly adopts the
//! minimum label among itself and its neighbours (both edge directions, so
//! the engine runs with [`Direction::Both`] and the preprocessing must
//! have built reverse sub-shards). At fixpoint every vertex carries the
//! minimum vertex id of its weak component.
//!
//! [`Direction::Both`]: crate::program::Direction::Both

use crate::program::VertexProgram;
use crate::types::VertexId;

/// WCC min-label propagation program.
pub struct Wcc;

impl VertexProgram for Wcc {
    type Value = u32;
    type Accum = u32;
    const APPLY_NEEDS_OLD: bool = true;
    const ALWAYS_APPLY: bool = false;

    fn init(&self, v: VertexId) -> u32 {
        v
    }

    fn zero(&self) -> u32 {
        u32::MAX
    }

    fn absorb(&self, _src: VertexId, src_val: &u32, _dst: VertexId, acc: &mut u32) -> bool {
        if *src_val < *acc {
            *acc = *src_val;
        }
        true
    }

    fn combine(&self, a: &mut u32, b: &u32) {
        *a = (*a).min(*b);
    }

    fn apply(&self, _v: VertexId, old: &u32, acc: &u32, _got: bool) -> u32 {
        (*old).min(*acc)
    }
}

/// Number of distinct components in a label array.
pub fn component_count(labels: &[u32]) -> usize {
    let mut seen: Vec<u32> = labels.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

/// Size of the largest component.
pub fn largest_component(labels: &[u32]) -> usize {
    use std::collections::HashMap;
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &l in labels {
        *counts.entry(l).or_default() += 1;
    }
    counts.values().copied().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_flows_downhill() {
        let w = Wcc;
        let mut acc = w.zero();
        w.absorb(5, &5, 9, &mut acc);
        w.absorb(2, &2, 9, &mut acc);
        w.absorb(7, &7, 9, &mut acc);
        assert_eq!(acc, 2);
        assert_eq!(w.apply(9, &9, &acc, true), 2);
        assert_eq!(w.apply(9, &1, &acc, true), 1);
    }

    #[test]
    fn helpers() {
        let labels = vec![0, 0, 0, 3, 3, 5];
        assert_eq!(component_count(&labels), 3);
        assert_eq!(largest_component(&labels), 3);
        assert_eq!(component_count(&[]), 0);
        assert_eq!(largest_component(&[]), 0);
    }
}
