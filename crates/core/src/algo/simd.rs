//! SIMD inner loops for the f64 `absorb_run` overrides.
//!
//! [`weighted_sum`] and [`table_sum`] are the vectorised counterparts of
//! the 4-lane ILP-unrolled scalar sums that PageRank/PPR/HITS fold per
//! destination run. The contract is **bitwise reproducibility**: every
//! path — AVX, SSE2, scalar — computes the *same* four partial lanes
//! (lane `k` accumulates elements `k, k+4, k+8, …` with an IEEE multiply
//! followed by an IEEE add, never an FMA) and folds them in the fixed
//! order `(l0 + l1) + (l2 + l3) + tail`. The SIMD paths merely execute
//! the four lane updates in one instruction, so the result is identical
//! to the scalar unroll bit for bit, and therefore identical across
//! hosts with different vector extensions.
//!
//! Dispatch is a cached runtime check (`is_x86_feature_detected!`): AVX
//! when available, else SSE2 (baseline on `x86_64`); other architectures
//! use the scalar unroll.

use crate::types::VertexId;

/// `Σ src_vals[s − base] · weight[s]` over one destination's source run.
#[inline]
pub(crate) fn weighted_sum(
    srcs: &[VertexId],
    src_vals: &[f64],
    base: usize,
    weight: &[f64],
) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx") {
            // Safety: AVX support was just verified at runtime.
            return unsafe { x86::weighted_sum_avx(srcs, src_vals, base, weight) };
        }
        x86::weighted_sum_sse2(srcs, src_vals, base, weight)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        weighted_sum_scalar(srcs, src_vals, base, weight)
    }
}

/// `Σ table[s]` over a source run (HITS-style companion-table sum).
#[inline]
pub(crate) fn table_sum(srcs: &[VertexId], table: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx") {
            // Safety: AVX support was just verified at runtime.
            return unsafe { x86::table_sum_avx(srcs, table) };
        }
        x86::table_sum_sse2(srcs, table)
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        table_sum_scalar(srcs, table)
    }
}

/// The reference 4-lane unroll (also the non-x86 fallback). Four
/// independent lanes break the loop-carried add dependency; the fold
/// order is fixed so every caller reassociates identically.
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
#[inline]
pub(crate) fn weighted_sum_scalar(
    srcs: &[VertexId],
    src_vals: &[f64],
    base: usize,
    weight: &[f64],
) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut chunks = srcs.chunks_exact(4);
    for c in &mut chunks {
        lanes[0] += src_vals[c[0] as usize - base] * weight[c[0] as usize];
        lanes[1] += src_vals[c[1] as usize - base] * weight[c[1] as usize];
        lanes[2] += src_vals[c[2] as usize - base] * weight[c[2] as usize];
        lanes[3] += src_vals[c[3] as usize - base] * weight[c[3] as usize];
    }
    let mut tail = 0.0;
    for &s in chunks.remainder() {
        tail += src_vals[s as usize - base] * weight[s as usize];
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// Scalar 4-lane `Σ table[s]`; see [`weighted_sum_scalar`].
#[cfg_attr(target_arch = "x86_64", allow(dead_code))]
#[inline]
pub(crate) fn table_sum_scalar(srcs: &[VertexId], table: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut chunks = srcs.chunks_exact(4);
    for c in &mut chunks {
        lanes[0] += table[c[0] as usize];
        lanes[1] += table[c[1] as usize];
        lanes[2] += table[c[2] as usize];
        lanes[3] += table[c[3] as usize];
    }
    let mut tail = 0.0;
    for &s in chunks.remainder() {
        tail += table[s as usize];
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    use crate::types::VertexId;

    /// AVX: one `__m256d` accumulator holds the four scalar lanes; each
    /// chunk issues one packed multiply and one packed add (no FMA — a
    /// fused multiply-add would round differently from the scalar path).
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn weighted_sum_avx(
        srcs: &[VertexId],
        src_vals: &[f64],
        base: usize,
        weight: &[f64],
    ) -> f64 {
        let mut acc = _mm256_setzero_pd();
        let mut chunks = srcs.chunks_exact(4);
        for c in &mut chunks {
            // `_mm256_set_pd` takes operands high-to-low: lane k of `acc`
            // replays scalar lane k exactly.
            let v = _mm256_set_pd(
                src_vals[c[3] as usize - base],
                src_vals[c[2] as usize - base],
                src_vals[c[1] as usize - base],
                src_vals[c[0] as usize - base],
            );
            let w = _mm256_set_pd(
                weight[c[3] as usize],
                weight[c[2] as usize],
                weight[c[1] as usize],
                weight[c[0] as usize],
            );
            acc = _mm256_add_pd(acc, _mm256_mul_pd(v, w));
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        let mut tail = 0.0;
        for &s in chunks.remainder() {
            tail += src_vals[s as usize - base] * weight[s as usize];
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
    }

    /// SSE2 (baseline on `x86_64`): lanes 0/1 and 2/3 in two `__m128d`
    /// accumulators, same per-lane arithmetic as the scalar unroll.
    pub(super) fn weighted_sum_sse2(
        srcs: &[VertexId],
        src_vals: &[f64],
        base: usize,
        weight: &[f64],
    ) -> f64 {
        // Safety: SSE2 is part of the x86_64 baseline.
        unsafe {
            let mut acc01 = _mm_setzero_pd();
            let mut acc23 = _mm_setzero_pd();
            let mut chunks = srcs.chunks_exact(4);
            for c in &mut chunks {
                let v01 = _mm_set_pd(
                    src_vals[c[1] as usize - base],
                    src_vals[c[0] as usize - base],
                );
                let w01 = _mm_set_pd(weight[c[1] as usize], weight[c[0] as usize]);
                acc01 = _mm_add_pd(acc01, _mm_mul_pd(v01, w01));
                let v23 = _mm_set_pd(
                    src_vals[c[3] as usize - base],
                    src_vals[c[2] as usize - base],
                );
                let w23 = _mm_set_pd(weight[c[3] as usize], weight[c[2] as usize]);
                acc23 = _mm_add_pd(acc23, _mm_mul_pd(v23, w23));
            }
            let mut l01 = [0.0f64; 2];
            let mut l23 = [0.0f64; 2];
            _mm_storeu_pd(l01.as_mut_ptr(), acc01);
            _mm_storeu_pd(l23.as_mut_ptr(), acc23);
            let mut tail = 0.0;
            for &s in chunks.remainder() {
                tail += src_vals[s as usize - base] * weight[s as usize];
            }
            (l01[0] + l01[1]) + (l23[0] + l23[1]) + tail
        }
    }

    /// AVX `Σ table[s]`; see [`weighted_sum_avx`].
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn table_sum_avx(srcs: &[VertexId], table: &[f64]) -> f64 {
        let mut acc = _mm256_setzero_pd();
        let mut chunks = srcs.chunks_exact(4);
        for c in &mut chunks {
            let v = _mm256_set_pd(
                table[c[3] as usize],
                table[c[2] as usize],
                table[c[1] as usize],
                table[c[0] as usize],
            );
            acc = _mm256_add_pd(acc, v);
        }
        let mut lanes = [0.0f64; 4];
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc);
        let mut tail = 0.0;
        for &s in chunks.remainder() {
            tail += table[s as usize];
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
    }

    /// SSE2 `Σ table[s]`; see [`weighted_sum_sse2`].
    pub(super) fn table_sum_sse2(srcs: &[VertexId], table: &[f64]) -> f64 {
        // Safety: SSE2 is part of the x86_64 baseline.
        unsafe {
            let mut acc01 = _mm_setzero_pd();
            let mut acc23 = _mm_setzero_pd();
            let mut chunks = srcs.chunks_exact(4);
            for c in &mut chunks {
                acc01 = _mm_add_pd(
                    acc01,
                    _mm_set_pd(table[c[1] as usize], table[c[0] as usize]),
                );
                acc23 = _mm_add_pd(
                    acc23,
                    _mm_set_pd(table[c[3] as usize], table[c[2] as usize]),
                );
            }
            let mut l01 = [0.0f64; 2];
            let mut l23 = [0.0f64; 2];
            _mm_storeu_pd(l01.as_mut_ptr(), acc01);
            _mm_storeu_pd(l23.as_mut_ptr(), acc23);
            let mut tail = 0.0;
            for &s in chunks.remainder() {
                tail += table[s as usize];
            }
            (l01[0] + l01[1]) + (l23[0] + l23[1]) + tail
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random doubles with awkward magnitudes so a
    /// reassociated sum would actually differ in the low bits.
    fn lcg_vals(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                // Spread across several orders of magnitude.
                let m = (state >> 33) as f64 / (1u64 << 31) as f64;
                let e = ((state >> 11) % 13) as i32 - 6;
                m * 10f64.powi(e)
            })
            .collect()
    }

    #[test]
    fn weighted_sum_paths_agree_bitwise() {
        let table = lcg_vals(64, 7);
        let weights = lcg_vals(64, 99);
        for len in 0..=19usize {
            // Scattered source ids in [8, 64) against base 8.
            let srcs: Vec<VertexId> =
                (0..len).map(|k| 8 + ((k * 11 + 3) % 56) as VertexId).collect();
            let vals = &table[8..];
            let scalar = weighted_sum_scalar(&srcs, vals, 8, &weights);
            let dispatched = weighted_sum(&srcs, vals, 8, &weights);
            assert_eq!(scalar.to_bits(), dispatched.to_bits(), "len={len}");
            #[cfg(target_arch = "x86_64")]
            {
                let sse2 = super::x86::weighted_sum_sse2(&srcs, vals, 8, &weights);
                assert_eq!(scalar.to_bits(), sse2.to_bits(), "sse2 len={len}");
                if std::arch::is_x86_feature_detected!("avx") {
                    let avx =
                        unsafe { super::x86::weighted_sum_avx(&srcs, vals, 8, &weights) };
                    assert_eq!(scalar.to_bits(), avx.to_bits(), "avx len={len}");
                }
            }
        }
    }

    #[test]
    fn table_sum_paths_agree_bitwise() {
        let table = lcg_vals(64, 41);
        for len in 0..=19usize {
            let srcs: Vec<VertexId> = (0..len).map(|k| ((k * 17 + 5) % 64) as VertexId).collect();
            let scalar = table_sum_scalar(&srcs, &table);
            let dispatched = table_sum(&srcs, &table);
            assert_eq!(scalar.to_bits(), dispatched.to_bits(), "len={len}");
            #[cfg(target_arch = "x86_64")]
            {
                let sse2 = super::x86::table_sum_sse2(&srcs, &table);
                assert_eq!(scalar.to_bits(), sse2.to_bits(), "sse2 len={len}");
                if std::arch::is_x86_feature_detected!("avx") {
                    let avx = unsafe { super::x86::table_sum_avx(&srcs, &table) };
                    assert_eq!(scalar.to_bits(), avx.to_bits(), "avx len={len}");
                }
            }
        }
    }

    #[test]
    fn lane_association_is_the_documented_order() {
        // 8 elements: lanes are (e0+e4), (e1+e5), (e2+e6), (e3+e7) folded
        // as (l0+l1)+(l2+l3). Verify against a hand-built expression.
        let table: Vec<f64> = lcg_vals(8, 3);
        let srcs: Vec<VertexId> = (0..8).collect();
        let l0 = table[0] + table[4];
        let l1 = table[1] + table[5];
        let l2 = table[2] + table[6];
        let l3 = table[3] + table[7];
        let want = (l0 + l1) + (l2 + l3);
        assert_eq!(want.to_bits(), table_sum(&srcs, &table).to_bits());
    }
}
