//! The paper's evaluation algorithms as [`VertexProgram`]s plus one-call
//! wrappers.
//!
//! * [`pagerank()`] — the global-query workload of Exps 1–5, 8, 9.
//! * [`bfs()`] — Breadth-First Search (Algorithm 2–4 of the paper).
//! * [`wcc()`] — Weakly Connected Components (undirected label propagation).
//! * [`scc()`] — Strongly Connected Components (forward-max-colouring +
//!   backward confirmation, built from two engine runs per round).
//!
//! [`VertexProgram`]: crate::program::VertexProgram

pub mod bfs;
pub mod hits;
pub mod kcore;
pub mod pagerank;
pub mod ppr;
pub mod scc;
pub mod sssp;
pub mod wcc;

use crate::dsss::PreparedGraph;
use crate::engine::{self, EngineConfig, RunStats};
use crate::error::EngineResult;
use crate::program::Direction;
use crate::types::VertexId;

pub use bfs::Bfs;
pub use hits::hits;
pub use kcore::kcore;
pub use pagerank::PageRank;
pub use ppr::PersonalizedPageRank;
pub use scc::SccOutcome;
pub use sssp::Sssp;
pub use wcc::Wcc;

/// 4-way ILP-unrolled `Σ src_vals[s − base] · weight[s]` over one
/// destination's source run — the shared inner loop of the f64
/// `absorb_run` overrides (PageRank/PPR with reciprocal out-degrees as
/// weights, HITS via [`unrolled_table_sum`]).
///
/// Four independent lanes break the loop-carried add dependency; the fold
/// order `((l0+l1)+(l2+l3))+tail` is fixed so every caller reassociates
/// identically.
#[inline]
pub(crate) fn unrolled_weighted_sum(
    srcs: &[VertexId],
    src_vals: &[f64],
    base: usize,
    weight: &[f64],
) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut chunks = srcs.chunks_exact(4);
    for c in &mut chunks {
        lanes[0] += src_vals[c[0] as usize - base] * weight[c[0] as usize];
        lanes[1] += src_vals[c[1] as usize - base] * weight[c[1] as usize];
        lanes[2] += src_vals[c[2] as usize - base] * weight[c[2] as usize];
        lanes[3] += src_vals[c[3] as usize - base] * weight[c[3] as usize];
    }
    let mut tail = 0.0;
    for &s in chunks.remainder() {
        tail += src_vals[s as usize - base] * weight[s as usize];
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// 4-way ILP-unrolled `Σ table[s]` over a source run (HITS sums the
/// companion score table directly; see [`unrolled_weighted_sum`]).
#[inline]
pub(crate) fn unrolled_table_sum(srcs: &[VertexId], table: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut chunks = srcs.chunks_exact(4);
    for c in &mut chunks {
        lanes[0] += table[c[0] as usize];
        lanes[1] += table[c[1] as usize];
        lanes[2] += table[c[2] as usize];
        lanes[3] += table[c[3] as usize];
    }
    let mut tail = 0.0;
    for &s in chunks.remainder() {
        tail += table[s as usize];
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// Run `iterations` of PageRank (damping 0.85) and return ranks.
pub fn pagerank(
    g: &PreparedGraph,
    iterations: usize,
    cfg: &EngineConfig,
) -> EngineResult<(Vec<f64>, RunStats)> {
    let prog = PageRank::new(g.num_vertices(), std::sync::Arc::clone(g.out_degrees()));
    let mut cfg = cfg.clone();
    cfg.max_iterations = iterations;
    cfg.direction = Direction::Forward;
    engine::run(g, &prog, &cfg)
}

/// BFS from `root`; returns depths (`u32::MAX` = unreachable).
pub fn bfs(
    g: &PreparedGraph,
    root: VertexId,
    cfg: &EngineConfig,
) -> EngineResult<(Vec<u32>, RunStats)> {
    let prog = Bfs::new(root);
    let mut cfg = cfg.clone();
    cfg.direction = Direction::Forward;
    // BFS needs depth-of-graph iterations; the engine's activity tracking
    // terminates as soon as no interval changes.
    cfg.max_iterations = cfg.max_iterations.max(g.num_vertices() as usize + 1);
    engine::run(g, &prog, &cfg)
}

/// Weakly connected components; labels are the minimum vertex id of each
/// component.
pub fn wcc(g: &PreparedGraph, cfg: &EngineConfig) -> EngineResult<(Vec<u32>, RunStats)> {
    let prog = Wcc;
    let mut cfg = cfg.clone();
    cfg.direction = Direction::Both;
    cfg.max_iterations = cfg.max_iterations.max(g.num_vertices() as usize + 1);
    engine::run(g, &prog, &cfg)
}

/// Strongly connected components; labels are the maximum vertex id of each
/// component. See the [`mod@scc`] module docs for the round structure.
pub fn scc(g: &PreparedGraph, cfg: &EngineConfig) -> EngineResult<SccOutcome> {
    scc::run(g, cfg)
}
