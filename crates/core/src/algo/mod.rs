//! The paper's evaluation algorithms as [`VertexProgram`]s plus one-call
//! wrappers.
//!
//! * [`pagerank()`] — the global-query workload of Exps 1–5, 8, 9.
//! * [`bfs()`] — Breadth-First Search (Algorithm 2–4 of the paper).
//! * [`wcc()`] — Weakly Connected Components (undirected label propagation).
//! * [`scc()`] — Strongly Connected Components (forward-max-colouring +
//!   backward confirmation, built from two engine runs per round).
//!
//! [`VertexProgram`]: crate::program::VertexProgram

pub mod bfs;
pub mod hits;
pub mod kcore;
pub mod pagerank;
pub mod ppr;
pub mod scc;
pub(crate) mod simd;
pub mod sssp;
pub mod wcc;

use crate::dsss::PreparedGraph;
use crate::engine::{self, EngineConfig, RunStats};
use crate::error::EngineResult;
use crate::program::Direction;
use crate::types::VertexId;

pub use bfs::Bfs;
pub use hits::hits;
pub use kcore::kcore;
pub use pagerank::PageRank;
pub use ppr::PersonalizedPageRank;
pub use scc::SccOutcome;
pub use sssp::Sssp;
pub use wcc::Wcc;

/// `Σ src_vals[s − base] · weight[s]` over one destination's source run —
/// the shared inner loop of the f64 `absorb_run` overrides (PageRank/PPR
/// with reciprocal out-degrees as weights, HITS via
/// [`unrolled_table_sum`]).
///
/// Dispatches to the SIMD kernels in [`simd`] (AVX → SSE2 → scalar
/// unroll); every path computes the same four partial lanes and folds
/// them as `((l0+l1)+(l2+l3))+tail`, so the result is bitwise-identical
/// regardless of the vector extension the host happens to have.
#[inline]
pub(crate) fn unrolled_weighted_sum(
    srcs: &[VertexId],
    src_vals: &[f64],
    base: usize,
    weight: &[f64],
) -> f64 {
    simd::weighted_sum(srcs, src_vals, base, weight)
}

/// `Σ table[s]` over a source run (HITS sums the companion score table
/// directly; see [`unrolled_weighted_sum`] for the dispatch contract).
#[inline]
pub(crate) fn unrolled_table_sum(srcs: &[VertexId], table: &[f64]) -> f64 {
    simd::table_sum(srcs, table)
}

/// Run `iterations` of PageRank (damping 0.85) and return ranks.
pub fn pagerank(
    g: &PreparedGraph,
    iterations: usize,
    cfg: &EngineConfig,
) -> EngineResult<(Vec<f64>, RunStats)> {
    let prog = PageRank::new(g.num_vertices(), std::sync::Arc::clone(g.out_degrees()));
    let mut cfg = cfg.clone();
    cfg.max_iterations = iterations;
    cfg.direction = Direction::Forward;
    engine::run(g, &prog, &cfg)
}

/// BFS from `root`; returns depths (`u32::MAX` = unreachable).
pub fn bfs(
    g: &PreparedGraph,
    root: VertexId,
    cfg: &EngineConfig,
) -> EngineResult<(Vec<u32>, RunStats)> {
    let prog = Bfs::new(root);
    let mut cfg = cfg.clone();
    cfg.direction = Direction::Forward;
    // BFS needs depth-of-graph iterations; the engine's activity tracking
    // terminates as soon as no interval changes.
    cfg.max_iterations = cfg.max_iterations.max(g.num_vertices() as usize + 1);
    engine::run(g, &prog, &cfg)
}

/// Weakly connected components; labels are the minimum vertex id of each
/// component.
pub fn wcc(g: &PreparedGraph, cfg: &EngineConfig) -> EngineResult<(Vec<u32>, RunStats)> {
    let prog = Wcc;
    let mut cfg = cfg.clone();
    cfg.direction = Direction::Both;
    cfg.max_iterations = cfg.max_iterations.max(g.num_vertices() as usize + 1);
    engine::run(g, &prog, &cfg)
}

/// Strongly connected components; labels are the maximum vertex id of each
/// component. See the [`mod@scc`] module docs for the round structure.
pub fn scc(g: &PreparedGraph, cfg: &EngineConfig) -> EngineResult<SccOutcome> {
    scc::run(g, cfg)
}
