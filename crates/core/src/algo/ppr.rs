//! Personalised PageRank: teleportation restricted to a source set.
//!
//! `p(v) = (1−δ)·1[v ∈ S]/|S| + δ · Σ p(u)/outdeg(u)` — ranks vertices by
//! proximity to the personalisation set `S` (e.g. one user's ego network).
//! The same global-recompute pattern as [`PageRank`](super::PageRank); the
//! only change is the teleport term.

use std::collections::HashSet;
use std::sync::Arc;

use crate::program::VertexProgram;
use crate::types::VertexId;

/// Personalised PageRank program.
pub struct PersonalizedPageRank {
    sources: HashSet<VertexId>,
    damping: f64,
    /// Reciprocal out-degrees, precomputed so the absorb hot loop
    /// multiplies instead of dividing (see [`PageRank`](super::PageRank)).
    inv_deg: Vec<f64>,
}

impl PersonalizedPageRank {
    /// Personalise on `sources` (must be non-empty).
    pub fn new(sources: impl IntoIterator<Item = VertexId>, out_degrees: Arc<Vec<u32>>) -> Self {
        let sources: HashSet<_> = sources.into_iter().collect();
        assert!(!sources.is_empty(), "personalisation set must be non-empty");
        let inv_deg = out_degrees
            .iter()
            .map(|&d| if d == 0 { 0.0 } else { 1.0 / d as f64 })
            .collect();
        Self {
            sources,
            damping: 0.85,
            inv_deg,
        }
    }

    fn teleport(&self, v: VertexId) -> f64 {
        if self.sources.contains(&v) {
            (1.0 - self.damping) / self.sources.len() as f64
        } else {
            0.0
        }
    }
}

impl VertexProgram for PersonalizedPageRank {
    type Value = f64;
    type Accum = f64;
    const APPLY_NEEDS_OLD: bool = false;
    const ALWAYS_APPLY: bool = true;

    fn init(&self, v: VertexId) -> f64 {
        if self.sources.contains(&v) {
            1.0 / self.sources.len() as f64
        } else {
            0.0
        }
    }

    fn zero(&self) -> f64 {
        0.0
    }

    fn absorb(&self, src: VertexId, src_val: &f64, _dst: VertexId, acc: &mut f64) -> bool {
        *acc += *src_val * self.inv_deg[src as usize];
        true
    }

    fn combine(&self, a: &mut f64, b: &f64) {
        *a += *b;
    }

    fn absorb_run(
        &self,
        _dst: VertexId,
        srcs: &[VertexId],
        src_vals: &[f64],
        src_base: VertexId,
        acc: &mut f64,
    ) -> bool {
        if srcs.is_empty() {
            return false;
        }
        // Same shared 4-lane ILP unroll as PageRank's scatter sum.
        let run = super::unrolled_weighted_sum(srcs, src_vals, src_base as usize, &self.inv_deg);
        self.combine(acc, &run);
        true
    }

    fn apply(&self, v: VertexId, _old: &f64, acc: &f64, _got: bool) -> f64 {
        self.teleport(v) + self.damping * *acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::prep::{preprocess, PrepConfig};
    use nxgraph_storage::{Disk, MemDisk};

    fn run_ppr(raw: &[(u64, u64)], sources: Vec<u32>, iters: usize) -> Vec<f64> {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let g = preprocess(raw, &PrepConfig::forward_only("ppr", 3), disk).unwrap();
        let prog = PersonalizedPageRank::new(sources, Arc::clone(g.out_degrees()));
        let cfg = EngineConfig {
            max_iterations: iters,
            ..EngineConfig::default()
        };
        crate::engine::run(&g, &prog, &cfg).unwrap().0
    }

    #[test]
    fn mass_concentrates_near_the_source() {
        // Path 0→1→2→3→4 plus a back edge to keep everything ranked.
        let raw: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let r = run_ppr(&raw, vec![0], 30);
        // Rank decays monotonically with distance from the source.
        assert!(r[0] > r[1] && r[1] > r[2] && r[2] > r[3] && r[3] > r[4], "{r:?}");
    }

    #[test]
    fn vertices_unreachable_from_sources_get_zero() {
        // Two disjoint cycles; personalise on the first.
        let raw: Vec<(u64, u64)> = vec![(0, 1), (1, 0), (2, 3), (3, 2)];
        let r = run_ppr(&raw, vec![0], 20);
        assert!(r[0] > 0.0 && r[1] > 0.0);
        assert_eq!(r[2], 0.0);
        assert_eq!(r[3], 0.0);
    }

    #[test]
    fn multiple_sources_split_teleport() {
        let raw: Vec<(u64, u64)> = vec![(0, 1), (1, 0), (2, 3), (3, 2)];
        let r = run_ppr(&raw, vec![0, 2], 30);
        // Symmetric components with symmetric sources → symmetric ranks.
        assert!((r[0] - r[2]).abs() < 1e-12);
        assert!((r[1] - r[3]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_source_set() {
        let _ = PersonalizedPageRank::new(Vec::<u32>::new(), Arc::new(vec![1]));
    }
}
