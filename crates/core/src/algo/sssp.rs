//! Single-Source Shortest Paths over weighted edges.
//!
//! The DSSS format stores topology only; weights are supplied as a
//! deterministic function of the edge's endpoints (`absorb` sees both, a
//! deliberate property of the kernel API). This covers the common
//! synthetic-benchmark setups — hash-derived weights, or geometric
//! distances for meshes — without widening every sub-shard file. The
//! computation itself is Bellman-Ford-style relaxation: monotone
//! min-propagation, so interval activity prunes converged regions exactly
//! like BFS.

use std::sync::Arc;

use crate::program::VertexProgram;
use crate::types::VertexId;

/// Distance value for unreached vertices.
pub const UNREACHED: f64 = f64::INFINITY;

/// Edge-weight oracle: deterministic, non-negative weight per `(src, dst)`.
pub type WeightFn = Arc<dyn Fn(VertexId, VertexId) -> f64 + Send + Sync>;

/// A weight function derived from hashing the endpoints into `[lo, hi)`.
/// Deterministic across runs and engines.
pub fn hash_weights(lo: f64, hi: f64) -> WeightFn {
    assert!(lo >= 0.0 && hi > lo, "weights must be non-negative");
    Arc::new(move |s, d| {
        // SplitMix64-style scramble of the edge key.
        let mut x = ((s as u64) << 32 | d as u64).wrapping_add(0x9e3779b97f4a7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
        x ^= x >> 31;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    })
}

/// Unit weights: SSSP degenerates to BFS (used to cross-check both).
pub fn unit_weights() -> WeightFn {
    Arc::new(|_, _| 1.0)
}

/// SSSP program rooted at a vertex.
pub struct Sssp {
    root: VertexId,
    weight: WeightFn,
}

impl Sssp {
    /// SSSP from `root` with the given weight oracle.
    pub fn new(root: VertexId, weight: WeightFn) -> Self {
        Self { root, weight }
    }
}

impl VertexProgram for Sssp {
    type Value = f64;
    type Accum = f64;
    const APPLY_NEEDS_OLD: bool = true;
    const ALWAYS_APPLY: bool = false;

    fn init(&self, v: VertexId) -> f64 {
        if v == self.root {
            0.0
        } else {
            UNREACHED
        }
    }

    fn initially_active(&self, v: VertexId) -> bool {
        v == self.root
    }

    fn zero(&self) -> f64 {
        UNREACHED
    }

    fn source_active(&self, _src: VertexId, val: &f64) -> bool {
        val.is_finite()
    }

    fn absorb(&self, src: VertexId, src_val: &f64, dst: VertexId, acc: &mut f64) -> bool {
        let cand = src_val + (self.weight)(src, dst);
        if cand < *acc {
            *acc = cand;
        }
        true
    }

    fn combine(&self, a: &mut f64, b: &f64) {
        if *b < *a {
            *a = *b;
        }
    }

    fn apply(&self, _v: VertexId, old: &f64, acc: &f64, _got: bool) -> f64 {
        old.min(*acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::prep::{preprocess, PrepConfig};
    use nxgraph_storage::{Disk, MemDisk};

    fn run_sssp(raw: &[(u64, u64)], root: u32, w: WeightFn) -> Vec<f64> {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let g = preprocess(raw, &PrepConfig::forward_only("sssp", 3), disk).unwrap();
        let prog = Sssp::new(root, w);
        let cfg = EngineConfig {
            max_iterations: g.num_vertices() as usize + 1,
            ..EngineConfig::default()
        };
        crate::engine::run(&g, &prog, &cfg).unwrap().0
    }

    #[test]
    fn unit_weights_match_bfs() {
        let raw: Vec<(u64, u64)> = crate::fig1_example_edges()
            .iter()
            .map(|&(s, d)| (s as u64, d as u64))
            .collect();
        let dist = run_sssp(&raw, 0, unit_weights());
        let depths = crate::reference::bfs(7, &crate::fig1_example_edges(), 0);
        for (v, (&d, &b)) in dist.iter().zip(&depths).enumerate() {
            if b == u32::MAX {
                assert!(d.is_infinite(), "vertex {v}");
            } else {
                assert!((d - b as f64).abs() < 1e-12, "vertex {v}: {d} vs {b}");
            }
        }
    }

    #[test]
    fn shortcut_beats_long_path() {
        // 0→1→2 with heavy edges, plus a light direct 0→2.
        let raw = vec![(0u64, 1u64), (1, 2), (0, 2)];
        let w: WeightFn = Arc::new(|s, d| match (s, d) {
            (0, 1) => 10.0,
            (1, 2) => 10.0,
            (0, 2) => 3.0,
            _ => unreachable!(),
        });
        let dist = run_sssp(&raw, 0, w);
        assert_eq!(dist, vec![0.0, 10.0, 3.0]);
    }

    #[test]
    fn relaxation_finds_multi_hop_improvement() {
        // Direct edge heavy, two-hop light: needs ≥2 relaxation rounds.
        let raw = vec![(0u64, 2u64), (0, 1), (1, 2)];
        let w: WeightFn = Arc::new(|s, d| match (s, d) {
            (0, 2) => 9.0,
            (0, 1) => 1.0,
            (1, 2) => 1.0,
            _ => unreachable!(),
        });
        let dist = run_sssp(&raw, 0, w);
        assert_eq!(dist, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn hash_weights_are_deterministic_and_bounded() {
        let w = hash_weights(1.0, 5.0);
        for (s, d) in [(0u32, 1u32), (7, 9), (1000, 3)] {
            let a = w(s, d);
            assert_eq!(a, w(s, d));
            assert!((1.0..5.0).contains(&a));
        }
        // Asymmetric: (s,d) and (d,s) weights generally differ.
        assert_ne!(w(0, 1), w(1, 0));
    }

    #[test]
    fn matches_dijkstra_oracle_on_random_graph() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let n = 60u64;
        let raw: Vec<(u64, u64)> = (0..400)
            .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
            .collect();
        let w = hash_weights(0.5, 2.0);
        let dist = run_sssp(&raw, 0, Arc::clone(&w));

        // Dense-id mapping (ids ascend with indices).
        let mut idx: Vec<u64> = raw.iter().flat_map(|&(s, d)| [s, d]).collect();
        idx.sort_unstable();
        idx.dedup();
        let nn = idx.len();
        let mut adj: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nn];
        for &(s, d) in &raw {
            let si = idx.binary_search(&s).unwrap();
            let di = idx.binary_search(&d).unwrap();
            adj[si].push((di, w(si as u32, di as u32)));
        }
        // Dijkstra.
        let mut best = vec![f64::INFINITY; nn];
        best[0] = 0.0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push((std::cmp::Reverse(ordered_float(0.0)), 0usize));
        while let Some((std::cmp::Reverse(d0), u)) = heap.pop() {
            let d0 = d0.0;
            if d0 > best[u] {
                continue;
            }
            for &(v, w) in &adj[u] {
                let nd = d0 + w;
                if nd < best[v] {
                    best[v] = nd;
                    heap.push((std::cmp::Reverse(ordered_float(nd)), v));
                }
            }
        }
        for (v, (a, b)) in dist.iter().zip(&best).enumerate() {
            if b.is_infinite() {
                assert!(a.is_infinite(), "vertex {v}");
            } else {
                assert!((a - b).abs() < 1e-9, "vertex {v}: {a} vs {b}");
            }
        }
    }

    /// Total-ordered f64 wrapper for the Dijkstra heap.
    fn ordered_float(v: f64) -> OrdF64 {
        OrdF64(v)
    }

    #[derive(PartialEq, PartialOrd)]
    struct OrdF64(f64);
    impl Eq for OrdF64 {}
    #[allow(clippy::derive_ord_xor_partial_ord)]
    impl Ord for OrdF64 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
}
