//! Single-threaded in-memory oracles.
//!
//! Deliberately naive implementations used by the test-suite to validate
//! every engine and baseline: if SPU, DPU, MPU and all "-like" baseline
//! engines agree with these on random graphs, the whole stack is
//! consistent.

use crate::types::VertexId;

/// PageRank, synchronous, damping 0.85, no dangling redistribution —
/// semantically identical to [`crate::algo::pagerank::PageRank`].
pub fn pagerank(
    n: u32,
    edges: &[(VertexId, VertexId)],
    out_degrees: &[u32],
    iterations: usize,
) -> Vec<f64> {
    let nf = n as f64;
    let mut rank = vec![1.0 / nf; n as usize];
    let mut next = vec![0.0; n as usize];
    for _ in 0..iterations {
        next.fill(0.0);
        for &(s, d) in edges {
            next[d as usize] += rank[s as usize] / out_degrees[s as usize] as f64;
        }
        for v in next.iter_mut() {
            *v = 0.15 / nf + 0.85 * *v;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// BFS depths from `root`; unreachable = `u32::MAX`.
pub fn bfs(n: u32, edges: &[(VertexId, VertexId)], root: VertexId) -> Vec<u32> {
    let adj = adjacency(n, edges);
    let mut depth = vec![u32::MAX; n as usize];
    depth[root as usize] = 0;
    let mut frontier = vec![root];
    let mut d = 0;
    while !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in &adj[u as usize] {
                if depth[v as usize] == u32::MAX {
                    depth[v as usize] = d;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    depth
}

/// Weakly connected component labels: minimum vertex id per component
/// (union-find).
pub fn wcc(n: u32, edges: &[(VertexId, VertexId)]) -> Vec<u32> {
    let mut parent: Vec<u32> = (0..n).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for &(s, d) in edges {
        let (a, b) = (find(&mut parent, s), find(&mut parent, d));
        if a != b {
            // Union by value so the root is always the minimum id.
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            parent[hi as usize] = lo;
        }
    }
    (0..n).map(|v| find(&mut parent, v)).collect()
}

/// Strongly connected component labels: **maximum** vertex id per
/// component (matching [`crate::algo::scc()`]). Iterative Tarjan.
pub fn scc(n: u32, edges: &[(VertexId, VertexId)]) -> Vec<u32> {
    let adj = adjacency(n, edges);
    let n = n as usize;
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut labels = vec![0u32; n];
    let mut next_index = 0u32;

    // Explicit DFS stack: (vertex, next child position).
    for start in 0..n as u32 {
        if index[start as usize] != u32::MAX {
            continue;
        }
        let mut call: Vec<(u32, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            if *child == 0 {
                index[v as usize] = next_index;
                low[v as usize] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v as usize] = true;
            }
            if let Some(&w) = adj[v as usize].get(*child) {
                *child += 1;
                if index[w as usize] == u32::MAX {
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                // v finished.
                if low[v as usize] == index[v as usize] {
                    // Pop the component; label = max id.
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let label = *members.iter().max().unwrap();
                    for w in members {
                        labels[w as usize] = label;
                    }
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
            }
        }
    }
    labels
}

/// Single-source shortest paths with an arbitrary non-negative weight
/// oracle — Bellman-Ford relaxation to the fixpoint, semantically identical
/// to [`crate::algo::Sssp`]. Unreached = `f64::INFINITY`.
pub fn sssp(
    n: u32,
    edges: &[(VertexId, VertexId)],
    root: VertexId,
    weight: impl Fn(VertexId, VertexId) -> f64,
) -> Vec<f64> {
    let mut dist = vec![f64::INFINITY; n as usize];
    dist[root as usize] = 0.0;
    loop {
        let mut changed = false;
        for &(s, d) in edges {
            if dist[s as usize].is_finite() {
                let cand = dist[s as usize] + weight(s, d);
                if cand < dist[d as usize] {
                    dist[d as usize] = cand;
                    changed = true;
                }
            }
        }
        if !changed {
            return dist;
        }
    }
}

/// k-core membership flags by synchronous peeling, matching
/// [`crate::algo::kcore()`]'s engine semantics exactly: each round counts,
/// for every vertex, the **directed in-edges** whose source still survives
/// (so on the usual both-directions undirected ingestion this is the
/// neighbour count, with multiplicity for parallel edges), then peels
/// vertices below `k`. 1 = in the k-core.
pub fn kcore(n: u32, edges: &[(VertexId, VertexId)], k: u32) -> Vec<u32> {
    let mut alive = vec![1u32; n as usize];
    loop {
        let mut count = vec![0u32; n as usize];
        for &(s, d) in edges {
            if alive[s as usize] == 1 {
                count[d as usize] += 1;
            }
        }
        let mut changed = false;
        for v in 0..n as usize {
            if alive[v] == 1 && count[v] < k {
                alive[v] = 0;
                changed = true;
            }
        }
        if !changed {
            return alive;
        }
    }
}

/// HITS authority/hub scores with per-half-step L2 normalisation,
/// semantically identical to [`crate::algo::hits()`].
pub fn hits(n: u32, edges: &[(VertexId, VertexId)], iterations: usize) -> (Vec<f64>, Vec<f64>) {
    let n = n as usize;
    let mut auth = vec![1.0 / (n as f64).sqrt(); n];
    let mut hub = auth.clone();
    for _ in 0..iterations {
        let mut next_auth = vec![0.0; n];
        for &(s, d) in edges {
            next_auth[d as usize] += hub[s as usize];
        }
        l2_normalise(&mut next_auth);
        auth = next_auth;
        let mut next_hub = vec![0.0; n];
        for &(s, d) in edges {
            next_hub[s as usize] += auth[d as usize];
        }
        l2_normalise(&mut next_hub);
        hub = next_hub;
    }
    (auth, hub)
}

fn l2_normalise(v: &mut [f64]) {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Personalised PageRank (damping 0.85, teleport split over `sources`),
/// synchronous, semantically identical to
/// [`crate::algo::ppr::PersonalizedPageRank`].
pub fn ppr(
    n: u32,
    edges: &[(VertexId, VertexId)],
    sources: &[VertexId],
    out_degrees: &[u32],
    iterations: usize,
) -> Vec<f64> {
    const DAMPING: f64 = 0.85;
    let share = 1.0 / sources.len() as f64;
    let is_source = {
        let set: std::collections::HashSet<_> = sources.iter().copied().collect();
        move |v: u32| set.contains(&v)
    };
    let mut rank = vec![0.0; n as usize];
    for &s in sources {
        rank[s as usize] = share;
    }
    for _ in 0..iterations {
        let mut acc = vec![0.0; n as usize];
        for &(s, d) in edges {
            acc[d as usize] += rank[s as usize] / out_degrees[s as usize] as f64;
        }
        for v in 0..n {
            let teleport = if is_source(v) {
                (1.0 - DAMPING) * share
            } else {
                0.0
            };
            rank[v as usize] = teleport + DAMPING * acc[v as usize];
        }
    }
    rank
}

/// Out-adjacency lists.
fn adjacency(n: u32, edges: &[(VertexId, VertexId)]) -> Vec<Vec<VertexId>> {
    let mut adj = vec![Vec::new(); n as usize];
    for &(s, d) in edges {
        adj[s as usize].push(d);
    }
    adj
}

/// Out-degree table from an edge list.
pub fn out_degrees(n: u32, edges: &[(VertexId, VertexId)]) -> Vec<u32> {
    let mut deg = vec![0u32; n as usize];
    for &(s, _) in edges {
        deg[s as usize] += 1;
    }
    deg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagerank_sums_to_one_without_dangling() {
        // A 3-cycle has no dangling vertices: total mass conserved.
        let edges = vec![(0, 1), (1, 2), (2, 0)];
        let deg = out_degrees(3, &edges);
        let r = pagerank(3, &edges, &deg, 20);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Symmetric cycle → uniform ranks.
        assert!((r[0] - r[1]).abs() < 1e-12);
        assert!((r[1] - r[2]).abs() < 1e-12);
    }

    #[test]
    fn bfs_on_a_path() {
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        assert_eq!(bfs(4, &edges, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs(4, &edges, 2), vec![u32::MAX, u32::MAX, 0, 1]);
    }

    #[test]
    fn wcc_ignores_direction() {
        let edges = vec![(1, 0), (2, 3)];
        assert_eq!(wcc(5, &edges), vec![0, 0, 2, 2, 4]);
    }

    #[test]
    fn scc_cycle_vs_dag() {
        // Cycle 0→1→2→0 plus tail 2→3.
        let edges = vec![(0, 1), (1, 2), (2, 0), (2, 3)];
        assert_eq!(scc(4, &edges), vec![2, 2, 2, 3]);
        // Pure DAG: all singletons.
        assert_eq!(scc(3, &[(0, 1), (1, 2)]), vec![0, 1, 2]);
    }

    #[test]
    fn scc_on_fig1() {
        // Sanity: Fig 1 has a large SCC {0,1,2,3,4,5} (checked by hand:
        // 0→3→0 via 3→0, 1→2→... ) — verify Tarjan is at least
        // self-consistent: mutual reachability within labels.
        let edges = crate::fig1_example_edges();
        let labels = scc(7, &edges);
        // Vertex 6 has no incoming path back from its successors; it must
        // be a singleton.
        assert_eq!(labels[6], 6);
    }

    #[test]
    fn sssp_relaxes_multi_hop_shortcuts() {
        // Direct edge heavy, two-hop light.
        let edges = vec![(0, 2), (0, 1), (1, 2)];
        let w = |s: u32, d: u32| match (s, d) {
            (0, 2) => 9.0,
            (0, 1) => 1.0,
            (1, 2) => 1.0,
            _ => unreachable!(),
        };
        assert_eq!(sssp(3, &edges, 0, w), vec![0.0, 1.0, 2.0]);
        // Unreachable stays infinite.
        assert!(sssp(4, &edges, 0, w)[3].is_infinite());
    }

    #[test]
    fn kcore_peels_tail_keeps_triangle() {
        // Undirected triangle 0-1-2 plus tail 2-3 (both directions).
        let edges: Vec<(u32, u32)> = [(0, 1), (1, 2), (2, 0), (2, 3)]
            .iter()
            .flat_map(|&(a, b)| [(a, b), (b, a)])
            .collect();
        assert_eq!(kcore(4, &edges, 2), vec![1, 1, 1, 0]);
        // A path has no 2-core.
        let path: Vec<(u32, u32)> = [(0, 1), (1, 2), (2, 3)]
            .iter()
            .flat_map(|&(a, b)| [(a, b), (b, a)])
            .collect();
        assert_eq!(kcore(4, &path, 2), vec![0; 4]);
    }

    #[test]
    fn hits_star_graph_extremes() {
        // Sources 1..6 all point at sink 0: 0 is the only authority and
        // no hub.
        let edges: Vec<(u32, u32)> = (1..6).map(|s| (s, 0)).collect();
        let (auth, hub) = hits(6, &edges, 10);
        assert!(auth[0] > 0.99);
        assert!(hub[0] < 1e-12);
        let na: f64 = auth.iter().map(|x| x * x).sum();
        assert!((na - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ppr_zero_outside_reachable_set() {
        // Two disjoint 2-cycles; personalise on the first.
        let edges = vec![(0, 1), (1, 0), (2, 3), (3, 2)];
        let deg = out_degrees(4, &edges);
        let r = ppr(4, &edges, &[0], &deg, 20);
        assert!(r[0] > 0.0 && r[1] > 0.0);
        assert_eq!(r[2], 0.0);
        assert_eq!(r[3], 0.0);
    }

    #[test]
    fn scc_deep_path_no_stack_overflow() {
        // 50k-vertex path: recursive Tarjan would blow the stack.
        let edges: Vec<(u32, u32)> = (0..49_999).map(|v| (v, v + 1)).collect();
        let labels = scc(50_000, &edges);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[49_999], 49_999);
    }
}
