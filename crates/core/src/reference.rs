//! Single-threaded in-memory oracles.
//!
//! Deliberately naive implementations used by the test-suite to validate
//! every engine and baseline: if SPU, DPU, MPU and all "-like" baseline
//! engines agree with these on random graphs, the whole stack is
//! consistent.

use crate::types::VertexId;

/// PageRank, synchronous, damping 0.85, no dangling redistribution —
/// semantically identical to [`crate::algo::pagerank::PageRank`].
pub fn pagerank(
    n: u32,
    edges: &[(VertexId, VertexId)],
    out_degrees: &[u32],
    iterations: usize,
) -> Vec<f64> {
    let nf = n as f64;
    let mut rank = vec![1.0 / nf; n as usize];
    let mut next = vec![0.0; n as usize];
    for _ in 0..iterations {
        next.fill(0.0);
        for &(s, d) in edges {
            next[d as usize] += rank[s as usize] / out_degrees[s as usize] as f64;
        }
        for v in next.iter_mut() {
            *v = 0.15 / nf + 0.85 * *v;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// BFS depths from `root`; unreachable = `u32::MAX`.
pub fn bfs(n: u32, edges: &[(VertexId, VertexId)], root: VertexId) -> Vec<u32> {
    let adj = adjacency(n, edges);
    let mut depth = vec![u32::MAX; n as usize];
    depth[root as usize] = 0;
    let mut frontier = vec![root];
    let mut d = 0;
    while !frontier.is_empty() {
        d += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in &adj[u as usize] {
                if depth[v as usize] == u32::MAX {
                    depth[v as usize] = d;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    depth
}

/// Weakly connected component labels: minimum vertex id per component
/// (union-find).
pub fn wcc(n: u32, edges: &[(VertexId, VertexId)]) -> Vec<u32> {
    let mut parent: Vec<u32> = (0..n).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for &(s, d) in edges {
        let (a, b) = (find(&mut parent, s), find(&mut parent, d));
        if a != b {
            // Union by value so the root is always the minimum id.
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            parent[hi as usize] = lo;
        }
    }
    (0..n).map(|v| find(&mut parent, v)).collect()
}

/// Strongly connected component labels: **maximum** vertex id per
/// component (matching [`crate::algo::scc()`]). Iterative Tarjan.
pub fn scc(n: u32, edges: &[(VertexId, VertexId)]) -> Vec<u32> {
    let adj = adjacency(n, edges);
    let n = n as usize;
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut labels = vec![0u32; n];
    let mut next_index = 0u32;

    // Explicit DFS stack: (vertex, next child position).
    for start in 0..n as u32 {
        if index[start as usize] != u32::MAX {
            continue;
        }
        let mut call: Vec<(u32, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut child)) = call.last_mut() {
            if *child == 0 {
                index[v as usize] = next_index;
                low[v as usize] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v as usize] = true;
            }
            if let Some(&w) = adj[v as usize].get(*child) {
                *child += 1;
                if index[w as usize] == u32::MAX {
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                // v finished.
                if low[v as usize] == index[v as usize] {
                    // Pop the component; label = max id.
                    let mut members = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        members.push(w);
                        if w == v {
                            break;
                        }
                    }
                    let label = *members.iter().max().unwrap();
                    for w in members {
                        labels[w as usize] = label;
                    }
                }
                call.pop();
                if let Some(&mut (parent, _)) = call.last_mut() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                }
            }
        }
    }
    labels
}

/// Out-adjacency lists.
fn adjacency(n: u32, edges: &[(VertexId, VertexId)]) -> Vec<Vec<VertexId>> {
    let mut adj = vec![Vec::new(); n as usize];
    for &(s, d) in edges {
        adj[s as usize].push(d);
    }
    adj
}

/// Out-degree table from an edge list.
pub fn out_degrees(n: u32, edges: &[(VertexId, VertexId)]) -> Vec<u32> {
    let mut deg = vec![0u32; n as usize];
    for &(s, _) in edges {
        deg[s as usize] += 1;
    }
    deg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pagerank_sums_to_one_without_dangling() {
        // A 3-cycle has no dangling vertices: total mass conserved.
        let edges = vec![(0, 1), (1, 2), (2, 0)];
        let deg = out_degrees(3, &edges);
        let r = pagerank(3, &edges, &deg, 20);
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Symmetric cycle → uniform ranks.
        assert!((r[0] - r[1]).abs() < 1e-12);
        assert!((r[1] - r[2]).abs() < 1e-12);
    }

    #[test]
    fn bfs_on_a_path() {
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        assert_eq!(bfs(4, &edges, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs(4, &edges, 2), vec![u32::MAX, u32::MAX, 0, 1]);
    }

    #[test]
    fn wcc_ignores_direction() {
        let edges = vec![(1, 0), (2, 3)];
        assert_eq!(wcc(5, &edges), vec![0, 0, 2, 2, 4]);
    }

    #[test]
    fn scc_cycle_vs_dag() {
        // Cycle 0→1→2→0 plus tail 2→3.
        let edges = vec![(0, 1), (1, 2), (2, 0), (2, 3)];
        assert_eq!(scc(4, &edges), vec![2, 2, 2, 3]);
        // Pure DAG: all singletons.
        assert_eq!(scc(3, &[(0, 1), (1, 2)]), vec![0, 1, 2]);
    }

    #[test]
    fn scc_on_fig1() {
        // Sanity: Fig 1 has a large SCC {0,1,2,3,4,5} (checked by hand:
        // 0→3→0 via 3→0, 1→2→... ) — verify Tarjan is at least
        // self-consistent: mutual reachability within labels.
        let edges = crate::fig1_example_edges();
        let labels = scc(7, &edges);
        // Vertex 6 has no incoming path back from its successors; it must
        // be a singleton.
        assert_eq!(labels[6], 6);
    }

    #[test]
    fn scc_deep_path_no_stack_overflow() {
        // 50k-vertex path: recursive Tarjan would blow the stack.
        let edges: Vec<(u32, u32)> = (0..49_999).map(|v| (v, v + 1)).collect();
        let labels = scc(50_000, &edges);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[49_999], 49_999);
    }
}
