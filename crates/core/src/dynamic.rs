//! Dynamic graph updates — the paper's stated future work ("NXgraph will
//! be extended to support dynamic change on graph structure").
//!
//! [`DynamicGraph`] wraps a [`PreparedGraph`] and accepts batches of new
//! edges. Under the default [`UpdateMode::DeltaLog`], a batch touching
//! existing vertices is committed by *appending*: each touched `(i, j)`
//! cell gets one small destination-sorted delta blob written next to its
//! base blob (same checksummed sub-shard format, compressed under the
//! graph's [`EncodingPolicy`](nxgraph_storage::EncodingPolicy)), and the
//! manifest records the chain. Readers merge-iterate base + deltas behind
//! the ordinary view API, so the engines are untouched; a configurable
//! compaction policy ([`DynamicConfig`]) folds long or heavy chains back
//! into a single base blob at the *next generation*.
//!
//! Folding runs in one of two places ([`Compaction`]): **inline** (the
//! default) folds a due chain inside the same `add_edges` commit;
//! **background** ([`DynamicConfig::background`]) keeps `add_edges`
//! append-only — a due cell is merely *signalled* to the
//! [`MaintenanceThread`](crate::maintain::MaintenanceThread), which folds
//! it off the commit path while the owner keeps reading its pinned
//! snapshot (picked up at the next [`DynamicGraph::refresh`]). Appends
//! are never blocked behind a fold: the fold's merge runs lock-free and
//! its commit re-validates the chain, retrying if an append won the race
//! (see [`crate::maintain`] for the protocol).
//!
//! [`UpdateMode::Rewrite`] keeps the pre-delta-log behaviour — every
//! touched cell is read, merged and rewritten whole — as the baseline the
//! `nxbench updates` workload measures the log against.
//!
//! A batch that introduces previously unseen vertex indices changes the
//! dense id space, so it still triggers a full re-preprocessing —
//! reconstructing the raw edge list from the sub-shards and the mapping
//! table — which is reported in the [`CommitStats`] so callers can batch
//! accordingly.
//!
//! ## Write-boundary contract (crash safety)
//!
//! Every commit issues its writes in one fixed, enumerable order, which
//! is what lets the power-loss simulator
//! ([`CrashDisk`](nxgraph_storage::CrashDisk)) assert recovery at *every*
//! cut point rather than a sampled few:
//!
//! 1. **Content blobs first, under fresh names.** Delta blobs go to the
//!    next delta index of the current generation, fold outputs to the
//!    next generation's base name, degree tables to the next degree
//!    generation — never over a name the on-disk manifest references.
//! 2. **The manifest commit.** [`GraphManifest::save`] writes
//!    `graph.manifest.tmp` and atomically renames it over
//!    `graph.manifest`. This rename is THE durability point of every
//!    commit (appends, folds, background folds alike).
//! 3. **Sweeps last.** Files the new manifest no longer references are
//!    removed only after the rename (background folds defer this to the
//!    owner's next refresh, since its pinned reader may still use them).
//!
//! A crash before step 2 leaves new blobs unreferenced; after step 2 it
//! leaves old blobs unreferenced. Either way the manifest on disk
//! describes a complete, consistent graph, and the leftovers are orphans
//! that [`DynamicGraph::compact`]'s sweep reclaims. Two documented
//! exceptions write in place: [`UpdateMode::Rewrite`] rewrites a bare
//! (chainless) generation-0 base under its own name — the legacy baseline
//! behaviour, excluded from the crash-sim contract — and a full
//! re-preprocessing rewrites the prep-time layout wholesale (mid-prep
//! crash atomicity is out of scope; the fold-before-rebuild below keeps
//! *chained* state safe across it).

use std::collections::BTreeMap;
use std::sync::Arc;

use nxgraph_storage::manifest::{ChainInfo, GraphManifest};
use parking_lot::Mutex;

use crate::dsss::{self, PreparedGraph, SubShard};
use crate::error::EngineResult;
use crate::maintain::{self, MaintenanceThread, ScrubReport, StoreShared, StoreState};
use crate::prep::{self, PrepConfig};
use crate::types::VertexId;

/// How [`DynamicGraph::add_edges`] commits a batch of known-vertex edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateMode {
    /// Append a delta blob per touched cell and let compaction fold the
    /// chains — O(batch) write traffic per commit.
    #[default]
    DeltaLog,
    /// Read-merge-rewrite every touched cell whole (the pre-delta-log
    /// behaviour) — O(touched sub-shard bytes) per commit.
    Rewrite,
}

/// Where chain folding runs when the [`DynamicConfig`] thresholds trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Compaction {
    /// Fold a due chain inside the same `add_edges` commit. Simple and
    /// deterministic; the commit pays the merge.
    #[default]
    Inline,
    /// Append only; signal due cells to a background
    /// [`MaintenanceThread`] that folds them off the commit path. Chains
    /// may transiently exceed the thresholds while a fold is in flight.
    Background,
}

/// Update-mode and compaction-policy knobs for a [`DynamicGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicConfig {
    /// How batches are committed.
    pub mode: UpdateMode,
    /// Fold a cell's chain once it holds this many delta blobs.
    pub max_deltas: u32,
    /// …or once the chain's on-disk delta bytes exceed this fraction of
    /// the base blob (long chains over a small base cost merge time; heavy
    /// chains over any base cost read amplification).
    pub max_delta_ratio: f64,
    /// Whether due chains fold inline or on the maintenance thread.
    pub compaction: Compaction,
    /// Under [`Compaction::Background`]: run a checksum-scrub pass after
    /// each completed fold (idle-priority — queued folds always preempt).
    pub auto_scrub: bool,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        // The byte ratio is the primary bound (it caps read amplification
        // at 2× the base bytes); the count is a cap on merge width, which
        // costs O(parts) per edge on chained reads.
        Self {
            mode: UpdateMode::DeltaLog,
            max_deltas: 32,
            max_delta_ratio: 1.0,
            compaction: Compaction::Inline,
            auto_scrub: false,
        }
    }
}

impl DynamicConfig {
    /// The pre-delta-log whole-cell rewrite behaviour.
    pub fn rewrite() -> Self {
        Self {
            mode: UpdateMode::Rewrite,
            ..Self::default()
        }
    }

    /// Delta logging with automatic compaction disabled — chains only fold
    /// on an explicit [`DynamicGraph::compact`] (tests and benchmarks that
    /// want to observe raw chains).
    pub fn never_compact() -> Self {
        Self {
            mode: UpdateMode::DeltaLog,
            max_deltas: u32::MAX,
            max_delta_ratio: f64::INFINITY,
            ..Self::default()
        }
    }

    /// Delta logging with background maintenance: `add_edges` only
    /// appends and signals, a dedicated thread folds due chains and
    /// re-scrubs checksums after each fold.
    pub fn background() -> Self {
        Self {
            compaction: Compaction::Background,
            auto_scrub: true,
            ..Self::default()
        }
    }
}

/// Result of one [`DynamicGraph::add_edges`] commit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommitStats {
    /// Edges added in this batch.
    pub edges_added: usize,
    /// Whether the whole graph had to be re-preprocessed (new vertices).
    pub rebuilt: bool,
    /// Sub-shard cells rewritten whole (forward + reverse counted
    /// separately); only under [`UpdateMode::Rewrite`], zero when
    /// `rebuilt`.
    pub cells_rewritten: usize,
    /// Delta blobs appended (one per touched cell; forward + reverse
    /// counted separately); only under [`UpdateMode::DeltaLog`].
    pub deltas_appended: usize,
    /// Cells whose chains this commit folded inline.
    pub cells_compacted: usize,
    /// Cells signalled to the background maintenance thread for folding
    /// (only under [`Compaction::Background`]).
    pub cells_signalled: usize,
}

/// Result of one [`DynamicGraph::compact`] pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactReport {
    /// Chains folded into a single next-generation base.
    pub cells_folded: usize,
    /// Unreferenced files reclaimed by the orphan sweep (crash leftovers,
    /// deferred background-fold sweeps, quarantined blobs, stale degree
    /// generations).
    pub files_swept: usize,
    /// Total bytes those files occupied.
    pub bytes_swept: u64,
}

/// A prepared graph accepting structural updates.
///
/// Holds a *pinned* [`PreparedGraph`] snapshot for reading plus the
/// [`StoreShared`] committed state it shares with an optional background
/// [`MaintenanceThread`]. The snapshot never changes under a running
/// engine; [`DynamicGraph::refresh`] (called automatically by every
/// mutating method) catches it up to commits the thread made.
pub struct DynamicGraph {
    shared: Arc<StoreShared>,
    graph: PreparedGraph,
    /// The `shared.state` epoch `graph` was built from.
    seen_epoch: u64,
    /// Sorted original indices; position = dense id.
    mapping: Vec<u64>,
    config: DynamicConfig,
    maint: Option<MaintenanceThread>,
    /// Commits aborted by a storage error (ENOSPC, EIO) before reaching
    /// their manifest save; the store stayed on its last commit.
    commit_aborts: u64,
}

impl DynamicGraph {
    /// Wrap a prepared graph (loads the mapping table) with the default
    /// delta-log configuration.
    pub fn new(graph: PreparedGraph) -> EngineResult<Self> {
        Self::with_config(graph, DynamicConfig::default())
    }

    /// Wrap a prepared graph with an explicit [`DynamicConfig`]. Under
    /// [`Compaction::Background`] this spawns the maintenance thread
    /// (joined when the `DynamicGraph` drops).
    pub fn with_config(graph: PreparedGraph, config: DynamicConfig) -> EngineResult<Self> {
        let mapping = graph.load_reverse_mapping()?;
        let shared = Arc::new(StoreShared {
            disk: Arc::clone(graph.disk()),
            state: Mutex::new(StoreState {
                manifest: graph.manifest().clone(),
                out_degrees: Arc::clone(graph.out_degrees()),
                epoch: 0,
                pending_sweep: Vec::new(),
                // The owner's pinned snapshot is reader pin #1; serve-layer
                // snapshots add and drop their own.
                pins: std::collections::BTreeMap::from([(0u64, 1usize)]),
                rebuilding: false,
            }),
            gate: Mutex::new(()),
            pins_cv: parking_lot::Condvar::new(),
            checksums: Mutex::new(Arc::clone(graph.checksum_policy())),
        });
        let mut dg = Self {
            shared,
            graph,
            seen_epoch: 0,
            mapping,
            config,
            maint: None,
            commit_aborts: 0,
        };
        dg.spawn_maintenance();
        Ok(dg)
    }

    fn spawn_maintenance(&mut self) {
        if self.config.compaction == Compaction::Background {
            self.maint = Some(MaintenanceThread::spawn(
                Arc::clone(&self.shared),
                self.graph.encoding_policy(),
                Arc::clone(self.graph.checksum_policy()),
                self.config.auto_scrub,
            ));
        }
    }

    /// The current prepared graph (always consistent after each commit).
    pub fn graph(&self) -> &PreparedGraph {
        &self.graph
    }

    /// The update-mode and compaction configuration.
    pub fn config(&self) -> &DynamicConfig {
        &self.config
    }

    /// The background maintenance thread, when
    /// [`Compaction::Background`] is configured.
    pub fn maintenance(&self) -> Option<&MaintenanceThread> {
        self.maint.as_ref()
    }

    /// The shared committed state this graph coordinates through — what a
    /// serve-layer [`Snapshot`](crate::serve::Snapshot) pins.
    pub(crate) fn shared(&self) -> &Arc<StoreShared> {
        &self.shared
    }

    /// Live reader pins at `epoch` — the owner's snapshot counts as one;
    /// every serve-layer [`Snapshot`](crate::serve::Snapshot) pinning
    /// that epoch adds another. Tests assert the no-sweep-while-pinned
    /// contract through this.
    pub fn pin_count(&self, epoch: u64) -> usize {
        self.shared.pin_count(epoch)
    }

    /// The latest committed epoch (bumps once per commit or fold).
    pub fn current_epoch(&self) -> u64 {
        self.shared.state.lock().epoch
    }

    /// Superseded files still queued for reclamation — non-empty exactly
    /// while some live pin protects an older generation.
    pub fn pending_sweeps(&self) -> usize {
        self.shared.state.lock().pending_sweep.len()
    }

    /// Dense id of an original index, if known.
    pub fn id_of(&self, index: u64) -> Option<VertexId> {
        self.mapping.binary_search(&index).ok().map(|i| i as VertexId)
    }

    /// Reconstruct the raw edge list (original indices) from disk.
    pub fn raw_edges(&self) -> EngineResult<Vec<(u64, u64)>> {
        let p = self.graph.num_intervals();
        let mut out = Vec::with_capacity(self.graph.num_edges() as usize);
        for i in 0..p {
            for j in 0..p {
                let ss = self.graph.load_subshard(i, j, false)?;
                out.extend(ss.iter_edges().map(|(s, d)| {
                    (self.mapping[s as usize], self.mapping[d as usize])
                }));
            }
        }
        Ok(out)
    }

    /// Catch the pinned snapshot up to the latest committed state, then
    /// reclaim queued files whose protecting pins are gone (moving the
    /// owner's pin forward is usually what frees them — unless a
    /// serve-layer snapshot still pins an older epoch, in which case its
    /// drop performs the sweep instead). Returns whether anything
    /// changed. Cheap no-op when the epoch is current.
    pub fn refresh(&mut self) -> EngineResult<bool> {
        let (manifest, out_degrees, epoch) = {
            let st = self.shared.state.lock();
            if st.epoch == self.seen_epoch && st.pending_sweep.is_empty() {
                return Ok(false);
            }
            (st.manifest.clone(), Arc::clone(&st.out_degrees), st.epoch)
        };
        if epoch != self.seen_epoch {
            self.install(manifest, out_degrees, epoch)?;
        }
        self.shared.reclaim();
        Ok(true)
    }

    /// Rebuild the pinned snapshot from already-in-hand parts, reusing the
    /// checksum policy and buffer pool (commits are frequent on streaming
    /// workloads; re-verifying every unchanged file per commit would
    /// defeat the verify-once policy).
    ///
    /// Pin accounting: the new epoch is pinned *before* the old one is
    /// released, so the pinned-epoch set never goes empty mid-transition
    /// (an empty set would make every queued sweep "safe" while this very
    /// method still reads the old snapshot's files).
    fn install(
        &mut self,
        manifest: GraphManifest,
        out_degrees: Arc<Vec<u32>>,
        epoch: u64,
    ) -> EngineResult<()> {
        self.shared.pin(epoch);
        let retry = self.graph.retry_policy();
        let graph = PreparedGraph::from_parts_reusing(
            Arc::clone(&self.shared.disk),
            manifest,
            out_degrees,
            Arc::clone(self.graph.checksum_policy()),
            Arc::clone(self.graph.buffer_pool()),
        );
        let graph = match graph {
            Ok(g) => g,
            Err(e) => {
                self.shared.unpin(epoch);
                return Err(e);
            }
        };
        self.graph = graph;
        self.graph.set_retry_policy(retry);
        let old = self.seen_epoch;
        self.seen_epoch = epoch;
        self.shared.unpin(old);
        Ok(())
    }

    /// Best-effort removal with checksum-cache invalidation: if a future
    /// commit reuses one of these names, its fresh bytes must be
    /// re-verified, not waved through by the verify-once cache.
    fn sweep_files(&self, names: &[String]) {
        for name in names {
            let _ = self.shared.disk.remove(name);
            self.graph.checksum_policy().note_invalidated(name);
        }
    }

    /// Add a batch of edges (original indices) and commit to disk.
    ///
    /// The whole commit — chain reads, blob writes, manifest save, shared
    /// state update — runs under the `state` lock, so a background fold
    /// can never interleave with it (the fold detects the changed chain
    /// and retries; this side needs no retry loop).
    ///
    /// ## Failure semantics
    ///
    /// Any storage error before the manifest save — ENOSPC, EIO, a torn
    /// blob write — aborts the commit: the error is returned, the
    /// committed state stays on the *previous* manifest (new blobs were
    /// written under fresh names the old manifest never references, so
    /// nothing is torn), and [`commit_aborts`](Self::commit_aborts)
    /// increments. The caller may simply retry the same batch once the
    /// condition clears; leftover blobs from the aborted attempt are
    /// reclaimed by the next [`compact`](Self::compact) sweep.
    pub fn add_edges(&mut self, new_raw: &[(u64, u64)]) -> EngineResult<CommitStats> {
        let res = self.add_edges_inner(new_raw);
        if res.is_err() {
            self.commit_aborts += 1;
        }
        res
    }

    /// Commits aborted by a storage error, each leaving the store on its
    /// last successful manifest commit.
    pub fn commit_aborts(&self) -> u64 {
        self.commit_aborts
    }

    fn add_edges_inner(&mut self, new_raw: &[(u64, u64)]) -> EngineResult<CommitStats> {
        if new_raw.is_empty() {
            return Ok(CommitStats::default());
        }
        self.refresh()?;
        let all_known = new_raw
            .iter()
            .all(|&(s, d)| self.id_of(s).is_some() && self.id_of(d).is_some());
        if !all_known {
            return self.rebuild_with(new_raw);
        }

        // Incremental path: bucket dense edges by grid cell.
        let p = self.graph.num_intervals();
        let interval_len = self.graph.manifest().interval_len() as VertexId;
        let interval_of = |v: VertexId| (v / interval_len).min(p - 1);

        let mut buckets: BTreeMap<(u32, u32, bool), Vec<(VertexId, VertexId)>> = BTreeMap::new();
        let mut degree_bump: BTreeMap<VertexId, u32> = BTreeMap::new();
        for &(s, d) in new_raw {
            let (s, d) = (self.id_of(s).unwrap(), self.id_of(d).unwrap());
            buckets
                .entry((interval_of(s), interval_of(d), false))
                .or_default()
                .push((s, d));
            if self.graph.has_reverse() {
                buckets
                    .entry((interval_of(d), interval_of(s), true))
                    .or_default()
                    .push((d, s));
            }
            *degree_bump.entry(s).or_default() += 1;
        }

        let mut stats = CommitStats {
            edges_added: new_raw.len(),
            ..CommitStats::default()
        };
        let encoding = self.graph.encoding_policy();
        let disk = Arc::clone(&self.shared.disk);
        let mut due_cells: Vec<(u32, u32, bool)> = Vec::new();
        let mut stale: Vec<String> = Vec::new();

        let mut st = self.shared.state.lock();
        let mut manifest = st.manifest.clone();
        let (mut raw_delta, mut disk_delta) = (0i64, 0i64);

        for ((i, j, reverse), extra) in buckets {
            let chain = manifest.chain_info(i, j, reverse)?;
            match self.config.mode {
                UpdateMode::DeltaLog => {
                    let d = SubShard::from_edges(i, j, extra);
                    let blob = d.encode_with(encoding);
                    let base_name = GraphManifest::subshard_base_file(i, j, reverse, chain.gen);
                    // Fold-before-append check, O(1) in the chain length:
                    // accumulated delta bytes ride in the ChainInfo, and
                    // the base is stat'ed only when the ratio can trip.
                    let due = chain.deltas + 1 >= self.config.max_deltas
                        || (self.config.max_delta_ratio.is_finite()
                            && (chain.delta_bytes + blob.len() as u64) as f64
                                > disk.len_of(&base_name)? as f64
                                    * self.config.max_delta_ratio);
                    if due && self.config.compaction == Compaction::Inline {
                        // The chain would cross a threshold: fold it and
                        // this batch's edges into a fresh base in the same
                        // commit, instead of appending a delta only to
                        // read it straight back.
                        let mut parts =
                            dsss::load_chain_parts(disk.as_ref(), i, j, reverse, chain)?;
                        let old_raw: u64 = parts.iter().map(|p| p.encoded_len()).sum();
                        let old_disk = disk.len_of(&base_name)? + chain.delta_bytes;
                        parts.push(d); // the new batch, already dst-sorted
                        let merged = dsss::merge_subshards(i, j, &parts);
                        let blob = merged.encode_with(encoding);
                        let new_gen = chain.gen + 1;
                        let name = GraphManifest::subshard_base_file(i, j, reverse, new_gen);
                        disk.write_all_to(&name, &blob)?;
                        raw_delta += merged.encoded_len() as i64 - old_raw as i64;
                        disk_delta += blob.len() as i64 - old_disk as i64;
                        manifest.set_chain_info(
                            i,
                            j,
                            reverse,
                            ChainInfo { gen: new_gen, ..ChainInfo::default() },
                        );
                        stale.extend(chain_files(i, j, reverse, chain));
                        stats.cells_compacted += 1;
                    } else {
                        // Append one destination-sorted delta blob; the
                        // base and earlier deltas are not even read. Under
                        // background compaction a due cell is signalled,
                        // never folded here — the append commits at append
                        // cost no matter what the maintenance thread is
                        // doing.
                        let name = GraphManifest::subshard_delta_file(
                            i,
                            j,
                            reverse,
                            chain.gen,
                            chain.deltas + 1,
                        );
                        raw_delta += d.encoded_len() as i64;
                        disk_delta += blob.len() as i64;
                        disk.write_all_to(&name, &blob)?;
                        manifest.set_chain_info(
                            i,
                            j,
                            reverse,
                            ChainInfo {
                                gen: chain.gen,
                                deltas: chain.deltas + 1,
                                delta_bytes: chain.delta_bytes + blob.len() as u64,
                            },
                        );
                        stats.deltas_appended += 1;
                        if due {
                            due_cells.push((i, j, reverse));
                            stats.cells_signalled += 1;
                        }
                    }
                }
                UpdateMode::Rewrite => {
                    // Read-merge-rewrite the whole cell (chain included, so
                    // mixing modes folds any pending deltas in passing).
                    let parts = dsss::load_chain_parts(disk.as_ref(), i, j, reverse, chain)?;
                    let old_raw: u64 = parts.iter().map(|p| p.encoded_len()).sum();
                    let old_disk = chain_len_of(disk.as_ref(), i, j, reverse, chain)?;
                    let mut edges: Vec<(VertexId, VertexId)> =
                        parts.iter().flat_map(|p| p.iter_edges()).collect();
                    edges.extend(extra);
                    let merged = SubShard::from_edges(i, j, edges);
                    let blob = merged.encode_with(encoding);
                    raw_delta += merged.encoded_len() as i64 - old_raw as i64;
                    disk_delta += blob.len() as i64 - old_disk as i64;
                    if chain.deltas == 0 {
                        // Bare base: rewrite in place under its own name,
                        // exactly like the pre-delta-log path. The name
                        // keeps its bytes changed underneath it, so the
                        // verify-once cache must forget it.
                        let name = GraphManifest::subshard_base_file(i, j, reverse, chain.gen);
                        disk.write_all_to(&name, &blob)?;
                        self.graph.checksum_policy().note_invalidated(&name);
                    } else {
                        // A chain is folded into the next generation so the
                        // still-referenced old base is never clobbered.
                        let new_gen = chain.gen + 1;
                        let name = GraphManifest::subshard_base_file(i, j, reverse, new_gen);
                        disk.write_all_to(&name, &blob)?;
                        manifest.set_chain_info(
                            i,
                            j,
                            reverse,
                            ChainInfo { gen: new_gen, ..ChainInfo::default() },
                        );
                        stale.extend(chain_files(i, j, reverse, chain));
                    }
                    stats.cells_rewritten += 1;
                }
            }
        }

        manifest.num_edges += new_raw.len() as u64;

        // Bumped out-degrees go to the *next* degree generation — never
        // over the referenced table — so a torn degree write can only
        // damage an unreferenced file (write-boundary contract, step 1).
        let out_degrees = if degree_bump.is_empty() {
            Arc::clone(&st.out_degrees)
        } else {
            let mut degrees = (*st.out_degrees).clone();
            for (&v, &bump) in &degree_bump {
                degrees[v as usize] += bump;
            }
            let mut blob = Vec::new();
            nxgraph_storage::format::write_blob(
                &mut blob,
                nxgraph_storage::format::FileKind::Degrees,
                &nxgraph_storage::format::encode_u32s(&degrees),
            )
            .expect("vec write is infallible");
            let old_gen = manifest.degrees_gen()?;
            disk.write_all_to(&GraphManifest::degree_file_at(old_gen + 1), &blob)?;
            manifest.set_degrees_gen(old_gen + 1);
            stale.push(GraphManifest::degree_file_at(old_gen));
            Arc::new(degrees)
        };

        apply_byte_totals(&mut manifest, raw_delta, disk_delta);
        manifest.save(disk.as_ref())?;
        st.manifest = manifest.clone();
        st.out_degrees = Arc::clone(&out_degrees);
        st.epoch += 1;
        let epoch = st.epoch;
        // Files this commit superseded join the refcounted queue; the
        // install below moves the owner's pin forward and its reclaim
        // removes whatever no snapshot still protects.
        st.queue_superseded(stale);
        drop(st);

        self.install(manifest, out_degrees, epoch)?;
        self.shared.reclaim();
        if let (Some(maint), false) = (&self.maint, due_cells.is_empty()) {
            maint.signal_cells(&due_cells);
        }
        Ok(stats)
    }

    /// Fold every cell's delta chain into a single base blob (regardless
    /// of the thresholds), then sweep every unreferenced file — crash
    /// leftovers, deferred background-fold sweeps, quarantined blobs,
    /// stale degree generations, a stranded manifest tmp. Holds the
    /// maintenance `gate` throughout, so the background thread is fully
    /// quiesced (its sweep deferral doesn't apply here).
    ///
    /// All folds commit under ONE manifest save: with the gate held and
    /// `&mut self`, no other commit can land, so the background thread's
    /// per-fold commit/race protocol is pure overhead here — and before a
    /// rebuild it would write hundreds of manifest copies. A crash before
    /// the save leaves the new bases as unreferenced orphans and the old
    /// manifest (chains included) fully intact.
    pub fn compact(&mut self) -> EngineResult<CompactReport> {
        let report;
        {
            let shared = Arc::clone(&self.shared);
            let _gate = shared.gate.lock();
            let mut manifest = self.shared.state.lock().manifest.clone();
            let chained: Vec<(u32, u32, bool, ChainInfo)> = manifest
                .chains()?
                .into_iter()
                .filter(|&(_, _, _, info)| info.deltas > 0)
                .collect();
            let disk = self.shared.disk.as_ref();
            let encoding = self.graph.encoding_policy();
            let (mut raw_delta, mut disk_delta) = (0i64, 0i64);
            let mut stale: Vec<String> = Vec::new();
            for &(i, j, reverse, chain) in &chained {
                let parts = dsss::load_chain_parts(disk, i, j, reverse, chain)?;
                let old_raw: u64 = parts.iter().map(|p| p.encoded_len()).sum();
                let old_disk = chain_len_of(disk, i, j, reverse, chain)?;
                let merged = dsss::merge_subshards(i, j, &parts);
                let blob = merged.encode_with(encoding);
                let new_gen = chain.gen + 1;
                let name = GraphManifest::subshard_base_file(i, j, reverse, new_gen);
                disk.write_all_to(&name, &blob)?;
                raw_delta += merged.encoded_len() as i64 - old_raw as i64;
                disk_delta += blob.len() as i64 - old_disk as i64;
                manifest.set_chain_info(
                    i,
                    j,
                    reverse,
                    ChainInfo {
                        gen: new_gen,
                        ..ChainInfo::default()
                    },
                );
                stale.extend(chain_files(i, j, reverse, chain));
            }
            if !chained.is_empty() {
                apply_byte_totals(&mut manifest, raw_delta, disk_delta);
                manifest.save(disk)?;
                let mut st = self.shared.state.lock();
                st.manifest = manifest;
                st.epoch += 1;
                st.queue_superseded(stale);
            }
            // Catch the owner's pin up to the folds just committed, so
            // their superseded chains are sweep-safe below unless another
            // snapshot still pins them.
            let (cur_manifest, cur_degrees, cur_epoch) = {
                let st = self.shared.state.lock();
                (st.manifest.clone(), Arc::clone(&st.out_degrees), st.epoch)
            };
            if cur_epoch != self.seen_epoch {
                self.install(cur_manifest, cur_degrees, cur_epoch)?;
            }
            let (files_swept, bytes_swept) = self.sweep_orphans()?;
            report = CompactReport {
                cells_folded: chained.len(),
                files_swept,
                bytes_swept,
            };
        }
        self.refresh()?;
        Ok(report)
    }

    /// Remove every file in this layer's namespace that the committed
    /// manifest does not reference, returning `(files, bytes)` reclaimed.
    /// Covers generation-tagged chain files, plain prep-time base names
    /// superseded by a folded generation, stale degree-table generations,
    /// quarantine copies the scrubber parked, and a manifest tmp stranded
    /// mid-save. Files a still-pinned snapshot protects — queued for sweep
    /// but tagged newer than the oldest pin — are skipped; the last
    /// protecting snapshot's drop reclaims them. Caller holds the `gate`
    /// (no concurrent maintenance) and `&mut self`.
    fn sweep_orphans(&self) -> EngineResult<(usize, u64)> {
        // Reclaim the refcount-safe part of the queue first (counted),
        // then shield whatever remains queued from the name scan: those
        // files are unreferenced by the *current* manifest but still read
        // through manifests older pins hold.
        let (mut files, mut bytes) = self.shared.reclaim();
        let (manifest, protected) = {
            let st = self.shared.state.lock();
            let protected: std::collections::HashSet<String> =
                st.pending_sweep.iter().map(|(_, n)| n.clone()).collect();
            (st.manifest.clone(), protected)
        };
        let disk = &self.shared.disk;
        for name in disk.list() {
            if protected.contains(&name) {
                continue;
            }
            let stale = if name.starts_with(maintain::QUARANTINE_PREFIX)
                || name == nxgraph_storage::manifest::MANIFEST_TMP_FILE
            {
                true
            } else if let Some(parsed) = maintain::parse_cell_file(&name) {
                !maintain::cell_referenced(&manifest, parsed)?
            } else if let Some(gen) = maintain::parse_degrees_file(&name) {
                gen != manifest.degrees_gen()?
            } else {
                false
            };
            if stale {
                bytes += disk.len_of(&name).unwrap_or(0);
                let _ = disk.remove(&name);
                self.graph.checksum_policy().note_invalidated(&name);
                files += 1;
            }
        }
        Ok((files, bytes))
    }

    /// Re-verify every blob on the disk against the committed manifest
    /// (see [`crate::maintain`] for the classification and quarantine
    /// rules). Under background compaction the pass runs on the
    /// maintenance thread after any queued folds; otherwise it runs here.
    pub fn scrub(&mut self) -> EngineResult<ScrubReport> {
        if let Some(maint) = &self.maint {
            let report = maint.scrub_now()?;
            self.refresh()?;
            return Ok(report);
        }
        let _gate = self.shared.gate.lock();
        let manifest = self.shared.state.lock().manifest.clone();
        let report = maintain::scrub_files(
            self.shared.disk.as_ref(),
            &manifest,
            Some(self.graph.checksum_policy()),
            &mut || false,
        )?
        .expect("an un-yieldable scrub always completes");
        Ok(report)
    }

    /// Block until every signalled fold and requested scrub has finished,
    /// then catch the pinned snapshot up to their commits. No-op without
    /// a maintenance thread. Surfaces any background fold error.
    pub fn wait_maintenance_idle(&mut self) -> EngineResult<()> {
        if let Some(maint) = &self.maint {
            maint.wait_idle()?;
        }
        self.refresh()?;
        Ok(())
    }

    fn rebuild_with(&mut self, new_raw: &[(u64, u64)]) -> EngineResult<CommitStats> {
        // Quiesce maintenance for good: re-preprocessing replaces the
        // encoding policy and checksum cache the thread was spawned with,
        // so it is joined here and respawned against the new graph below.
        self.maint = None;
        self.refresh()?;
        // Fold every chain first: re-preprocessing overwrites the
        // generation-0 base names in place, and doing that while the
        // on-disk manifest still lists deltas for those cells would merge
        // old delta blobs into new-id-space bases (double-counted edges)
        // if the rebuild were interrupted. After the fold, every chained
        // cell lives at a generation > 0 — names preprocessing never
        // touches — so an interrupted rebuild reopens as the intact
        // pre-rebuild graph. (Cells that never chained are overwritten in
        // place, as every rebuild has done; mid-prep crash atomicity for
        // those is out of scope.)
        self.compact()?;
        // A rebuild overwrites prep-time (generation-0) names in place —
        // the one commit that cannot coexist with older readers. Wait for
        // every serve-layer snapshot to drop, with the rebuild flag up so
        // no new pin slips in while preprocessing rewrites the store.
        self.shared.begin_exclusive(self.seen_epoch);
        let res = (|| -> EngineResult<CommitStats> {
            let mut raw = self.raw_edges()?;
            raw.extend_from_slice(new_raw);
            // The folded bases (and any gen-tagged degree table), swept only
            // after the new manifest is saved.
            let mut stale = Vec::new();
            for (i, j, reverse, chain) in self.graph.manifest().chains()? {
                stale.extend(chain_files(i, j, reverse, chain));
            }
            let degrees_gen = self.graph.manifest().degrees_gen()?;
            if degrees_gen != 0 {
                stale.push(GraphManifest::degree_file_at(degrees_gen));
            }
            let cfg = PrepConfig {
                name: self.graph.manifest().name.clone(),
                num_intervals: self.graph.num_intervals(),
                build_reverse: self.graph.has_reverse(),
                encoding: self.graph.encoding_policy(),
            };
            let disk = Arc::clone(&self.shared.disk);
            self.graph = prep::preprocess(&raw, &cfg, disk)?;
            // The rebuilt graph starts a fresh verify-once cache; future
            // snapshot-drop sweeps must invalidate through it.
            *self.shared.checksums.lock() = Arc::clone(self.graph.checksum_policy());
            self.sweep_files(&stale);
            self.mapping = self.graph.load_reverse_mapping()?;
            {
                let mut st = self.shared.state.lock();
                st.manifest = self.graph.manifest().clone();
                st.out_degrees = Arc::clone(self.graph.out_degrees());
                st.epoch += 1;
                st.pending_sweep.clear();
                // Move the owner's (sole, exclusive) pin to the new epoch.
                st.pins.remove(&self.seen_epoch);
                let epoch = st.epoch;
                st.pins.insert(epoch, 1);
                self.seen_epoch = epoch;
            }
            self.spawn_maintenance();
            Ok(CommitStats {
                edges_added: new_raw.len(),
                rebuilt: true,
                ..CommitStats::default()
            })
        })();
        self.shared.end_exclusive();
        res
    }
}

impl Drop for DynamicGraph {
    fn drop(&mut self) {
        // Join maintenance first (it may still be committing folds), then
        // release the owner's reader pin so any snapshot outliving this
        // graph reclaims superseded files when it drops.
        self.maint = None;
        self.shared.unpin(self.seen_epoch);
        self.shared.reclaim();
    }
}

/// On-disk bytes a chain currently occupies (base + all deltas).
fn chain_len_of(
    disk: &dyn nxgraph_storage::Disk,
    i: u32,
    j: u32,
    reverse: bool,
    chain: ChainInfo,
) -> EngineResult<u64> {
    let base = disk.len_of(&GraphManifest::subshard_base_file(i, j, reverse, chain.gen))?;
    Ok(base + chain.delta_bytes)
}

/// Keep the recorded blob-size totals (and hence the reported compression
/// ratio) in step with what a commit wrote.
pub(crate) fn apply_byte_totals(manifest: &mut GraphManifest, raw_delta: i64, disk_delta: i64) {
    for (key, delta) in [
        (crate::dsss::SS_RAW_BYTES_MANIFEST_KEY, raw_delta),
        (crate::dsss::SS_DISK_BYTES_MANIFEST_KEY, disk_delta),
    ] {
        if let Some(v) = manifest.extra.get_mut(key) {
            let cur: i64 = v.parse().unwrap_or(0);
            *v = (cur + delta).max(0).to_string();
        }
    }
}

/// Every file a chain occupies — the base blob first, then all delta
/// blobs. Fold paths sweep the whole list once the manifest references
/// the next generation (the generation-0 base included: a fold is the
/// only thing that ever supersedes it, and leaving it would leak the
/// original cell's bytes forever).
pub(crate) fn chain_files(i: u32, j: u32, reverse: bool, chain: ChainInfo) -> Vec<String> {
    let mut out = Vec::with_capacity(chain.deltas as usize + 1);
    out.push(GraphManifest::subshard_base_file(i, j, reverse, chain.gen));
    for k in 1..=chain.deltas {
        out.push(GraphManifest::subshard_delta_file(i, j, reverse, chain.gen, k));
    }
    out
}

/// Parse a generation-tagged chain file name —
/// `[r]ss_{i}_{j}.g{gen}[.d{k}].bin` — into `(i, j, reverse, gen,
/// delta_index)`. Plain prep-time names (`ss_i_j.bin`) and every other
/// file kind return `None` (the scrubber's
/// [`parse_cell_file`](crate::maintain) layers the plain-name fallback on
/// top).
pub(crate) fn parse_chain_file(name: &str) -> Option<(u32, u32, bool, u32, Option<u32>)> {
    let rest = name.strip_suffix(".bin")?;
    let (reverse, rest) = match rest.strip_prefix("rss_") {
        Some(r) => (true, r),
        None => (false, rest.strip_prefix("ss_")?),
    };
    let mut parts = rest.split('.');
    let (i, j) = parts.next()?.split_once('_')?;
    let gen = parts.next()?.strip_prefix('g')?.parse().ok()?;
    let delta = match parts.next() {
        None => None,
        Some(d) => Some(d.strip_prefix('d')?.parse().ok()?),
    };
    if parts.next().is_some() {
        return None;
    }
    Some((i.parse().ok()?, j.parse().ok()?, reverse, gen, delta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use crate::engine::EngineConfig;
    use nxgraph_storage::{Disk, MemDisk};
    use std::sync::Arc;

    fn prepare(raw: &[(u64, u64)]) -> PreparedGraph {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        prep::preprocess(raw, &PrepConfig::new("dyn", 3), disk).unwrap()
    }

    /// PageRank after dynamic commits must equal PageRank on a graph
    /// preprocessed from scratch with the same edges.
    fn assert_equivalent(dynamic: &DynamicGraph, full_raw: &[(u64, u64)]) {
        let fresh = prepare(full_raw);
        let cfg = EngineConfig::default().with_max_iterations(6);
        let (a, _) = algo::pagerank(dynamic.graph(), 6, &cfg).unwrap();
        let (b, _) = algo::pagerank(&fresh, 6, &cfg).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn delta_log_commit_for_known_vertices() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
        // Automatic compaction off so the chain is observable.
        let mut dg =
            DynamicGraph::with_config(prepare(&base), DynamicConfig::never_compact()).unwrap();
        let extra = vec![(0u64, 2u64), (3, 1)];
        let stats = dg.add_edges(&extra).unwrap();
        assert!(!stats.rebuilt);
        assert_eq!(stats.edges_added, 2);
        assert_eq!(stats.cells_rewritten, 0);
        assert!(stats.deltas_appended > 0);
        assert_eq!(dg.graph().num_edges(), 6);
        // The chain is visible in the manifest until compaction.
        assert!(dg.graph().manifest().chains().unwrap().iter().any(|c| c.3.deltas > 0));

        let mut full = base.clone();
        full.extend(extra);
        assert_equivalent(&dg, &full);

        // An explicit fold leaves single-base cells and the same results.
        let report = dg.compact().unwrap();
        assert!(report.cells_folded > 0);
        assert!(report.files_swept > 0, "folded chain files must be reclaimed");
        assert!(report.bytes_swept > 0);
        assert!(dg.graph().manifest().chains().unwrap().iter().all(|c| c.3.deltas == 0));
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn explicit_compact_commits_all_folds_under_one_manifest_save() {
        let base: Vec<(u64, u64)> = (0..120u64).map(|k| (k % 9, (k + 1) % 9)).collect();
        let graph = prepare(&base);
        let disk = Arc::clone(graph.disk());
        let mut dg = DynamicGraph::with_config(graph, DynamicConfig::never_compact()).unwrap();
        let mut full = base.clone();
        for k in 0..6u64 {
            let batch = vec![(k % 9, (k + 2) % 9), ((k + 4) % 9, k % 9)];
            assert!(!dg.add_edges(&batch).unwrap().rebuilt);
            full.extend(batch);
        }
        let chained = dg
            .graph()
            .manifest()
            .chains()
            .unwrap()
            .iter()
            .filter(|c| c.3.deltas > 0)
            .count();
        assert!(chained >= 4, "need several chains to expose per-fold saves");

        let before = disk.counters().written_bytes();
        let report = dg.compact().unwrap();
        let wrote = disk.counters().written_bytes() - before;
        assert_eq!(report.cells_folded, chained);

        // One merged base per chain plus exactly one manifest save — a
        // per-fold commit loop would write `chained` manifest copies and
        // blow this bound (pre-rebuild compaction then costs megabytes).
        let manifest = dg.graph().manifest();
        let bases: u64 = manifest
            .chains()
            .unwrap()
            .into_iter()
            .map(|(i, j, reverse, c)| {
                disk.len_of(&GraphManifest::subshard_base_file(i, j, reverse, c.gen))
                    .unwrap()
            })
            .sum();
        let manifest_len = disk
            .len_of(nxgraph_storage::manifest::MANIFEST_FILE)
            .unwrap();
        assert!(
            wrote <= bases + 2 * manifest_len,
            "compact wrote {wrote} B for {chained} folds \
             (bases {bases} B, manifest {manifest_len} B): more than one manifest save?"
        );
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn rewrite_mode_commit_for_known_vertices() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
        let mut dg =
            DynamicGraph::with_config(prepare(&base), DynamicConfig::rewrite()).unwrap();
        let extra = vec![(0u64, 2u64), (3, 1)];
        let stats = dg.add_edges(&extra).unwrap();
        assert!(!stats.rebuilt);
        assert_eq!(stats.edges_added, 2);
        assert!(stats.cells_rewritten > 0);
        assert_eq!(stats.deltas_appended, 0);
        assert_eq!(dg.graph().num_edges(), 6);
        assert!(dg.graph().manifest().chains().unwrap().is_empty());

        let mut full = base.clone();
        full.extend(extra);
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn compaction_policy_folds_long_chains() {
        let base: Vec<(u64, u64)> = (0..200u64).map(|k| (k % 9, (k + 1) % 9)).collect();
        let cfg = DynamicConfig {
            max_deltas: 3,
            max_delta_ratio: f64::INFINITY, // only the count threshold
            ..DynamicConfig::default()
        };
        let mut dg = DynamicGraph::with_config(prepare(&base), cfg).unwrap();
        let mut full = base.clone();
        let mut saw_compaction = false;
        // Every batch lands in cell (0, 0): ids 0..3 are interval 0 of the
        // 9-vertex, P=3 graph, so the same chain grows batch after batch.
        for k in 0..9u64 {
            let batch = vec![(k % 3, (k + 1) % 3)];
            let stats = dg.add_edges(&batch).unwrap();
            saw_compaction |= stats.cells_compacted > 0;
            full.extend(batch);
            // The policy bounds every chain at the threshold.
            for (_, _, _, info) in dg.graph().manifest().chains().unwrap() {
                assert!(info.deltas < 3, "chain grew past max_deltas: {info:?}");
            }
        }
        assert!(saw_compaction, "nine single-cell batches must trigger a fold");
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn background_compaction_folds_off_the_commit_path() {
        let base: Vec<(u64, u64)> = (0..200u64).map(|k| (k % 9, (k + 1) % 9)).collect();
        let cfg = DynamicConfig {
            max_deltas: 3,
            max_delta_ratio: f64::INFINITY,
            ..DynamicConfig::background()
        };
        let mut dg = DynamicGraph::with_config(prepare(&base), cfg).unwrap();
        assert!(dg.maintenance().is_some());
        let mut full = base.clone();
        let mut signalled = 0usize;
        let mut inline_folds = 0usize;
        for k in 0..9u64 {
            let batch = vec![(k % 3, (k + 1) % 3)];
            let stats = dg.add_edges(&batch).unwrap();
            signalled += stats.cells_signalled;
            inline_folds += stats.cells_compacted;
            full.extend(batch);
        }
        assert_eq!(inline_folds, 0, "background mode must never fold inline");
        assert!(signalled > 0, "due chains must be signalled to the thread");
        dg.wait_maintenance_idle().unwrap();
        let stats = dg.maintenance().unwrap().stats();
        assert!(stats.cells_folded > 0, "signalled cells must get folded");
        // Auto-scrub after folds found nothing wrong.
        let report = dg.maintenance().unwrap().last_scrub().unwrap();
        assert!(report.is_clean(), "background scrub flagged: {report:?}");
        assert_equivalent(&dg, &full);
        // After an explicit compact nothing is left to fold or sweep.
        dg.compact().unwrap();
        let report = dg.compact().unwrap();
        assert_eq!(report, CompactReport::default());
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn appends_commit_while_a_fold_is_parked_mid_merge() {
        use std::sync::Barrier;

        let base: Vec<(u64, u64)> = (0..60u64).map(|k| (k % 9, (k * 5 + 2) % 9)).collect();
        let cfg = DynamicConfig {
            max_deltas: 1, // every append signals its cell
            max_delta_ratio: f64::INFINITY,
            auto_scrub: false,
            ..DynamicConfig::background()
        };
        let mut dg = DynamicGraph::with_config(prepare(&base), cfg).unwrap();
        // Park the first fold after its merge, right before its commit.
        let parked = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        {
            let (p, r) = (Arc::clone(&parked), Arc::clone(&release));
            dg.maintenance().unwrap().set_fold_pause(Some(Arc::new(move || {
                p.wait();
                r.wait();
            })));
        }
        let mut full = base.clone();
        let batch1 = vec![(0u64, 1u64), (2, 0)];
        let stats = dg.add_edges(&batch1).unwrap();
        assert!(stats.cells_signalled > 0);
        full.extend(&batch1);
        parked.wait(); // the fold is now mid-flight, holding no state lock
        // THE rendezvous assertion: with a fold parked between merge and
        // commit, an append to the same cell must commit unimpeded.
        let batch2 = vec![(1u64, 2u64), (0, 2)];
        let stats = dg.add_edges(&batch2).unwrap();
        assert!(stats.deltas_appended > 0, "append must commit while the fold is parked");
        full.extend(&batch2);
        // Unhook before releasing: the losing fold retries and must not
        // park again.
        dg.maintenance().unwrap().set_fold_pause(None);
        release.wait();
        dg.wait_maintenance_idle().unwrap();
        let mstats = dg.maintenance().unwrap().stats();
        assert!(
            mstats.fold_races >= 1,
            "the parked fold must detect the interleaved append and retry: {mstats:?}"
        );
        assert!(mstats.cells_folded >= 1);
        assert!(
            dg.graph().manifest().chains().unwrap().iter().all(|c| c.3.deltas == 0),
            "retried folds must eventually collapse every chain"
        );
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn background_rebuild_respawns_maintenance() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 0)];
        let mut dg =
            DynamicGraph::with_config(prepare(&base), DynamicConfig::background()).unwrap();
        dg.add_edges(&[(0, 0)]).unwrap();
        let stats = dg.add_edges(&[(1, 99)]).unwrap(); // 99 unseen
        assert!(stats.rebuilt);
        assert!(dg.maintenance().is_some(), "rebuild must respawn the thread");
        dg.add_edges(&[(99, 0)]).unwrap();
        dg.wait_maintenance_idle().unwrap();
        assert_equivalent(&dg, &[(0, 1), (1, 0), (0, 0), (1, 99), (99, 0)]);
    }

    #[test]
    fn byte_ratio_threshold_folds_heavy_chains() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 0)];
        let cfg = DynamicConfig {
            max_deltas: u32::MAX,
            max_delta_ratio: 0.0, // any delta byte is "too heavy"
            ..DynamicConfig::default()
        };
        let mut dg = DynamicGraph::with_config(prepare(&base), cfg).unwrap();
        let stats = dg.add_edges(&[(0, 2)]).unwrap();
        // Every touched cell is over the (zero) byte budget, so each one
        // folds directly instead of appending.
        assert_eq!(stats.deltas_appended, 0);
        assert!(stats.cells_compacted > 0);
        assert!(dg.graph().manifest().chains().unwrap().iter().all(|c| c.3.deltas == 0));
        assert_equivalent(&dg, &[(0, 1), (1, 2), (2, 0), (0, 2)]);
    }

    #[test]
    fn incremental_commit_keeps_manifest_byte_totals_current() {
        use crate::dsss::{SS_DISK_BYTES_MANIFEST_KEY, SS_RAW_BYTES_MANIFEST_KEY};
        use nxgraph_storage::EncodingPolicy;

        let base: Vec<(u64, u64)> = (0..200u64).map(|k| (k % 9, (k + 1) % 9)).collect();
        let check = |dg: &DynamicGraph| {
            // The recorded totals must match what is actually on disk
            // (chains included), so the reported ratio never goes stale.
            let m = dg.graph().manifest();
            let recorded: u64 = m.extra[SS_DISK_BYTES_MANIFEST_KEY].parse().unwrap();
            let p = dg.graph().num_intervals();
            let mut actual = 0u64;
            for i in 0..p {
                for j in 0..p {
                    for rev in [false, true] {
                        actual += dg.graph().subshard_len(i, j, rev).unwrap();
                    }
                }
            }
            assert_eq!(recorded, actual);
            let raw: u64 = m.extra[SS_RAW_BYTES_MANIFEST_KEY].parse().unwrap();
            assert!(raw > recorded, "auto-encoded graph must stay compressed");
        };
        for config in [
            DynamicConfig::never_compact(),
            DynamicConfig::default(),
            DynamicConfig::rewrite(),
            DynamicConfig::background(),
        ] {
            let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
            let cfg = PrepConfig::new("dyn", 3).with_encoding(EncodingPolicy::Auto);
            let g = prep::preprocess(&base, &cfg, disk).unwrap();
            let mut dg = DynamicGraph::with_config(g, config.clone()).unwrap();
            let stats = dg.add_edges(&[(0, 5), (7, 2), (3, 3)]).unwrap();
            assert!(!stats.rebuilt);
            dg.wait_maintenance_idle().unwrap();
            check(&dg);
            dg.compact().unwrap();
            check(&dg);
        }
    }

    #[test]
    fn new_vertices_trigger_rebuild() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 0)];
        let mut dg = DynamicGraph::new(prepare(&base)).unwrap();
        // Build up a chain first so the rebuild also has files to sweep.
        dg.add_edges(&[(0, 0)]).unwrap();
        let extra = vec![(1u64, 99u64)]; // 99 unseen
        let stats = dg.add_edges(&extra).unwrap();
        assert!(stats.rebuilt);
        assert_eq!(dg.graph().num_vertices(), 3);
        assert_eq!(dg.id_of(99), Some(2));
        assert!(dg.graph().manifest().chains().unwrap().is_empty());

        let mut full = base.clone();
        full.push((0, 0));
        full.extend(extra);
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn degrees_stay_consistent() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 0)];
        let mut dg = DynamicGraph::new(prepare(&base)).unwrap();
        dg.add_edges(&[(0, 2), (0, 1)]).unwrap();
        assert_eq!(dg.graph().out_degrees().as_slice(), &[3, 1, 1]);
    }

    #[test]
    fn degree_commits_are_generation_tagged() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 0)];
        let mut dg = DynamicGraph::new(prepare(&base)).unwrap();
        dg.add_edges(&[(0, 2)]).unwrap();
        // The bumped table lands under a fresh name (contract step 1) and
        // the superseded generation is swept (step 3).
        let m = dg.graph().manifest();
        assert_eq!(m.degrees_gen().unwrap(), 1);
        let disk = dg.graph().disk();
        assert!(disk.exists(&GraphManifest::degree_file_at(1)));
        assert!(!disk.exists(GraphManifest::degree_file()));
        dg.add_edges(&[(1, 0)]).unwrap();
        assert_eq!(dg.graph().manifest().degrees_gen().unwrap(), 2);
        assert!(!dg.graph().disk().exists(&GraphManifest::degree_file_at(1)));
        // Reopening resolves the current generation.
        let reopened = PreparedGraph::open(Arc::clone(dg.graph().disk())).unwrap();
        assert_eq!(reopened.out_degrees().as_slice(), dg.graph().out_degrees().as_slice());
    }

    #[test]
    fn raw_edges_roundtrip() {
        let base: Vec<(u64, u64)> = vec![(10, 20), (20, 30), (30, 10)];
        let mut dg = DynamicGraph::new(prepare(&base)).unwrap();
        dg.add_edges(&[(20, 10)]).unwrap();
        let mut back = dg.raw_edges().unwrap();
        back.sort_unstable();
        let mut want = base.clone();
        want.push((20, 10));
        want.sort_unstable();
        assert_eq!(back, want);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut dg = DynamicGraph::new(prepare(&[(0, 1)])).unwrap();
        let stats = dg.add_edges(&[]).unwrap();
        assert_eq!(stats, CommitStats::default());
    }

    #[test]
    fn repeated_commits_accumulate() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 0)];
        let mut dg = DynamicGraph::new(prepare(&base)).unwrap();
        let mut full = base.clone();
        for k in 0..5u64 {
            let batch = vec![(k % 3, (k + 1) % 3)];
            dg.add_edges(&batch).unwrap();
            full.extend(batch);
        }
        assert_eq!(dg.graph().num_edges() as usize, full.len());
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn enospc_aborts_the_commit_and_preserves_the_last_manifest() {
        use crate::error::EngineError;
        use nxgraph_storage::{FaultDisk, FaultPlan};
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
        let mem: Arc<dyn Disk> = Arc::new(MemDisk::new());
        prep::preprocess(&base, &PrepConfig::new("dyn", 3), Arc::clone(&mem)).unwrap();
        // Zero byte budget: the commit's very first blob write hits ENOSPC.
        let disk: Arc<dyn Disk> =
            Arc::new(FaultDisk::new(Arc::clone(&mem), FaultPlan::new().with_enospc_after(0)));
        let g = PreparedGraph::open(disk).unwrap();
        let mut dg = DynamicGraph::with_config(g, DynamicConfig::never_compact()).unwrap();
        let err = dg.add_edges(&[(0, 2), (3, 1)]).unwrap_err();
        assert!(
            matches!(&err, EngineError::Storage(s) if s.is_transient()),
            "ENOSPC must surface as a typed transient storage error: {err}"
        );
        assert_eq!(dg.commit_aborts(), 1);
        // Rollback: reopening through the raw disk sees the pre-batch
        // graph, bit-for-bit usable.
        let reopened = PreparedGraph::open(mem).unwrap();
        assert_eq!(reopened.num_edges(), 4);
        let cfg = EngineConfig::default().with_max_iterations(6);
        let (a, _) = algo::pagerank(&reopened, 6, &cfg).unwrap();
        let (b, _) = algo::pagerank(&prepare(&base), 6, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn background_folds_survive_transient_write_faults() {
        use nxgraph_storage::{FaultDisk, FaultKind, FaultOp, FaultPlan, FaultRule};
        let base: Vec<(u64, u64)> = (0..200u64).map(|k| (k % 9, (k + 1) % 9)).collect();
        let mem: Arc<dyn Disk> = Arc::new(MemDisk::new());
        prep::preprocess(&base, &PrepConfig::new("dyn", 3), Arc::clone(&mem)).unwrap();
        // The first attempt to write each folded gen-1 base for cell (0,0)
        // fails with EIO; the maintenance worker must back off and retry,
        // never surface a fold error.
        let plan = FaultPlan::new().with_rule(FaultRule {
            name_contains: "ss_0_0.g1.bin".into(),
            op: FaultOp::Write,
            kind: FaultKind::WriteError,
            first: 0,
            count: 1,
        });
        let disk: Arc<dyn Disk> = Arc::new(FaultDisk::new(mem, plan));
        let g = PreparedGraph::open(disk).unwrap();
        let cfg = DynamicConfig {
            max_deltas: 3,
            max_delta_ratio: f64::INFINITY,
            auto_scrub: false,
            ..DynamicConfig::background()
        };
        let mut dg = DynamicGraph::with_config(g, cfg).unwrap();
        let mut full = base.clone();
        for k in 0..9u64 {
            let batch = vec![(k % 3, (k + 1) % 3)];
            dg.add_edges(&batch).unwrap();
            full.extend(batch);
        }
        dg.wait_maintenance_idle().unwrap();
        let stats = dg.maintenance().unwrap().stats();
        assert!(stats.cells_folded >= 1, "{stats:?}");
        assert!(stats.transient_retries >= 1, "faulted fold must retry: {stats:?}");
        assert_eq!(dg.commit_aborts(), 0);
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn scrubs_survive_a_transient_open_fault() {
        use nxgraph_storage::{FaultDisk, FaultKind, FaultOp, FaultPlan, FaultRule};
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 0)];
        let mem: Arc<dyn Disk> = Arc::new(MemDisk::new());
        prep::preprocess(&base, &PrepConfig::new("dyn", 3), Arc::clone(&mem)).unwrap();
        // The scrubber's first open of this blob fails; the worker re-runs
        // the whole pass after backoff.
        let plan = FaultPlan::new().with_rule(FaultRule {
            name_contains: "ss_0_0.bin".into(),
            op: FaultOp::Open,
            kind: FaultKind::OpenError,
            first: 0,
            count: 1,
        });
        let disk: Arc<dyn Disk> = Arc::new(FaultDisk::new(mem, plan));
        let g = PreparedGraph::open(disk).unwrap();
        let mut dg = DynamicGraph::with_config(g, DynamicConfig::background()).unwrap();
        let report = dg.scrub().unwrap();
        assert!(report.is_clean(), "{report:?}");
        let stats = dg.maintenance().unwrap().stats();
        assert!(stats.transient_retries >= 1, "faulted scrub must retry: {stats:?}");
        assert_eq!(stats.scrubs, 1);
    }

    #[test]
    fn delta_log_writes_less_than_rewrite() {
        // The whole point: committing a small batch must cost O(batch)
        // writes, not O(touched sub-shards).
        let base: Vec<(u64, u64)> = (0..4000u64).map(|k| (k % 61, (k * 7 + 1) % 61)).collect();
        let batch: Vec<(u64, u64)> = (0..10u64).map(|k| (k % 61, (k + 13) % 61)).collect();
        let written = |config: DynamicConfig| {
            let g = prepare(&base);
            let disk = Arc::clone(g.disk());
            let mut dg = DynamicGraph::with_config(g, config).unwrap();
            let before = disk.counters().written_bytes();
            dg.add_edges(&batch).unwrap();
            disk.counters().written_bytes() - before
        };
        let delta = written(DynamicConfig::never_compact());
        let rewrite = written(DynamicConfig::rewrite());
        assert!(
            delta * 2 < rewrite,
            "delta log wrote {delta} bytes, rewrite {rewrite}"
        );
    }
}
