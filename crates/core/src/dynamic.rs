//! Dynamic graph updates — the paper's stated future work ("NXgraph will
//! be extended to support dynamic change on graph structure").
//!
//! [`DynamicGraph`] wraps a [`PreparedGraph`] and accepts batches of new
//! edges. Under the default [`UpdateMode::DeltaLog`], a batch touching
//! existing vertices is committed by *appending*: each touched `(i, j)`
//! cell gets one small destination-sorted delta blob written next to its
//! base blob (same checksummed sub-shard format, compressed under the
//! graph's [`EncodingPolicy`](nxgraph_storage::EncodingPolicy)), and the
//! manifest records the chain. Readers merge-iterate base + deltas behind
//! the ordinary view API, so the engines are untouched; a configurable
//! compaction policy ([`DynamicConfig`]) folds long or heavy chains back
//! into a single base blob at the *next generation*, committing via the
//! manifest save so a crash at any point leaves a fully consistent chain
//! (stale files from the losing side are never referenced, and the
//! orphan sweep in [`DynamicGraph::compact`] reclaims them).
//!
//! [`UpdateMode::Rewrite`] keeps the pre-delta-log behaviour — every
//! touched cell is read, merged and rewritten whole — as the baseline the
//! `nxbench updates` workload measures the log against.
//!
//! A batch that introduces previously unseen vertex indices changes the
//! dense id space, so it still triggers a full re-preprocessing —
//! reconstructing the raw edge list from the sub-shards and the mapping
//! table — which is reported in the [`CommitStats`] so callers can batch
//! accordingly.

use std::collections::BTreeMap;
use std::sync::Arc;

use nxgraph_storage::manifest::{ChainInfo, GraphManifest};

use crate::dsss::{self, PreparedGraph, SubShard};
use crate::error::EngineResult;
use crate::prep::{self, PrepConfig};
use crate::types::VertexId;

/// How [`DynamicGraph::add_edges`] commits a batch of known-vertex edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UpdateMode {
    /// Append a delta blob per touched cell and let compaction fold the
    /// chains — O(batch) write traffic per commit.
    #[default]
    DeltaLog,
    /// Read-merge-rewrite every touched cell whole (the pre-delta-log
    /// behaviour) — O(touched sub-shard bytes) per commit.
    Rewrite,
}

/// Update-mode and compaction-policy knobs for a [`DynamicGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicConfig {
    /// How batches are committed.
    pub mode: UpdateMode,
    /// Fold a cell's chain once it holds this many delta blobs.
    pub max_deltas: u32,
    /// …or once the chain's on-disk delta bytes exceed this fraction of
    /// the base blob (long chains over a small base cost merge time; heavy
    /// chains over any base cost read amplification).
    pub max_delta_ratio: f64,
}

impl Default for DynamicConfig {
    fn default() -> Self {
        // The byte ratio is the primary bound (it caps read amplification
        // at 2× the base bytes); the count is a cap on merge width, which
        // costs O(parts) per edge on chained reads.
        Self {
            mode: UpdateMode::DeltaLog,
            max_deltas: 32,
            max_delta_ratio: 1.0,
        }
    }
}

impl DynamicConfig {
    /// The pre-delta-log whole-cell rewrite behaviour.
    pub fn rewrite() -> Self {
        Self {
            mode: UpdateMode::Rewrite,
            ..Self::default()
        }
    }

    /// Delta logging with automatic compaction disabled — chains only fold
    /// on an explicit [`DynamicGraph::compact`] (tests and benchmarks that
    /// want to observe raw chains).
    pub fn never_compact() -> Self {
        Self {
            mode: UpdateMode::DeltaLog,
            max_deltas: u32::MAX,
            max_delta_ratio: f64::INFINITY,
        }
    }
}

/// Result of one [`DynamicGraph::add_edges`] commit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommitStats {
    /// Edges added in this batch.
    pub edges_added: usize,
    /// Whether the whole graph had to be re-preprocessed (new vertices).
    pub rebuilt: bool,
    /// Sub-shard cells rewritten whole (forward + reverse counted
    /// separately); only under [`UpdateMode::Rewrite`], zero when
    /// `rebuilt`.
    pub cells_rewritten: usize,
    /// Delta blobs appended (one per touched cell; forward + reverse
    /// counted separately); only under [`UpdateMode::DeltaLog`].
    pub deltas_appended: usize,
    /// Cells whose chains the compaction policy folded after the append.
    pub cells_compacted: usize,
}

/// A prepared graph accepting structural updates.
pub struct DynamicGraph {
    graph: PreparedGraph,
    /// Sorted original indices; position = dense id.
    mapping: Vec<u64>,
    config: DynamicConfig,
}

impl DynamicGraph {
    /// Wrap a prepared graph (loads the mapping table) with the default
    /// delta-log configuration.
    pub fn new(graph: PreparedGraph) -> EngineResult<Self> {
        Self::with_config(graph, DynamicConfig::default())
    }

    /// Wrap a prepared graph with an explicit [`DynamicConfig`].
    pub fn with_config(graph: PreparedGraph, config: DynamicConfig) -> EngineResult<Self> {
        let mapping = graph.load_reverse_mapping()?;
        Ok(Self {
            graph,
            mapping,
            config,
        })
    }

    /// The current prepared graph (always consistent after each commit).
    pub fn graph(&self) -> &PreparedGraph {
        &self.graph
    }

    /// The update-mode and compaction configuration.
    pub fn config(&self) -> &DynamicConfig {
        &self.config
    }

    /// Dense id of an original index, if known.
    pub fn id_of(&self, index: u64) -> Option<VertexId> {
        self.mapping.binary_search(&index).ok().map(|i| i as VertexId)
    }

    /// Reconstruct the raw edge list (original indices) from disk.
    pub fn raw_edges(&self) -> EngineResult<Vec<(u64, u64)>> {
        let p = self.graph.num_intervals();
        let mut out = Vec::with_capacity(self.graph.num_edges() as usize);
        for i in 0..p {
            for j in 0..p {
                let ss = self.graph.load_subshard(i, j, false)?;
                out.extend(ss.iter_edges().map(|(s, d)| {
                    (self.mapping[s as usize], self.mapping[d as usize])
                }));
            }
        }
        Ok(out)
    }

    /// Add a batch of edges (original indices) and commit to disk.
    pub fn add_edges(&mut self, new_raw: &[(u64, u64)]) -> EngineResult<CommitStats> {
        if new_raw.is_empty() {
            return Ok(CommitStats::default());
        }
        let all_known = new_raw
            .iter()
            .all(|&(s, d)| self.id_of(s).is_some() && self.id_of(d).is_some());
        if !all_known {
            return self.rebuild_with(new_raw);
        }

        // Incremental path: bucket dense edges by grid cell.
        let p = self.graph.num_intervals();
        let interval_len = self.graph.manifest().interval_len() as VertexId;
        let interval_of = |v: VertexId| (v / interval_len).min(p - 1);

        let mut buckets: BTreeMap<(u32, u32, bool), Vec<(VertexId, VertexId)>> = BTreeMap::new();
        let mut degree_bump: BTreeMap<VertexId, u32> = BTreeMap::new();
        for &(s, d) in new_raw {
            let (s, d) = (self.id_of(s).unwrap(), self.id_of(d).unwrap());
            buckets
                .entry((interval_of(s), interval_of(d), false))
                .or_default()
                .push((s, d));
            if self.graph.has_reverse() {
                buckets
                    .entry((interval_of(d), interval_of(s), true))
                    .or_default()
                    .push((d, s));
            }
            *degree_bump.entry(s).or_default() += 1;
        }

        let mut stats = CommitStats {
            edges_added: new_raw.len(),
            ..CommitStats::default()
        };
        let mut manifest = self.graph.manifest().clone();
        let (mut raw_delta, mut disk_delta) = (0i64, 0i64);
        let mut stale: Vec<String> = Vec::new();

        for ((i, j, reverse), extra) in buckets {
            let chain = manifest.chain_info(i, j, reverse)?;
            match self.config.mode {
                UpdateMode::DeltaLog => {
                    let d = SubShard::from_edges(i, j, extra);
                    let blob = d.encode_with(self.graph.encoding_policy());
                    let base_name = GraphManifest::subshard_base_file(i, j, reverse, chain.gen);
                    // Fold-before-append check, O(1) in the chain length:
                    // accumulated delta bytes ride in the ChainInfo, and
                    // the base is stat'ed only when the ratio can trip.
                    let due = chain.deltas + 1 >= self.config.max_deltas
                        || (self.config.max_delta_ratio.is_finite()
                            && (chain.delta_bytes + blob.len() as u64) as f64
                                > self.graph.disk().len_of(&base_name)? as f64
                                    * self.config.max_delta_ratio);
                    if due {
                        // The chain would cross a threshold: fold it and
                        // this batch's edges into a fresh base in the same
                        // commit, instead of appending a delta only to
                        // read it straight back.
                        let mut parts = dsss::load_chain_parts(
                            self.graph.disk().as_ref(),
                            i,
                            j,
                            reverse,
                            chain,
                        )?;
                        let old_raw: u64 = parts.iter().map(|p| p.encoded_len()).sum();
                        let old_disk =
                            self.graph.disk().len_of(&base_name)? + chain.delta_bytes;
                        parts.push(d); // the new batch, already dst-sorted
                        let merged = dsss::merge_subshards(i, j, &parts);
                        let blob = merged.encode_with(self.graph.encoding_policy());
                        let new_gen = chain.gen + 1;
                        let name = GraphManifest::subshard_base_file(i, j, reverse, new_gen);
                        self.graph.disk().write_all_to(&name, &blob)?;
                        raw_delta += merged.encoded_len() as i64 - old_raw as i64;
                        disk_delta += blob.len() as i64 - old_disk as i64;
                        manifest.set_chain_info(
                            i,
                            j,
                            reverse,
                            ChainInfo { gen: new_gen, ..ChainInfo::default() },
                        );
                        stale.extend(chain_files(i, j, reverse, chain));
                        stats.cells_compacted += 1;
                    } else {
                        // Append one destination-sorted delta blob; the
                        // base and earlier deltas are not even read.
                        let name = GraphManifest::subshard_delta_file(
                            i,
                            j,
                            reverse,
                            chain.gen,
                            chain.deltas + 1,
                        );
                        raw_delta += d.encoded_len() as i64;
                        disk_delta += blob.len() as i64;
                        self.graph.disk().write_all_to(&name, &blob)?;
                        manifest.set_chain_info(
                            i,
                            j,
                            reverse,
                            ChainInfo {
                                gen: chain.gen,
                                deltas: chain.deltas + 1,
                                delta_bytes: chain.delta_bytes + blob.len() as u64,
                            },
                        );
                        stats.deltas_appended += 1;
                    }
                }
                UpdateMode::Rewrite => {
                    // Read-merge-rewrite the whole cell (chain included, so
                    // mixing modes folds any pending deltas in passing).
                    let parts =
                        dsss::load_chain_parts(self.graph.disk().as_ref(), i, j, reverse, chain)?;
                    let old_raw: u64 = parts.iter().map(|p| p.encoded_len()).sum();
                    let old_disk = self.graph.subshard_len(i, j, reverse)?;
                    let mut edges: Vec<(VertexId, VertexId)> =
                        parts.iter().flat_map(|p| p.iter_edges()).collect();
                    edges.extend(extra);
                    let merged = SubShard::from_edges(i, j, edges);
                    let blob = merged.encode_with(self.graph.encoding_policy());
                    raw_delta += merged.encoded_len() as i64 - old_raw as i64;
                    disk_delta += blob.len() as i64 - old_disk as i64;
                    if chain.deltas == 0 {
                        // Bare base: rewrite in place under its own name,
                        // exactly like the pre-delta-log path.
                        let name = GraphManifest::subshard_base_file(i, j, reverse, chain.gen);
                        self.graph.disk().write_all_to(&name, &blob)?;
                    } else {
                        // A chain is folded into the next generation so the
                        // still-referenced old base is never clobbered.
                        let new_gen = chain.gen + 1;
                        let name = GraphManifest::subshard_base_file(i, j, reverse, new_gen);
                        self.graph.disk().write_all_to(&name, &blob)?;
                        manifest.set_chain_info(
                            i,
                            j,
                            reverse,
                            ChainInfo { gen: new_gen, ..ChainInfo::default() },
                        );
                        stale.extend(chain_files(i, j, reverse, chain));
                    }
                    stats.cells_rewritten += 1;
                }
            }
        }

        manifest.num_edges += new_raw.len() as u64;
        self.commit(manifest, &degree_bump, raw_delta, disk_delta, &stale)?;
        Ok(stats)
    }

    /// Fold every cell's delta chain into a single base blob (regardless
    /// of the thresholds), then sweep any unreferenced chain files that an
    /// interrupted fold or rebuild left behind. Returns the number of
    /// cells folded.
    pub fn compact(&mut self) -> EngineResult<usize> {
        let cells: Vec<(u32, u32, bool)> = self
            .graph
            .manifest()
            .chains()?
            .into_iter()
            .filter(|&(_, _, _, info)| info.deltas > 0)
            .map(|(i, j, reverse, _)| (i, j, reverse))
            .collect();
        let folded = self.compact_cells(&cells)?;
        self.sweep_orphans()?;
        Ok(folded)
    }

    /// Remove every generation-tagged base or delta file the manifest does
    /// not reference. The per-fold sweep only covers the chain being
    /// superseded, so a crash *between* the manifest save and that sweep
    /// orphans one generation's files — this pass (run by
    /// [`DynamicGraph::compact`], i.e. `nxgraph-cli compact`) is the
    /// garbage collector that reclaims them. Plain generation-0 names are
    /// never candidates: they are the prep-time layout.
    fn sweep_orphans(&self) -> EngineResult<usize> {
        let manifest = self.graph.manifest();
        let mut removed = 0usize;
        for name in self.graph.disk().list() {
            let Some((i, j, reverse, gen, delta)) = parse_chain_file(&name) else {
                continue;
            };
            let chain = manifest.chain_info(i, j, reverse)?;
            let referenced = gen == chain.gen
                && match delta {
                    None => gen > 0,
                    Some(k) => k >= 1 && k <= chain.deltas,
                };
            if !referenced {
                let _ = self.graph.disk().remove(&name);
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Fold the chains of the given cells. The merged base is written
    /// under the *next* generation, the manifest save is the commit point,
    /// and the superseded files are removed only afterwards — a crash
    /// anywhere leaves either the old chain or the new base fully
    /// referenced, never a half-state (leftovers are unreferenced and
    /// harmless).
    fn compact_cells(&mut self, cells: &[(u32, u32, bool)]) -> EngineResult<usize> {
        if cells.is_empty() {
            return Ok(0);
        }
        let disk = Arc::clone(self.graph.disk());
        let mut manifest = self.graph.manifest().clone();
        let (mut raw_delta, mut disk_delta) = (0i64, 0i64);
        let mut stale: Vec<String> = Vec::new();
        let mut folded = 0usize;
        for &(i, j, reverse) in cells {
            let chain = manifest.chain_info(i, j, reverse)?;
            if chain.deltas == 0 {
                continue;
            }
            let parts = dsss::load_chain_parts(disk.as_ref(), i, j, reverse, chain)?;
            let old_raw: u64 = parts.iter().map(|p| p.encoded_len()).sum();
            let old_base =
                disk.len_of(&GraphManifest::subshard_base_file(i, j, reverse, chain.gen))?;
            let merged = dsss::merge_subshards(i, j, &parts);
            let blob = merged.encode_with(self.graph.encoding_policy());
            let new_gen = chain.gen + 1;
            disk.write_all_to(&GraphManifest::subshard_base_file(i, j, reverse, new_gen), &blob)?;
            raw_delta += merged.encoded_len() as i64 - old_raw as i64;
            disk_delta += blob.len() as i64 - (old_base + chain.delta_bytes) as i64;
            manifest.set_chain_info(
                i,
                j,
                reverse,
                ChainInfo { gen: new_gen, ..ChainInfo::default() },
            );
            stale.extend(chain_files(i, j, reverse, chain));
            folded += 1;
        }
        self.commit(manifest, &BTreeMap::new(), raw_delta, disk_delta, &stale)?;
        Ok(folded)
    }

    /// Shared commit tail: degree table (when bumped), manifest byte
    /// totals, manifest save (the durability point), stale-file sweep, and
    /// a refresh of the in-memory handle. The refresh rebuilds the
    /// [`PreparedGraph`] from the manifest and degree table already in
    /// hand — commits are frequent on streaming workloads and re-reading
    /// what was just written would double the per-batch fixed cost.
    fn commit(
        &mut self,
        mut manifest: GraphManifest,
        degree_bump: &BTreeMap<VertexId, u32>,
        raw_delta: i64,
        disk_delta: i64,
        stale: &[String],
    ) -> EngineResult<()> {
        let out_degrees = if degree_bump.is_empty() {
            Arc::clone(self.graph.out_degrees())
        } else {
            let mut degrees = (**self.graph.out_degrees()).clone();
            for (&v, &bump) in degree_bump {
                degrees[v as usize] += bump;
            }
            let mut blob = Vec::new();
            nxgraph_storage::format::write_blob(
                &mut blob,
                nxgraph_storage::format::FileKind::Degrees,
                &nxgraph_storage::format::encode_u32s(&degrees),
            )
            .expect("vec write is infallible");
            self.graph
                .disk()
                .write_all_to(GraphManifest::degree_file(), &blob)?;
            Arc::new(degrees)
        };
        // Keep the recorded blob-size totals (and hence the reported
        // compression ratio) in step with what the commit wrote.
        for (key, delta) in [
            (crate::dsss::SS_RAW_BYTES_MANIFEST_KEY, raw_delta),
            (crate::dsss::SS_DISK_BYTES_MANIFEST_KEY, disk_delta),
        ] {
            if let Some(v) = manifest.extra.get_mut(key) {
                let cur: i64 = v.parse().unwrap_or(0);
                *v = (cur + delta).max(0).to_string();
            }
        }
        manifest.save(self.graph.disk().as_ref())?;
        for name in stale {
            // Best-effort: an unreferenced leftover is invisible to every
            // reader and gets another sweep chance at the next fold.
            let _ = self.graph.disk().remove(name);
        }
        let disk = Arc::clone(self.graph.disk());
        self.graph = PreparedGraph::from_parts(disk, manifest, out_degrees)?;
        Ok(())
    }

    fn rebuild_with(&mut self, new_raw: &[(u64, u64)]) -> EngineResult<CommitStats> {
        // Fold every chain first: re-preprocessing overwrites the
        // generation-0 base names in place, and doing that while the
        // on-disk manifest still lists deltas for those cells would merge
        // old delta blobs into new-id-space bases (double-counted edges)
        // if the rebuild were interrupted. After the fold, every chained
        // cell lives at a generation > 0 — names preprocessing never
        // touches — so an interrupted rebuild reopens as the intact
        // pre-rebuild graph. (Cells that never chained are overwritten in
        // place, as every rebuild has done; mid-prep crash atomicity for
        // those is out of scope.)
        self.compact()?;
        let mut raw = self.raw_edges()?;
        raw.extend_from_slice(new_raw);
        // The folded bases, swept only after the new manifest is saved.
        let mut stale = Vec::new();
        for (i, j, reverse, chain) in self.graph.manifest().chains()? {
            stale.extend(chain_files(i, j, reverse, chain));
        }
        let cfg = PrepConfig {
            name: self.graph.manifest().name.clone(),
            num_intervals: self.graph.num_intervals(),
            build_reverse: self.graph.has_reverse(),
            encoding: self.graph.encoding_policy(),
        };
        let disk = Arc::clone(self.graph.disk());
        self.graph = prep::preprocess(&raw, &cfg, disk)?;
        for name in &stale {
            let _ = self.graph.disk().remove(name);
        }
        self.mapping = self.graph.load_reverse_mapping()?;
        Ok(CommitStats {
            edges_added: new_raw.len(),
            rebuilt: true,
            ..CommitStats::default()
        })
    }
}

/// Every file a chain occupies — the base blob first, then all delta
/// blobs. Fold paths sweep the whole list once the manifest references
/// the next generation (the generation-0 base included: a fold is the
/// only thing that ever supersedes it, and leaving it would leak the
/// original cell's bytes forever).
fn chain_files(i: u32, j: u32, reverse: bool, chain: ChainInfo) -> Vec<String> {
    let mut out = Vec::with_capacity(chain.deltas as usize + 1);
    out.push(GraphManifest::subshard_base_file(i, j, reverse, chain.gen));
    for k in 1..=chain.deltas {
        out.push(GraphManifest::subshard_delta_file(i, j, reverse, chain.gen, k));
    }
    out
}

/// Parse a generation-tagged chain file name —
/// `[r]ss_{i}_{j}.g{gen}[.d{k}].bin` — into `(i, j, reverse, gen,
/// delta_index)`. Plain prep-time names (`ss_i_j.bin`) and every other
/// file kind return `None`; only parseable names are orphan-sweep
/// candidates.
fn parse_chain_file(name: &str) -> Option<(u32, u32, bool, u32, Option<u32>)> {
    let rest = name.strip_suffix(".bin")?;
    let (reverse, rest) = match rest.strip_prefix("rss_") {
        Some(r) => (true, r),
        None => (false, rest.strip_prefix("ss_")?),
    };
    let mut parts = rest.split('.');
    let (i, j) = parts.next()?.split_once('_')?;
    let gen = parts.next()?.strip_prefix('g')?.parse().ok()?;
    let delta = match parts.next() {
        None => None,
        Some(d) => Some(d.strip_prefix('d')?.parse().ok()?),
    };
    if parts.next().is_some() {
        return None;
    }
    Some((i.parse().ok()?, j.parse().ok()?, reverse, gen, delta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use crate::engine::EngineConfig;
    use nxgraph_storage::{Disk, MemDisk};
    use std::sync::Arc;

    fn prepare(raw: &[(u64, u64)]) -> PreparedGraph {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        prep::preprocess(raw, &PrepConfig::new("dyn", 3), disk).unwrap()
    }

    /// PageRank after dynamic commits must equal PageRank on a graph
    /// preprocessed from scratch with the same edges.
    fn assert_equivalent(dynamic: &DynamicGraph, full_raw: &[(u64, u64)]) {
        let fresh = prepare(full_raw);
        let cfg = EngineConfig::default().with_max_iterations(6);
        let (a, _) = algo::pagerank(dynamic.graph(), 6, &cfg).unwrap();
        let (b, _) = algo::pagerank(&fresh, 6, &cfg).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn delta_log_commit_for_known_vertices() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
        // Automatic compaction off so the chain is observable.
        let mut dg =
            DynamicGraph::with_config(prepare(&base), DynamicConfig::never_compact()).unwrap();
        let extra = vec![(0u64, 2u64), (3, 1)];
        let stats = dg.add_edges(&extra).unwrap();
        assert!(!stats.rebuilt);
        assert_eq!(stats.edges_added, 2);
        assert_eq!(stats.cells_rewritten, 0);
        assert!(stats.deltas_appended > 0);
        assert_eq!(dg.graph().num_edges(), 6);
        // The chain is visible in the manifest until compaction.
        assert!(dg.graph().manifest().chains().unwrap().iter().any(|c| c.3.deltas > 0));

        let mut full = base.clone();
        full.extend(extra);
        assert_equivalent(&dg, &full);

        // An explicit fold leaves single-base cells and the same results.
        let folded = dg.compact().unwrap();
        assert!(folded > 0);
        assert!(dg.graph().manifest().chains().unwrap().iter().all(|c| c.3.deltas == 0));
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn rewrite_mode_commit_for_known_vertices() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
        let mut dg =
            DynamicGraph::with_config(prepare(&base), DynamicConfig::rewrite()).unwrap();
        let extra = vec![(0u64, 2u64), (3, 1)];
        let stats = dg.add_edges(&extra).unwrap();
        assert!(!stats.rebuilt);
        assert_eq!(stats.edges_added, 2);
        assert!(stats.cells_rewritten > 0);
        assert_eq!(stats.deltas_appended, 0);
        assert_eq!(dg.graph().num_edges(), 6);
        assert!(dg.graph().manifest().chains().unwrap().is_empty());

        let mut full = base.clone();
        full.extend(extra);
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn compaction_policy_folds_long_chains() {
        let base: Vec<(u64, u64)> = (0..200u64).map(|k| (k % 9, (k + 1) % 9)).collect();
        let cfg = DynamicConfig {
            max_deltas: 3,
            max_delta_ratio: f64::INFINITY, // only the count threshold
            ..DynamicConfig::default()
        };
        let mut dg = DynamicGraph::with_config(prepare(&base), cfg).unwrap();
        let mut full = base.clone();
        let mut saw_compaction = false;
        // Every batch lands in cell (0, 0): ids 0..3 are interval 0 of the
        // 9-vertex, P=3 graph, so the same chain grows batch after batch.
        for k in 0..9u64 {
            let batch = vec![(k % 3, (k + 1) % 3)];
            let stats = dg.add_edges(&batch).unwrap();
            saw_compaction |= stats.cells_compacted > 0;
            full.extend(batch);
            // The policy bounds every chain at the threshold.
            for (_, _, _, info) in dg.graph().manifest().chains().unwrap() {
                assert!(info.deltas < 3, "chain grew past max_deltas: {info:?}");
            }
        }
        assert!(saw_compaction, "nine single-cell batches must trigger a fold");
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn byte_ratio_threshold_folds_heavy_chains() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 0)];
        let cfg = DynamicConfig {
            max_deltas: u32::MAX,
            max_delta_ratio: 0.0, // any delta byte is "too heavy"
            ..DynamicConfig::default()
        };
        let mut dg = DynamicGraph::with_config(prepare(&base), cfg).unwrap();
        let stats = dg.add_edges(&[(0, 2)]).unwrap();
        // Every touched cell is over the (zero) byte budget, so each one
        // folds directly instead of appending.
        assert_eq!(stats.deltas_appended, 0);
        assert!(stats.cells_compacted > 0);
        assert!(dg.graph().manifest().chains().unwrap().iter().all(|c| c.3.deltas == 0));
        assert_equivalent(&dg, &[(0, 1), (1, 2), (2, 0), (0, 2)]);
    }

    #[test]
    fn incremental_commit_keeps_manifest_byte_totals_current() {
        use crate::dsss::{SS_DISK_BYTES_MANIFEST_KEY, SS_RAW_BYTES_MANIFEST_KEY};
        use nxgraph_storage::EncodingPolicy;

        let base: Vec<(u64, u64)> = (0..200u64).map(|k| (k % 9, (k + 1) % 9)).collect();
        let check = |dg: &DynamicGraph| {
            // The recorded totals must match what is actually on disk
            // (chains included), so the reported ratio never goes stale.
            let m = dg.graph().manifest();
            let recorded: u64 = m.extra[SS_DISK_BYTES_MANIFEST_KEY].parse().unwrap();
            let p = dg.graph().num_intervals();
            let mut actual = 0u64;
            for i in 0..p {
                for j in 0..p {
                    for rev in [false, true] {
                        actual += dg.graph().subshard_len(i, j, rev).unwrap();
                    }
                }
            }
            assert_eq!(recorded, actual);
            let raw: u64 = m.extra[SS_RAW_BYTES_MANIFEST_KEY].parse().unwrap();
            assert!(raw > recorded, "auto-encoded graph must stay compressed");
        };
        for config in [
            DynamicConfig::never_compact(),
            DynamicConfig::default(),
            DynamicConfig::rewrite(),
        ] {
            let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
            let cfg = PrepConfig::new("dyn", 3).with_encoding(EncodingPolicy::Auto);
            let g = prep::preprocess(&base, &cfg, disk).unwrap();
            let mut dg = DynamicGraph::with_config(g, config.clone()).unwrap();
            let stats = dg.add_edges(&[(0, 5), (7, 2), (3, 3)]).unwrap();
            assert!(!stats.rebuilt);
            check(&dg);
            dg.compact().unwrap();
            check(&dg);
        }
    }

    #[test]
    fn new_vertices_trigger_rebuild() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 0)];
        let mut dg = DynamicGraph::new(prepare(&base)).unwrap();
        // Build up a chain first so the rebuild also has files to sweep.
        dg.add_edges(&[(0, 0)]).unwrap();
        let extra = vec![(1u64, 99u64)]; // 99 unseen
        let stats = dg.add_edges(&extra).unwrap();
        assert!(stats.rebuilt);
        assert_eq!(dg.graph().num_vertices(), 3);
        assert_eq!(dg.id_of(99), Some(2));
        assert!(dg.graph().manifest().chains().unwrap().is_empty());

        let mut full = base.clone();
        full.push((0, 0));
        full.extend(extra);
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn degrees_stay_consistent() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 0)];
        let mut dg = DynamicGraph::new(prepare(&base)).unwrap();
        dg.add_edges(&[(0, 2), (0, 1)]).unwrap();
        assert_eq!(dg.graph().out_degrees().as_slice(), &[3, 1, 1]);
    }

    #[test]
    fn raw_edges_roundtrip() {
        let base: Vec<(u64, u64)> = vec![(10, 20), (20, 30), (30, 10)];
        let mut dg = DynamicGraph::new(prepare(&base)).unwrap();
        dg.add_edges(&[(20, 10)]).unwrap();
        let mut back = dg.raw_edges().unwrap();
        back.sort_unstable();
        let mut want = base.clone();
        want.push((20, 10));
        want.sort_unstable();
        assert_eq!(back, want);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut dg = DynamicGraph::new(prepare(&[(0, 1)])).unwrap();
        let stats = dg.add_edges(&[]).unwrap();
        assert_eq!(stats, CommitStats::default());
    }

    #[test]
    fn repeated_commits_accumulate() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 0)];
        let mut dg = DynamicGraph::new(prepare(&base)).unwrap();
        let mut full = base.clone();
        for k in 0..5u64 {
            let batch = vec![(k % 3, (k + 1) % 3)];
            dg.add_edges(&batch).unwrap();
            full.extend(batch);
        }
        assert_eq!(dg.graph().num_edges() as usize, full.len());
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn delta_log_writes_less_than_rewrite() {
        // The whole point: committing a small batch must cost O(batch)
        // writes, not O(touched sub-shards).
        let base: Vec<(u64, u64)> = (0..4000u64).map(|k| (k % 61, (k * 7 + 1) % 61)).collect();
        let batch: Vec<(u64, u64)> = (0..10u64).map(|k| (k % 61, (k + 13) % 61)).collect();
        let written = |config: DynamicConfig| {
            let g = prepare(&base);
            let disk = Arc::clone(g.disk());
            let mut dg = DynamicGraph::with_config(g, config).unwrap();
            let before = disk.counters().written_bytes();
            dg.add_edges(&batch).unwrap();
            disk.counters().written_bytes() - before
        };
        let delta = written(DynamicConfig::never_compact());
        let rewrite = written(DynamicConfig::rewrite());
        assert!(
            delta * 2 < rewrite,
            "delta log wrote {delta} bytes, rewrite {rewrite}"
        );
    }
}
