//! Dynamic graph updates — the paper's stated future work ("NXgraph will
//! be extended to support dynamic change on graph structure").
//!
//! [`DynamicGraph`] wraps a [`PreparedGraph`] and accepts batches of new
//! edges. Edges between *existing* vertices are merged incrementally: only
//! the `(i, j)` sub-shard cells they fall into are rewritten (plus the
//! degree table), preserving all DSSS invariants. A batch that introduces
//! previously unseen vertex indices changes the dense id space, so it
//! triggers a full re-preprocessing — reconstructing the raw edge list
//! from the sub-shards and the mapping table — which is reported in the
//! [`CommitStats`] so callers can batch accordingly.

use std::collections::BTreeMap;

use nxgraph_storage::manifest::GraphManifest;

use crate::dsss::{PreparedGraph, SubShard};
use crate::error::EngineResult;
use crate::prep::{self, PrepConfig};
use crate::types::VertexId;

/// Result of one [`DynamicGraph::add_edges`] commit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitStats {
    /// Edges added in this batch.
    pub edges_added: usize,
    /// Whether the whole graph had to be re-preprocessed (new vertices).
    pub rebuilt: bool,
    /// Sub-shard cells rewritten (forward + reverse counted separately);
    /// zero when `rebuilt`.
    pub cells_rewritten: usize,
}

/// A prepared graph accepting structural updates.
pub struct DynamicGraph {
    graph: PreparedGraph,
    /// Sorted original indices; position = dense id.
    mapping: Vec<u64>,
}

impl DynamicGraph {
    /// Wrap a prepared graph (loads the mapping table).
    pub fn new(graph: PreparedGraph) -> EngineResult<Self> {
        let mapping = graph.load_reverse_mapping()?;
        Ok(Self { graph, mapping })
    }

    /// The current prepared graph (always consistent after each commit).
    pub fn graph(&self) -> &PreparedGraph {
        &self.graph
    }

    /// Dense id of an original index, if known.
    pub fn id_of(&self, index: u64) -> Option<VertexId> {
        self.mapping.binary_search(&index).ok().map(|i| i as VertexId)
    }

    /// Reconstruct the raw edge list (original indices) from disk.
    pub fn raw_edges(&self) -> EngineResult<Vec<(u64, u64)>> {
        let p = self.graph.num_intervals();
        let mut out = Vec::with_capacity(self.graph.num_edges() as usize);
        for i in 0..p {
            for j in 0..p {
                let ss = self.graph.load_subshard(i, j, false)?;
                out.extend(ss.iter_edges().map(|(s, d)| {
                    (self.mapping[s as usize], self.mapping[d as usize])
                }));
            }
        }
        Ok(out)
    }

    /// Add a batch of edges (original indices) and commit to disk.
    pub fn add_edges(&mut self, new_raw: &[(u64, u64)]) -> EngineResult<CommitStats> {
        if new_raw.is_empty() {
            return Ok(CommitStats {
                edges_added: 0,
                rebuilt: false,
                cells_rewritten: 0,
            });
        }
        let all_known = new_raw
            .iter()
            .all(|&(s, d)| self.id_of(s).is_some() && self.id_of(d).is_some());
        if !all_known {
            return self.rebuild_with(new_raw);
        }

        // Incremental path: bucket dense edges by grid cell and rewrite
        // only the touched sub-shards.
        let p = self.graph.num_intervals();
        let interval_len = self.graph.manifest().interval_len() as VertexId;
        let interval_of = |v: VertexId| (v / interval_len).min(p - 1);

        let mut fwd: BTreeMap<(u32, u32), Vec<(VertexId, VertexId)>> = BTreeMap::new();
        let mut rev: BTreeMap<(u32, u32), Vec<(VertexId, VertexId)>> = BTreeMap::new();
        let mut degree_bump: BTreeMap<VertexId, u32> = BTreeMap::new();
        for &(s, d) in new_raw {
            let (s, d) = (self.id_of(s).unwrap(), self.id_of(d).unwrap());
            fwd.entry((interval_of(s), interval_of(d)))
                .or_default()
                .push((s, d));
            if self.graph.has_reverse() {
                rev.entry((interval_of(d), interval_of(s)))
                    .or_default()
                    .push((d, s));
            }
            *degree_bump.entry(s).or_default() += 1;
        }

        let mut cells = 0;
        let (mut raw_delta, mut disk_delta) = (0i64, 0i64);
        for (reverse, buckets) in [(false, &fwd), (true, &rev)] {
            for (&(i, j), extra) in buckets {
                let ss = self.graph.load_subshard(i, j, reverse)?;
                let mut edges: Vec<(VertexId, VertexId)> = ss.iter_edges().collect();
                edges.extend_from_slice(extra);
                let merged = SubShard::from_edges(i, j, edges);
                let name = if reverse {
                    GraphManifest::rev_subshard_file(i, j)
                } else {
                    GraphManifest::subshard_file(i, j)
                };
                // Preserve the graph's on-disk encoding policy across the
                // rewrite (readers sniff per blob either way), and track
                // how the rewrite moves the manifest's blob-size totals.
                let old_disk = self.graph.disk().len_of(&name)? as i64;
                let blob = merged.encode_with(self.graph.encoding_policy());
                raw_delta += merged.encoded_len() as i64 - ss.encoded_len() as i64;
                disk_delta += blob.len() as i64 - old_disk;
                self.graph.disk().write_all_to(&name, &blob)?;
                cells += 1;
            }
        }

        // Degree table and manifest update.
        let mut degrees = (**self.graph.out_degrees()).clone();
        for (v, bump) in degree_bump {
            degrees[v as usize] += bump;
        }
        let mut blob = Vec::new();
        nxgraph_storage::format::write_blob(
            &mut blob,
            nxgraph_storage::format::FileKind::Degrees,
            &nxgraph_storage::format::encode_u32s(&degrees),
        )
        .expect("vec write is infallible");
        self.graph
            .disk()
            .write_all_to(GraphManifest::degree_file(), &blob)?;

        let mut manifest = self.graph.manifest().clone();
        manifest.num_edges += new_raw.len() as u64;
        // Keep the recorded blob-size totals (and hence the reported
        // compression ratio) in step with the rewritten cells.
        for (key, delta) in [
            (crate::dsss::SS_RAW_BYTES_MANIFEST_KEY, raw_delta),
            (crate::dsss::SS_DISK_BYTES_MANIFEST_KEY, disk_delta),
        ] {
            if let Some(v) = manifest.extra.get_mut(key) {
                let cur: i64 = v.parse().unwrap_or(0);
                *v = (cur + delta).max(0).to_string();
            }
        }
        manifest.save(self.graph.disk().as_ref())?;

        // Reopen to refresh the in-memory handle.
        self.graph = PreparedGraph::open(std::sync::Arc::clone(self.graph.disk()))?;
        Ok(CommitStats {
            edges_added: new_raw.len(),
            rebuilt: false,
            cells_rewritten: cells,
        })
    }

    fn rebuild_with(&mut self, new_raw: &[(u64, u64)]) -> EngineResult<CommitStats> {
        let mut raw = self.raw_edges()?;
        raw.extend_from_slice(new_raw);
        let cfg = PrepConfig {
            name: self.graph.manifest().name.clone(),
            num_intervals: self.graph.num_intervals(),
            build_reverse: self.graph.has_reverse(),
            encoding: self.graph.encoding_policy(),
        };
        let disk = std::sync::Arc::clone(self.graph.disk());
        self.graph = prep::preprocess(&raw, &cfg, disk)?;
        self.mapping = self.graph.load_reverse_mapping()?;
        Ok(CommitStats {
            edges_added: new_raw.len(),
            rebuilt: true,
            cells_rewritten: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use crate::engine::EngineConfig;
    use nxgraph_storage::{Disk, MemDisk};
    use std::sync::Arc;

    fn prepare(raw: &[(u64, u64)]) -> PreparedGraph {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        prep::preprocess(raw, &PrepConfig::new("dyn", 3), disk).unwrap()
    }

    /// PageRank after dynamic commits must equal PageRank on a graph
    /// preprocessed from scratch with the same edges.
    fn assert_equivalent(dynamic: &DynamicGraph, full_raw: &[(u64, u64)]) {
        let fresh = prepare(full_raw);
        let cfg = EngineConfig::default().with_max_iterations(6);
        let (a, _) = algo::pagerank(dynamic.graph(), 6, &cfg).unwrap();
        let (b, _) = algo::pagerank(&fresh, 6, &cfg).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn incremental_commit_for_known_vertices() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
        let mut dg = DynamicGraph::new(prepare(&base)).unwrap();
        let extra = vec![(0u64, 2u64), (3, 1)];
        let stats = dg.add_edges(&extra).unwrap();
        assert!(!stats.rebuilt);
        assert_eq!(stats.edges_added, 2);
        assert!(stats.cells_rewritten > 0);
        assert_eq!(dg.graph().num_edges(), 6);

        let mut full = base.clone();
        full.extend(extra);
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn incremental_commit_keeps_manifest_byte_totals_current() {
        use crate::dsss::{SS_DISK_BYTES_MANIFEST_KEY, SS_RAW_BYTES_MANIFEST_KEY};
        use nxgraph_storage::EncodingPolicy;

        let base: Vec<(u64, u64)> = (0..200u64).map(|k| (k % 9, (k + 1) % 9)).collect();
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let cfg = PrepConfig::new("dyn", 3).with_encoding(EncodingPolicy::Auto);
        let g = prep::preprocess(&base, &cfg, disk).unwrap();
        let mut dg = DynamicGraph::new(g).unwrap();
        let stats = dg.add_edges(&[(0, 5), (7, 2), (3, 3)]).unwrap();
        assert!(!stats.rebuilt);

        // The recorded totals must match what is actually on disk after
        // the partial rewrite, so the reported ratio never goes stale.
        let m = dg.graph().manifest();
        let recorded: u64 = m.extra[SS_DISK_BYTES_MANIFEST_KEY].parse().unwrap();
        let p = dg.graph().num_intervals();
        let mut actual = 0u64;
        for i in 0..p {
            for j in 0..p {
                for rev in [false, true] {
                    actual += dg.graph().subshard_len(i, j, rev).unwrap();
                }
            }
        }
        assert_eq!(recorded, actual);
        let raw: u64 = m.extra[SS_RAW_BYTES_MANIFEST_KEY].parse().unwrap();
        assert!(raw > recorded, "auto-encoded graph must stay compressed");
    }

    #[test]
    fn new_vertices_trigger_rebuild() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 0)];
        let mut dg = DynamicGraph::new(prepare(&base)).unwrap();
        let extra = vec![(1u64, 99u64)]; // 99 unseen
        let stats = dg.add_edges(&extra).unwrap();
        assert!(stats.rebuilt);
        assert_eq!(dg.graph().num_vertices(), 3);
        assert_eq!(dg.id_of(99), Some(2));

        let mut full = base.clone();
        full.extend(extra);
        assert_equivalent(&dg, &full);
    }

    #[test]
    fn degrees_stay_consistent() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 0)];
        let mut dg = DynamicGraph::new(prepare(&base)).unwrap();
        dg.add_edges(&[(0, 2), (0, 1)]).unwrap();
        assert_eq!(dg.graph().out_degrees().as_slice(), &[3, 1, 1]);
    }

    #[test]
    fn raw_edges_roundtrip() {
        let base: Vec<(u64, u64)> = vec![(10, 20), (20, 30), (30, 10)];
        let dg = DynamicGraph::new(prepare(&base)).unwrap();
        let mut back = dg.raw_edges().unwrap();
        back.sort_unstable();
        let mut want = base.clone();
        want.sort_unstable();
        assert_eq!(back, want);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut dg = DynamicGraph::new(prepare(&[(0, 1)])).unwrap();
        let stats = dg.add_edges(&[]).unwrap();
        assert_eq!(stats, CommitStats { edges_added: 0, rebuilt: false, cells_rewritten: 0 });
    }

    #[test]
    fn repeated_commits_accumulate() {
        let base: Vec<(u64, u64)> = vec![(0, 1), (1, 2), (2, 0)];
        let mut dg = DynamicGraph::new(prepare(&base)).unwrap();
        let mut full = base.clone();
        for k in 0..5u64 {
            let batch = vec![(k % 3, (k + 1) % 3)];
            dg.add_edges(&batch).unwrap();
            full.extend(batch);
        }
        assert_eq!(dg.graph().num_edges() as usize, full.len());
        assert_equivalent(&dg, &full);
    }
}
