//! Engine error type.

use std::fmt;

use nxgraph_storage::StorageError;

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors surfaced by preprocessing and the update engines.
#[derive(Debug)]
pub enum EngineError {
    /// Failure in the storage substrate (disk I/O, corrupt files, budget).
    Storage(StorageError),
    /// The graph/config combination is invalid (e.g. P = 0, vertex id out
    /// of range, SPU requested without enough memory).
    Invalid(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage error: {e}"),
            EngineError::Invalid(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            EngineError::Invalid(_) => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EngineError::Invalid("P must be positive".into());
        assert!(e.to_string().contains("P must be positive"));
        let e: EngineError = StorageError::NotFound("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
