//! The analytic I/O model — Table II and Fig 6 of the paper.
//!
//! Closed-form per-iteration disk traffic for each update strategy, in the
//! paper's notation: `n` vertices, `m` edges, `Ba` bytes per attribute,
//! `Bv` bytes per vertex id, `Be` bytes per edge, `d` the average in-degree
//! of the destinations inside hub-bearing sub-shards, and `B_M` the memory
//! budget.
//!
//! | strategy         | `Bread`                                            | `Bwrite` |
//! |------------------|----------------------------------------------------|----------|
//! | TurboGraph-like  | `m·Be + 2(n·Ba)²/B_M + n·Ba`                       | `n·Ba`   |
//! | SPU              | `max(0, m·Be + 2n·Ba − B_M)`                       | `0`      |
//! | DPU              | `m·Be + m(Ba+Bv)/d + n·Ba`                         | `m(Ba+Bv)/d + n·Ba` |
//! | MPU              | interpolates SPU ↔ DPU with `x = 1 − B_M/(2n·Ba)`  | see below |
//!
//! These functions power the `table2` and `fig6` benchmark targets and are
//! property-tested for the paper's claims: MPU ≤ TurboGraph-like
//! everywhere, MPU → SPU as `B_M → 2n·Ba`, MPU → DPU as `B_M → 0`.

/// Model parameters (all in bytes / counts; `f64` for closed-form math).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoParams {
    /// Number of vertices `n`.
    pub n: f64,
    /// Number of edges `m`.
    pub m: f64,
    /// Bytes per vertex attribute `Ba`.
    pub ba: f64,
    /// Bytes per vertex id `Bv`.
    pub bv: f64,
    /// Bytes per edge `Be`.
    pub be: f64,
    /// Average in-degree of hub destinations `d`.
    pub d: f64,
}

impl IoParams {
    /// The Yahoo-web configuration used for Fig 6 (§III-C): n = 7.2×10⁸,
    /// m = 6.63×10⁹, 8-byte attributes, 4-byte ids, ~4-byte edges, d = 15.
    pub fn yahoo_web() -> Self {
        Self {
            n: 7.2e8,
            m: 6.63e9,
            ba: 8.0,
            bv: 4.0,
            be: 4.0,
            d: 15.0,
        }
    }

    /// `2·n·Ba`: the budget at which SPU becomes valid and MPU ≡ SPU.
    pub fn spu_threshold(&self) -> f64 {
        2.0 * self.n * self.ba
    }

    /// Hub traffic term `m·(Ba+Bv)/d`.
    fn hub_bytes(&self) -> f64 {
        self.m * (self.ba + self.bv) / self.d
    }

    /// The residency fraction shortfall `1 − B_M/(2n·Ba)`, clamped to
    /// `[0, 1]`.
    fn shortfall(&self, budget: f64) -> f64 {
        (1.0 - budget / self.spu_threshold()).clamp(0.0, 1.0)
    }
}

/// SPU bytes read per iteration.
pub fn spu_read(p: &IoParams, budget: f64) -> f64 {
    (p.m * p.be + p.spu_threshold() - budget).max(0.0)
}

/// SPU bytes written per iteration (none — intervals never leave memory).
pub fn spu_write(_p: &IoParams, _budget: f64) -> f64 {
    0.0
}

/// DPU bytes read per iteration.
pub fn dpu_read(p: &IoParams, _budget: f64) -> f64 {
    p.m * p.be + p.hub_bytes() + p.n * p.ba
}

/// DPU bytes written per iteration.
pub fn dpu_write(p: &IoParams, _budget: f64) -> f64 {
    p.hub_bytes() + p.n * p.ba
}

/// MPU bytes read per iteration (§III-B3).
pub fn mpu_read(p: &IoParams, budget: f64) -> f64 {
    let x = p.shortfall(budget);
    p.m * p.be + x * x * p.hub_bytes() + x * p.n * p.ba
}

/// MPU bytes written per iteration.
pub fn mpu_write(p: &IoParams, budget: f64) -> f64 {
    let x = p.shortfall(budget);
    x * x * p.hub_bytes() + x * p.n * p.ba
}

/// TurboGraph-like bytes read per iteration (§III-C): the strategy reloads
/// every source interval for every destination interval, with the optimal
/// partitioning `P = 2n·Ba/B_M`.
pub fn turbograph_read(p: &IoParams, budget: f64) -> f64 {
    let budget = budget.max(1.0);
    p.m * p.be + 2.0 * (p.n * p.ba) * (p.n * p.ba) / budget + p.n * p.ba
}

/// TurboGraph-like bytes written per iteration.
pub fn turbograph_write(p: &IoParams, _budget: f64) -> f64 {
    p.n * p.ba
}

/// Total (read + write) traffic for a strategy by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelStrategy {
    /// Single-Phase Update.
    Spu,
    /// Double-Phase Update.
    Dpu,
    /// Mixed-Phase Update.
    Mpu,
    /// The TurboGraph/GridGraph-style alternative.
    TurboGraphLike,
}

/// Total modeled traffic per iteration.
pub fn total(strategy: ModelStrategy, p: &IoParams, budget: f64) -> f64 {
    match strategy {
        ModelStrategy::Spu => spu_read(p, budget) + spu_write(p, budget),
        ModelStrategy::Dpu => dpu_read(p, budget) + dpu_write(p, budget),
        ModelStrategy::Mpu => mpu_read(p, budget) + mpu_write(p, budget),
        ModelStrategy::TurboGraphLike => {
            turbograph_read(p, budget) + turbograph_write(p, budget)
        }
    }
}

/// The Fig 6 curve: ratio of MPU total I/O to TurboGraph-like total I/O at
/// a given budget. Always ≤ 1 ("MPU always outperforms TurboGraph-like
/// strategy").
pub fn mpu_vs_turbograph_ratio(p: &IoParams, budget: f64) -> f64 {
    total(ModelStrategy::Mpu, p, budget) / total(ModelStrategy::TurboGraphLike, p, budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn yahoo() -> IoParams {
        IoParams::yahoo_web()
    }

    #[test]
    fn mpu_interpolates_spu_and_dpu() {
        let p = yahoo();
        // At zero budget MPU ≡ DPU.
        assert!((mpu_read(&p, 0.0) - dpu_read(&p, 0.0)).abs() < 1.0);
        assert!((mpu_write(&p, 0.0) - dpu_write(&p, 0.0)).abs() < 1.0);
        // At the SPU threshold MPU sheds all hub/interval traffic.
        let t = p.spu_threshold();
        assert!((mpu_read(&p, t) - p.m * p.be).abs() < 1.0);
        assert_eq!(mpu_write(&p, t), 0.0);
    }

    #[test]
    fn spu_read_hits_zero_with_enough_memory() {
        let p = yahoo();
        let everything = p.m * p.be + p.spu_threshold();
        assert_eq!(spu_read(&p, everything), 0.0);
        assert!(spu_read(&p, everything - 10.0) > 0.0);
    }

    #[test]
    fn dpu_is_budget_independent() {
        let p = yahoo();
        assert_eq!(dpu_read(&p, 0.0), dpu_read(&p, 1e12));
        assert_eq!(dpu_write(&p, 0.0), dpu_write(&p, 1e12));
    }

    #[test]
    fn fig6_mpu_always_beats_turbograph() {
        // The paper's claim: across the whole 0‥2nBa budget range the
        // ratio stays below 1.
        let p = yahoo();
        let t = p.spu_threshold();
        for k in 1..=100 {
            let budget = t * k as f64 / 100.0;
            let r = mpu_vs_turbograph_ratio(&p, budget);
            assert!(r < 1.0, "budget {budget}: ratio {r}");
            assert!(r > 0.0);
        }
    }

    #[test]
    fn fig6_ratio_decreases_then_recovers() {
        // Fig 6 shows the ratio dipping well below 1 in the mid-range.
        let p = yahoo();
        let t = p.spu_threshold();
        let mid = mpu_vs_turbograph_ratio(&p, t * 0.3);
        assert!(mid < 0.8, "mid-range ratio should dip: {mid}");
    }

    #[test]
    fn mpu_monotone_decreasing_in_budget() {
        let p = yahoo();
        let t = p.spu_threshold();
        let mut last = f64::INFINITY;
        for k in 0..=50 {
            let total = total(ModelStrategy::Mpu, &p, t * k as f64 / 50.0);
            assert!(total <= last + 1.0);
            last = total;
        }
    }

    #[test]
    fn spu_dominates_everyone_when_valid() {
        let p = yahoo();
        let budget = p.spu_threshold() * 1.1;
        let spu = total(ModelStrategy::Spu, &p, budget);
        for s in [
            ModelStrategy::Dpu,
            ModelStrategy::Mpu,
            ModelStrategy::TurboGraphLike,
        ] {
            assert!(spu <= total(s, &p, budget), "{s:?}");
        }
    }
}
