//! Snapshot-isolated concurrent query serving.
//!
//! A [`GraphService`] shares one on-disk graph between a writer — the
//! wrapped [`DynamicGraph`], still committing `add_edges` batches and
//! running background maintenance — and any number of concurrent readers.
//! Each reader runs against a [`Snapshot`]: a pinned manifest generation
//! with its own [`PreparedGraph`] handle, scratch-file namespace and
//! zero-copy loaders. Pinning is refcounted per epoch in the store's
//! [`StoreShared`] state, so a file superseded by a later commit is
//! reclaimed only once the last snapshot that could still read it drops
//! — generation-refcounted reclamation instead of the old single-owner
//! "refresh, then sweep".
//!
//! Admission control keeps the service honest under load: at most
//! [`ServeConfig::max_concurrent`] queries run at once, and each admitted
//! query carves [`ServeConfig::query_budget`] bytes out of a shared
//! [`MemoryBudget`] pool as an RAII lease ([`MemoryBudget::carve`]).
//! A query that cannot get a slot or a lease is rejected with a typed
//! [`ServeError`] — never queued unboundedly, never silently degraded.
//! The carved lease doubles as the query's engine memory budget, so
//! strategy selection (SPU/DPU/MPU) sees exactly the bytes the query was
//! granted.
//!
//! The service requires [`UpdateMode::DeltaLog`]: rewrite-mode commits
//! clobber chainless generation-0 bases *in place*, which no pin can
//! protect against. Full rebuilds (batches introducing new vertices)
//! remain possible but exclusive — they wait for every live snapshot to
//! drop ([`StoreShared::begin_exclusive`]) before rewriting prep-time
//! names.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use nxgraph_storage::{BufferPool, MemoryBudget, StorageError};

use crate::algo::{self, PersonalizedPageRank, Sssp};
use crate::dsss::{PreparedGraph, ScratchTag};
use crate::dynamic::{CommitStats, DynamicGraph, UpdateMode};
use crate::engine::{self, EngineConfig, Strategy};
use crate::error::{EngineError, EngineResult};
use crate::maintain::StoreShared;
use crate::program::Direction;
use crate::types::VertexId;

/// Process-wide scratch-tag counter; every snapshot gets a fresh
/// namespace so concurrent DPU/MPU queries on one disk never collide.
static NEXT_SCRATCH: AtomicU64 = AtomicU64::new(1);

/// A pinned, immutable view of the graph at one committed epoch.
///
/// Holds its own [`PreparedGraph`] handle built from the pinned manifest
/// (sharing the store's verify-once checksum cache) with a unique
/// scratch-file tag. While the snapshot lives, no file its manifest
/// references is reclaimed — commits queue superseded files against the
/// epoch refcounts instead of sweeping. Dropping the snapshot removes its
/// scratch files, releases the pin and reclaims whatever just became
/// safe.
pub struct Snapshot {
    graph: PreparedGraph,
    shared: Arc<StoreShared>,
    epoch: u64,
}

impl Snapshot {
    /// Pin the latest committed epoch of `shared`. Blocks while a rebuild
    /// is rewriting prep-time names (the one commit that cannot coexist
    /// with readers).
    pub(crate) fn pin(shared: &Arc<StoreShared>) -> EngineResult<Self> {
        let (manifest, out_degrees, epoch) = shared.pin_latest();
        let checksums = Arc::clone(&shared.checksums.lock());
        let built = PreparedGraph::from_parts_reusing(
            Arc::clone(&shared.disk),
            manifest,
            out_degrees,
            checksums,
            BufferPool::new(),
        );
        let mut graph = match built {
            Ok(g) => g,
            Err(e) => {
                shared.unpin(epoch);
                shared.reclaim();
                return Err(e);
            }
        };
        graph.set_scratch_tag(ScratchTag::numbered(
            NEXT_SCRATCH.fetch_add(1, Ordering::Relaxed),
        ));
        Ok(Self {
            graph,
            shared: Arc::clone(shared),
            epoch,
        })
    }

    /// The pinned graph handle. Safe to read from any thread for as long
    /// as the snapshot lives, regardless of concurrent commits.
    pub fn graph(&self) -> &PreparedGraph {
        &self.graph
    }

    /// The committed epoch this snapshot pins.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// How many commits the store has moved past this snapshot.
    pub fn lag(&self) -> u64 {
        self.shared
            .state
            .lock()
            .epoch
            .saturating_sub(self.epoch)
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        // Scratch files are this snapshot's alone (unique tag); remove
        // them before releasing the pin so they never outlive it.
        if let Some(prefixes) = self.graph.scratch_tag().owned_prefixes() {
            for name in self.shared.disk.list() {
                if prefixes.iter().any(|p| name.starts_with(p.as_str())) {
                    let _ = self.shared.disk.remove(&name);
                }
            }
        }
        self.shared.unpin(self.epoch);
        self.shared.reclaim();
    }
}

/// Admission and execution knobs for a [`GraphService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Queries allowed in flight at once; an arrival past this is
    /// rejected [`ServeError::Busy`].
    pub max_concurrent: usize,
    /// Bytes carved from the shared pool per admitted query — also the
    /// query's engine memory budget (governs SPU/DPU/MPU selection).
    pub query_budget: u64,
    /// Total bytes of the shared query-memory pool.
    pub total_budget: u64,
    /// Worker threads per query (results are bitwise-identical at any
    /// count; serving favours narrow queries over wide ones).
    pub threads: usize,
    /// Update strategy for queries; `Auto` derives from `query_budget`.
    pub strategy: Strategy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_concurrent: 4,
            query_budget: 64 << 20,
            total_budget: u64::MAX,
            threads: 1,
            strategy: Strategy::Auto,
        }
    }
}

/// A point query against one snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Personalised PageRank from a single seed; top-`k` (rank, id)
    /// results, ranked descending with ascending-id ties.
    PprFromSeed {
        seed: VertexId,
        iterations: usize,
        k: usize,
    },
    /// BFS depth of `target` from `root` (`None` when unreachable).
    Bfs { root: VertexId, target: VertexId },
    /// Shortest-path distance `root → target` under the deterministic
    /// hash-weight oracle (`None` when unreachable).
    Sssp { root: VertexId, target: VertexId },
    /// Global PageRank, top-`k` vertices by rank.
    PageRankTopK { iterations: usize, k: usize },
}

/// A query result.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// Top-k `(vertex, score)` pairs (PPR, PageRank).
    Ranked(Vec<(VertexId, f64)>),
    /// BFS depth (`None` = unreachable).
    Depth(Option<u32>),
    /// SSSP distance (`None` = unreachable).
    Distance(Option<f64>),
}

impl QueryOutput {
    /// FNV-1a fingerprint over the exact bits of the result — two outputs
    /// are bitwise-identical iff their fingerprints match, which is how
    /// the isolation tests compare a pinned snapshot's answer against a
    /// fresh one-shot run.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut mix = |w: u64| {
            for b in w.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        match self {
            QueryOutput::Ranked(pairs) => {
                mix(1);
                for (v, s) in pairs {
                    mix(*v as u64);
                    mix(s.to_bits());
                }
            }
            QueryOutput::Depth(d) => {
                mix(2);
                mix(d.map_or(u64::MAX, |d| d as u64));
            }
            QueryOutput::Distance(d) => {
                mix(3);
                mix(d.map_or(u64::MAX, f64::to_bits));
            }
        }
        h
    }
}

/// Why a query was not served.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// All `max_concurrent` slots are taken.
    Busy { in_flight: usize, max: usize },
    /// The shared memory pool could not cover the query's carve.
    OutOfMemory { requested: u64, available: u64 },
    /// The query was admitted but failed while running.
    Engine(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Busy { in_flight, max } => {
                write!(f, "busy: {in_flight} of {max} query slots in use")
            }
            ServeError::OutOfMemory {
                requested,
                available,
            } => write!(
                f,
                "out of memory: query needs {requested} bytes, pool has {available}"
            ),
            ServeError::Engine(e) => write!(f, "query failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Running totals of a service's admission and execution outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Queries that passed admission (slot + budget carve).
    pub admitted: u64,
    /// Rejections for lack of a concurrency slot.
    pub rejected_busy: u64,
    /// Rejections for lack of pool memory.
    pub rejected_budget: u64,
    /// Admitted queries that returned a result.
    pub completed: u64,
    /// Admitted queries that failed in the engine.
    pub errors: u64,
    /// Largest commit lag any query observed at completion (how many
    /// epochs the store advanced while the query ran on its pin).
    pub max_snapshot_lag: u64,
}

#[derive(Default)]
struct Counters {
    admitted: AtomicU64,
    rejected_busy: AtomicU64,
    rejected_budget: AtomicU64,
    completed: AtomicU64,
    errors: AtomicU64,
    max_snapshot_lag: AtomicU64,
}

impl Counters {
    fn note_lag(&self, lag: u64) {
        self.max_snapshot_lag.fetch_max(lag, Ordering::Relaxed);
    }

    fn snapshot(&self) -> ServeStats {
        ServeStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_busy: self.rejected_busy.load(Ordering::Relaxed),
            rejected_budget: self.rejected_budget.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            max_snapshot_lag: self.max_snapshot_lag.load(Ordering::Relaxed),
        }
    }
}

/// An admitted query's slot + memory lease; both release on drop (even
/// across a panic unwound out of the engine).
struct Permit<'a> {
    service: &'a GraphService,
    lease: nxgraph_storage::BudgetLease,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.service.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// An admission hold: occupies query slots without running anything, so
/// an operator can drain or throttle the service (and stress harnesses
/// can exercise the [`ServeError::Busy`] path deterministically rather
/// than by racing the scheduler). Slots release on drop; a hold is not
/// counted as an admission.
pub struct SlotHold<'a> {
    service: &'a GraphService,
    n: usize,
}

impl Drop for SlotHold<'_> {
    fn drop(&mut self) {
        self.service.in_flight.fetch_sub(self.n, Ordering::AcqRel);
    }
}

/// A multi-tenant query service over one shared dynamic graph.
///
/// Readers call [`run_query`](Self::run_query) (or pin a raw
/// [`snapshot`](Self::snapshot)); writers go through
/// [`add_edges`](Self::add_edges) / [`with_writer`](Self::with_writer),
/// which serialise on an internal mutex. Reads never take that mutex —
/// they pin from the shared store state directly, so a slow commit never
/// blocks admission.
pub struct GraphService {
    writer: parking_lot::Mutex<DynamicGraph>,
    shared: Arc<StoreShared>,
    budget: Arc<MemoryBudget>,
    config: ServeConfig,
    in_flight: AtomicUsize,
    counters: Counters,
}

impl GraphService {
    /// Serve `graph` under `config`.
    ///
    /// Fails with [`EngineError::Invalid`] when the graph commits in
    /// [`UpdateMode::Rewrite`] — rewrite clobbers generation-0 bases in
    /// place, which breaks every pinned reader by construction.
    pub fn new(graph: DynamicGraph, config: ServeConfig) -> EngineResult<Self> {
        if graph.config().mode == UpdateMode::Rewrite {
            return Err(EngineError::Invalid(
                "serving requires delta-log mode: rewrite commits replace \
                 generation-0 blobs in place, defeating snapshot pins"
                    .into(),
            ));
        }
        let shared = Arc::clone(graph.shared());
        let budget = Arc::new(MemoryBudget::new(config.total_budget));
        Ok(Self {
            writer: parking_lot::Mutex::new(graph),
            shared,
            budget,
            config,
            in_flight: AtomicUsize::new(0),
            counters: Counters::default(),
        })
    }

    /// The shared query-memory pool (tests assert carve accounting
    /// through this).
    pub fn budget(&self) -> &Arc<MemoryBudget> {
        &self.budget
    }

    /// Admission + execution totals so far.
    pub fn stats(&self) -> ServeStats {
        self.counters.snapshot()
    }

    /// Queries currently running.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Occupy `n` concurrency slots without running queries — a drain or
    /// throttle hold. While held, at most `max_concurrent - n` queries
    /// can be admitted. Fails with [`ServeError::Busy`] (not counted as
    /// a query rejection) if fewer than `n` slots are currently free.
    pub fn hold_slots(&self, n: usize) -> Result<SlotHold<'_>, ServeError> {
        let mut cur = self.in_flight.load(Ordering::Acquire);
        loop {
            if cur + n > self.config.max_concurrent {
                return Err(ServeError::Busy {
                    in_flight: cur,
                    max: self.config.max_concurrent,
                });
            }
            match self
                .in_flight
                .compare_exchange(cur, cur + n, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return Ok(SlotHold { service: self, n }),
                Err(now) => cur = now,
            }
        }
    }

    /// Live reader pins at `epoch` (owner + snapshots) — the refcount the
    /// no-sweep-while-pinned contract rests on.
    pub fn pin_count(&self, epoch: u64) -> usize {
        self.shared.pin_count(epoch)
    }

    /// The latest committed epoch of the underlying store.
    pub fn current_epoch(&self) -> u64 {
        self.shared.state.lock().epoch
    }

    /// Pin a read snapshot of the latest committed state, bypassing
    /// admission control (callers running their own engines budget
    /// themselves).
    pub fn snapshot(&self) -> EngineResult<Snapshot> {
        Snapshot::pin(&self.shared)
    }

    /// Commit a batch of edges through the writer. Serialises with other
    /// writers only; concurrent queries keep running on their pins.
    pub fn add_edges(&self, batch: &[(u64, u64)]) -> EngineResult<CommitStats> {
        self.writer.lock().add_edges(batch)
    }

    /// Run `f` against the writer (compaction, scrubs, maintenance
    /// coordination). Held for the duration of `f`; keep it short.
    pub fn with_writer<T>(&self, f: impl FnOnce(&mut DynamicGraph) -> T) -> T {
        f(&mut self.writer.lock())
    }

    /// Tear the service down, returning the writer. Any still-live
    /// snapshot keeps its pin (the store state is shared, not owned by
    /// the service).
    pub fn into_inner(self) -> DynamicGraph {
        self.writer.into_inner()
    }

    /// Admit, pin, execute: the full serving path for one query.
    ///
    /// Rejections ([`ServeError::Busy`], [`ServeError::OutOfMemory`]) are
    /// immediate — nothing queues. An admitted query pins the latest
    /// commit and runs entirely on that snapshot; concurrent commits
    /// advance the store underneath it without affecting the result.
    pub fn run_query(&self, query: &Query) -> Result<QueryOutput, ServeError> {
        let permit = self.admit()?;
        let snap = Snapshot::pin(&self.shared).map_err(|e| {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
            ServeError::Engine(e.to_string())
        })?;
        let budget = permit.lease.bytes();
        let out = self.execute(&snap, query, budget);
        self.counters.note_lag(snap.lag());
        drop(snap);
        drop(permit);
        match out {
            Ok(o) => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                Ok(o)
            }
            Err(e) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Engine(e.to_string()))
            }
        }
    }

    /// Claim a concurrency slot and a budget lease, or reject.
    fn admit(&self) -> Result<Permit<'_>, ServeError> {
        let mut cur = self.in_flight.load(Ordering::Acquire);
        loop {
            if cur >= self.config.max_concurrent {
                self.counters.rejected_busy.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Busy {
                    in_flight: cur,
                    max: self.config.max_concurrent,
                });
            }
            match self.in_flight.compare_exchange(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        match self.budget.carve(self.config.query_budget) {
            Ok(lease) => {
                self.counters.admitted.fetch_add(1, Ordering::Relaxed);
                Ok(Permit {
                    service: self,
                    lease,
                })
            }
            Err(e) => {
                self.in_flight.fetch_sub(1, Ordering::AcqRel);
                self.counters
                    .rejected_budget
                    .fetch_add(1, Ordering::Relaxed);
                let (requested, available) = match e {
                    StorageError::BudgetExceeded {
                        requested,
                        available,
                    } => (requested, available),
                    _ => (self.config.query_budget, 0),
                };
                Err(ServeError::OutOfMemory {
                    requested,
                    available,
                })
            }
        }
    }

    /// The engine configuration an admitted query runs under.
    fn query_config(&self, budget: u64) -> EngineConfig {
        let mut cfg = EngineConfig::default().with_threads(self.config.threads.max(1));
        cfg.memory_budget = budget;
        cfg.strategy = self.config.strategy;
        cfg
    }

    fn execute(&self, snap: &Snapshot, query: &Query, budget: u64) -> EngineResult<QueryOutput> {
        let g = snap.graph();
        let cfg = self.query_config(budget);
        match *query {
            Query::PprFromSeed {
                seed,
                iterations,
                k,
            } => {
                if seed >= g.num_vertices() {
                    return Err(EngineError::Invalid(format!(
                        "ppr seed {seed} out of range ({} vertices)",
                        g.num_vertices()
                    )));
                }
                let prog = PersonalizedPageRank::new([seed], Arc::clone(g.out_degrees()));
                let mut cfg = cfg;
                cfg.max_iterations = iterations;
                cfg.direction = Direction::Forward;
                let (ranks, _) = engine::run(g, &prog, &cfg)?;
                Ok(QueryOutput::Ranked(top_k(&ranks, k)))
            }
            Query::Bfs { root, target } => {
                let (depths, _) = algo::bfs(g, root, &cfg)?;
                let d = depths.get(target as usize).copied();
                Ok(QueryOutput::Depth(d.filter(|&d| d != u32::MAX)))
            }
            Query::Sssp { root, target } => {
                let prog = Sssp::new(root, algo::sssp::hash_weights(1.0, 10.0));
                let mut cfg = cfg;
                cfg.direction = Direction::Forward;
                cfg.max_iterations = cfg.max_iterations.max(g.num_vertices() as usize + 1);
                let (dist, _) = engine::run(g, &prog, &cfg)?;
                let d = dist.get(target as usize).copied();
                Ok(QueryOutput::Distance(d.filter(|d| d.is_finite())))
            }
            Query::PageRankTopK { iterations, k } => {
                let (ranks, _) = algo::pagerank(g, iterations, &cfg)?;
                Ok(QueryOutput::Ranked(top_k(&ranks, k)))
            }
        }
    }
}

/// Top-`k` vertices by score, descending, ascending-id ties — fully
/// deterministic (`total_cmp`, no NaN special cases).
fn top_k(scores: &[f64], k: usize) -> Vec<(VertexId, f64)> {
    let mut ids: Vec<u32> = (0..scores.len() as u32).collect();
    ids.sort_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(a.cmp(&b))
    });
    ids.truncate(k);
    ids.into_iter().map(|v| (v, scores[v as usize])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::DynamicConfig;
    use crate::prep::{preprocess, PrepConfig};
    use nxgraph_storage::{Disk, MemDisk};

    fn service(cfg: ServeConfig) -> GraphService {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let edges: Vec<(u64, u64)> = crate::fig1_example_edges()
            .into_iter()
            .map(|(s, d)| (s as u64, d as u64))
            .collect();
        let g = preprocess(&edges, &PrepConfig::new("fig1", 4), disk).unwrap();
        let dg = DynamicGraph::new(g).unwrap();
        GraphService::new(dg, cfg).unwrap()
    }

    #[test]
    fn rewrite_mode_is_rejected() {
        let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let edges: Vec<(u64, u64)> = crate::fig1_example_edges()
            .into_iter()
            .map(|(s, d)| (s as u64, d as u64))
            .collect();
        let g = preprocess(&edges, &PrepConfig::new("fig1", 4), disk).unwrap();
        let dg = DynamicGraph::with_config(g, DynamicConfig::rewrite()).unwrap();
        assert!(GraphService::new(dg, ServeConfig::default()).is_err());
    }

    #[test]
    fn queries_answer_and_count() {
        let svc = service(ServeConfig::default());
        let out = svc
            .run_query(&Query::Bfs { root: 0, target: 6 })
            .unwrap();
        assert_eq!(out, QueryOutput::Depth(Some(1)));
        let out = svc
            .run_query(&Query::PageRankTopK {
                iterations: 5,
                k: 3,
            })
            .unwrap();
        match out {
            QueryOutput::Ranked(ref pairs) => assert_eq!(pairs.len(), 3),
            ref other => panic!("unexpected output {other:?}"),
        }
        let stats = svc.stats();
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.errors, 0);
        assert_eq!(svc.in_flight(), 0);
        assert_eq!(svc.budget().used(), 0);
    }

    #[test]
    fn busy_rejection_is_typed_and_counted() {
        let svc = service(ServeConfig {
            max_concurrent: 0,
            ..ServeConfig::default()
        });
        let err = svc
            .run_query(&Query::Bfs { root: 0, target: 1 })
            .unwrap_err();
        assert_eq!(err, ServeError::Busy { in_flight: 0, max: 0 });
        assert_eq!(svc.stats().rejected_busy, 1);
    }

    #[test]
    fn slot_hold_blocks_admission_until_dropped() {
        let svc = service(ServeConfig::default());
        let max = ServeConfig::default().max_concurrent;
        let hold = svc.hold_slots(max).unwrap();
        // Slots are full: a second hold and a real query both bounce.
        assert!(matches!(svc.hold_slots(1), Err(ServeError::Busy { .. })));
        let err = svc
            .run_query(&Query::Bfs { root: 0, target: 1 })
            .unwrap_err();
        assert!(matches!(err, ServeError::Busy { .. }));
        assert_eq!(svc.stats().rejected_busy, 1);
        drop(hold);
        assert_eq!(svc.in_flight(), 0);
        svc.run_query(&Query::Bfs { root: 0, target: 1 }).unwrap();
        assert_eq!(svc.stats().admitted, 1);
    }

    #[test]
    fn budget_rejection_is_typed_and_counted() {
        let svc = service(ServeConfig {
            query_budget: 1 << 20,
            total_budget: 1 << 10,
            ..ServeConfig::default()
        });
        let err = svc
            .run_query(&Query::Bfs { root: 0, target: 1 })
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::OutOfMemory {
                requested: 1 << 20,
                available: 1 << 10
            }
        );
        assert_eq!(svc.stats().rejected_budget, 1);
        // The failed carve released the slot.
        assert_eq!(svc.in_flight(), 0);
    }

    #[test]
    fn snapshot_pins_and_unpins_the_epoch() {
        let svc = service(ServeConfig::default());
        let snap = svc.snapshot().unwrap();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.lag(), 0);
        // Owner pin + this snapshot.
        assert_eq!(svc.pin_count(0), 2);
        drop(snap);
        assert_eq!(svc.pin_count(0), 1);
    }

    #[test]
    fn fingerprints_distinguish_bits() {
        let a = QueryOutput::Distance(Some(1.0));
        let b = QueryOutput::Distance(Some(1.0 + f64::EPSILON));
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), QueryOutput::Distance(Some(1.0)).fingerprint());
    }

    #[test]
    fn top_k_is_deterministic_on_ties() {
        let scores = vec![0.5, 0.25, 0.5, 0.1];
        assert_eq!(top_k(&scores, 3), vec![(0, 0.5), (2, 0.5), (1, 0.25)]);
    }
}
