//! NXgraph core engine.
//!
//! A from-scratch Rust implementation of *NXgraph: An Efficient Graph
//! Processing System on a Single Machine* (Chi et al., ICDE 2016).
//!
//! The system stores a directed graph as `P` vertex **intervals** and
//! `P²` edge **sub-shards**; sub-shard `SS(i→j)` holds every edge whose
//! source lies in interval `Iᵢ` and destination in interval `Iⱼ`, sorted by
//! destination then source (the **Destination-Sorted Sub-Shard** structure,
//! §II-A/§III-A). Destination-sorting gives each worker thread exclusive
//! ownership of a destination range, so updates need no locks or atomics
//! (§III-D), and lets edges be stored in a compressed sparse format.
//!
//! Three update strategies trade memory for I/O (§III-B):
//!
//! * [`engine::spu`] — **Single-Phase Update**: every interval lives in
//!   memory as a ping-pong pair; sub-shards stream through; minimum I/O.
//! * [`engine::dpu`] — **Double-Phase Update**: fully disk-resident; a
//!   *ToHub* pass streams intervals row-by-row writing incremental hubs, a
//!   *FromHub* pass folds hubs column-by-column back into intervals.
//! * [`engine::mpu`] — **Mixed-Phase Update**: `Q` of `P` intervals stay
//!   resident (SPU-style); the rest use hubs (DPU-style). Chosen
//!   automatically from the memory budget ([`engine::select`]).
//!
//! Vertex computations (PageRank, BFS, WCC, SCC, …) implement
//! [`program::VertexProgram`]; [`algo`] ships the paper's evaluation suite.
//! [`iomodel`] reproduces the closed-form I/O bounds of Table II and the
//! MPU-vs-TurboGraph ratio of Fig 6. [`mod@reference`] contains single-threaded
//! in-memory oracles used by the test-suite to validate every engine.

pub mod algo;
pub mod dsss;
pub mod dynamic;
pub mod engine;
pub mod error;
pub mod iomodel;
pub mod maintain;
pub mod parallel;
pub mod prep;
pub mod program;
pub mod reference;
pub mod serve;
pub mod types;

pub use dsss::PreparedGraph;
pub use dynamic::{CommitStats, CompactReport, Compaction, DynamicConfig, DynamicGraph, UpdateMode};
pub use engine::{EngineConfig, RunStats, Strategy, SyncMode};
pub use error::{EngineError, EngineResult};
pub use maintain::{MaintStats, MaintenanceThread, ScrubReport};
pub use prep::{preprocess, PrepConfig};
pub use program::VertexProgram;
pub use serve::{
    GraphService, Query, QueryOutput, ServeConfig, ServeError, ServeStats, SlotHold, Snapshot,
};
pub use types::{Attr, VertexId};

/// The example graph of Fig 1 in the paper (7 vertices, 14 edges), used
/// throughout the test-suite.
///
/// Edges are returned as dense `(src, dst)` pairs.
pub fn fig1_example_edges() -> Vec<(VertexId, VertexId)> {
    vec![
        // Shard S1 (dst ∈ {0,1}): SS2.1: 3→0, 2→1, 3→1. SS3.1: 4→1. SS4.1: 6→1.
        (3, 0),
        (2, 1),
        (3, 1),
        (4, 1),
        (6, 1),
        // Shard S2 (dst ∈ {2,3}): SS1.2: 1→2, 0→3, 1→3. SS2.2: 3→2. SS3.2: 5→2, 4→3, 5→3.
        (1, 2),
        (0, 3),
        (1, 3),
        (3, 2),
        (5, 2),
        (4, 3),
        (5, 3),
        // Shard S3 (dst ∈ {4,5}): SS1.3: 1→4, 0→5. SS2.3: 3→4, 3→5. SS3.3: 5→4, 4→5. SS4.3: 6→4.
        (1, 4),
        (0, 5),
        (3, 4),
        (3, 5),
        (5, 4),
        (4, 5),
        (6, 4),
        // Shard S4 (dst = 6): SS1.4: 0→6. SS3.4: 4→6.
        (0, 6),
        (4, 6),
    ]
}
