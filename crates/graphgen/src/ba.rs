//! Barabási–Albert preferential attachment generator.
//!
//! Produces graphs with power-law *in*-degree (every new vertex attaches to
//! `m_attach` existing vertices chosen proportionally to degree). Used for
//! workloads where hub structure matters but the R-MAT quadrant skew is not
//! wanted, and to diversify the property-test corpus.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::RawEdge;

/// Generate a Barabási–Albert graph with `n` vertices where each vertex
/// after the first attaches to `m_attach` earlier vertices.
///
/// Edges are directed from the new vertex to its chosen targets; hubs thus
/// accumulate large *in*-degree, the quantity that drives the paper's hub
/// parameter `d`.
pub fn generate(n: u64, m_attach: usize, seed: u64) -> Vec<RawEdge> {
    assert!(n >= 2, "need at least two vertices");
    assert!(m_attach >= 1, "attachment count must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    // `targets` holds one entry per edge endpoint, so sampling uniformly
    // from it is sampling proportional to degree.
    let mut endpoints: Vec<u64> = vec![0];
    let mut edges = Vec::with_capacity((n as usize - 1) * m_attach);
    for v in 1..n {
        let picks = m_attach.min(v as usize);
        // BTreeSet keeps iteration (and therefore output) deterministic.
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < picks {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            chosen.insert(t);
        }
        for t in chosen {
            edges.push(RawEdge::new(v, t));
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let a = generate(200, 3, 11);
        let b = generate(200, 3, 11);
        assert_eq!(a, b);
        // First vertex attaches to fewer when fewer exist: v=1 picks 1, v=2 picks 2.
        let expected = 1 + 2 + 197 * 3;
        assert_eq!(a.len(), expected);
    }

    #[test]
    fn in_degree_is_skewed() {
        let edges = generate(2000, 2, 5);
        let mut in_deg = std::collections::HashMap::new();
        for e in &edges {
            *in_deg.entry(e.dst).or_insert(0usize) += 1;
        }
        let max = in_deg.values().copied().max().unwrap();
        let mean = edges.len() as f64 / in_deg.len() as f64;
        assert!(max as f64 > 10.0 * mean, "max {max} mean {mean}");
    }

    #[test]
    fn edges_point_backwards() {
        let edges = generate(100, 2, 1);
        for e in &edges {
            assert!(e.dst < e.src, "BA edges go from new to old: {e:?}");
        }
    }
}
