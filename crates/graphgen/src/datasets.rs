//! Dataset presets mirroring the paper's Table III at reduced scale.
//!
//! | Paper dataset | Vertices | Edges  | Stand-in                                    |
//! |---------------|----------|--------|---------------------------------------------|
//! | LiveJournal   | 4.85 M   | 69 M   | R-MAT, scale 16, ef 14 (same m/n ≈ 14)      |
//! | Twitter       | 41.7 M   | 1.47 B | R-MAT, scale 18, ef 35 (same m/n ≈ 35)      |
//! | Yahoo-web     | 720 M    | 6.64 B | R-MAT, scale 20, ef 9, sparse index space   |
//! | delaunay_nXX  | 2^XX     | ~3·2^XX| grid mesh with the same scale               |
//!
//! The default scales keep every experiment runnable in seconds on a laptop;
//! the benchmark harness accepts `--scale-shift` to grow them toward the
//! paper's sizes on bigger machines. The Yahoo-like preset spreads its
//! vertices over a 64× larger *index* space so that, as with the real
//! Yahoo-web crawl, most indices are isolated and degreeing must compact
//! them away (the paper: "the vertex number here is less than the number of
//! vertex indices").

use crate::rmat::{self, RmatConfig};
use crate::{mesh, RawEdge};

/// A named synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset name (used in benchmark output rows).
    pub name: String,
    /// The generated raw edges.
    pub edges: Vec<RawEdge>,
}

/// LiveJournal-like: small social graph, m/n ≈ 14.
pub fn livejournal_like(scale_shift: i32, seed: u64) -> Dataset {
    let scale = shift(14, scale_shift);
    Dataset {
        name: "livejournal".into(),
        edges: rmat::generate(&RmatConfig::graph500(scale, 14, seed)),
    }
}

/// Twitter-like: large power-law graph, m/n ≈ 35.
pub fn twitter_like(scale_shift: i32, seed: u64) -> Dataset {
    let scale = shift(16, scale_shift);
    Dataset {
        name: "twitter".into(),
        edges: rmat::generate(&RmatConfig::graph500(scale, 35, seed)),
    }
}

/// Yahoo-web-like: very many vertices, sparse (m/n ≈ 9), sparse index space
/// with isolated indices.
pub fn yahoo_like(scale_shift: i32, seed: u64) -> Dataset {
    let scale = shift(18, scale_shift);
    let mut edges = rmat::generate(&RmatConfig::graph500(scale, 9, seed));
    // Spread indices: multiply by a constant stride so the index space is
    // sparse and degreeing has isolated indices to eliminate, like the real
    // Yahoo crawl where |indices| >> |connected vertices|.
    const STRIDE: u64 = 64;
    for e in &mut edges {
        e.src *= STRIDE;
        e.dst *= STRIDE;
    }
    Dataset {
        name: "yahoo".into(),
        edges,
    }
}

/// Delaunay-like mesh at `2^scale` vertices (paper: delaunay_n20 … n24).
pub fn delaunay_like(scale: u32) -> Dataset {
    Dataset {
        name: format!("delaunay_n{scale}"),
        edges: mesh::generate(&mesh::MeshConfig::with_scale(scale)),
    }
}

/// The three "real-world-like" datasets, in paper order.
pub fn real_world_suite(scale_shift: i32, seed: u64) -> Vec<Dataset> {
    vec![
        livejournal_like(scale_shift, seed),
        twitter_like(scale_shift, seed + 1),
        yahoo_like(scale_shift, seed + 2),
    ]
}

fn shift(base: u32, scale_shift: i32) -> u32 {
    let s = base as i64 + scale_shift as i64;
    s.clamp(4, 30) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn ratios_match_paper_shape() {
        let lj = livejournal_like(-4, 1);
        let tw = twitter_like(-4, 1);
        let ya = yahoo_like(-4, 1);
        let r = |d: &Dataset| {
            let s = stats(&d.edges);
            s.num_edges as f64 / s.num_touched_vertices as f64
        };
        // Twitter-like must be the densest; Yahoo-like the sparsest.
        assert!(r(&tw) > r(&lj), "twitter {} lj {}", r(&tw), r(&lj));
        assert!(r(&lj) > r(&ya), "lj {} yahoo {}", r(&lj), r(&ya));
    }

    #[test]
    fn yahoo_index_space_is_sparse() {
        let ya = yahoo_like(-6, 3);
        let max_idx = ya.edges.iter().map(|e| e.src.max(e.dst)).max().unwrap();
        let touched = stats(&ya.edges).num_touched_vertices as u64;
        assert!(
            max_idx > touched * 8,
            "index space {max_idx} should dwarf touched {touched}"
        );
    }

    #[test]
    fn delaunay_names_match_scale() {
        let d = delaunay_like(10);
        assert_eq!(d.name, "delaunay_n10");
        assert!(!d.edges.is_empty());
    }

    #[test]
    fn suite_has_three_graphs() {
        let suite = real_world_suite(-6, 0);
        let names: Vec<_> = suite.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["livejournal", "twitter", "yahoo"]);
    }

    #[test]
    fn shift_clamps() {
        // Extreme shifts must not underflow/overflow the scale.
        let tiny = livejournal_like(-100, 0);
        assert!(!tiny.edges.is_empty());
    }
}
