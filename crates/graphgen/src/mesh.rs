//! Grid-triangulation meshes — the `delaunay_n*` stand-in.
//!
//! The paper's scalability experiment (Fig 11) sweeps Delaunay
//! triangulations `delaunay_n20 … n24`: planar graphs with average degree
//! ≈ 6 and vertex counts doubling per step. What the experiment measures is
//! throughput (MTEPS) as a *constant-degree* graph grows, so any
//! triangulated planar mesh reproduces the workload. We triangulate a
//! `rows × cols` grid: each interior cell contributes its two triangle
//! diagonally-split edges, giving exactly the 6-regular interior structure
//! of a Delaunay mesh without a computational-geometry dependency.

use crate::RawEdge;

/// Configuration for a triangulated grid mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Number of grid rows.
    pub rows: u64,
    /// Number of grid columns.
    pub cols: u64,
}

impl MeshConfig {
    /// A roughly square mesh with ~`2^scale` vertices (mirrors the
    /// `delaunay_n{scale}` naming).
    pub fn with_scale(scale: u32) -> Self {
        let n = 1u64 << scale;
        let rows = (n as f64).sqrt().round() as u64;
        let cols = n.div_ceil(rows.max(1));
        Self { rows, cols }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        self.rows * self.cols
    }

    /// Number of *directed* edges the generator will emit
    /// (each undirected mesh edge is emitted in both directions).
    pub fn num_edges(&self) -> u64 {
        let r = self.rows;
        let c = self.cols;
        if r == 0 || c == 0 {
            return 0;
        }
        // Horizontal: r·(c−1); vertical: (r−1)·c; diagonal: (r−1)·(c−1).
        let undirected = r * (c - 1) + (r - 1) * c + (r - 1) * (c - 1);
        2 * undirected
    }
}

/// Generate the directed edge list of a triangulated grid.
///
/// Vertex `(i, j)` has index `i * cols + j`. Each undirected edge appears in
/// both directions, matching how the paper ingests undirected benchmark
/// graphs (§II-A: "Undirected graph is supported by adding two opposite
/// edges").
pub fn generate(cfg: &MeshConfig) -> Vec<RawEdge> {
    let mut edges = Vec::with_capacity(cfg.num_edges() as usize);
    let id = |i: u64, j: u64| i * cfg.cols + j;
    let both = |a: u64, b: u64, edges: &mut Vec<RawEdge>| {
        edges.push(RawEdge::new(a, b));
        edges.push(RawEdge::new(b, a));
    };
    for i in 0..cfg.rows {
        for j in 0..cfg.cols {
            if j + 1 < cfg.cols {
                both(id(i, j), id(i, j + 1), &mut edges);
            }
            if i + 1 < cfg.rows {
                both(id(i, j), id(i + 1, j), &mut edges);
            }
            if i + 1 < cfg.rows && j + 1 < cfg.cols {
                // Diagonal of the triangulation.
                both(id(i, j), id(i + 1, j + 1), &mut edges);
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn edge_count_matches_formula() {
        for (r, c) in [(1u64, 1u64), (2, 2), (3, 5), (10, 10), (1, 7)] {
            let cfg = MeshConfig { rows: r, cols: c };
            let edges = generate(&cfg);
            assert_eq!(edges.len() as u64, cfg.num_edges(), "rows={r} cols={c}");
        }
    }

    #[test]
    fn interior_degree_is_six_ish() {
        let cfg = MeshConfig { rows: 32, cols: 32 };
        let edges = generate(&cfg);
        let s = stats(&edges);
        // Average (out-)degree of a large triangulated grid tends to 6.
        assert!(
            (s.mean_degree - 6.0).abs() < 1.0,
            "mean degree {}",
            s.mean_degree
        );
        assert_eq!(s.self_loops, 0);
        assert_eq!(s.num_touched_vertices as u64, cfg.num_vertices());
    }

    #[test]
    fn symmetric_edges() {
        let cfg = MeshConfig { rows: 4, cols: 4 };
        let edges = generate(&cfg);
        let set: std::collections::HashSet<_> =
            edges.iter().map(|e| (e.src, e.dst)).collect();
        for e in &edges {
            assert!(set.contains(&(e.dst, e.src)), "missing reverse of {e:?}");
        }
    }

    #[test]
    fn scale_targets_vertex_count() {
        for scale in [10u32, 12, 14] {
            let cfg = MeshConfig::with_scale(scale);
            let want = 1u64 << scale;
            let got = cfg.num_vertices();
            // Within 5% of the target (rounding a square).
            assert!(
                (got as f64 - want as f64).abs() / want as f64 <= 0.05,
                "scale {scale}: got {got}, want ≈{want}"
            );
        }
    }

    #[test]
    fn degenerate_meshes() {
        assert!(generate(&MeshConfig { rows: 1, cols: 1 }).is_empty());
        let line = generate(&MeshConfig { rows: 1, cols: 4 });
        assert_eq!(line.len(), 6); // 3 undirected * 2
    }
}
