//! Erdős–Rényi style uniform random graphs.
//!
//! `G(n, m)`: `m` directed edges drawn uniformly (with replacement) over an
//! `n × n` adjacency matrix. Used as a structurally "boring" workload in
//! tests and as the randomness source for property-based testing of the
//! engines.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::RawEdge;

/// Generate `m` uniform random directed edges over `n` vertices.
///
/// Self-loops are permitted (NXgraph handles them; PageRank treats them as
/// ordinary edges). Duplicates are permitted, matching raw crawl data.
pub fn generate(n: u64, m: usize, seed: u64) -> Vec<RawEdge> {
    assert!(n > 0, "need at least one vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| RawEdge::new(rng.random_range(0..n), rng.random_range(0..n)))
        .collect()
}

/// Generate a uniform random graph with no self-loops and no duplicate
/// edges; `m` is a target and may be reduced if it exceeds `n·(n-1)`.
pub fn generate_simple(n: u64, m: usize, seed: u64) -> Vec<RawEdge> {
    assert!(n > 1, "need at least two vertices for a simple graph");
    let mut rng = StdRng::seed_from_u64(seed);
    let max_edges = (n * (n - 1)) as usize;
    let m = m.min(max_edges);
    let mut seen = std::collections::HashSet::with_capacity(m);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let src = rng.random_range(0..n);
        let dst = rng.random_range(0..n);
        if src != dst && seen.insert((src, dst)) {
            edges.push(RawEdge::new(src, dst));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_ranges() {
        let edges = generate(100, 500, 9);
        assert_eq!(edges.len(), 500);
        assert!(edges.iter().all(|e| e.src < 100 && e.dst < 100));
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(50, 100, 1), generate(50, 100, 1));
        assert_ne!(generate(50, 100, 1), generate(50, 100, 2));
    }

    #[test]
    fn simple_graph_has_no_loops_or_dups() {
        let edges = generate_simple(30, 200, 5);
        assert_eq!(edges.len(), 200);
        let mut seen = std::collections::HashSet::new();
        for e in &edges {
            assert_ne!(e.src, e.dst);
            assert!(seen.insert((e.src, e.dst)));
        }
    }

    #[test]
    fn simple_graph_caps_at_complete() {
        let edges = generate_simple(5, 1000, 5);
        assert_eq!(edges.len(), 20); // 5 * 4
    }
}
