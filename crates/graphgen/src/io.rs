//! Edge-list reading and writing.
//!
//! Two formats:
//!
//! * **Text** — one `src dst` pair per line (whitespace separated), `#`
//!   comments, exactly the SNAP / paper-input convention. This is the format
//!   NXgraph's preprocessing ("degreeing") consumes.
//! * **Binary** — pairs of little-endian `u64`, for fast round-trips of
//!   generated workloads between benchmark phases.

use std::io::{BufRead, BufReader, Read, Write};

use crate::RawEdge;

/// Errors raised while parsing an edge list.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number and content.
    BadLine { line: usize, content: String },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::BadLine { line, content } => {
                write!(f, "malformed edge at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Parse a text edge list (`src dst` per line, `#` comments, blank lines
/// ignored).
pub fn read_text(r: impl Read) -> Result<Vec<RawEdge>, ParseError> {
    let mut edges = Vec::new();
    let reader = BufReader::new(r);
    let mut line_buf = String::new();
    let mut reader = reader;
    let mut lineno = 0usize;
    loop {
        line_buf.clear();
        let n = reader.read_line(&mut line_buf)?;
        if n == 0 {
            break;
        }
        lineno += 1;
        let line = line_buf.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let bad = || ParseError::BadLine {
            line: lineno,
            content: line.to_string(),
        };
        let src = parts.next().ok_or_else(bad)?;
        let dst = parts.next().ok_or_else(bad)?;
        if parts.next().is_some() {
            return Err(bad());
        }
        let src = src.parse::<u64>().map_err(|_| bad())?;
        let dst = dst.parse::<u64>().map_err(|_| bad())?;
        edges.push(RawEdge::new(src, dst));
    }
    Ok(edges)
}

/// Write a text edge list.
pub fn write_text(w: &mut impl Write, edges: &[RawEdge]) -> std::io::Result<()> {
    let mut buf = String::with_capacity(edges.len().min(1 << 16) * 12);
    for chunk in edges.chunks(4096) {
        buf.clear();
        for e in chunk {
            buf.push_str(&e.src.to_string());
            buf.push(' ');
            buf.push_str(&e.dst.to_string());
            buf.push('\n');
        }
        w.write_all(buf.as_bytes())?;
    }
    Ok(())
}

/// Write a binary edge list (little-endian `u64` pairs).
pub fn write_binary(w: &mut impl Write, edges: &[RawEdge]) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(edges.len().min(1 << 16) * 16);
    for chunk in edges.chunks(4096) {
        buf.clear();
        for e in chunk {
            buf.extend_from_slice(&e.src.to_le_bytes());
            buf.extend_from_slice(&e.dst.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Read a binary edge list written by [`write_binary`].
pub fn read_binary(r: impl Read) -> Result<Vec<RawEdge>, ParseError> {
    let mut reader = BufReader::new(r);
    let mut edges = Vec::new();
    let mut buf = [0u8; 16];
    loop {
        match reader.read_exact(&mut buf) {
            Ok(()) => {
                let src = u64::from_le_bytes(buf[0..8].try_into().unwrap());
                let dst = u64::from_le_bytes(buf[8..16].try_into().unwrap());
                edges.push(RawEdge::new(src, dst));
            }
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(ParseError::Io(e)),
        }
    }
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_roundtrip() {
        let edges = vec![RawEdge::new(0, 1), RawEdge::new(7, 7), RawEdge::new(1 << 40, 3)];
        let mut buf = Vec::new();
        write_text(&mut buf, &edges).unwrap();
        assert_eq!(read_text(&buf[..]).unwrap(), edges);
    }

    #[test]
    fn text_skips_comments_and_blanks() {
        let input = "# header\n\n0 1\n  # indented comment\n2\t3\n";
        let edges = read_text(input.as_bytes()).unwrap();
        assert_eq!(edges, vec![RawEdge::new(0, 1), RawEdge::new(2, 3)]);
    }

    #[test]
    fn text_rejects_malformed() {
        for bad in ["0", "0 1 2", "a b", "0 b"] {
            let err = read_text(bad.as_bytes()).unwrap_err();
            assert!(matches!(err, ParseError::BadLine { line: 1, .. }), "{bad}");
        }
    }

    #[test]
    fn binary_roundtrip() {
        let edges: Vec<_> = (0..1000u64).map(|i| RawEdge::new(i, i * 31 % 997)).collect();
        let mut buf = Vec::new();
        write_binary(&mut buf, &edges).unwrap();
        assert_eq!(buf.len(), edges.len() * 16);
        assert_eq!(read_binary(&buf[..]).unwrap(), edges);
    }

    #[test]
    fn binary_rejects_trailing_garbage() {
        let mut buf = Vec::new();
        write_binary(&mut buf, &[RawEdge::new(1, 2)]).unwrap();
        buf.push(0xff);
        // A trailing partial record is an EOF mid-record; we stop cleanly
        // only on record boundaries, so this surfaces as truncation (Eof →
        // break) — the partial byte is silently ignored is NOT acceptable;
        // read_exact returns UnexpectedEof which we treat as end-of-stream.
        // Verify we at least recovered the complete records.
        let edges = read_binary(&buf[..]).unwrap();
        assert_eq!(edges, vec![RawEdge::new(1, 2)]);
    }
}
