//! Synthetic graph generators and edge-list I/O for NXgraph.
//!
//! The NXgraph paper evaluates on three real-world graphs (LiveJournal,
//! Twitter, Yahoo-web) and five synthetic `delaunay_n*` meshes. The real
//! graphs are not redistributable, so this crate generates synthetic
//! stand-ins whose *structural* properties — power-law degree skew, edge/
//! vertex ratio, sparse index spaces with isolated vertices, constant-degree
//! planar-like meshes — match what the paper's experiments actually exercise
//! (see DESIGN.md §2 for the substitution rationale).
//!
//! * [`rmat`] — R-MAT recursive-matrix generator (power-law, web/social-like).
//! * [`er`] — Erdős–Rényi uniform random graphs (test workloads).
//! * [`mesh`] — grid-triangulation meshes (the `delaunay_n*` stand-in).
//! * [`ba`] — Barabási–Albert preferential attachment.
//! * [`datasets`] — presets mirroring the paper's Table III at reduced scale.
//! * [`io`] — text and binary edge-list reading/writing.

pub mod ba;
pub mod datasets;
pub mod er;
pub mod io;
pub mod mesh;
pub mod rmat;

/// A raw directed edge between *indices* (the sparse, possibly
/// non-contiguous identifiers of the input format; degreeing maps these to
/// dense ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RawEdge {
    /// Source vertex index.
    pub src: u64,
    /// Destination vertex index.
    pub dst: u64,
}

impl RawEdge {
    /// Construct an edge.
    pub fn new(src: u64, dst: u64) -> Self {
        Self { src, dst }
    }
}

/// Statistics over a generated edge list; used by tests to check that
/// generators produce the intended structure.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeListStats {
    /// Number of edges (including duplicates, excluding nothing).
    pub num_edges: usize,
    /// Number of distinct vertices that appear as an endpoint.
    pub num_touched_vertices: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Mean out-degree over touched vertices.
    pub mean_degree: f64,
    /// Number of self-loops.
    pub self_loops: usize,
}

/// Compute [`EdgeListStats`] for an edge list.
pub fn stats(edges: &[RawEdge]) -> EdgeListStats {
    use std::collections::{HashMap, HashSet};
    let mut out_deg: HashMap<u64, usize> = HashMap::new();
    let mut touched: HashSet<u64> = HashSet::new();
    let mut self_loops = 0;
    for e in edges {
        *out_deg.entry(e.src).or_default() += 1;
        touched.insert(e.src);
        touched.insert(e.dst);
        if e.src == e.dst {
            self_loops += 1;
        }
    }
    let max_out_degree = out_deg.values().copied().max().unwrap_or(0);
    let num_touched = touched.len();
    EdgeListStats {
        num_edges: edges.len(),
        num_touched_vertices: num_touched,
        max_out_degree,
        mean_degree: if num_touched == 0 {
            0.0
        } else {
            edges.len() as f64 / num_touched as f64
        },
        self_loops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_on_empty() {
        let s = stats(&[]);
        assert_eq!(s.num_edges, 0);
        assert_eq!(s.num_touched_vertices, 0);
        assert_eq!(s.mean_degree, 0.0);
    }

    #[test]
    fn stats_counts_loops_and_degrees() {
        let edges = vec![
            RawEdge::new(0, 1),
            RawEdge::new(0, 2),
            RawEdge::new(1, 1),
            RawEdge::new(2, 0),
        ];
        let s = stats(&edges);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.num_touched_vertices, 3);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.self_loops, 1);
    }
}
