//! R-MAT (Recursive MATrix) graph generator.
//!
//! R-MAT [Chakrabarti et al., SDM 2004] recursively subdivides the adjacency
//! matrix into quadrants with probabilities `(a, b, c, d)`; skewed
//! probabilities produce the power-law in/out-degree distributions of web
//! and social graphs — the property that drives sub-shard imbalance and hub
//! in-degree `d` in the NXgraph evaluation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::RawEdge;

/// R-MAT generator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Edges per vertex (the generated edge count is `edge_factor << scale`).
    pub edge_factor: u32,
    /// Quadrant probability `a` (top-left).
    pub a: f64,
    /// Quadrant probability `b` (top-right).
    pub b: f64,
    /// Quadrant probability `c` (bottom-left).
    pub c: f64,
    /// RNG seed; generation is fully deterministic given the config.
    pub seed: u64,
    /// Perturbation noise applied to quadrant probabilities per level,
    /// avoiding exact self-similarity artifacts (0.0 disables).
    pub noise: f64,
}

impl RmatConfig {
    /// The classic "graph500"-style skew: a=0.57, b=0.19, c=0.19.
    pub fn graph500(scale: u32, edge_factor: u32, seed: u64) -> Self {
        Self {
            scale,
            edge_factor,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed,
            noise: 0.05,
        }
    }

    /// Quadrant probability `d` (derived).
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Number of vertices in the id space (`2^scale`).
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of edges to generate.
    pub fn num_edges(&self) -> u64 {
        self.edge_factor as u64 * self.num_vertices()
    }
}

/// Generate the full edge list for `cfg`.
pub fn generate(cfg: &RmatConfig) -> Vec<RawEdge> {
    assert!(cfg.scale > 0 && cfg.scale < 40, "scale out of range");
    assert!(
        cfg.a > 0.0 && cfg.b >= 0.0 && cfg.c >= 0.0 && cfg.d() >= 0.0,
        "invalid quadrant probabilities"
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let m = cfg.num_edges() as usize;
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        edges.push(sample_edge(cfg, &mut rng));
    }
    edges
}

/// Generate the edge list in fixed-size chunks without ever holding the
/// whole list in memory — the source for out-of-core preprocessing, where
/// the graph must not fit in RAM.
///
/// Each chunk reseeds from `cfg.seed + chunk_index`, so chunk `k` is
/// deterministic and independent of every other chunk; the union follows
/// the same R-MAT distribution as [`generate`] (each edge is an i.i.d.
/// sample), though not the identical edge sequence.
pub fn generate_chunked(
    cfg: &RmatConfig,
    chunk_edges: u64,
) -> impl Iterator<Item = Vec<RawEdge>> + '_ {
    assert!(cfg.scale > 0 && cfg.scale < 40, "scale out of range");
    assert!(chunk_edges > 0, "chunk_edges must be positive");
    let m = cfg.num_edges();
    let chunks = m.div_ceil(chunk_edges);
    (0..chunks).map(move |k| {
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(k));
        let len = chunk_edges.min(m - k * chunk_edges) as usize;
        let mut edges = Vec::with_capacity(len);
        for _ in 0..len {
            edges.push(sample_edge(cfg, &mut rng));
        }
        edges
    })
}

/// Sample a single R-MAT edge.
fn sample_edge(cfg: &RmatConfig, rng: &mut StdRng) -> RawEdge {
    let mut src = 0u64;
    let mut dst = 0u64;
    let (mut a, mut b, mut c) = (cfg.a, cfg.b, cfg.c);
    for level in 0..cfg.scale {
        let r: f64 = rng.random();
        let bit = 1u64 << (cfg.scale - 1 - level);
        if r < a {
            // top-left: no bits set
        } else if r < a + b {
            dst |= bit;
        } else if r < a + b + c {
            src |= bit;
        } else {
            src |= bit;
            dst |= bit;
        }
        if cfg.noise > 0.0 {
            // Multiplicative noise, renormalised, keeps expected skew.
            let na = a * (1.0 - cfg.noise + 2.0 * cfg.noise * rng.random::<f64>());
            let nb = b * (1.0 - cfg.noise + 2.0 * cfg.noise * rng.random::<f64>());
            let nc = c * (1.0 - cfg.noise + 2.0 * cfg.noise * rng.random::<f64>());
            let nd = (1.0 - a - b - c)
                * (1.0 - cfg.noise + 2.0 * cfg.noise * rng.random::<f64>());
            let sum = na + nb + nc + nd;
            a = na / sum;
            b = nb / sum;
            c = nc / sum;
        }
    }
    RawEdge::new(src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn deterministic_given_seed() {
        let cfg = RmatConfig::graph500(10, 8, 42);
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&RmatConfig::graph500(10, 8, 1));
        let b = generate(&RmatConfig::graph500(10, 8, 2));
        assert_ne!(a, b);
    }

    #[test]
    fn edge_count_and_id_range() {
        let cfg = RmatConfig::graph500(8, 4, 7);
        let edges = generate(&cfg);
        assert_eq!(edges.len(), 4 << 8);
        let n = cfg.num_vertices();
        assert!(edges.iter().all(|e| e.src < n && e.dst < n));
    }

    #[test]
    fn chunked_generation_is_deterministic_and_complete() {
        let cfg = RmatConfig::graph500(8, 4, 9);
        let a: Vec<Vec<RawEdge>> = generate_chunked(&cfg, 100).collect();
        let b: Vec<Vec<RawEdge>> = generate_chunked(&cfg, 100).collect();
        assert_eq!(a, b);
        let total: usize = a.iter().map(Vec::len).sum();
        assert_eq!(total as u64, cfg.num_edges());
        // Every chunk except the last is exactly chunk_edges long.
        for c in &a[..a.len() - 1] {
            assert_eq!(c.len(), 100);
        }
        let n = cfg.num_vertices();
        assert!(a.iter().flatten().all(|e| e.src < n && e.dst < n));
    }

    #[test]
    fn produces_skewed_degrees() {
        // With graph500 skew the max degree should far exceed the mean.
        let cfg = RmatConfig::graph500(12, 16, 3);
        let edges = generate(&cfg);
        let s = stats(&edges);
        assert!(
            s.max_out_degree as f64 > 8.0 * s.mean_degree,
            "max {} vs mean {}",
            s.max_out_degree,
            s.mean_degree
        );
    }

    #[test]
    fn uniform_probabilities_are_not_skewed() {
        let cfg = RmatConfig {
            scale: 12,
            edge_factor: 16,
            a: 0.25,
            b: 0.25,
            c: 0.25,
            seed: 3,
            noise: 0.0,
        };
        let edges = generate(&cfg);
        let s = stats(&edges);
        // Uniform quadrants ≈ Erdős–Rényi: max degree stays close to mean.
        assert!((s.max_out_degree as f64) < 5.0 * s.mean_degree);
    }

    #[test]
    #[should_panic(expected = "scale out of range")]
    fn rejects_zero_scale() {
        generate(&RmatConfig::graph500(0, 1, 0));
    }
}
