//! Property tests for the generators: id ranges, determinism, structural
//! invariants, and edge-list I/O round-trips.

use proptest::prelude::*;

use nxgraph_graphgen::mesh::MeshConfig;
use nxgraph_graphgen::rmat::RmatConfig;
use nxgraph_graphgen::{ba, er, io, mesh, rmat, RawEdge};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rmat_ids_in_range_and_deterministic(scale in 4u32..12, ef in 1u32..8, seed in any::<u64>()) {
        let cfg = RmatConfig::graph500(scale, ef, seed);
        let a = rmat::generate(&cfg);
        prop_assert_eq!(a.len() as u64, cfg.num_edges());
        let n = cfg.num_vertices();
        prop_assert!(a.iter().all(|e| e.src < n && e.dst < n));
        prop_assert_eq!(rmat::generate(&cfg), a);
    }

    #[test]
    fn er_respects_bounds(n in 2u64..500, m in 1usize..1000, seed in any::<u64>()) {
        let edges = er::generate(n, m, seed);
        prop_assert_eq!(edges.len(), m);
        prop_assert!(edges.iter().all(|e| e.src < n && e.dst < n));
    }

    #[test]
    fn er_simple_has_no_loops_or_duplicates(n in 3u64..60, m in 1usize..500, seed in any::<u64>()) {
        let edges = er::generate_simple(n, m, seed);
        let mut seen = std::collections::HashSet::new();
        for e in &edges {
            prop_assert!(e.src != e.dst);
            prop_assert!(seen.insert((e.src, e.dst)));
        }
    }

    #[test]
    fn mesh_edge_count_formula(rows in 1u64..40, cols in 1u64..40) {
        let cfg = MeshConfig { rows, cols };
        prop_assert_eq!(mesh::generate(&cfg).len() as u64, cfg.num_edges());
    }

    #[test]
    fn mesh_is_symmetric(rows in 1u64..20, cols in 1u64..20) {
        let edges = mesh::generate(&MeshConfig { rows, cols });
        let set: std::collections::HashSet<_> = edges.iter().map(|e| (e.src, e.dst)).collect();
        for e in &edges {
            prop_assert!(set.contains(&(e.dst, e.src)));
        }
    }

    #[test]
    fn ba_edges_point_to_older_vertices(n in 2u64..200, m in 1usize..5, seed in any::<u64>()) {
        for e in ba::generate(n, m, seed) {
            prop_assert!(e.dst < e.src);
        }
    }

    #[test]
    fn text_io_roundtrip(pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..200)) {
        let edges: Vec<RawEdge> = pairs.iter().map(|&(s, d)| RawEdge::new(s, d)).collect();
        let mut buf = Vec::new();
        io::write_text(&mut buf, &edges).unwrap();
        prop_assert_eq!(io::read_text(buf.as_slice()).unwrap(), edges);
    }

    #[test]
    fn binary_io_roundtrip(pairs in proptest::collection::vec((any::<u64>(), any::<u64>()), 0..200)) {
        let edges: Vec<RawEdge> = pairs.iter().map(|&(s, d)| RawEdge::new(s, d)).collect();
        let mut buf = Vec::new();
        io::write_binary(&mut buf, &edges).unwrap();
        prop_assert_eq!(io::read_binary(buf.as_slice()).unwrap(), edges);
    }
}
