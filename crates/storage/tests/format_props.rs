//! Property tests for the storage formats: arbitrary payloads must
//! round-trip, and arbitrary corruption must be detected.

use proptest::prelude::*;

use nxgraph_storage::format::{self, FileKind};
use nxgraph_storage::manifest::GraphManifest;
use nxgraph_storage::{Disk, MemDisk};

proptest! {
    #[test]
    fn blob_roundtrips_any_payload(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut buf = Vec::new();
        format::write_blob(&mut buf, FileKind::Interval, &payload).unwrap();
        let back = format::read_blob(&mut buf.as_slice(), FileKind::Interval, "p").unwrap();
        prop_assert_eq!(back, payload);
    }

    #[test]
    fn single_byte_corruption_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let mut buf = Vec::new();
        format::write_blob(&mut buf, FileKind::Hub, &payload).unwrap();
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= flip;
        // Any single-byte flip must fail decoding (magic, version, kind,
        // length, checksum or payload mismatch).
        prop_assert!(format::read_blob(&mut buf.as_slice(), FileKind::Hub, "c").is_err());
    }

    #[test]
    fn truncation_is_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        keep_frac in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        format::write_blob(&mut buf, FileKind::Degrees, &payload).unwrap();
        let keep = (buf.len() as f64 * keep_frac) as usize;
        if keep < buf.len() {
            buf.truncate(keep);
            prop_assert!(
                format::read_blob(&mut buf.as_slice(), FileKind::Degrees, "t").is_err()
            );
        }
    }

    #[test]
    fn u32_array_roundtrip(vals in proptest::collection::vec(any::<u32>(), 0..512)) {
        let bytes = format::encode_u32s(&vals);
        prop_assert_eq!(format::decode_u32s(&bytes).unwrap(), vals);
    }

    #[test]
    fn manifest_roundtrips(
        name in "[a-zA-Z0-9_-]{1,20}",
        n in 1u64..1_000_000,
        m in 0u64..10_000_000,
        p in 1u32..256,
        rev in any::<bool>(),
    ) {
        let mfst = GraphManifest::new(name, n, m, p, rev);
        let back = GraphManifest::from_text(&mfst.to_text()).unwrap();
        prop_assert_eq!(back, mfst);
    }

    #[test]
    fn manifest_interval_ranges_partition_the_id_space(
        n in 1u64..100_000,
        p in 1u32..64,
    ) {
        let mfst = GraphManifest::new("g", n, 0, p, false);
        let mut cursor = 0u64;
        for i in 0..p {
            let (s, e) = mfst.interval_range(i);
            prop_assert_eq!(s, cursor.min(n));
            prop_assert!(e >= s);
            prop_assert!(e <= n);
            cursor = e;
        }
        prop_assert_eq!(cursor, n);
        // Every vertex maps into the interval that contains it.
        for v in [0, n / 2, n - 1] {
            let i = mfst.interval_of(v);
            let (s, e) = mfst.interval_range(i);
            prop_assert!(s <= v && v < e, "v={} i={} range=({}, {})", v, i, s, e);
        }
    }

    #[test]
    fn memdisk_files_roundtrip(
        files in proptest::collection::btree_map(
            "[a-z0-9]{1,12}",
            proptest::collection::vec(any::<u8>(), 0..256),
            0..16,
        )
    ) {
        let disk = MemDisk::new();
        for (name, data) in &files {
            disk.write_all_to(name, data).unwrap();
        }
        prop_assert_eq!(disk.file_count(), files.len());
        for (name, data) in &files {
            prop_assert_eq!(&disk.read_all(name).unwrap(), data);
            prop_assert_eq!(disk.len_of(name).unwrap(), data.len() as u64);
        }
        let mut names = disk.list();
        names.sort();
        let want: Vec<String> = files.keys().cloned().collect();
        prop_assert_eq!(names, want);
    }
}
