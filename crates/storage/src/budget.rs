//! Explicit memory-budget accounting.
//!
//! The paper's experiments vary the machine's physical memory at boot time;
//! the effect of that knob on NXgraph is entirely mediated by two decisions:
//! how many intervals `Q` (out of `P`) may be resident as ping-pong pairs,
//! and whether left-over budget may cache sub-shards. [`MemoryBudget`]
//! models the knob directly so every experiment is deterministic and
//! runnable on any host.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{StorageError, StorageResult};

/// Process-wide count of unbalanced [`MemoryBudget::release`] calls, across
/// every budget instance. Surfaced by `nxgraph-cli info` so accounting leaks
/// show up in the field, not just under `debug_assertions`.
static GLOBAL_OVER_RELEASES: AtomicU64 = AtomicU64::new(0);

/// Unbalanced release count accumulated by every budget in this process.
pub fn global_over_releases() -> u64 {
    GLOBAL_OVER_RELEASES.load(Ordering::Relaxed)
}

/// A fixed byte budget with live allocation tracking.
///
/// Engines `reserve` bytes before materialising a structure in memory and
/// `release` them when the structure is dropped/evicted. Reservations are
/// advisory (the engine decides its residency plan from the budget up
/// front), but tracking them catches planning bugs in tests.
#[derive(Debug)]
pub struct MemoryBudget {
    total: u64,
    used: AtomicU64,
    /// Releases that exceeded the tracked reservation (accounting leaks).
    over_releases: AtomicU64,
}

impl MemoryBudget {
    /// A budget of `total` bytes.
    pub fn new(total: u64) -> Self {
        Self {
            total,
            used: AtomicU64::new(0),
            over_releases: AtomicU64::new(0),
        }
    }

    /// An effectively unlimited budget.
    pub fn unlimited() -> Self {
        Self::new(u64::MAX)
    }

    /// Budget expressed in mebibytes.
    pub fn from_mib(mib: u64) -> Self {
        Self::new(mib << 20)
    }

    /// Total budget in bytes.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.total.saturating_sub(self.used())
    }

    /// Whether a structure of `bytes` would fit right now.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.available()
    }

    /// Reserve `bytes`, failing if the budget would be exceeded.
    pub fn reserve(&self, bytes: u64) -> StorageResult<()> {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_add(bytes);
            if new > self.total {
                // `cur` is the failing iteration's observation, but a racing
                // over-reserve can still leave `used > total`; saturate so
                // the error report never debug-panics on the subtraction.
                return Err(StorageError::BudgetExceeded {
                    requested: bytes,
                    available: self.total.saturating_sub(cur),
                });
            }
            match self
                .used
                .compare_exchange(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Release a previous reservation.
    ///
    /// An unbalanced release (more bytes than are currently reserved) is an
    /// accounting bug in the caller: it saturates to zero rather than
    /// underflowing, but it is counted — per instance and process-wide —
    /// and panics under `debug_assertions` so tests catch the leak.
    pub fn release(&self, bytes: u64) {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let new = cur.saturating_sub(bytes);
            match self
                .used
                .compare_exchange(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    if bytes > cur {
                        self.over_releases.fetch_add(1, Ordering::Relaxed);
                        GLOBAL_OVER_RELEASES.fetch_add(1, Ordering::Relaxed);
                        debug_assert!(
                            false,
                            "unbalanced release: released {bytes} bytes with only {cur} reserved"
                        );
                    }
                    return;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Unbalanced releases recorded against this budget.
    pub fn over_releases(&self) -> u64 {
        self.over_releases.load(Ordering::Relaxed)
    }

    /// Carve `bytes` out of this budget as an RAII lease: the reservation is
    /// released (balanced, exactly once) when the lease drops. The serving
    /// layer hands one lease to each admitted query so a query's working
    /// memory comes out of the shared budget and returns on completion —
    /// even on a panic unwound across the query.
    pub fn carve(self: &Arc<Self>, bytes: u64) -> StorageResult<BudgetLease> {
        self.reserve(bytes)?;
        Ok(BudgetLease {
            parent: Arc::clone(self),
            bytes,
        })
    }
}

/// An RAII child reservation carved from a shared [`MemoryBudget`].
#[derive(Debug)]
pub struct BudgetLease {
    parent: Arc<MemoryBudget>,
    bytes: u64,
}

impl BudgetLease {
    /// Bytes held by this lease.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for BudgetLease {
    fn drop(&mut self) {
        self.parent.release(self.bytes);
    }
}

/// Residency plan derived from a budget, following §III-B3 of the paper.
///
/// Given `n` vertices split into `P` intervals with `attr_bytes`-byte
/// attributes, SPU needs ping-pong copies of *all* intervals
/// (`2 · n · Ba` bytes). If the budget is smaller, only
/// `Q = ⌊BM / (2·n·Ba) · P⌋` intervals may stay resident and the remaining
/// rows/columns fall back to hub-mediated (DPU-style) updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResidencyPlan {
    /// Number of intervals kept in memory as ping-pong pairs (`Q`).
    pub resident_intervals: usize,
    /// Total interval count (`P`).
    pub total_intervals: usize,
    /// Bytes of budget left after interval residency, available for caching
    /// sub-shards in memory.
    pub shard_cache_bytes: u64,
}

impl ResidencyPlan {
    /// Compute the plan for a graph of `n` vertices, `p` intervals and
    /// `attr_bytes` bytes per vertex attribute under `budget` bytes.
    pub fn compute(n: u64, p: usize, attr_bytes: u64, budget: u64) -> Self {
        assert!(p > 0, "interval count must be positive");
        let ping_pong_all = 2 * n * attr_bytes;
        if ping_pong_all == 0 {
            return Self {
                resident_intervals: p,
                total_intervals: p,
                shard_cache_bytes: budget,
            };
        }
        if budget >= ping_pong_all {
            // Pure SPU; everything resident, leftover caches shards.
            return Self {
                resident_intervals: p,
                total_intervals: p,
                shard_cache_bytes: budget - ping_pong_all,
            };
        }
        // Q = floor(BM / (2 n Ba) * P) as in §III-B3.
        let q = ((budget as u128 * p as u128) / ping_pong_all as u128) as usize;
        let q = q.min(p);
        // Bytes actually consumed by the Q resident ping-pong intervals
        // (intervals are equal-sized up to rounding).
        let per_interval = 2 * attr_bytes * n.div_ceil(p as u64);
        let consumed = per_interval * q as u64;
        Self {
            resident_intervals: q,
            total_intervals: p,
            shard_cache_bytes: budget.saturating_sub(consumed),
        }
    }

    /// True when the plan degenerates to pure SPU (everything resident).
    pub fn is_spu(&self) -> bool {
        self.resident_intervals == self.total_intervals
    }

    /// True when the plan degenerates to pure DPU (nothing resident).
    pub fn is_dpu(&self) -> bool {
        self.resident_intervals == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let b = MemoryBudget::new(100);
        assert!(b.fits(100));
        b.reserve(60).unwrap();
        assert_eq!(b.used(), 60);
        assert_eq!(b.available(), 40);
        assert!(b.reserve(50).is_err());
        b.release(60);
        assert!(b.reserve(100).is_ok());
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "unbalanced release"))]
    fn release_never_underflows_and_counts_the_leak() {
        let b = MemoryBudget::new(10);
        b.release(999); // panics under debug_assertions
        assert_eq!(b.used(), 0);
        assert_eq!(b.over_releases(), 1);
        assert!(global_over_releases() >= 1);
    }

    #[test]
    fn balanced_release_never_counts() {
        let b = MemoryBudget::new(10);
        b.reserve(10).unwrap();
        b.release(10);
        b.release(0);
        assert_eq!(b.over_releases(), 0);
    }

    #[test]
    fn reserve_error_reports_saturated_available() {
        let b = MemoryBudget::new(100);
        b.reserve(60).unwrap();
        match b.reserve(50) {
            Err(StorageError::BudgetExceeded {
                requested,
                available,
            }) => {
                assert_eq!(requested, 50);
                assert_eq!(available, 40);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn carve_releases_on_drop() {
        let b = Arc::new(MemoryBudget::new(100));
        let lease = b.carve(64).unwrap();
        assert_eq!(lease.bytes(), 64);
        assert_eq!(b.used(), 64);
        assert!(b.carve(64).is_err());
        drop(lease);
        assert_eq!(b.used(), 0);
        assert_eq!(b.over_releases(), 0);
    }

    #[test]
    fn unlimited_accepts_everything() {
        let b = MemoryBudget::unlimited();
        b.reserve(u64::MAX / 2).unwrap();
        assert!(b.fits(u64::MAX / 4));
    }

    #[test]
    fn plan_full_budget_is_spu() {
        // n=1000, Ba=8 → ping-pong = 16_000 bytes.
        let plan = ResidencyPlan::compute(1000, 8, 8, 20_000);
        assert!(plan.is_spu());
        assert_eq!(plan.resident_intervals, 8);
        assert_eq!(plan.shard_cache_bytes, 4_000);
    }

    #[test]
    fn plan_zero_budget_is_dpu() {
        let plan = ResidencyPlan::compute(1000, 8, 8, 0);
        assert!(plan.is_dpu());
        assert_eq!(plan.shard_cache_bytes, 0);
    }

    #[test]
    fn plan_partial_budget_is_mixed() {
        // ping-pong all = 16_000; budget 8_000 → Q = 4 of 8.
        let plan = ResidencyPlan::compute(1000, 8, 8, 8_000);
        assert_eq!(plan.resident_intervals, 4);
        assert!(!plan.is_spu());
        assert!(!plan.is_dpu());
    }

    #[test]
    fn plan_q_monotone_in_budget() {
        let mut last = 0;
        for budget in (0..=20_000).step_by(500) {
            let plan = ResidencyPlan::compute(1000, 16, 8, budget);
            assert!(plan.resident_intervals >= last);
            last = plan.resident_intervals;
        }
        assert_eq!(last, 16);
    }

    #[test]
    fn plan_handles_empty_graph() {
        let plan = ResidencyPlan::compute(0, 4, 8, 0);
        assert!(plan.is_spu());
    }

    #[test]
    fn from_mib_scales() {
        assert_eq!(MemoryBudget::from_mib(2).total(), 2 * 1024 * 1024);
    }
}
