//! Byte-exact I/O accounting.
//!
//! Every read and write that crosses the [`Disk`](crate::disk::Disk)
//! boundary is recorded here. The NXgraph paper derives closed-form bounds
//! for the bytes moved per iteration by each update strategy (Table II);
//! these counters let the test-suite and the benchmark harness verify those
//! bounds empirically rather than by trusting wall-clock proxies.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe I/O counters for one logical disk.
///
/// Counters are monotonically increasing; use [`IoCounters::snapshot`] and
/// [`IoSnapshot::delta`] to measure a region of execution.
#[derive(Debug, Default)]
pub struct IoCounters {
    read_bytes: AtomicU64,
    written_bytes: AtomicU64,
    read_ops: AtomicU64,
    write_ops: AtomicU64,
    /// Number of times a *new* sequential stream was opened (≈ disk seeks).
    seeks: AtomicU64,
}

impl IoCounters {
    /// Create a fresh, zeroed set of counters behind an [`Arc`].
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record `n` bytes read in one operation.
    #[inline]
    pub fn record_read(&self, n: u64) {
        self.read_bytes.fetch_add(n, Ordering::Relaxed);
        self.read_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` bytes written in one operation.
    #[inline]
    pub fn record_write(&self, n: u64) {
        self.written_bytes.fetch_add(n, Ordering::Relaxed);
        self.write_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the start of a new sequential stream (an approximate seek).
    #[inline]
    pub fn record_seek(&self) {
        self.seeks.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes read since creation.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes.load(Ordering::Relaxed)
    }

    /// Total bytes written since creation.
    pub fn written_bytes(&self) -> u64 {
        self.written_bytes.load(Ordering::Relaxed)
    }

    /// Total read operations since creation.
    pub fn read_ops(&self) -> u64 {
        self.read_ops.load(Ordering::Relaxed)
    }

    /// Total write operations since creation.
    pub fn write_ops(&self) -> u64 {
        self.write_ops.load(Ordering::Relaxed)
    }

    /// Total stream-open events (approximate seeks) since creation.
    pub fn seeks(&self) -> u64 {
        self.seeks.load(Ordering::Relaxed)
    }

    /// Capture the current values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            read_bytes: self.read_bytes(),
            written_bytes: self.written_bytes(),
            read_ops: self.read_ops(),
            write_ops: self.write_ops(),
            seeks: self.seeks(),
        }
    }

    /// Reset all counters to zero. Intended for benchmark harness phases.
    pub fn reset(&self) {
        self.read_bytes.store(0, Ordering::Relaxed);
        self.written_bytes.store(0, Ordering::Relaxed);
        self.read_ops.store(0, Ordering::Relaxed);
        self.write_ops.store(0, Ordering::Relaxed);
        self.seeks.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`IoCounters`], supporting deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Bytes read at snapshot time.
    pub read_bytes: u64,
    /// Bytes written at snapshot time.
    pub written_bytes: u64,
    /// Read operations at snapshot time.
    pub read_ops: u64,
    /// Write operations at snapshot time.
    pub write_ops: u64,
    /// Stream-open events at snapshot time.
    pub seeks: u64,
}

impl IoSnapshot {
    /// The traffic that happened between `earlier` and `self`.
    ///
    /// Counters are monotone, so all fields of the result are
    /// non-negative as long as `earlier` was truly taken earlier.
    pub fn delta(&self, earlier: &IoSnapshot) -> IoSnapshot {
        IoSnapshot {
            read_bytes: self.read_bytes - earlier.read_bytes,
            written_bytes: self.written_bytes - earlier.written_bytes,
            read_ops: self.read_ops - earlier.read_ops,
            write_ops: self.write_ops - earlier.write_ops,
            seeks: self.seeks - earlier.seeks,
        }
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.written_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn records_and_snapshots() {
        let c = IoCounters::new();
        c.record_read(100);
        c.record_write(50);
        c.record_seek();
        let s = c.snapshot();
        assert_eq!(s.read_bytes, 100);
        assert_eq!(s.written_bytes, 50);
        assert_eq!(s.read_ops, 1);
        assert_eq!(s.write_ops, 1);
        assert_eq!(s.seeks, 1);
        assert_eq!(s.total_bytes(), 150);
    }

    #[test]
    fn delta_between_snapshots() {
        let c = IoCounters::new();
        c.record_read(10);
        let a = c.snapshot();
        c.record_read(7);
        c.record_write(3);
        let b = c.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.read_bytes, 7);
        assert_eq!(d.written_bytes, 3);
        assert_eq!(d.read_ops, 1);
    }

    #[test]
    fn reset_zeroes_everything() {
        let c = IoCounters::new();
        c.record_read(10);
        c.record_write(10);
        c.record_seek();
        c.reset();
        assert_eq!(c.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = IoCounters::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.record_read(1);
                        c.record_write(2);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.read_bytes(), 8 * 1000);
        assert_eq!(c.written_bytes(), 2 * 8 * 1000);
    }
}
