//! Error type shared by the storage layer.

use std::fmt;
use std::io;

/// Result alias used across the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying operating-system I/O failure.
    Io(io::Error),
    /// A named file does not exist on the disk.
    NotFound(String),
    /// A file exists but its header or checksum is invalid.
    Corrupt { name: String, reason: String },
    /// A file ended before the expected number of bytes was read — the
    /// stream's reported length and the delivered bytes disagree, which
    /// means truncation (or a lying reader), never a transient condition.
    ShortRead {
        name: String,
        expected: u64,
        actual: u64,
    },
    /// A manifest line could not be parsed.
    Manifest { line: usize, reason: String },
    /// An operation was rejected by injected fault (tests only).
    InjectedFault(String),
    /// The requested operation would exceed the configured memory budget.
    BudgetExceeded { requested: u64, available: u64 },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::NotFound(name) => write!(f, "file not found: {name}"),
            StorageError::Corrupt { name, reason } => {
                write!(f, "corrupt file {name}: {reason}")
            }
            StorageError::ShortRead {
                name,
                expected,
                actual,
            } => write!(
                f,
                "short read on {name}: expected {expected} bytes, got {actual}"
            ),
            StorageError::Manifest { line, reason } => {
                write!(f, "manifest parse error at line {line}: {reason}")
            }
            StorageError::InjectedFault(what) => write!(f, "injected fault: {what}"),
            StorageError::BudgetExceeded {
                requested,
                available,
            } => write!(
                f,
                "memory budget exceeded: requested {requested} bytes, {available} available"
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::NotFound("shard_0_1.bin".into());
        assert!(e.to_string().contains("shard_0_1.bin"));
        let e = StorageError::BudgetExceeded {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn short_read_names_file_and_lengths() {
        let e = StorageError::ShortRead {
            name: "ss_0_1.bin".into(),
            expected: 4096,
            actual: 100,
        };
        let s = e.to_string();
        assert!(s.contains("ss_0_1.bin"));
        assert!(s.contains("4096"));
        assert!(s.contains("100"));
    }

    #[test]
    fn io_error_converts() {
        let io = io::Error::other("boom");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
