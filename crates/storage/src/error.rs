//! Error type shared by the storage layer.

use std::fmt;
use std::io;

/// Result alias used across the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying operating-system I/O failure.
    Io(io::Error),
    /// A named file does not exist on the disk.
    NotFound(String),
    /// A file exists but its header or checksum is invalid.
    Corrupt { name: String, reason: String },
    /// A file ended before the expected number of bytes was read — the
    /// stream's reported length and the delivered bytes disagree. On real
    /// devices this is usually a truncated or still-settling file; a retry
    /// against a healthy disk either succeeds or converts into a
    /// [`StorageError::Corrupt`] at decode time, so it is classed
    /// transient.
    ShortRead {
        name: String,
        expected: u64,
        actual: u64,
    },
    /// A manifest line could not be parsed.
    Manifest { line: usize, reason: String },
    /// An operation was rejected by injected fault (tests only).
    InjectedFault(String),
    /// The requested operation would exceed the configured memory budget.
    BudgetExceeded { requested: u64, available: u64 },
    /// A read exceeded its watchdog deadline: the device (or a wrapper
    /// emulating one) stopped answering. Raised *instead of* blocking
    /// forever — the stalled syscall itself may still be pending on a
    /// detached thread.
    Stalled { name: String, waited_ms: u64 },
}

/// Coarse failure classes driving retry decisions.
///
/// Every [`StorageError`] variant maps to exactly one class (see
/// [`StorageError::class`]); the retry layer only ever re-issues
/// [`ErrorClass::Transient`] failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorClass {
    /// Plausibly goes away on retry: EIO/EINTR-class syscall failures and
    /// short reads.
    Transient,
    /// The bytes are there but wrong: checksum/structure/manifest damage.
    /// Retrying re-reads the same wrong bytes; scrub/quarantine territory.
    Corruption,
    /// Deterministic and permanent for this run: missing files, exhausted
    /// budgets, tripped watchdogs, scripted test faults.
    Fatal,
}

impl StorageError {
    /// The failure class of this error. Exhaustive by construction: adding
    /// a variant forces a decision here (and the `taxonomy_is_exhaustive`
    /// test enumerates every variant).
    pub fn class(&self) -> ErrorClass {
        match self {
            // EINTR, EIO, EAGAIN and friends: the canonical transient
            // failures retries exist for. (A genuinely dead disk surfaces
            // as retry exhaustion with this same error attached.)
            StorageError::Io(_) => ErrorClass::Transient,
            StorageError::ShortRead { .. } => ErrorClass::Transient,
            StorageError::Corrupt { .. } => ErrorClass::Corruption,
            StorageError::Manifest { .. } => ErrorClass::Corruption,
            StorageError::NotFound(_) => ErrorClass::Fatal,
            StorageError::BudgetExceeded { .. } => ErrorClass::Fatal,
            StorageError::InjectedFault(_) => ErrorClass::Fatal,
            // Already waited a full deadline; the retry layer must not
            // multiply deadlines by attempt counts.
            StorageError::Stalled { .. } => ErrorClass::Fatal,
        }
    }

    /// Whether a retry of the failed operation could plausibly succeed.
    pub fn is_transient(&self) -> bool {
        self.class() == ErrorClass::Transient
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::NotFound(name) => write!(f, "file not found: {name}"),
            StorageError::Corrupt { name, reason } => {
                write!(f, "corrupt file {name}: {reason}")
            }
            StorageError::ShortRead {
                name,
                expected,
                actual,
            } => write!(
                f,
                "short read on {name}: expected {expected} bytes, got {actual}"
            ),
            StorageError::Manifest { line, reason } => {
                write!(f, "manifest parse error at line {line}: {reason}")
            }
            StorageError::InjectedFault(what) => write!(f, "injected fault: {what}"),
            StorageError::BudgetExceeded {
                requested,
                available,
            } => write!(
                f,
                "memory budget exceeded: requested {requested} bytes, {available} available"
            ),
            StorageError::Stalled { name, waited_ms } => write!(
                f,
                "i/o stalled on {name}: no completion within {waited_ms} ms watchdog deadline"
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StorageError::NotFound("shard_0_1.bin".into());
        assert!(e.to_string().contains("shard_0_1.bin"));
        let e = StorageError::BudgetExceeded {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn short_read_names_file_and_lengths() {
        let e = StorageError::ShortRead {
            name: "ss_0_1.bin".into(),
            expected: 4096,
            actual: 100,
        };
        let s = e.to_string();
        assert!(s.contains("ss_0_1.bin"));
        assert!(s.contains("4096"));
        assert!(s.contains("100"));
    }

    #[test]
    fn io_error_converts() {
        let io = io::Error::other("boom");
        let e: StorageError = io.into();
        assert!(matches!(e, StorageError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn stalled_names_file_and_deadline() {
        let e = StorageError::Stalled {
            name: "ss_3_4.bin".into(),
            waited_ms: 250,
        };
        let s = e.to_string();
        assert!(s.contains("ss_3_4.bin"));
        assert!(s.contains("250"));
    }

    /// One sample per variant; a new variant fails to compile here until
    /// it is added, and must pick a class in `StorageError::class`.
    fn every_variant() -> Vec<StorageError> {
        vec![
            StorageError::Io(io::Error::other("eio")),
            StorageError::NotFound("x".into()),
            StorageError::Corrupt {
                name: "x".into(),
                reason: "bad checksum".into(),
            },
            StorageError::ShortRead {
                name: "x".into(),
                expected: 2,
                actual: 1,
            },
            StorageError::Manifest {
                line: 1,
                reason: "bad".into(),
            },
            StorageError::InjectedFault("scripted".into()),
            StorageError::BudgetExceeded {
                requested: 2,
                available: 1,
            },
            StorageError::Stalled {
                name: "x".into(),
                waited_ms: 100,
            },
        ]
    }

    #[test]
    fn taxonomy_is_exhaustive() {
        for e in every_variant() {
            // Forcing the compiler through `class()` for every variant;
            // `is_transient` must agree with the class.
            let class = e.class();
            assert_eq!(e.is_transient(), class == ErrorClass::Transient, "{e}");
        }
    }

    #[test]
    fn taxonomy_classes_are_as_documented() {
        use ErrorClass::*;
        let expect = [
            Transient,  // Io
            Fatal,      // NotFound
            Corruption, // Corrupt
            Transient,  // ShortRead
            Corruption, // Manifest
            Fatal,      // InjectedFault
            Fatal,      // BudgetExceeded
            Fatal,      // Stalled
        ];
        for (e, want) in every_variant().iter().zip(expect) {
            assert_eq!(e.class(), want, "{e}");
        }
    }
}
