//! Page-aligned read buffers with pooled reuse.
//!
//! The streamed engines read the same sub-shard files every iteration;
//! allocating a fresh `Vec<u8>` per read both churns the allocator and
//! hands back 1-byte-aligned memory that the zero-copy views cannot cast
//! to typed slices. [`BufferPool`] recycles page-aligned buffers instead:
//! a read borrows a buffer, the decoded view holds it (shared via `Arc`),
//! and the buffer returns to the pool when the last reference drops.
//!
//! Alignment comes from a `#[repr(align(4096))]` page type — a `Vec` of
//! pages is page-aligned by construction, with no `libc`/allocator tricks.
//! [`SharedBytes`] is the common currency handed to decoders: either a
//! pooled buffer or an `Arc<Vec<u8>>` taken straight from a [`MemDisk`]
//! file with no copy at all.
//!
//! [`MemDisk`]: crate::disk::MemDisk

use std::sync::Arc;

use parking_lot::Mutex;

/// Buffer alignment (one x86-64 page).
pub const PAGE_SIZE: usize = 4096;

/// One page of bytes; the alignment carrier for [`AlignedBuf`].
#[repr(C, align(4096))]
#[derive(Clone, Copy)]
struct Page([u8; PAGE_SIZE]);

const ZERO_PAGE: Page = Page([0u8; PAGE_SIZE]);

/// A growable byte buffer whose storage is always page-aligned.
pub struct AlignedBuf {
    pages: Vec<Page>,
    len: usize,
}

impl AlignedBuf {
    /// An empty buffer with capacity for `bytes` bytes.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            pages: Vec::with_capacity(bytes.div_ceil(PAGE_SIZE)),
            len: 0,
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity in bytes (whole pages).
    pub fn capacity(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Resize to `len` bytes, growing by whole zeroed pages as needed.
    /// Existing page contents are retained (callers overwrite them).
    pub fn resize(&mut self, len: usize) {
        let pages = len.div_ceil(PAGE_SIZE);
        if pages > self.pages.len() {
            self.pages.resize(pages, ZERO_PAGE);
        }
        self.len = len;
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        // Safety: `Page` is a plain byte array (no padding, no invalid bit
        // patterns) and `len <= pages.len() * PAGE_SIZE` by construction.
        unsafe { std::slice::from_raw_parts(self.pages.as_ptr().cast::<u8>(), self.len) }
    }

    /// The bytes as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // Safety: as in `as_slice`, plus exclusive access via `&mut self`.
        unsafe { std::slice::from_raw_parts_mut(self.pages.as_mut_ptr().cast::<u8>(), self.len) }
    }
}

/// How many idle buffers a [`BufferPool`] retains. Streaming engines have
/// at most the prefetch ring depth + one buffer in flight per consumer;
/// a small cap bounds idle memory while still avoiding steady-state
/// allocation.
const MAX_POOLED: usize = 8;

/// A free-list of [`AlignedBuf`]s shared between the engine thread and the
/// prefetch worker.
#[derive(Default)]
pub struct BufferPool {
    free: Mutex<Vec<AlignedBuf>>,
}

impl BufferPool {
    /// A fresh, empty pool behind an `Arc` (buffers hold a handle back to
    /// the pool so they can return themselves on drop).
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Number of idle buffers currently pooled.
    pub fn idle(&self) -> usize {
        self.free.lock().len()
    }

    /// Borrow a buffer resized to `len` bytes (contents unspecified; the
    /// caller fills it). Reuses the largest idle buffer, else allocates.
    pub fn take(self: &Arc<Self>, len: usize) -> PooledBuf {
        let mut buf = self
            .free
            .lock()
            .pop()
            .unwrap_or_else(|| AlignedBuf::with_capacity(len));
        buf.resize(len);
        PooledBuf {
            buf: Some(buf),
            pool: Arc::clone(self),
        }
    }

    fn put(&self, buf: AlignedBuf) {
        let mut free = self.free.lock();
        if free.len() < MAX_POOLED {
            // Keep the largest buffers: sort insertion point by capacity so
            // `pop` above reuses the biggest first and small early buffers
            // age out.
            let at = free.partition_point(|b| b.capacity() <= buf.capacity());
            free.insert(at, buf);
        }
    }
}

/// A buffer borrowed from a [`BufferPool`]; returns itself on drop.
pub struct PooledBuf {
    buf: Option<AlignedBuf>,
    pool: Arc<BufferPool>,
}

impl PooledBuf {
    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        self.buf.as_ref().expect("present until drop").as_slice()
    }

    /// The bytes as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        self.buf.as_mut().expect("present until drop").as_mut_slice()
    }

    /// The underlying aligned buffer, for APIs that fill it in place
    /// (e.g. [`Disk::read_into`](crate::disk::Disk::read_into)).
    pub fn aligned_mut(&mut self) -> &mut AlignedBuf {
        self.buf.as_mut().expect("present until drop")
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.as_ref().expect("present until drop").len()
    }

    /// Whether the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(buf) = self.buf.take() {
            self.pool.put(buf);
        }
    }
}

/// Shared immutable bytes backing a zero-copy view.
///
/// Cloning is reference-counted; the underlying storage is freed (pooled
/// buffers: returned to their pool) when the last clone drops.
#[derive(Clone)]
pub enum SharedBytes {
    /// A page-aligned buffer borrowed from a [`BufferPool`] — the disk
    /// read path.
    Pooled(Arc<PooledBuf>),
    /// Bytes shared directly from an in-memory file ([`MemDisk`]) — no
    /// copy was made. Alignment is whatever the allocator gave the vector
    /// (word-aligned on all supported allocators; views re-check anyway).
    ///
    /// [`MemDisk`]: crate::disk::MemDisk
    Owned(Arc<Vec<u8>>),
}

impl SharedBytes {
    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match self {
            SharedBytes::Pooled(b) => b.as_slice(),
            SharedBytes::Owned(v) => v.as_slice(),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// Whether there are no bytes.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }
}

impl From<Vec<u8>> for SharedBytes {
    fn from(v: Vec<u8>) -> Self {
        SharedBytes::Owned(Arc::new(v))
    }
}

impl From<Arc<Vec<u8>>> for SharedBytes {
    fn from(v: Arc<Vec<u8>>) -> Self {
        SharedBytes::Owned(v)
    }
}

impl std::fmt::Debug for SharedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            SharedBytes::Pooled(_) => "Pooled",
            SharedBytes::Owned(_) => "Owned",
        };
        write!(f, "SharedBytes::{kind}({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_buf_is_page_aligned_and_resizable() {
        let mut b = AlignedBuf::with_capacity(10);
        assert!(b.is_empty());
        b.resize(PAGE_SIZE + 1);
        assert_eq!(b.len(), PAGE_SIZE + 1);
        assert_eq!(b.capacity(), 2 * PAGE_SIZE);
        assert_eq!(b.as_slice().as_ptr() as usize % PAGE_SIZE, 0);
        b.as_mut_slice()[PAGE_SIZE] = 7;
        // Shrinking keeps the pages; growing again retains contents.
        b.resize(4);
        b.resize(PAGE_SIZE + 1);
        assert_eq!(b.as_slice()[PAGE_SIZE], 7);
    }

    #[test]
    fn pool_reuses_buffers() {
        let pool = BufferPool::new();
        let first = pool.take(100);
        let ptr = first.as_slice().as_ptr();
        drop(first);
        assert_eq!(pool.idle(), 1);
        // Same allocation comes back, resized.
        let again = pool.take(50);
        assert_eq!(again.as_slice().as_ptr(), ptr);
        assert_eq!(again.len(), 50);
        drop(again);
    }

    #[test]
    fn pool_prefers_largest_and_caps_idle() {
        let pool = BufferPool::new();
        let small = pool.take(10);
        let big = pool.take(10 * PAGE_SIZE);
        let big_ptr = big.as_slice().as_ptr();
        drop(small);
        drop(big);
        assert_eq!(pool.idle(), 2);
        assert_eq!(pool.take(1).as_slice().as_ptr(), big_ptr);
        // Overflow beyond the cap is dropped, not hoarded.
        let many: Vec<_> = (0..2 * MAX_POOLED).map(|_| pool.take(8)).collect();
        drop(many);
        assert!(pool.idle() <= MAX_POOLED);
    }

    #[test]
    fn shared_bytes_variants_expose_the_same_api() {
        let pool = BufferPool::new();
        let mut p = pool.take(3);
        p.as_mut_slice().copy_from_slice(b"abc");
        let pooled = SharedBytes::Pooled(Arc::new(p));
        let owned = SharedBytes::from(b"abc".to_vec());
        for b in [&pooled, &owned] {
            assert_eq!(b.as_slice(), b"abc");
            assert_eq!(b.len(), 3);
            assert!(!b.is_empty());
        }
        // Clones share storage.
        let c = pooled.clone();
        assert_eq!(c.as_slice().as_ptr(), pooled.as_slice().as_ptr());
        drop(pooled);
        drop(c);
        assert_eq!(pool.idle(), 1, "buffer returns when the last clone drops");
    }
}
