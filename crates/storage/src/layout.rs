//! On-disk layout ordering of blob names.
//!
//! The preprocessor creates files in row-major cell order (`ss_0_0.bin`,
//! `ss_0_1.bin`, …, then delta generations per cell), and extent-based
//! filesystems tend to lay sequentially-created files out sequentially.
//! Sorting names the way they were created therefore approximates LBA
//! order — the key both the engine's I/O scheduler (issuing each window's
//! reads in layout order) and the paced-device emulation (charging seeks
//! on backward jumps) rely on.

/// A file-name sort key approximating on-disk layout: alternating text
/// and numeric runs compared piecewise, so `ss_0_2.bin < ss_0_10.bin`
/// and `ss_0_1.bin < ss_0_1.g1.d2.bin` — the order the preprocessor
/// created (and the filesystem likely laid out) the files in.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum LayoutToken {
    /// A maximal run of non-digit characters.
    Text(String),
    /// A maximal run of digits, compared numerically.
    Num(u64),
}

/// Tokenise `name` into its layout-comparison key.
pub fn layout_key(name: &str) -> Vec<LayoutToken> {
    let mut out = Vec::new();
    let mut chars = name.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() {
            let mut n = 0u64;
            while let Some(&d) = chars.peek() {
                let Some(v) = d.to_digit(10) else { break };
                n = n.saturating_mul(10).saturating_add(v as u64);
                chars.next();
            }
            out.push(LayoutToken::Num(n));
        } else {
            let mut s = String::new();
            while let Some(&d) = chars.peek() {
                if d.is_ascii_digit() {
                    break;
                }
                s.push(d);
                chars.next();
            }
            out.push(LayoutToken::Text(s));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_key_orders_numerically() {
        let mut names = vec![
            "ss_0_10.bin".to_string(),
            "ss_0_2.bin".to_string(),
            "ss_0_1.g1.d2.bin".to_string(),
            "ss_0_1.bin".to_string(),
            "hub_3_1.bin".to_string(),
        ];
        names.sort_by_key(|n| layout_key(n));
        assert_eq!(
            names,
            vec![
                "hub_3_1.bin",
                "ss_0_1.bin",
                "ss_0_1.g1.d2.bin",
                "ss_0_2.bin",
                "ss_0_10.bin",
            ]
        );
    }
}
