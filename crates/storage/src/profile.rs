//! Device cost models.
//!
//! The paper evaluates NXgraph on two 128 GB SSDs in RAID-0 and on a 1 TB
//! HDD; several comparisons (Table V, Fig 9) hinge on the device type. We
//! reproduce those comparisons on arbitrary hardware by converting *counted*
//! bytes and seeks (see [`crate::counter`]) into modeled I/O time with a
//! simple bandwidth + seek-latency model:
//!
//! ```text
//! t_io = read_bytes / read_bw + written_bytes / write_bw + seeks · seek_latency
//! ```
//!
//! The model intentionally favours the same thing the paper's designs
//! optimise for — fewer bytes and streaming (few-seek) access — so the
//! *shape* of every device-dependent figure is preserved.

use std::time::Duration;

use crate::counter::IoSnapshot;

/// A storage device cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// Sequential read bandwidth in bytes/second.
    pub read_bw: f64,
    /// Sequential write bandwidth in bytes/second.
    pub write_bw: f64,
    /// Latency charged per stream-open (seek) event.
    pub seek_latency: Duration,
}

impl DeviceProfile {
    /// Two SATA SSDs in RAID 0, as in the paper's main testbed.
    pub const SSD_RAID0: DeviceProfile = DeviceProfile {
        name: "ssd-raid0",
        read_bw: 1.0e9,
        write_bw: 0.8e9,
        seek_latency: Duration::from_micros(60),
    };

    /// A single SATA SSD.
    pub const SSD: DeviceProfile = DeviceProfile {
        name: "ssd",
        read_bw: 0.5e9,
        write_bw: 0.4e9,
        seek_latency: Duration::from_micros(80),
    };

    /// A 7200 rpm hard disk: decent streaming bandwidth, expensive seeks.
    pub const HDD: DeviceProfile = DeviceProfile {
        name: "hdd",
        read_bw: 0.15e9,
        write_bw: 0.12e9,
        seek_latency: Duration::from_millis(8),
    };

    /// An ideal in-memory device (no modeled I/O cost).
    pub const RAM: DeviceProfile = DeviceProfile {
        name: "ram",
        read_bw: f64::INFINITY,
        write_bw: f64::INFINITY,
        seek_latency: Duration::ZERO,
    };

    /// Modeled *transfer* time: bandwidth terms only, no seek charge.
    ///
    /// All engines in this repository stream their files sequentially and
    /// the preprocessor lays files out contiguously, so at paper scale the
    /// seek term vanishes; comparisons of transfer time are therefore the
    /// scale-invariant analogue of the paper's I/O-bound elapsed times.
    pub fn transfer_time(&self, io: &IoSnapshot) -> Duration {
        let read_s = if self.read_bw.is_finite() {
            io.read_bytes as f64 / self.read_bw
        } else {
            0.0
        };
        let write_s = if self.write_bw.is_finite() {
            io.written_bytes as f64 / self.write_bw
        } else {
            0.0
        };
        Duration::from_secs_f64(read_s + write_s)
    }

    /// Modeled time to perform the traffic recorded in `io`.
    pub fn modeled_time(&self, io: &IoSnapshot) -> Duration {
        let read_s = if self.read_bw.is_finite() {
            io.read_bytes as f64 / self.read_bw
        } else {
            0.0
        };
        let write_s = if self.write_bw.is_finite() {
            io.written_bytes as f64 / self.write_bw
        } else {
            0.0
        };
        let seek = self.seek_latency * io.seeks as u32;
        Duration::from_secs_f64(read_s + write_s) + seek
    }

    /// Look up a built-in profile by name.
    pub fn by_name(name: &str) -> Option<DeviceProfile> {
        match name {
            "ssd-raid0" => Some(Self::SSD_RAID0),
            "ssd" => Some(Self::SSD),
            "hdd" => Some(Self::HDD),
            "ram" => Some(Self::RAM),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io(read: u64, write: u64, seeks: u64) -> IoSnapshot {
        IoSnapshot {
            read_bytes: read,
            written_bytes: write,
            read_ops: 1,
            write_ops: 1,
            seeks,
        }
    }

    #[test]
    fn ram_is_free() {
        let t = DeviceProfile::RAM.modeled_time(&io(1 << 30, 1 << 30, 1000));
        assert_eq!(t, Duration::ZERO);
    }

    #[test]
    fn hdd_slower_than_ssd_for_same_traffic() {
        let traffic = io(1 << 30, 1 << 28, 100);
        let hdd = DeviceProfile::HDD.modeled_time(&traffic);
        let ssd = DeviceProfile::SSD.modeled_time(&traffic);
        let raid = DeviceProfile::SSD_RAID0.modeled_time(&traffic);
        assert!(hdd > ssd, "hdd {hdd:?} should exceed ssd {ssd:?}");
        assert!(ssd > raid);
    }

    #[test]
    fn seeks_dominate_on_hdd() {
        // 10k seeks at 8ms = 80s, dwarfing 1 MiB of transfer.
        let seeky = DeviceProfile::HDD.modeled_time(&io(1 << 20, 0, 10_000));
        let stream = DeviceProfile::HDD.modeled_time(&io(1 << 20, 0, 1));
        assert!(seeky.as_secs_f64() > 50.0);
        assert!(stream.as_secs_f64() < 1.0);
    }

    #[test]
    fn bandwidth_math() {
        // 150 MB at 150 MB/s ≈ 1s read.
        let t = DeviceProfile::HDD.modeled_time(&io(150_000_000, 0, 0));
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn by_name_roundtrip() {
        for name in ["ssd-raid0", "ssd", "hdd", "ram"] {
            assert_eq!(DeviceProfile::by_name(name).unwrap().name, name);
        }
        assert!(DeviceProfile::by_name("floppy").is_none());
    }
}
