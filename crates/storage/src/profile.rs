//! Device cost models and per-disk I/O statistics.
//!
//! The paper evaluates NXgraph on two 128 GB SSDs in RAID-0 and on a 1 TB
//! HDD; several comparisons (Table V, Fig 9) hinge on the device type. We
//! reproduce those comparisons on arbitrary hardware by converting *counted*
//! bytes and seeks (see [`crate::counter`]) into modeled I/O time with a
//! simple bandwidth + seek-latency model:
//!
//! ```text
//! t_io = read_bytes / read_bw + written_bytes / write_bw + seeks · seek_latency
//! ```
//!
//! The model intentionally favours the same thing the paper's designs
//! optimise for — fewer bytes and streaming (few-seek) access — so the
//! *shape* of every device-dependent figure is preserved.
//!
//! Alongside the models lives [`IoProfile`]: the per-disk *measured* I/O
//! statistics (syscalls, direct-read traffic, scheduler queue depth) that
//! the [`IoCounters`](crate::counter::IoCounters) byte totals deliberately
//! do not carry. Counters answer "how many bytes moved"; the profile
//! answers "through which path, in how many submissions, and how deep was
//! the queue".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::counter::IoSnapshot;

/// Shared, atomically-updated I/O path statistics for one disk.
///
/// All fields are monotonically increasing except `queue_depth`, a gauge
/// maintained by the engine's I/O scheduler (`enqueue`/`dequeue`); its
/// high-water mark is kept in `max_queue_depth`.
#[derive(Debug, Default)]
pub struct IoProfile {
    read_syscalls: AtomicU64,
    write_syscalls: AtomicU64,
    opens: AtomicU64,
    direct_reads: AtomicU64,
    direct_bytes: AtomicU64,
    direct_fallbacks: AtomicU64,
    cache_drops: AtomicU64,
    sched_batches: AtomicU64,
    sched_reads: AtomicU64,
    queue_depth: AtomicU64,
    max_queue_depth: AtomicU64,
    retries: AtomicU64,
    giveups: AtomicU64,
    injected_faults: AtomicU64,
    stalls: AtomicU64,
}

impl IoProfile {
    /// Create a fresh, shareable profile.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// One `read(2)` completed (any path).
    pub fn record_read_syscall(&self) {
        self.read_syscalls.fetch_add(1, Ordering::Relaxed);
    }

    /// One `write(2)` completed.
    pub fn record_write_syscall(&self) {
        self.write_syscalls.fetch_add(1, Ordering::Relaxed);
    }

    /// One file opened (read or write).
    pub fn record_open(&self) {
        self.opens.fetch_add(1, Ordering::Relaxed);
    }

    /// One `read(2)` completed through an `O_DIRECT` descriptor,
    /// delivering `bytes` bytes straight past the page cache.
    pub fn record_direct_read(&self, bytes: u64) {
        self.direct_reads.fetch_add(1, Ordering::Relaxed);
        self.direct_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// A direct open/read was refused and the buffered path took over.
    pub fn record_direct_fallback(&self) {
        self.direct_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// One file's pages were evicted via `posix_fadvise(DONTNEED)`.
    pub fn record_cache_drop(&self) {
        self.cache_drops.fetch_add(1, Ordering::Relaxed);
    }

    /// The I/O scheduler issued one batch of `reads` reads.
    pub fn record_sched_batch(&self, reads: u64) {
        self.sched_batches.fetch_add(1, Ordering::Relaxed);
        self.sched_reads.fetch_add(reads, Ordering::Relaxed);
    }

    /// A scheduled read entered the in-flight queue.
    pub fn enqueue(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// A scheduled read left the in-flight queue (delivered to a consumer).
    pub fn dequeue(&self) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// A transient failure was re-issued by the retry layer.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// The retry layer exhausted its attempts and surfaced the error.
    pub fn record_giveup(&self) {
        self.giveups.fetch_add(1, Ordering::Relaxed);
    }

    /// A fault-injection wrapper fired one scripted/seeded fault.
    pub fn record_injected_fault(&self) {
        self.injected_faults.fetch_add(1, Ordering::Relaxed);
    }

    /// A read tripped the hung-I/O watchdog deadline.
    pub fn record_stall(&self) {
        self.stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of every statistic.
    pub fn snapshot(&self) -> IoProfileSnapshot {
        IoProfileSnapshot {
            read_syscalls: self.read_syscalls.load(Ordering::Relaxed),
            write_syscalls: self.write_syscalls.load(Ordering::Relaxed),
            opens: self.opens.load(Ordering::Relaxed),
            direct_reads: self.direct_reads.load(Ordering::Relaxed),
            direct_bytes: self.direct_bytes.load(Ordering::Relaxed),
            direct_fallbacks: self.direct_fallbacks.load(Ordering::Relaxed),
            cache_drops: self.cache_drops.load(Ordering::Relaxed),
            sched_batches: self.sched_batches.load(Ordering::Relaxed),
            sched_reads: self.sched_reads.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            giveups: self.giveups.load(Ordering::Relaxed),
            injected_faults: self.injected_faults.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of an [`IoProfile`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoProfileSnapshot {
    /// `read(2)` calls completed (buffered + direct).
    pub read_syscalls: u64,
    /// `write(2)` calls completed.
    pub write_syscalls: u64,
    /// Files opened.
    pub opens: u64,
    /// `read(2)` calls served through `O_DIRECT`.
    pub direct_reads: u64,
    /// Bytes delivered through `O_DIRECT`.
    pub direct_bytes: u64,
    /// Times the direct path was refused and buffered I/O took over.
    pub direct_fallbacks: u64,
    /// Files evicted from the page cache on request.
    pub cache_drops: u64,
    /// Batches issued by the I/O scheduler.
    pub sched_batches: u64,
    /// Individual reads issued by the I/O scheduler.
    pub sched_reads: u64,
    /// Scheduled reads currently in flight (gauge).
    pub queue_depth: u64,
    /// High-water mark of the in-flight queue.
    pub max_queue_depth: u64,
    /// Transient failures re-issued by the retry layer.
    pub retries: u64,
    /// Reads that exhausted their retry budget and surfaced an error.
    pub giveups: u64,
    /// Faults fired by an injection wrapper (tests/chaos runs only).
    pub injected_faults: u64,
    /// Reads that tripped the hung-I/O watchdog.
    pub stalls: u64,
}

impl IoProfileSnapshot {
    /// Statistics accumulated since `earlier` (monotonic fields
    /// subtracted; the `queue_depth` gauge and its high-water mark are
    /// carried over from `self` as-is).
    pub fn delta(&self, earlier: &IoProfileSnapshot) -> IoProfileSnapshot {
        IoProfileSnapshot {
            read_syscalls: self.read_syscalls - earlier.read_syscalls,
            write_syscalls: self.write_syscalls - earlier.write_syscalls,
            opens: self.opens - earlier.opens,
            direct_reads: self.direct_reads - earlier.direct_reads,
            direct_bytes: self.direct_bytes - earlier.direct_bytes,
            direct_fallbacks: self.direct_fallbacks - earlier.direct_fallbacks,
            cache_drops: self.cache_drops - earlier.cache_drops,
            sched_batches: self.sched_batches - earlier.sched_batches,
            sched_reads: self.sched_reads - earlier.sched_reads,
            queue_depth: self.queue_depth,
            max_queue_depth: self.max_queue_depth,
            retries: self.retries - earlier.retries,
            giveups: self.giveups - earlier.giveups,
            injected_faults: self.injected_faults - earlier.injected_faults,
            stalls: self.stalls - earlier.stalls,
        }
    }
}

/// A storage device cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// Sequential read bandwidth in bytes/second.
    pub read_bw: f64,
    /// Sequential write bandwidth in bytes/second.
    pub write_bw: f64,
    /// Latency charged per stream-open (seek) event.
    pub seek_latency: Duration,
}

impl DeviceProfile {
    /// Two SATA SSDs in RAID 0, as in the paper's main testbed.
    pub const SSD_RAID0: DeviceProfile = DeviceProfile {
        name: "ssd-raid0",
        read_bw: 1.0e9,
        write_bw: 0.8e9,
        seek_latency: Duration::from_micros(60),
    };

    /// A single SATA SSD.
    pub const SSD: DeviceProfile = DeviceProfile {
        name: "ssd",
        read_bw: 0.5e9,
        write_bw: 0.4e9,
        seek_latency: Duration::from_micros(80),
    };

    /// A 7200 rpm hard disk: decent streaming bandwidth, expensive seeks.
    pub const HDD: DeviceProfile = DeviceProfile {
        name: "hdd",
        read_bw: 0.15e9,
        write_bw: 0.12e9,
        seek_latency: Duration::from_millis(8),
    };

    /// An ideal in-memory device (no modeled I/O cost).
    pub const RAM: DeviceProfile = DeviceProfile {
        name: "ram",
        read_bw: f64::INFINITY,
        write_bw: f64::INFINITY,
        seek_latency: Duration::ZERO,
    };

    /// Modeled *transfer* time: bandwidth terms only, no seek charge.
    ///
    /// All engines in this repository stream their files sequentially and
    /// the preprocessor lays files out contiguously, so at paper scale the
    /// seek term vanishes; comparisons of transfer time are therefore the
    /// scale-invariant analogue of the paper's I/O-bound elapsed times.
    pub fn transfer_time(&self, io: &IoSnapshot) -> Duration {
        let read_s = if self.read_bw.is_finite() {
            io.read_bytes as f64 / self.read_bw
        } else {
            0.0
        };
        let write_s = if self.write_bw.is_finite() {
            io.written_bytes as f64 / self.write_bw
        } else {
            0.0
        };
        Duration::from_secs_f64(read_s + write_s)
    }

    /// Modeled time to perform the traffic recorded in `io`.
    pub fn modeled_time(&self, io: &IoSnapshot) -> Duration {
        let read_s = if self.read_bw.is_finite() {
            io.read_bytes as f64 / self.read_bw
        } else {
            0.0
        };
        let write_s = if self.write_bw.is_finite() {
            io.written_bytes as f64 / self.write_bw
        } else {
            0.0
        };
        let seek = self.seek_latency * io.seeks as u32;
        Duration::from_secs_f64(read_s + write_s) + seek
    }

    /// Look up a built-in profile by name.
    pub fn by_name(name: &str) -> Option<DeviceProfile> {
        match name {
            "ssd-raid0" => Some(Self::SSD_RAID0),
            "ssd" => Some(Self::SSD),
            "hdd" => Some(Self::HDD),
            "ram" => Some(Self::RAM),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io(read: u64, write: u64, seeks: u64) -> IoSnapshot {
        IoSnapshot {
            read_bytes: read,
            written_bytes: write,
            read_ops: 1,
            write_ops: 1,
            seeks,
        }
    }

    #[test]
    fn ram_is_free() {
        let t = DeviceProfile::RAM.modeled_time(&io(1 << 30, 1 << 30, 1000));
        assert_eq!(t, Duration::ZERO);
    }

    #[test]
    fn hdd_slower_than_ssd_for_same_traffic() {
        let traffic = io(1 << 30, 1 << 28, 100);
        let hdd = DeviceProfile::HDD.modeled_time(&traffic);
        let ssd = DeviceProfile::SSD.modeled_time(&traffic);
        let raid = DeviceProfile::SSD_RAID0.modeled_time(&traffic);
        assert!(hdd > ssd, "hdd {hdd:?} should exceed ssd {ssd:?}");
        assert!(ssd > raid);
    }

    #[test]
    fn seeks_dominate_on_hdd() {
        // 10k seeks at 8ms = 80s, dwarfing 1 MiB of transfer.
        let seeky = DeviceProfile::HDD.modeled_time(&io(1 << 20, 0, 10_000));
        let stream = DeviceProfile::HDD.modeled_time(&io(1 << 20, 0, 1));
        assert!(seeky.as_secs_f64() > 50.0);
        assert!(stream.as_secs_f64() < 1.0);
    }

    #[test]
    fn bandwidth_math() {
        // 150 MB at 150 MB/s ≈ 1s read.
        let t = DeviceProfile::HDD.modeled_time(&io(150_000_000, 0, 0));
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn io_profile_counts_and_tracks_queue_high_water() {
        let p = IoProfile::new();
        p.record_open();
        p.record_read_syscall();
        p.record_direct_read(4096);
        p.record_direct_read(8192);
        p.record_direct_fallback();
        p.record_cache_drop();
        p.record_sched_batch(3);
        p.enqueue();
        p.enqueue();
        p.dequeue();
        p.enqueue();
        let s = p.snapshot();
        assert_eq!(s.opens, 1);
        assert_eq!(s.read_syscalls, 1);
        assert_eq!(s.direct_reads, 2);
        assert_eq!(s.direct_bytes, 12288);
        assert_eq!(s.direct_fallbacks, 1);
        assert_eq!(s.cache_drops, 1);
        assert_eq!(s.sched_batches, 1);
        assert_eq!(s.sched_reads, 3);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.max_queue_depth, 2);
        let d = p.snapshot().delta(&s);
        assert_eq!(d.opens, 0);
        assert_eq!(d.queue_depth, 2, "gauge carries over in a delta");
    }

    #[test]
    fn reliability_counters_count_and_delta() {
        let p = IoProfile::new();
        p.record_retry();
        p.record_retry();
        p.record_giveup();
        p.record_injected_fault();
        p.record_injected_fault();
        p.record_injected_fault();
        p.record_stall();
        let s = p.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.giveups, 1);
        assert_eq!(s.injected_faults, 3);
        assert_eq!(s.stalls, 1);
        p.record_retry();
        let d = p.snapshot().delta(&s);
        assert_eq!(d.retries, 1);
        assert_eq!(d.giveups, 0);
        assert_eq!(d.injected_faults, 0);
        assert_eq!(d.stalls, 0);
    }

    #[test]
    fn by_name_roundtrip() {
        for name in ["ssd-raid0", "ssd", "hdd", "ram"] {
            assert_eq!(DeviceProfile::by_name(name).unwrap().name, name);
        }
        assert!(DeviceProfile::by_name("floppy").is_none());
    }
}
