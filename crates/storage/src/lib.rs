//! Storage substrate for NXgraph.
//!
//! The NXgraph paper (ICDE 2016) is fundamentally a paper about *disk I/O
//! discipline*: every update strategy (SPU / DPU / MPU) is characterised by
//! how many bytes it moves between memory and disk and whether those moves
//! are sequential. This crate provides the substrate those engines run on:
//!
//! * [`disk`] — a [`Disk`] abstraction with byte-exact I/O
//!   accounting. Implementations: [`OsDisk`] (real files),
//!   [`MemDisk`] (in-memory, for tests and RAM-disk runs),
//!   [`FaultyDisk`] (fault injection for failure tests) and
//!   [`CrashDisk`] (a power-loss simulator that replays any prefix of the
//!   recorded write/remove/rename stream, torn final writes included).
//! * [`counter`] — atomic [`IoCounters`] shared by all
//!   files of a disk; engines never bypass them, so the Table II / Fig 6
//!   byte formulas of the paper can be checked *empirically*.
//! * [`mod@format`] — little-endian binary encoding of typed arrays with
//!   checksummed headers (word-wise FNV-1a since format v2); the on-disk
//!   representation of intervals, sub-shards and hubs. Includes the
//!   slice-level [`parse_blob`](format::parse_blob) used by zero-copy
//!   views and the verify-once [`ChecksumPolicy`]. Since format v3,
//!   sub-shard and hub blobs may carry delta+varint compressed payloads
//!   (sniffed per blob via [`Encoding`], chosen at write time via
//!   [`EncodingPolicy`]).
//! * [`varint`] — the LEB128 primitive behind the v3 compressed payloads.
//! * [`pool`] — page-aligned [`BufferPool`] read buffers and the
//!   [`SharedBytes`] currency behind zero-copy decoding
//!   ([`Disk::read_shared`]).
//! * [`budget`] — explicit memory-budget accounting. The paper controls the
//!   memory knob via kernel boot options; we model the budget directly since
//!   it only ever acts through the engines' residency decisions.
//! * [`profile`] — device cost models (HDD / SSD / RAID-0 SSD) converting
//!   counted bytes + seeks into modeled I/O time, used to reproduce the
//!   paper's HDD-vs-SSD comparisons on arbitrary hardware.
//! * [`manifest`] — a tiny hand-parsed text manifest describing a prepared
//!   graph (no serde; the format is line-oriented `key = value`).

pub mod budget;
pub mod counter;
pub mod disk;
pub mod error;
pub mod fault;
pub mod format;
pub mod layout;
pub mod manifest;
pub mod paced;
pub mod pool;
pub mod profile;
pub mod retry;
pub mod varint;

pub use budget::{global_over_releases, BudgetLease, MemoryBudget};
pub use counter::{IoCounters, IoSnapshot};
pub use disk::{
    CrashDisk, CrashOp, CutPoint, Disk, DiskConfig, DiskRead, DiskWrite, FaultyDisk, MemDisk,
    OsDisk,
};
pub use error::{ErrorClass, StorageError, StorageResult};
pub use fault::{FaultDisk, FaultKind, FaultOp, FaultPlan, FaultRule, Injection};
pub use format::{ChecksumMode, ChecksumPolicy, Encoding, EncodingPolicy};
pub use layout::{layout_key, LayoutToken};
pub use manifest::{ChainInfo, GraphManifest};
pub use paced::PacedDisk;
pub use pool::{AlignedBuf, BufferPool, PooledBuf, SharedBytes};
pub use profile::{DeviceProfile, IoProfile, IoProfileSnapshot};
pub use retry::RetryPolicy;
