//! LEB128 variable-length integers — the byte-level primitive behind the
//! compressed (format v3) sub-shard and hub encodings.
//!
//! A `u32` is stored as 1–5 bytes of 7 payload bits each, low groups
//! first, with the high bit of every byte except the last set as a
//! continuation marker. The destination-sorted sub-shard columns are
//! locally monotone, so their deltas are small and the common case is a
//! single byte where the raw format spends four.

use crate::error::{StorageError, StorageResult};

/// Longest LEB128 encoding of a `u32` (⌈32/7⌉ bytes).
pub const MAX_VARINT_LEN: usize = 5;

/// Append `v` to `buf` as LEB128.
#[inline]
pub fn push_varint(buf: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        buf.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Encoded length of `v` in bytes (1–5), without writing it.
#[inline]
pub fn varint_len(v: u32) -> usize {
    // 0 encodes in one byte; otherwise one byte per started 7-bit group.
    ((32 - (v | 1).leading_zeros()) as usize).div_ceil(7)
}

/// Decode one LEB128 `u32` from `data` starting at `*pos`, advancing
/// `*pos` past it.
///
/// Errors (as [`StorageError::Corrupt`]) on truncation — the slice ends
/// mid-value — on overflow (more than [`MAX_VARINT_LEN`] bytes or set
/// bits past bit 31) and on non-canonical padding (a zero final group
/// after a continuation byte, which [`push_varint`] never emits).
/// Rejecting padding makes the encoding bijective: a checksummed v3 blob
/// is the *unique* byte string for its decoded arrays. Corrupt
/// compressed blobs therefore surface as clean errors, never as wrapped
/// values or panics.
#[inline]
pub fn read_varint(data: &[u8], pos: &mut usize, name: &str) -> StorageResult<u32> {
    let corrupt = |reason: &str| StorageError::Corrupt {
        name: name.to_string(),
        reason: reason.to_string(),
    };
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&byte) = data.get(*pos) else {
            return Err(corrupt("truncated varint"));
        };
        *pos += 1;
        let group = (byte & 0x7f) as u32;
        if shift == 28 && group > 0x0f {
            return Err(corrupt("varint overflows u32"));
        }
        value |= group << shift;
        if byte & 0x80 == 0 {
            if byte == 0 && shift > 0 {
                return Err(corrupt("non-canonical varint (padded with zero group)"));
            }
            return Ok(value);
        }
        shift += 7;
        if shift > 28 {
            return Err(corrupt("varint longer than 5 bytes"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u32) -> usize {
        let mut buf = Vec::new();
        push_varint(&mut buf, v);
        assert_eq!(buf.len(), varint_len(v), "len of {v}");
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos, "t").unwrap(), v);
        assert_eq!(pos, buf.len());
        buf.len()
    }

    #[test]
    fn known_lengths() {
        assert_eq!(roundtrip(0), 1);
        assert_eq!(roundtrip(1), 1);
        assert_eq!(roundtrip(127), 1);
        assert_eq!(roundtrip(128), 2);
        assert_eq!(roundtrip(16_383), 2);
        assert_eq!(roundtrip(16_384), 3);
        assert_eq!(roundtrip(2_097_151), 3);
        assert_eq!(roundtrip(2_097_152), 4);
        assert_eq!(roundtrip(268_435_455), 4);
        assert_eq!(roundtrip(268_435_456), 5);
        assert_eq!(roundtrip(u32::MAX), MAX_VARINT_LEN);
    }

    #[test]
    fn roundtrips_across_the_range() {
        let mut v = 1u64;
        while v <= u32::MAX as u64 {
            roundtrip(v as u32);
            roundtrip((v - 1) as u32);
            v = v.saturating_mul(3) / 2 + 1;
        }
    }

    #[test]
    fn sequences_decode_in_order() {
        let vals = [0u32, 7, 300, 1 << 20, u32::MAX, 42];
        let mut buf = Vec::new();
        for &v in &vals {
            push_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &vals {
            assert_eq!(read_varint(&buf, &mut pos, "t").unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn truncation_is_an_error() {
        let mut buf = Vec::new();
        push_varint(&mut buf, 1 << 20);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert!(
                read_varint(&buf[..cut], &mut pos, "t").is_err(),
                "cut at {cut} must fail"
            );
        }
        // Empty input.
        let mut pos = 0;
        assert!(read_varint(&[], &mut pos, "t").is_err());
    }

    #[test]
    fn overlong_and_overflowing_are_errors() {
        // Six continuation bytes: longer than any u32 encoding.
        let mut pos = 0;
        assert!(read_varint(&[0x80; 6], &mut pos, "t").is_err());
        // Non-canonical zero padding: decodes to 0 / 1 byte-wise but the
        // encoder never produces it, so it is rejected as corrupt.
        let mut pos = 0;
        assert!(read_varint(&[0x80, 0x00], &mut pos, "t").is_err());
        let mut pos = 0;
        assert!(read_varint(&[0x81, 0x80, 0x00], &mut pos, "t").is_err());
        // Five bytes whose top group sets bits past bit 31.
        let mut pos = 0;
        assert!(read_varint(&[0xff, 0xff, 0xff, 0xff, 0x7f], &mut pos, "t").is_err());
        // The maximal legal encoding still decodes.
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0xff, 0xff, 0xff, 0xff, 0x0f], &mut pos, "t").unwrap(),
            u32::MAX
        );
    }
}
