//! Scripted and seeded transient-fault injection.
//!
//! [`FaultDisk`] wraps any [`Disk`] and injects the failure modes real
//! disk-bound deployments see but the paper's fail-stop model ignores:
//! EIO on read/write/open, short reads, EINTR-style interrupted syscalls,
//! per-operation latency stalls, and ENOSPC after a byte budget. Every
//! decision comes from a replayable [`FaultPlan`] — a pure function of
//! `(plan, file name, operation class, per-(name, op) access index)` — so
//! a plan replayed over the same access sequence injects the *identical*
//! fault sequence regardless of thread interleaving, wall-clock time, or
//! previous runs. That determinism is what makes the chaos matrix
//! meaningful: a faulted run can be compared bitwise against a fault-free
//! run of the same plan.
//!
//! Seeded plans ([`FaultPlan::seeded`]) fault only *read* operations, in
//! short episodes (1–2 consecutive accesses out of every 16–31) so the
//! default 4-attempt [`RetryPolicy`](crate::retry::RetryPolicy) always
//! clears them — by construction, every seeded plan is survivable with
//! retries on. Scripted rules ([`FaultRule`]) can express anything,
//! including persistent faults that exhaust retries, open-time failures,
//! and multi-second stalls for the watchdog.
//!
//! Injection happens on the bulk paths the engines actually use:
//! [`Disk::read_into`] (which the default `read_shared` routes through,
//! so a stacked `Fault → Paced → Os` chain still reaches the inner
//! `O_DIRECT` implementation) and the writer returned by [`Disk::create`]
//! (which `write_all_to` routes through). Metadata operations pass
//! through clean. Every injection is counted — on the disk's
//! [`IoProfile`] (`injected_faults`) and in an ordered in-memory log for
//! the determinism tests.

use std::collections::HashMap;
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::counter::IoCounters;
use crate::disk::{Disk, DiskRead, DiskWrite};
use crate::error::{StorageError, StorageResult};
use crate::pool::AlignedBuf;
use crate::profile::IoProfile;

/// `errno` for "no space left on device", surfaced on injected ENOSPC.
pub const ENOSPC: i32 = 28;

/// The operation classes a fault plan distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// `Disk::open` (stream reads).
    Open,
    /// `Disk::read_into` / `read_shared` (bulk reads).
    Read,
    /// `Disk::create` / `write_all_to` (whole-file writes).
    Write,
}

/// What an injected fault does to the faulted operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an EIO-class [`io::Error`] (transient).
    ReadError,
    /// `open` fails with an EIO-class [`io::Error`] (transient).
    OpenError,
    /// A bulk read delivers only half its bytes and reports
    /// [`StorageError::ShortRead`] (transient).
    ShortRead,
    /// The operation fails with [`io::ErrorKind::Interrupted`] (EINTR).
    Interrupt,
    /// The operation sleeps this long, then proceeds normally — the
    /// hung-device mode the watchdog exists for.
    Stall(Duration),
    /// A write fails with an EIO-class [`io::Error`] (transient).
    WriteError,
}

/// One scripted fault: fault `count` consecutive accesses starting at
/// access `first` (0-based, counted per `(name, op)` pair) of every file
/// whose name contains `name_contains`.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// Substring match against the file name (empty matches every file).
    pub name_contains: String,
    /// Operation class this rule applies to.
    pub op: FaultOp,
    /// Fault to inject.
    pub kind: FaultKind,
    /// First access index (per `(name, op)`) to fault.
    pub first: u64,
    /// How many consecutive accesses fault; `u64::MAX` = forever, for
    /// retry-exhaustion tests.
    pub count: u64,
}

impl FaultRule {
    fn applies(&self, name: &str, op: FaultOp, n: u64) -> bool {
        op == self.op
            && n >= self.first
            && n - self.first < self.count
            && name.contains(&self.name_contains)
    }
}

/// FNV-1a over the seed, the file name, and the op tag: the whole source
/// of randomness in a seeded plan.
fn fnv(seed: u64, name: &str, op: FaultOp) -> u64 {
    let mut h = 0xcbf29ce484222325u64 ^ seed.wrapping_mul(0x100000001b3);
    for &b in name.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    let tag = match op {
        FaultOp::Open => 1u64,
        FaultOp::Read => 2,
        FaultOp::Write => 3,
    };
    (h ^ tag).wrapping_mul(0x100000001b3)
}

/// A replayable description of which accesses fault and how.
///
/// Decisions are pure: [`FaultPlan::fault_for`] depends only on the plan,
/// the file name, the op class, and that pair's access index. A plan with
/// both scripted rules and a seed consults the rules first.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    rules: Vec<FaultRule>,
    seed: Option<u64>,
    /// Total written bytes allowed before every further write fails with
    /// ENOSPC.
    enospc_after: Option<u64>,
}

impl FaultPlan {
    /// An empty plan: no faults until rules are added.
    pub fn new() -> Self {
        Self::default()
    }

    /// A seeded-probabilistic plan: roughly a quarter of `(name, read)`
    /// pairs fault in short deterministic episodes (1–2 consecutive
    /// accesses out of every 16–31), with the fault kind (EIO / EINTR /
    /// short read) also derived from the seed. Only *read* operations
    /// fault, and every episode is shorter than the default retry
    /// budget, so seeded plans are always survivable with retries on.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed: Some(seed),
            ..Self::default()
        }
    }

    /// Add a scripted rule (consulted before the seed, in order).
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Fail every write with ENOSPC once `bytes` total bytes have been
    /// written through the wrapping [`FaultDisk`].
    pub fn with_enospc_after(mut self, bytes: u64) -> Self {
        self.enospc_after = Some(bytes);
        self
    }

    /// The fault (if any) for access number `n` (0-based, per
    /// `(name, op)`) of `name`. Pure — this is the replayability
    /// guarantee.
    pub fn fault_for(&self, name: &str, op: FaultOp, n: u64) -> Option<FaultKind> {
        for rule in &self.rules {
            if rule.applies(name, op, n) {
                return Some(rule.kind);
            }
        }
        let seed = self.seed?;
        if op != FaultOp::Read {
            return None;
        }
        let h = fnv(seed, name, op);
        if !h.is_multiple_of(4) {
            return None;
        }
        let stride = 16 + ((h >> 8) % 16); // 16..=31
        let len = 1 + ((h >> 16) & 1); // 1 or 2 < default 4 attempts
        let start = (h >> 24) % (stride - len + 1); // episode never wraps
        let phase = n % stride;
        if phase < start || phase >= start + len {
            return None;
        }
        Some(match (h >> 32) % 3 {
            0 => FaultKind::ReadError,
            1 => FaultKind::Interrupt,
            _ => FaultKind::ShortRead,
        })
    }

    /// The ENOSPC byte budget, when one is set.
    pub fn enospc_after(&self) -> Option<u64> {
        self.enospc_after
    }
}

/// One recorded injection, in the order it fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// File the faulted operation targeted.
    pub name: String,
    /// Operation class that faulted.
    pub op: FaultOp,
    /// Access index (per `(name, op)`) that faulted.
    pub access: u64,
    /// The fault injected.
    pub kind: FaultKind,
}

/// A [`Disk`] wrapper that injects the faults a [`FaultPlan`] prescribes.
pub struct FaultDisk {
    inner: Arc<dyn Disk>,
    plan: FaultPlan,
    /// Per-(name, op) access counters driving the plan.
    counts: Mutex<HashMap<(String, FaultOp), u64>>,
    /// Bytes written through this wrapper, for the ENOSPC budget.
    written: Arc<AtomicU64>,
    /// Ordered log of every injection, for determinism tests.
    log: Arc<Mutex<Vec<Injection>>>,
    /// Profile that records injections when the inner disk keeps none
    /// (e.g. a MemDisk-backed chaos run still needs visible counters).
    owned_profile: Arc<IoProfile>,
}

impl FaultDisk {
    /// Wrap `inner`, injecting per `plan`.
    pub fn new(inner: Arc<dyn Disk>, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            counts: Mutex::new(HashMap::new()),
            written: Arc::new(AtomicU64::new(0)),
            log: Arc::new(Mutex::new(Vec::new())),
            owned_profile: IoProfile::new(),
        }
    }

    /// The plan driving this disk.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Total faults injected so far.
    pub fn injections(&self) -> u64 {
        self.log.lock().len() as u64
    }

    /// Ordered copy of every injection so far.
    pub fn injection_log(&self) -> Vec<Injection> {
        self.log.lock().clone()
    }

    /// Claim this access's index for `(name, op)` and return the planned
    /// fault, recording it if one fires.
    fn decide(&self, name: &str, op: FaultOp) -> Option<FaultKind> {
        let n = {
            let mut counts = self.counts.lock();
            let slot = counts.entry((name.to_string(), op)).or_insert(0);
            let n = *slot;
            *slot += 1;
            n
        };
        let kind = self.plan.fault_for(name, op, n)?;
        self.record(Injection {
            name: name.to_string(),
            op,
            access: n,
            kind,
        });
        Some(kind)
    }

    fn record(&self, inj: Injection) {
        self.profile().record_injected_fault();
        self.log.lock().push(inj);
    }

    fn profile(&self) -> &Arc<IoProfile> {
        self.inner.io_profile().unwrap_or(&self.owned_profile)
    }

    fn eio(name: &str, op: &str) -> StorageError {
        StorageError::Io(io::Error::other(format!(
            "injected transient EIO on {op} of {name}"
        )))
    }

    fn eintr(name: &str) -> StorageError {
        StorageError::Io(io::Error::new(
            io::ErrorKind::Interrupted,
            format!("injected EINTR on {name}"),
        ))
    }
}

struct FaultWrite {
    name: String,
    inner: Box<dyn DiskWrite>,
    written: Arc<AtomicU64>,
    enospc_after: Option<u64>,
    log: Arc<Mutex<Vec<Injection>>>,
    profile: Arc<IoProfile>,
}

impl Write for FaultWrite {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Some(budget) = self.enospc_after {
            let so_far = self.written.load(Ordering::Relaxed);
            if so_far + buf.len() as u64 > budget {
                self.profile.record_injected_fault();
                self.log.lock().push(Injection {
                    name: self.name.clone(),
                    op: FaultOp::Write,
                    access: so_far,
                    kind: FaultKind::WriteError,
                });
                return Err(io::Error::from_raw_os_error(ENOSPC));
            }
        }
        let n = self.inner.write(buf)?;
        self.written.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl DiskWrite for FaultWrite {
    fn finish(self: Box<Self>) -> StorageResult<()> {
        self.inner.finish()
    }
}

impl Disk for FaultDisk {
    fn create(&self, name: &str) -> StorageResult<Box<dyn DiskWrite>> {
        match self.decide(name, FaultOp::Write) {
            Some(FaultKind::Stall(d)) => std::thread::sleep(d),
            Some(FaultKind::Interrupt) => return Err(Self::eintr(name)),
            Some(_) => return Err(Self::eio(name, "create")),
            None => {}
        }
        Ok(Box::new(FaultWrite {
            name: name.to_string(),
            inner: self.inner.create(name)?,
            written: Arc::clone(&self.written),
            enospc_after: self.plan.enospc_after,
            log: Arc::clone(&self.log),
            profile: Arc::clone(self.profile()),
        }))
    }

    fn open(&self, name: &str) -> StorageResult<Box<dyn DiskRead>> {
        match self.decide(name, FaultOp::Open) {
            Some(FaultKind::Stall(d)) => std::thread::sleep(d),
            Some(FaultKind::Interrupt) => return Err(Self::eintr(name)),
            Some(_) => return Err(Self::eio(name, "open")),
            None => {}
        }
        self.inner.open(name)
    }

    /// The bulk-read injection point: forwards to the inner disk's
    /// (possibly `O_DIRECT`) implementation when no fault fires, so the
    /// default `read_shared` above this still takes the fast path.
    fn read_into(&self, name: &str, buf: &mut AlignedBuf) -> StorageResult<()> {
        match self.decide(name, FaultOp::Read) {
            None => self.inner.read_into(name, buf),
            Some(FaultKind::Stall(d)) => {
                std::thread::sleep(d);
                self.inner.read_into(name, buf)
            }
            Some(FaultKind::Interrupt) => Err(Self::eintr(name)),
            Some(FaultKind::ShortRead) => {
                self.inner.read_into(name, buf)?;
                let expected = buf.len() as u64;
                let actual = expected / 2;
                buf.resize(actual as usize);
                Err(StorageError::ShortRead {
                    name: name.to_string(),
                    expected,
                    actual,
                })
            }
            Some(_) => Err(Self::eio(name, "read")),
        }
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn len_of(&self, name: &str) -> StorageResult<u64> {
        self.inner.len_of(name)
    }

    fn remove(&self, name: &str) -> StorageResult<()> {
        self.inner.remove(name)
    }

    fn rename(&self, from: &str, to: &str) -> StorageResult<()> {
        self.inner.rename(from, to)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn counters(&self) -> &Arc<IoCounters> {
        self.inner.counters()
    }

    fn io_profile(&self) -> Option<&Arc<IoProfile>> {
        Some(self.profile())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use crate::pool::BufferPool;

    fn mem_with(files: &[(&str, usize)]) -> Arc<dyn Disk> {
        let m = MemDisk::new();
        for (name, len) in files {
            m.write_all_to(name, &vec![0x5au8; *len]).unwrap();
        }
        Arc::new(m)
    }

    #[test]
    fn empty_plan_is_a_clean_passthrough() {
        let inner = mem_with(&[("ss_0_0.bin", 4096)]);
        let fd = FaultDisk::new(Arc::clone(&inner), FaultPlan::new());
        assert_eq!(fd.read_all("ss_0_0.bin").unwrap(), inner.read_all("ss_0_0.bin").unwrap());
        let pool = BufferPool::new();
        let shared = fd.read_shared("ss_0_0.bin", &pool).unwrap();
        assert_eq!(shared.as_slice(), &inner.read_all("ss_0_0.bin").unwrap()[..]);
        assert_eq!(fd.injections(), 0);
    }

    #[test]
    fn scripted_read_error_fires_on_the_scheduled_accesses_only() {
        let inner = mem_with(&[("ss_0_0.bin", 64), ("hub_0.bin", 64)]);
        let plan = FaultPlan::new().with_rule(FaultRule {
            name_contains: "ss_".into(),
            op: FaultOp::Read,
            kind: FaultKind::ReadError,
            first: 1,
            count: 2,
        });
        let fd = FaultDisk::new(inner, plan);
        let pool = BufferPool::new();
        // Access 0 clean, 1 and 2 fault, 3 clean again.
        assert!(fd.read_shared("ss_0_0.bin", &pool).is_ok());
        let e = fd.read_shared("ss_0_0.bin", &pool).unwrap_err();
        assert!(e.is_transient(), "injected EIO must be transient: {e}");
        assert!(fd.read_shared("ss_0_0.bin", &pool).is_err());
        assert!(fd.read_shared("ss_0_0.bin", &pool).is_ok());
        // Non-matching name never faults.
        assert!(fd.read_shared("hub_0.bin", &pool).is_ok());
        assert!(fd.read_shared("hub_0.bin", &pool).is_ok());
        assert_eq!(fd.injections(), 2);
        assert_eq!(fd.io_profile().unwrap().snapshot().injected_faults, 2);
    }

    #[test]
    fn short_read_fault_reports_lengths_and_is_transient() {
        let inner = mem_with(&[("ss_0_0.bin", 100)]);
        let plan = FaultPlan::new().with_rule(FaultRule {
            name_contains: String::new(),
            op: FaultOp::Read,
            kind: FaultKind::ShortRead,
            first: 0,
            count: 1,
        });
        let fd = FaultDisk::new(inner, plan);
        let mut buf = AlignedBuf::with_capacity(0);
        match fd.read_into("ss_0_0.bin", &mut buf) {
            Err(StorageError::ShortRead {
                name,
                expected,
                actual,
            }) => {
                assert_eq!(name, "ss_0_0.bin");
                assert_eq!(expected, 100);
                assert_eq!(actual, 50);
                assert_eq!(buf.len(), 50, "buffer truncated to match the report");
            }
            other => panic!("expected ShortRead, got {other:?}"),
        }
        // Next access is clean and delivers everything.
        fd.read_into("ss_0_0.bin", &mut buf).unwrap();
        assert_eq!(buf.len(), 100);
    }

    #[test]
    fn interrupt_fault_is_eintr() {
        let inner = mem_with(&[("a.bin", 8)]);
        let plan = FaultPlan::new().with_rule(FaultRule {
            name_contains: String::new(),
            op: FaultOp::Read,
            kind: FaultKind::Interrupt,
            first: 0,
            count: 1,
        });
        let fd = FaultDisk::new(inner, plan);
        let mut buf = AlignedBuf::with_capacity(0);
        match fd.read_into("a.bin", &mut buf) {
            Err(StorageError::Io(e)) => {
                assert_eq!(e.kind(), io::ErrorKind::Interrupted)
            }
            other => panic!("expected EINTR, got {other:?}"),
        }
    }

    #[test]
    fn open_fault_hits_the_stream_path() {
        let inner = mem_with(&[("a.bin", 8)]);
        let plan = FaultPlan::new().with_rule(FaultRule {
            name_contains: String::new(),
            op: FaultOp::Open,
            kind: FaultKind::OpenError,
            first: 0,
            count: 1,
        });
        let fd = FaultDisk::new(inner, plan);
        assert!(matches!(fd.open("a.bin"), Err(StorageError::Io(_))));
        assert!(fd.open("a.bin").is_ok(), "only the first open faults");
    }

    #[test]
    fn stall_fault_delays_but_succeeds() {
        let inner = mem_with(&[("a.bin", 8)]);
        let plan = FaultPlan::new().with_rule(FaultRule {
            name_contains: String::new(),
            op: FaultOp::Read,
            kind: FaultKind::Stall(Duration::from_millis(30)),
            first: 0,
            count: 1,
        });
        let fd = FaultDisk::new(inner, plan);
        let mut buf = AlignedBuf::with_capacity(0);
        let t = std::time::Instant::now();
        fd.read_into("a.bin", &mut buf).unwrap();
        assert!(t.elapsed() >= Duration::from_millis(30));
        assert_eq!(buf.len(), 8);
        assert_eq!(fd.injections(), 1);
    }

    #[test]
    fn enospc_budget_fails_writes_with_errno_28_and_rollover_is_denied() {
        let inner = mem_with(&[]);
        let fd = FaultDisk::new(inner, FaultPlan::new().with_enospc_after(100));
        fd.write_all_to("a.bin", &[1u8; 60]).unwrap();
        // 60 + 60 > 100: the second write must die with ENOSPC.
        let e = fd.write_all_to("b.bin", &[2u8; 60]).unwrap_err();
        match e {
            StorageError::Io(io) => assert_eq!(io.raw_os_error(), Some(ENOSPC)),
            other => panic!("expected ENOSPC io error, got {other:?}"),
        }
        // A smaller write still fits the remaining budget.
        fd.write_all_to("c.bin", &[3u8; 30]).unwrap();
        assert!(fd.injections() >= 1);
    }

    #[test]
    fn scripted_write_error_fails_create() {
        let inner = mem_with(&[]);
        let plan = FaultPlan::new().with_rule(FaultRule {
            name_contains: "manifest".into(),
            op: FaultOp::Write,
            kind: FaultKind::WriteError,
            first: 0,
            count: 1,
        });
        let fd = FaultDisk::new(inner, plan);
        assert!(fd.write_all_to("manifest.tmp", b"x").is_err());
        assert!(fd.write_all_to("manifest.tmp", b"x").is_ok());
        assert!(fd.write_all_to("other.bin", b"x").is_ok());
    }

    #[test]
    fn seeded_plans_fault_some_reads_and_episodes_fit_the_retry_budget() {
        // Across a handful of seeds and many names: at least one pair
        // faults, episodes never exceed 2 consecutive accesses, and only
        // reads fault.
        for seed in [1u64, 2, 3, 42, 0xdead] {
            let plan = FaultPlan::seeded(seed);
            let mut any = false;
            for i in 0..32 {
                let name = format!("ss_{}_{}.bin", i / 8, i % 8);
                assert!(plan.fault_for(&name, FaultOp::Open, 0).is_none());
                assert!(plan.fault_for(&name, FaultOp::Write, 0).is_none());
                let mut run = 0u32;
                let mut max_run = 0u32;
                for n in 0..200u64 {
                    if plan.fault_for(&name, FaultOp::Read, n).is_some() {
                        any = true;
                        run += 1;
                        max_run = max_run.max(run);
                    } else {
                        run = 0;
                    }
                }
                assert!(
                    max_run <= 2,
                    "seed {seed} name {name}: episode of {max_run} > 2"
                );
            }
            assert!(any, "seed {seed} faulted nothing in 32 names × 200 reads");
        }
    }

    #[test]
    fn seeded_plan_decisions_are_pure() {
        let plan = FaultPlan::seeded(7);
        for n in 0..100u64 {
            assert_eq!(
                plan.fault_for("ss_1_2.bin", FaultOp::Read, n),
                plan.fault_for("ss_1_2.bin", FaultOp::Read, n)
            );
        }
    }

    #[test]
    fn replaying_the_same_access_sequence_logs_identical_injections() {
        let run = || {
            let inner = mem_with(&[("ss_0_0.bin", 64), ("ss_0_1.bin", 64), ("hub_0.bin", 64)]);
            let fd = FaultDisk::new(inner, FaultPlan::seeded(99));
            let pool = BufferPool::new();
            for _ in 0..40 {
                for name in ["ss_0_0.bin", "ss_0_1.bin", "hub_0.bin"] {
                    let _ = fd.read_shared(name, &pool);
                }
            }
            fd.injection_log()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same plan + same accesses must inject identically");
        assert!(!a.is_empty(), "seed 99 should fault at least once here");
    }

    #[test]
    fn owned_profile_counts_injections_over_profileless_inner_disks() {
        let inner = mem_with(&[("a.bin", 8)]);
        assert!(inner.io_profile().is_none(), "MemDisk keeps no profile");
        let plan = FaultPlan::new().with_rule(FaultRule {
            name_contains: String::new(),
            op: FaultOp::Read,
            kind: FaultKind::ReadError,
            first: 0,
            count: u64::MAX,
        });
        let fd = FaultDisk::new(inner, plan);
        let mut buf = AlignedBuf::with_capacity(0);
        for _ in 0..3 {
            assert!(fd.read_into("a.bin", &mut buf).is_err());
        }
        let snap = fd.io_profile().expect("FaultDisk always has one").snapshot();
        assert_eq!(snap.injected_faults, 3);
    }
}
