//! Prepared-graph manifest.
//!
//! After preprocessing (degreeing + sharding) a graph lives on a [`Disk`]
//! as `P` interval slots, `P²` sub-shard files and a handful of tables. The
//! manifest records the shape so engines can open a prepared graph without
//! re-deriving anything. The format is a deliberately trivial line-oriented
//! `key = value` text file — no serde dependency, trivially inspectable
//! with `cat`.
//!
//! [`Disk`]: crate::disk::Disk

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::disk::Disk;
use crate::error::{StorageError, StorageResult};

/// Name of the manifest file on a prepared-graph disk.
pub const MANIFEST_FILE: &str = "graph.manifest";

/// Shape and bookkeeping for a prepared graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphManifest {
    /// Human-readable graph name.
    pub name: String,
    /// Number of vertices after degreeing (dense id space, isolated
    /// vertices removed).
    pub num_vertices: u64,
    /// Number of edges.
    pub num_edges: u64,
    /// Number of intervals `P`.
    pub num_intervals: u32,
    /// Whether transposed (reverse-edge) sub-shards were also generated.
    pub has_reverse: bool,
    /// Free-form extra keys (kept sorted for deterministic output).
    pub extra: BTreeMap<String, String>,
}

impl GraphManifest {
    /// Create a manifest with no extra keys.
    pub fn new(
        name: impl Into<String>,
        num_vertices: u64,
        num_edges: u64,
        num_intervals: u32,
        has_reverse: bool,
    ) -> Self {
        Self {
            name: name.into(),
            num_vertices,
            num_edges,
            num_intervals,
            has_reverse,
            extra: BTreeMap::new(),
        }
    }

    /// Vertices per interval (last interval may be smaller).
    pub fn interval_len(&self) -> u64 {
        debug_assert!(self.num_intervals > 0);
        self.num_vertices.div_ceil(self.num_intervals as u64)
    }

    /// Vertex-id range `[start, end)` of interval `i`. Intervals past the
    /// end of the id space (possible when `P > n`) are empty ranges clamped
    /// to `(n, n)`-safe bounds.
    pub fn interval_range(&self, i: u32) -> (u64, u64) {
        let len = self.interval_len();
        let start = (len * i as u64).min(self.num_vertices);
        let end = (start + len).min(self.num_vertices);
        (start, end)
    }

    /// Interval index owning vertex `v`.
    pub fn interval_of(&self, v: u64) -> u32 {
        (v / self.interval_len()) as u32
    }

    /// Canonical file name of forward sub-shard `SS(i→j)`.
    pub fn subshard_file(i: u32, j: u32) -> String {
        format!("ss_{i}_{j}.bin")
    }

    /// Canonical file name of reverse sub-shard `SS'(i→j)` (edges of the
    /// transposed graph).
    pub fn rev_subshard_file(i: u32, j: u32) -> String {
        format!("rss_{i}_{j}.bin")
    }

    /// Canonical file name of an interval attribute slot.
    pub fn interval_file(j: u32) -> String {
        format!("interval_{j}.bin")
    }

    /// Canonical file name of hub `H(i→j)`.
    pub fn hub_file(i: u32, j: u32) -> String {
        format!("hub_{i}_{j}.bin")
    }

    /// Canonical file name of the out-degree table.
    pub fn degree_file() -> &'static str {
        "degrees.bin"
    }

    /// Canonical file name of the index→id mapping table.
    pub fn mapping_file() -> &'static str {
        "mapping.bin"
    }

    /// Canonical file name of the id→index reverse mapping table.
    pub fn reverse_mapping_file() -> &'static str {
        "reverse_mapping.bin"
    }

    /// Serialise to the text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# NXgraph prepared-graph manifest");
        let _ = writeln!(s, "name = {}", self.name);
        let _ = writeln!(s, "num_vertices = {}", self.num_vertices);
        let _ = writeln!(s, "num_edges = {}", self.num_edges);
        let _ = writeln!(s, "num_intervals = {}", self.num_intervals);
        let _ = writeln!(s, "has_reverse = {}", self.has_reverse);
        for (k, v) in &self.extra {
            let _ = writeln!(s, "x.{k} = {v}");
        }
        s
    }

    /// Parse from the text format.
    pub fn from_text(text: &str) -> StorageResult<Self> {
        let mut name = None;
        let mut num_vertices = None;
        let mut num_edges = None;
        let mut num_intervals = None;
        let mut has_reverse = None;
        let mut extra = BTreeMap::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or(StorageError::Manifest {
                line: lineno + 1,
                reason: "missing '='".into(),
            })?;
            let key = key.trim();
            let value = value.trim();
            let parse_u64 = |v: &str| {
                v.parse::<u64>().map_err(|e| StorageError::Manifest {
                    line: lineno + 1,
                    reason: format!("bad integer {v:?}: {e}"),
                })
            };
            match key {
                "name" => name = Some(value.to_string()),
                "num_vertices" => num_vertices = Some(parse_u64(value)?),
                "num_edges" => num_edges = Some(parse_u64(value)?),
                "num_intervals" => num_intervals = Some(parse_u64(value)? as u32),
                "has_reverse" => {
                    has_reverse =
                        Some(value.parse::<bool>().map_err(|e| StorageError::Manifest {
                            line: lineno + 1,
                            reason: format!("bad bool {value:?}: {e}"),
                        })?)
                }
                k if k.starts_with("x.") => {
                    extra.insert(k[2..].to_string(), value.to_string());
                }
                other => {
                    return Err(StorageError::Manifest {
                        line: lineno + 1,
                        reason: format!("unknown key {other:?}"),
                    })
                }
            }
        }

        let missing = |what: &str| StorageError::Manifest {
            line: 0,
            reason: format!("missing required key {what:?}"),
        };
        Ok(Self {
            name: name.ok_or_else(|| missing("name"))?,
            num_vertices: num_vertices.ok_or_else(|| missing("num_vertices"))?,
            num_edges: num_edges.ok_or_else(|| missing("num_edges"))?,
            num_intervals: num_intervals.ok_or_else(|| missing("num_intervals"))?,
            has_reverse: has_reverse.unwrap_or(false),
            extra,
        })
    }

    /// Write the manifest onto a disk.
    pub fn save(&self, disk: &dyn Disk) -> StorageResult<()> {
        disk.write_all_to(MANIFEST_FILE, self.to_text().as_bytes())
    }

    /// Load the manifest from a disk.
    pub fn load(disk: &dyn Disk) -> StorageResult<Self> {
        let data = disk.read_all(MANIFEST_FILE)?;
        let text = String::from_utf8(data).map_err(|e| StorageError::Manifest {
            line: 0,
            reason: format!("manifest is not utf-8: {e}"),
        })?;
        Self::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn sample() -> GraphManifest {
        let mut m = GraphManifest::new("twitter-like", 41_700_000, 1_470_000_000, 24, true);
        m.extra.insert("generator".into(), "rmat".into());
        m
    }

    #[test]
    fn text_roundtrip() {
        let m = sample();
        let back = GraphManifest::from_text(&m.to_text()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn disk_roundtrip() {
        let disk = MemDisk::new();
        sample().save(&disk).unwrap();
        assert_eq!(GraphManifest::load(&disk).unwrap(), sample());
    }

    #[test]
    fn rejects_garbage() {
        assert!(GraphManifest::from_text("nonsense line").is_err());
        assert!(GraphManifest::from_text("name = x\nnum_vertices = abc").is_err());
        assert!(GraphManifest::from_text("wrong_key = 1").is_err());
        // Missing required keys.
        assert!(GraphManifest::from_text("name = x").is_err());
    }

    #[test]
    fn interval_geometry() {
        let m = GraphManifest::new("g", 10, 0, 4, false);
        // ceil(10/4) = 3 per interval: [0,3) [3,6) [6,9) [9,10).
        assert_eq!(m.interval_len(), 3);
        assert_eq!(m.interval_range(0), (0, 3));
        assert_eq!(m.interval_range(3), (9, 10));
        assert_eq!(m.interval_of(0), 0);
        assert_eq!(m.interval_of(8), 2);
        assert_eq!(m.interval_of(9), 3);
    }

    #[test]
    fn interval_geometry_exact_division() {
        let m = GraphManifest::new("g", 12, 0, 4, false);
        assert_eq!(m.interval_len(), 3);
        assert_eq!(m.interval_range(3), (9, 12));
    }

    #[test]
    fn file_names_are_stable() {
        assert_eq!(GraphManifest::subshard_file(2, 7), "ss_2_7.bin");
        assert_eq!(GraphManifest::rev_subshard_file(0, 1), "rss_0_1.bin");
        assert_eq!(GraphManifest::interval_file(3), "interval_3.bin");
        assert_eq!(GraphManifest::hub_file(1, 2), "hub_1_2.bin");
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hi\n\nname = g\nnum_vertices = 1\nnum_edges = 0\nnum_intervals = 1\n";
        let m = GraphManifest::from_text(text).unwrap();
        assert_eq!(m.name, "g");
        assert!(!m.has_reverse);
    }
}
