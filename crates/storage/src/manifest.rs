//! Prepared-graph manifest.
//!
//! After preprocessing (degreeing + sharding) a graph lives on a [`Disk`]
//! as `P` interval slots, `P²` sub-shard files and a handful of tables. The
//! manifest records the shape so engines can open a prepared graph without
//! re-deriving anything. The format is a deliberately trivial line-oriented
//! `key = value` text file — no serde dependency, trivially inspectable
//! with `cat`.
//!
//! [`Disk`]: crate::disk::Disk

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::disk::Disk;
use crate::error::{StorageError, StorageResult};

/// Name of the manifest file on a prepared-graph disk.
pub const MANIFEST_FILE: &str = "graph.manifest";

/// Scratch name the manifest is written under before the atomic rename
/// onto [`MANIFEST_FILE`]. A crash between the two leaves this file
/// unreferenced; the orphan sweep reclaims it. The scrubber deliberately
/// *skips* it — sweeping it from the maintenance thread could race an
/// in-flight save between its write and rename.
pub const MANIFEST_TMP_FILE: &str = "graph.manifest.tmp";

/// Manifest extra key recording the current degree-table generation
/// (absent = 0, the prep-time `degrees.bin`). Degree bumps write the table
/// under a *new* generation name before the manifest save, so a torn
/// degree write can never corrupt the table a recovered manifest points
/// at.
pub const DEGREES_GEN_KEY: &str = "degrees_gen";

/// Per-cell delta-chain bookkeeping for streaming updates.
///
/// A sub-shard cell `(i, j, reverse)` is stored as one *base* blob plus an
/// append-only chain of *delta* blobs (each a destination-sorted sub-shard
/// of just the edges added by one batch). `gen` tags the base blob's file
/// name: compaction folds the chain into a fresh base under the *next*
/// generation and commits by saving the manifest, so a crash at any point
/// leaves either the old chain or the new base fully referenced — stale
/// files from the other side are simply never read. `gen == 0` maps to the
/// historical un-suffixed file names, so prepared graphs that never saw an
/// update keep their exact on-disk layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct ChainInfo {
    /// Generation of the base blob (0 = the original prep-time file name).
    pub gen: u32,
    /// Number of delta blobs appended on top of the base.
    pub deltas: u32,
    /// Total on-disk bytes of those delta blobs, accumulated at append
    /// time so the writer's compaction check needs no per-delta stat
    /// calls on the hot commit path.
    pub delta_bytes: u64,
}

impl ChainInfo {
    /// Whether this cell is just a bare base blob under the original name
    /// (the state `chain_info` reports for cells with no manifest entry).
    pub fn is_default(&self) -> bool {
        *self == Self::default()
    }
}

/// Shape and bookkeeping for a prepared graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphManifest {
    /// Human-readable graph name.
    pub name: String,
    /// Number of vertices after degreeing (dense id space, isolated
    /// vertices removed).
    pub num_vertices: u64,
    /// Number of edges.
    pub num_edges: u64,
    /// Number of intervals `P`.
    pub num_intervals: u32,
    /// Whether transposed (reverse-edge) sub-shards were also generated.
    pub has_reverse: bool,
    /// Free-form extra keys (kept sorted for deterministic output).
    pub extra: BTreeMap<String, String>,
}

impl GraphManifest {
    /// Create a manifest with no extra keys.
    pub fn new(
        name: impl Into<String>,
        num_vertices: u64,
        num_edges: u64,
        num_intervals: u32,
        has_reverse: bool,
    ) -> Self {
        Self {
            name: name.into(),
            num_vertices,
            num_edges,
            num_intervals,
            has_reverse,
            extra: BTreeMap::new(),
        }
    }

    /// Vertices per interval (last interval may be smaller).
    pub fn interval_len(&self) -> u64 {
        debug_assert!(self.num_intervals > 0);
        self.num_vertices.div_ceil(self.num_intervals as u64)
    }

    /// Vertex-id range `[start, end)` of interval `i`. Intervals past the
    /// end of the id space (possible when `P > n`) are empty ranges clamped
    /// to `(n, n)`-safe bounds.
    pub fn interval_range(&self, i: u32) -> (u64, u64) {
        let len = self.interval_len();
        let start = (len * i as u64).min(self.num_vertices);
        let end = (start + len).min(self.num_vertices);
        (start, end)
    }

    /// Interval index owning vertex `v`.
    pub fn interval_of(&self, v: u64) -> u32 {
        (v / self.interval_len()) as u32
    }

    /// Canonical file name of forward sub-shard `SS(i→j)`.
    pub fn subshard_file(i: u32, j: u32) -> String {
        format!("ss_{i}_{j}.bin")
    }

    /// Canonical file name of reverse sub-shard `SS'(i→j)` (edges of the
    /// transposed graph).
    pub fn rev_subshard_file(i: u32, j: u32) -> String {
        format!("rss_{i}_{j}.bin")
    }

    /// Stem shared by a cell's base, delta and chain-key names.
    fn cell_stem(i: u32, j: u32, reverse: bool) -> String {
        if reverse {
            format!("rss_{i}_{j}")
        } else {
            format!("ss_{i}_{j}")
        }
    }

    /// File name of the *base* blob of cell `(i, j, reverse)` at
    /// generation `gen`. Generation 0 is the prep-time name
    /// ([`GraphManifest::subshard_file`] /
    /// [`GraphManifest::rev_subshard_file`]); compaction bumps the
    /// generation so the fold never overwrites a blob readers may still be
    /// directed at.
    pub fn subshard_base_file(i: u32, j: u32, reverse: bool, gen: u32) -> String {
        if gen == 0 {
            format!("{}.bin", Self::cell_stem(i, j, reverse))
        } else {
            format!("{}.g{gen}.bin", Self::cell_stem(i, j, reverse))
        }
    }

    /// File name of the `k`-th delta blob (`k ≥ 1`) appended to cell
    /// `(i, j, reverse)` at base generation `gen`. The generation is part
    /// of the name so a crashed compaction can never leave a stale delta
    /// that collides with a later chain.
    pub fn subshard_delta_file(i: u32, j: u32, reverse: bool, gen: u32, k: u32) -> String {
        format!("{}.g{gen}.d{k}.bin", Self::cell_stem(i, j, reverse))
    }

    /// Manifest extra key recording a cell's [`ChainInfo`].
    fn chain_key(i: u32, j: u32, reverse: bool) -> String {
        format!("chain.{}", Self::cell_stem(i, j, reverse))
    }

    /// Delta-chain state of cell `(i, j, reverse)`; the absence of a chain
    /// key means the default (generation-0 base, no deltas). A malformed
    /// value is a [`StorageError::Corrupt`] — silently defaulting would
    /// make readers skip the chain's edges.
    pub fn chain_info(&self, i: u32, j: u32, reverse: bool) -> StorageResult<ChainInfo> {
        match self.extra.get(&Self::chain_key(i, j, reverse)) {
            None => Ok(ChainInfo::default()),
            Some(v) => Self::parse_chain_value(v),
        }
    }

    fn parse_chain_value(v: &str) -> StorageResult<ChainInfo> {
        let corrupt = || StorageError::Corrupt {
            name: MANIFEST_FILE.to_string(),
            reason: format!("malformed chain value {v:?} (expected \"gen:deltas:bytes\")"),
        };
        let mut fields = v.split(':');
        let mut next = || fields.next().map(str::trim).ok_or_else(corrupt);
        let info = ChainInfo {
            gen: next()?.parse().map_err(|_| corrupt())?,
            deltas: next()?.parse().map_err(|_| corrupt())?,
            delta_bytes: next()?.parse().map_err(|_| corrupt())?,
        };
        if fields.next().is_some() {
            return Err(corrupt());
        }
        Ok(info)
    }

    /// Record cell `(i, j, reverse)`'s chain state; the default state is
    /// stored as the *absence* of the key, keeping untouched graphs'
    /// manifests byte-identical to pre-delta-log writers.
    pub fn set_chain_info(&mut self, i: u32, j: u32, reverse: bool, info: ChainInfo) {
        let key = Self::chain_key(i, j, reverse);
        if info.is_default() {
            self.extra.remove(&key);
        } else {
            self.extra.insert(
                key,
                format!("{}:{}:{}", info.gen, info.deltas, info.delta_bytes),
            );
        }
    }

    /// Every cell with a non-default chain (a bumped generation and/or
    /// pending deltas), in deterministic order.
    pub fn chains(&self) -> StorageResult<Vec<(u32, u32, bool, ChainInfo)>> {
        let mut out = Vec::new();
        for (key, value) in &self.extra {
            let Some(stem) = key.strip_prefix("chain.") else {
                continue;
            };
            let (reverse, rest) = match stem.strip_prefix("rss_") {
                Some(rest) => (true, rest),
                None => match stem.strip_prefix("ss_") {
                    Some(rest) => (false, rest),
                    None => {
                        return Err(StorageError::Corrupt {
                            name: MANIFEST_FILE.to_string(),
                            reason: format!("unrecognised chain key {key:?}"),
                        })
                    }
                },
            };
            let cell = rest.split_once('_').and_then(|(i, j)| {
                Some((i.parse::<u32>().ok()?, j.parse::<u32>().ok()?))
            });
            let Some((i, j)) = cell else {
                return Err(StorageError::Corrupt {
                    name: MANIFEST_FILE.to_string(),
                    reason: format!("unrecognised chain key {key:?}"),
                });
            };
            out.push((i, j, reverse, Self::parse_chain_value(value)?));
        }
        Ok(out)
    }

    /// Canonical file name of an interval attribute slot.
    pub fn interval_file(j: u32) -> String {
        format!("interval_{j}.bin")
    }

    /// Canonical file name of hub `H(i→j)`.
    pub fn hub_file(i: u32, j: u32) -> String {
        format!("hub_{i}_{j}.bin")
    }

    /// Canonical file name of the out-degree table.
    pub fn degree_file() -> &'static str {
        "degrees.bin"
    }

    /// File name of the out-degree table at generation `gen` (0 = the
    /// prep-time [`GraphManifest::degree_file`] name).
    pub fn degree_file_at(gen: u32) -> String {
        if gen == 0 {
            Self::degree_file().to_string()
        } else {
            format!("degrees.g{gen}.bin")
        }
    }

    /// Current degree-table generation. A malformed value is a
    /// [`StorageError::Corrupt`] — silently defaulting to 0 would load a
    /// stale degree table and quietly skew every ranking algorithm.
    pub fn degrees_gen(&self) -> StorageResult<u32> {
        match self.extra.get(DEGREES_GEN_KEY) {
            None => Ok(0),
            Some(v) => v.parse().map_err(|_| StorageError::Corrupt {
                name: MANIFEST_FILE.to_string(),
                reason: format!("malformed {DEGREES_GEN_KEY} value {v:?}"),
            }),
        }
    }

    /// Record the degree-table generation; 0 is stored as the *absence* of
    /// the key, keeping untouched graphs' manifests byte-identical.
    pub fn set_degrees_gen(&mut self, gen: u32) {
        if gen == 0 {
            self.extra.remove(DEGREES_GEN_KEY);
        } else {
            self.extra.insert(DEGREES_GEN_KEY.to_string(), gen.to_string());
        }
    }

    /// File name of the degree table this manifest currently references.
    pub fn degree_file_current(&self) -> StorageResult<String> {
        Ok(Self::degree_file_at(self.degrees_gen()?))
    }

    /// Canonical file name of the index→id mapping table.
    pub fn mapping_file() -> &'static str {
        "mapping.bin"
    }

    /// Canonical file name of the id→index reverse mapping table.
    pub fn reverse_mapping_file() -> &'static str {
        "reverse_mapping.bin"
    }

    /// Serialise to the text format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "# NXgraph prepared-graph manifest");
        let _ = writeln!(s, "name = {}", self.name);
        let _ = writeln!(s, "num_vertices = {}", self.num_vertices);
        let _ = writeln!(s, "num_edges = {}", self.num_edges);
        let _ = writeln!(s, "num_intervals = {}", self.num_intervals);
        let _ = writeln!(s, "has_reverse = {}", self.has_reverse);
        for (k, v) in &self.extra {
            let _ = writeln!(s, "x.{k} = {v}");
        }
        s
    }

    /// Parse from the text format.
    pub fn from_text(text: &str) -> StorageResult<Self> {
        let mut name = None;
        let mut num_vertices = None;
        let mut num_edges = None;
        let mut num_intervals = None;
        let mut has_reverse = None;
        let mut extra = BTreeMap::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or(StorageError::Manifest {
                line: lineno + 1,
                reason: "missing '='".into(),
            })?;
            let key = key.trim();
            let value = value.trim();
            let parse_u64 = |v: &str| {
                v.parse::<u64>().map_err(|e| StorageError::Manifest {
                    line: lineno + 1,
                    reason: format!("bad integer {v:?}: {e}"),
                })
            };
            match key {
                "name" => name = Some(value.to_string()),
                "num_vertices" => num_vertices = Some(parse_u64(value)?),
                "num_edges" => num_edges = Some(parse_u64(value)?),
                "num_intervals" => num_intervals = Some(parse_u64(value)? as u32),
                "has_reverse" => {
                    has_reverse =
                        Some(value.parse::<bool>().map_err(|e| StorageError::Manifest {
                            line: lineno + 1,
                            reason: format!("bad bool {value:?}: {e}"),
                        })?)
                }
                k if k.starts_with("x.") => {
                    extra.insert(k[2..].to_string(), value.to_string());
                }
                other => {
                    return Err(StorageError::Manifest {
                        line: lineno + 1,
                        reason: format!("unknown key {other:?}"),
                    })
                }
            }
        }

        let missing = |what: &str| StorageError::Manifest {
            line: 0,
            reason: format!("missing required key {what:?}"),
        };
        Ok(Self {
            name: name.ok_or_else(|| missing("name"))?,
            num_vertices: num_vertices.ok_or_else(|| missing("num_vertices"))?,
            num_edges: num_edges.ok_or_else(|| missing("num_edges"))?,
            num_intervals: num_intervals.ok_or_else(|| missing("num_intervals"))?,
            has_reverse: has_reverse.unwrap_or(false),
            extra,
        })
    }

    /// Write the manifest onto a disk: tmp file first, then an atomic
    /// rename over [`MANIFEST_FILE`]. This is *the* commit point for every
    /// dynamic-graph mutation — a crash before the rename leaves the old
    /// manifest (and only files it references) fully intact, a crash after
    /// it leaves the new state; a torn manifest is impossible.
    pub fn save(&self, disk: &dyn Disk) -> StorageResult<()> {
        disk.write_all_to(MANIFEST_TMP_FILE, self.to_text().as_bytes())?;
        disk.rename(MANIFEST_TMP_FILE, MANIFEST_FILE)
    }

    /// Load the manifest from a disk.
    pub fn load(disk: &dyn Disk) -> StorageResult<Self> {
        let data = disk.read_all(MANIFEST_FILE)?;
        let text = String::from_utf8(data).map_err(|e| StorageError::Manifest {
            line: 0,
            reason: format!("manifest is not utf-8: {e}"),
        })?;
        Self::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn sample() -> GraphManifest {
        let mut m = GraphManifest::new("twitter-like", 41_700_000, 1_470_000_000, 24, true);
        m.extra.insert("generator".into(), "rmat".into());
        m
    }

    #[test]
    fn text_roundtrip() {
        let m = sample();
        let back = GraphManifest::from_text(&m.to_text()).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn disk_roundtrip() {
        let disk = MemDisk::new();
        sample().save(&disk).unwrap();
        assert_eq!(GraphManifest::load(&disk).unwrap(), sample());
    }

    #[test]
    fn rejects_garbage() {
        assert!(GraphManifest::from_text("nonsense line").is_err());
        assert!(GraphManifest::from_text("name = x\nnum_vertices = abc").is_err());
        assert!(GraphManifest::from_text("wrong_key = 1").is_err());
        // Missing required keys.
        assert!(GraphManifest::from_text("name = x").is_err());
    }

    #[test]
    fn interval_geometry() {
        let m = GraphManifest::new("g", 10, 0, 4, false);
        // ceil(10/4) = 3 per interval: [0,3) [3,6) [6,9) [9,10).
        assert_eq!(m.interval_len(), 3);
        assert_eq!(m.interval_range(0), (0, 3));
        assert_eq!(m.interval_range(3), (9, 10));
        assert_eq!(m.interval_of(0), 0);
        assert_eq!(m.interval_of(8), 2);
        assert_eq!(m.interval_of(9), 3);
    }

    #[test]
    fn interval_geometry_exact_division() {
        let m = GraphManifest::new("g", 12, 0, 4, false);
        assert_eq!(m.interval_len(), 3);
        assert_eq!(m.interval_range(3), (9, 12));
    }

    #[test]
    fn file_names_are_stable() {
        assert_eq!(GraphManifest::subshard_file(2, 7), "ss_2_7.bin");
        assert_eq!(GraphManifest::rev_subshard_file(0, 1), "rss_0_1.bin");
        assert_eq!(GraphManifest::interval_file(3), "interval_3.bin");
        assert_eq!(GraphManifest::hub_file(1, 2), "hub_1_2.bin");
        // Generation 0 is the prep-time base name; bumped generations and
        // delta blobs carry the chain position in the name.
        assert_eq!(GraphManifest::subshard_base_file(2, 7, false, 0), "ss_2_7.bin");
        assert_eq!(GraphManifest::subshard_base_file(2, 7, true, 0), "rss_2_7.bin");
        assert_eq!(GraphManifest::subshard_base_file(2, 7, false, 3), "ss_2_7.g3.bin");
        assert_eq!(
            GraphManifest::subshard_delta_file(2, 7, false, 0, 1),
            "ss_2_7.g0.d1.bin"
        );
        assert_eq!(
            GraphManifest::subshard_delta_file(0, 1, true, 2, 5),
            "rss_0_1.g2.d5.bin"
        );
    }

    #[test]
    fn chain_info_roundtrips_through_text() {
        let mut m = sample();
        assert_eq!(m.chain_info(2, 1, false).unwrap(), ChainInfo::default());
        let a = ChainInfo { gen: 1, deltas: 3, delta_bytes: 912 };
        let b = ChainInfo { gen: 2, deltas: 0, delta_bytes: 0 };
        m.set_chain_info(2, 1, false, a);
        m.set_chain_info(0, 4, true, b);
        let back = GraphManifest::from_text(&m.to_text()).unwrap();
        assert_eq!(back.chain_info(2, 1, false).unwrap(), a);
        assert_eq!(back.chain_info(0, 4, true).unwrap(), b);
        assert_eq!(back.chain_info(2, 1, true).unwrap(), ChainInfo::default());
        let mut chains = back.chains().unwrap();
        chains.sort();
        assert_eq!(chains, vec![(0, 4, true, b), (2, 1, false, a)]);
        // Setting a cell back to the default removes the key entirely.
        let mut m2 = back.clone();
        m2.set_chain_info(2, 1, false, ChainInfo::default());
        m2.set_chain_info(0, 4, true, ChainInfo::default());
        assert!(m2.chains().unwrap().is_empty());
        assert_eq!(m2.to_text(), sample().to_text());
    }

    #[test]
    fn save_is_tmp_then_rename() {
        let disk = MemDisk::new();
        sample().save(&disk).unwrap();
        // The tmp name must not linger after a successful save.
        assert!(!disk.exists(MANIFEST_TMP_FILE));
        assert!(disk.exists(MANIFEST_FILE));
        assert_eq!(GraphManifest::load(&disk).unwrap(), sample());
    }

    #[test]
    fn degrees_gen_roundtrips_and_defaults() {
        let mut m = sample();
        assert_eq!(m.degrees_gen().unwrap(), 0);
        assert_eq!(m.degree_file_current().unwrap(), "degrees.bin");
        m.set_degrees_gen(4);
        assert_eq!(m.degrees_gen().unwrap(), 4);
        assert_eq!(m.degree_file_current().unwrap(), "degrees.g4.bin");
        let back = GraphManifest::from_text(&m.to_text()).unwrap();
        assert_eq!(back.degrees_gen().unwrap(), 4);
        // Setting back to 0 removes the key, restoring byte-identity.
        m.set_degrees_gen(0);
        assert_eq!(m.to_text(), sample().to_text());
        assert_eq!(GraphManifest::degree_file_at(0), "degrees.bin");
        assert_eq!(GraphManifest::degree_file_at(2), "degrees.g2.bin");
    }

    #[test]
    fn malformed_degrees_gen_is_corrupt_not_zero() {
        let mut m = sample();
        m.extra.insert(DEGREES_GEN_KEY.into(), "banana".into());
        assert!(m.degrees_gen().is_err());
        assert!(m.degree_file_current().is_err());
    }

    #[test]
    fn malformed_chain_values_are_rejected() {
        for bad in ["three", "1:2", "1:2:3:4", "1:x:3"] {
            let mut m = sample();
            m.extra.insert("chain.ss_1_1".into(), bad.into());
            assert!(m.chain_info(1, 1, false).is_err(), "{bad:?}");
            assert!(m.chains().is_err(), "{bad:?}");
        }
        let mut m = sample();
        m.extra.insert("chain.bogus".into(), "1:1:1".into());
        assert!(m.chains().is_err());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# hi\n\nname = g\nnum_vertices = 1\nnum_edges = 0\nnum_intervals = 1\n";
        let m = GraphManifest::from_text(text).unwrap();
        assert_eq!(m.name, "g");
        assert!(!m.has_reverse);
    }
}
