//! Bounded retry with deterministic exponential backoff.
//!
//! Real disk-bound deployments see transient EIO/EINTR-class failures and
//! short reads that a single re-issue fixes; the paper's engines assume
//! fail-stop devices and die on the first one. [`RetryPolicy`] closes that
//! gap on every blob *read* path: a failed operation is re-issued up to
//! `max_attempts` times **iff** its error is
//! [transient](crate::error::StorageError::is_transient), sleeping a
//! deterministic exponentially-doubling backoff between attempts (no
//! jitter — replayed fault plans must see identical attempt sequences).
//!
//! Classification lives on the error ([`crate::error::ErrorClass`]), not
//! here: corruption is never retried (same wrong bytes), fatal errors
//! ([`StorageError::NotFound`], budget, watchdog) surface immediately.
//! Every re-issue and every exhaustion is counted in the disk's
//! [`IoProfile`] (`retries` / `giveups`), surfaced by `nxgraph-cli info`.

use std::sync::Arc;
use std::time::Duration;

use crate::error::StorageResult;
use crate::profile::IoProfile;

/// A bounded-attempt, deterministic-backoff retry policy.
///
/// The default is the policy applied on the engine read path: 4 total
/// attempts, 1 ms base backoff doubling to a 16 ms cap — enough to ride
/// out episodic faults while adding at most ~7 ms to a genuinely failing
/// read. [`RetryPolicy::none`] disables retrying (1 attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first issue. Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the first re-issue; doubles each further re-issue.
    pub base_backoff: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(16),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, errors surface as-is.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// A policy with `attempts` total attempts and the default backoff.
    pub fn with_attempts(attempts: u32) -> Self {
        Self {
            max_attempts: attempts.max(1),
            ..Self::default()
        }
    }

    /// Same policy with a different base backoff (cap scales to 16×).
    pub fn with_base_backoff(mut self, base: Duration) -> Self {
        self.base_backoff = base;
        self.max_backoff = base.saturating_mul(16);
        self
    }

    /// Whether this policy ever re-issues a failed operation.
    pub fn enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Deterministic backoff before re-issue number `retry` (0-based):
    /// `base << retry`, capped at `max_backoff`.
    pub fn backoff_for(&self, retry: u32) -> Duration {
        let doubled = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(retry).unwrap_or(u32::MAX));
        doubled.min(self.max_backoff)
    }

    /// Run `op`, re-issuing transient failures per this policy. Counts
    /// each re-issue (`retries`) and each exhaustion (`giveups`) in
    /// `profile` when one is supplied.
    pub fn run<T>(
        &self,
        profile: Option<&Arc<IoProfile>>,
        mut op: impl FnMut() -> StorageResult<T>,
    ) -> StorageResult<T> {
        let attempts = self.max_attempts.max(1);
        let mut retry = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && retry + 1 < attempts => {
                    if let Some(p) = profile {
                        p.record_retry();
                    }
                    let pause = self.backoff_for(retry);
                    if pause > Duration::ZERO {
                        std::thread::sleep(pause);
                    }
                    retry += 1;
                }
                Err(e) => {
                    // Exhaustion only counts when retrying was on the
                    // table at all: transient error, retries enabled.
                    if e.is_transient() && attempts > 1 {
                        if let Some(p) = profile {
                            p.record_giveup();
                        }
                    }
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StorageError;
    use std::io;

    fn eio() -> StorageError {
        StorageError::Io(io::Error::other("injected eio"))
    }

    #[test]
    fn succeeds_after_transient_failures_and_counts_retries() {
        let p = IoProfile::new();
        let mut left = 2u32;
        let out = RetryPolicy::default().run(Some(&p), || {
            if left > 0 {
                left -= 1;
                Err(eio())
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        let s = p.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.giveups, 0);
    }

    #[test]
    fn exhaustion_surfaces_the_error_and_counts_a_giveup() {
        let p = IoProfile::new();
        let mut calls = 0u32;
        let out: StorageResult<()> = RetryPolicy::with_attempts(3)
            .with_base_backoff(Duration::ZERO)
            .run(Some(&p), || {
                calls += 1;
                Err(eio())
            });
        assert!(matches!(out, Err(StorageError::Io(_))));
        assert_eq!(calls, 3, "3 attempts total");
        let s = p.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.giveups, 1);
    }

    #[test]
    fn non_transient_errors_are_never_retried() {
        let p = IoProfile::new();
        let mut calls = 0u32;
        let out: StorageResult<()> = RetryPolicy::default().run(Some(&p), || {
            calls += 1;
            Err(StorageError::Corrupt {
                name: "x".into(),
                reason: "bad checksum".into(),
            })
        });
        assert!(matches!(out, Err(StorageError::Corrupt { .. })));
        assert_eq!(calls, 1);
        let s = p.snapshot();
        assert_eq!(s.retries, 0);
        assert_eq!(s.giveups, 0, "no giveup when retrying was never legal");
    }

    #[test]
    fn disabled_policy_is_one_attempt_no_counters() {
        let p = IoProfile::new();
        let mut calls = 0u32;
        let out: StorageResult<()> = RetryPolicy::none().run(Some(&p), || {
            calls += 1;
            Err(eio())
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
        let s = p.snapshot();
        assert_eq!(s.retries, 0);
        assert_eq!(s.giveups, 0);
    }

    #[test]
    fn backoff_doubles_deterministically_and_caps() {
        let r = RetryPolicy::default();
        assert_eq!(r.backoff_for(0), Duration::from_millis(1));
        assert_eq!(r.backoff_for(1), Duration::from_millis(2));
        assert_eq!(r.backoff_for(2), Duration::from_millis(4));
        assert_eq!(r.backoff_for(10), Duration::from_millis(16), "capped");
        assert_eq!(r.backoff_for(40), Duration::from_millis(16), "shift-safe");
    }
}
