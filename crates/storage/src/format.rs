//! Little-endian binary encoding with checksummed headers.
//!
//! Intervals, sub-shards and hubs are stored as typed arrays prefixed with a
//! fixed 32-byte header. The header carries a magic, a format version, a
//! caller-chosen `kind` tag, the payload length and an FNV-1a checksum of
//! the payload, so truncated or corrupted files are detected at load time
//! rather than producing silently wrong graph results.

use std::io::{Read, Write};

use crate::error::{StorageError, StorageResult};

/// Magic bytes identifying NXgraph binary files.
pub const MAGIC: [u8; 8] = *b"NXGRAPH\0";

/// Current format version.
pub const VERSION: u32 = 1;

/// Kind tags for the different file types (stored in the header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum FileKind {
    /// Raw edge list (pre-shard): pairs of u32 (src, dst).
    EdgeList = 1,
    /// Interval attribute payload (opaque bytes owned by the program).
    Interval = 2,
    /// Sub-shard in destination-sorted CSR form.
    SubShard = 3,
    /// DPU hub: destination ids + accumulator payload.
    Hub = 4,
    /// Degree table: u32 per vertex.
    Degrees = 5,
    /// Id mapping table.
    Mapping = 6,
}

impl FileKind {
    fn from_u32(v: u32) -> Option<Self> {
        Some(match v {
            1 => FileKind::EdgeList,
            2 => FileKind::Interval,
            3 => FileKind::SubShard,
            4 => FileKind::Hub,
            5 => FileKind::Degrees,
            6 => FileKind::Mapping,
            _ => return None,
        })
    }
}

/// FNV-1a 64-bit hash, used as a cheap payload checksum.
pub fn fnv1a(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Write a header + payload to `w`.
pub fn write_blob(w: &mut dyn Write, kind: FileKind, payload: &[u8]) -> StorageResult<()> {
    let mut header = [0u8; 32];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&VERSION.to_le_bytes());
    header[12..16].copy_from_slice(&(kind as u32).to_le_bytes());
    header[16..24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    header[24..32].copy_from_slice(&fnv1a(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// Read a header + payload from `r`, verifying magic, version, kind and
/// checksum. `name` is used only for error messages.
pub fn read_blob(r: &mut dyn Read, expect: FileKind, name: &str) -> StorageResult<Vec<u8>> {
    let mut header = [0u8; 32];
    r.read_exact(&mut header).map_err(|e| StorageError::Corrupt {
        name: name.to_string(),
        reason: format!("short header: {e}"),
    })?;
    if header[0..8] != MAGIC {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: "bad magic".into(),
        });
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: format!("unsupported version {version}"),
        });
    }
    let kind_raw = u32::from_le_bytes(header[12..16].try_into().unwrap());
    match FileKind::from_u32(kind_raw) {
        Some(k) if k == expect => {}
        Some(k) => {
            return Err(StorageError::Corrupt {
                name: name.to_string(),
                reason: format!("expected {expect:?}, found {k:?}"),
            })
        }
        None => {
            return Err(StorageError::Corrupt {
                name: name.to_string(),
                reason: format!("unknown kind tag {kind_raw}"),
            })
        }
    }
    let len = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(header[24..32].try_into().unwrap());
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| StorageError::Corrupt {
        name: name.to_string(),
        reason: format!("short payload: {e}"),
    })?;
    if fnv1a(&payload) != checksum {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: "checksum mismatch".into(),
        });
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Typed array helpers
// ---------------------------------------------------------------------------

/// Encode a `u32` slice as little-endian bytes.
pub fn encode_u32s(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes into a `u32` vector.
pub fn decode_u32s(data: &[u8]) -> StorageResult<Vec<u32>> {
    if !data.len().is_multiple_of(4) {
        return Err(StorageError::Corrupt {
            name: "<u32 array>".into(),
            reason: format!("length {} not a multiple of 4", data.len()),
        });
    }
    Ok(data
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Encode an `f64` slice as little-endian bytes.
pub fn encode_f64s(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes into an `f64` vector.
pub fn decode_f64s(data: &[u8]) -> StorageResult<Vec<f64>> {
    if !data.len().is_multiple_of(8) {
        return Err(StorageError::Corrupt {
            name: "<f64 array>".into(),
            reason: format!("length {} not a multiple of 8", data.len()),
        });
    }
    Ok(data
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Append a `u32` in little-endian to a buffer.
#[inline]
pub fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` in little-endian to a buffer.
#[inline]
pub fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A cursor for decoding little-endian values from a byte slice.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wrap a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(StorageError::Corrupt {
                name: "<cursor>".into(),
                reason: format!("need {n} bytes, have {}", self.remaining()),
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> StorageResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> StorageResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> StorageResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read `n` little-endian `u32`s.
    pub fn u32s(&mut self, n: usize) -> StorageResult<Vec<u32>> {
        let bytes = self.take(n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Read the remaining bytes as a slice.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.data[self.pos..];
        self.pos = self.data.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_values() {
        // FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn blob_roundtrip() {
        let payload = encode_u32s(&[1, 2, 3, 0xdeadbeef]);
        let mut buf = Vec::new();
        write_blob(&mut buf, FileKind::SubShard, &payload).unwrap();
        let mut r = &buf[..];
        let back = read_blob(&mut r, FileKind::SubShard, "t").unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn blob_detects_corruption() {
        let payload = encode_u32s(&[7; 16]);
        let mut buf = Vec::new();
        write_blob(&mut buf, FileKind::Hub, &payload).unwrap();
        // Flip a payload byte.
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let mut r = &buf[..];
        let err = read_blob(&mut r, FileKind::Hub, "t").unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }));
    }

    #[test]
    fn blob_detects_wrong_kind() {
        let mut buf = Vec::new();
        write_blob(&mut buf, FileKind::Hub, b"x").unwrap();
        let mut r = &buf[..];
        let err = read_blob(&mut r, FileKind::Interval, "t").unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }));
    }

    #[test]
    fn blob_detects_truncation() {
        let mut buf = Vec::new();
        write_blob(&mut buf, FileKind::Degrees, &[0u8; 100]).unwrap();
        buf.truncate(50);
        let mut r = &buf[..];
        assert!(read_blob(&mut r, FileKind::Degrees, "t").is_err());
    }

    #[test]
    fn u32_roundtrip() {
        let vals = vec![0, 1, u32::MAX, 42];
        assert_eq!(decode_u32s(&encode_u32s(&vals)).unwrap(), vals);
        assert!(decode_u32s(&[0, 1, 2]).is_err());
    }

    #[test]
    fn f64_roundtrip() {
        let vals = vec![0.0, -1.5, f64::MAX, 1e-300];
        assert_eq!(decode_f64s(&encode_f64s(&vals)).unwrap(), vals);
        assert!(decode_f64s(&[0; 7]).is_err());
    }

    #[test]
    fn cursor_reads_sequentially() {
        let mut buf = Vec::new();
        push_u32(&mut buf, 5);
        push_u64(&mut buf, 99);
        buf.extend_from_slice(&2.5f64.to_le_bytes());
        push_u32(&mut buf, 1);
        push_u32(&mut buf, 2);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u32().unwrap(), 5);
        assert_eq!(c.u64().unwrap(), 99);
        assert_eq!(c.f64().unwrap(), 2.5);
        assert_eq!(c.u32s(2).unwrap(), vec![1, 2]);
        assert_eq!(c.remaining(), 0);
        assert!(c.u32().is_err());
    }
}
