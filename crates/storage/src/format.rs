//! Little-endian binary encoding with checksummed headers.
//!
//! Intervals, sub-shards and hubs are stored as typed arrays prefixed with a
//! fixed 32-byte header. The header carries a magic, a format version, a
//! caller-chosen `kind` tag, the payload length and an FNV-1a checksum of
//! the payload, so truncated or corrupted files are detected at load time
//! rather than producing silently wrong graph results.

use std::collections::HashSet;
use std::io::{Read, Write};
use std::ops::Range;

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};

/// Magic bytes identifying NXgraph binary files.
pub const MAGIC: [u8; 8] = *b"NXGRAPH\0";

/// Version tag of raw (uncompressed) blobs. Version 2 switched the payload
/// checksum from byte-at-a-time [`fnv1a`] to the 8-bytes-per-step
/// [`fnv1a_words`]; raw blobs are still written as version 2 bytes, so
/// every pre-v3 file loads unchanged.
pub const VERSION: u32 = 2;

/// Version tag of delta+varint compressed blobs (format v3). The header
/// layout is identical to v2 — only the payload bytes differ — and readers
/// sniff the version per blob, so raw and compressed files mix freely
/// within one prepared graph.
pub const VERSION_COMPRESSED: u32 = 3;

/// How a blob's payload is encoded on disk (sniffed from the header
/// version at load time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// Little-endian `u32` words — the v2 layout the zero-copy views cast
    /// in place.
    Raw,
    /// Delta-coded monotone columns as LEB128 varints (v3), inflated into
    /// an aligned buffer once per load.
    DeltaVarint,
}

impl Encoding {
    /// The header version tag blobs of this encoding carry.
    pub fn version(self) -> u32 {
        match self {
            Encoding::Raw => VERSION,
            Encoding::DeltaVarint => VERSION_COMPRESSED,
        }
    }

    /// The encoding a sniffed header version denotes, if supported.
    pub fn from_version(version: u32) -> Option<Self> {
        match version {
            VERSION => Some(Encoding::Raw),
            VERSION_COMPRESSED => Some(Encoding::DeltaVarint),
            _ => None,
        }
    }
}

/// Writer-side choice of blob encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EncodingPolicy {
    /// Encode both ways per blob and keep the compressed bytes only when
    /// they beat the ratio threshold — the recommended setting for
    /// disk-budgeted runs.
    Auto,
    /// Always write raw v2 words (the default: byte-compatible with every
    /// pre-v3 reader, and the zero-copy cast needs no inflation).
    #[default]
    Raw,
    /// Write delta+varint whenever the blob's columns permit it, even when
    /// the bytes saved are marginal (testing / forced-compression runs).
    Compressed,
}

impl std::str::FromStr for EncodingPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "auto" => Ok(EncodingPolicy::Auto),
            "raw" => Ok(EncodingPolicy::Raw),
            "compressed" => Ok(EncodingPolicy::Compressed),
            other => Err(format!(
                "unknown encoding {other:?} (expected raw|auto|compressed)"
            )),
        }
    }
}

impl std::fmt::Display for EncodingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EncodingPolicy::Auto => "auto",
            EncodingPolicy::Raw => "raw",
            EncodingPolicy::Compressed => "compressed",
        })
    }
}

/// Kind tags for the different file types (stored in the header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u32)]
pub enum FileKind {
    /// Raw edge list (pre-shard): pairs of u32 (src, dst).
    EdgeList = 1,
    /// Interval attribute payload (opaque bytes owned by the program).
    Interval = 2,
    /// Sub-shard in destination-sorted CSR form.
    SubShard = 3,
    /// DPU hub: destination ids + accumulator payload.
    Hub = 4,
    /// Degree table: u32 per vertex.
    Degrees = 5,
    /// Id mapping table.
    Mapping = 6,
}

impl FileKind {
    fn from_u32(v: u32) -> Option<Self> {
        Some(match v {
            1 => FileKind::EdgeList,
            2 => FileKind::Interval,
            3 => FileKind::SubShard,
            4 => FileKind::Hub,
            5 => FileKind::Degrees,
            6 => FileKind::Mapping,
            _ => return None,
        })
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64-bit hash, byte at a time — the textbook definition.
///
/// Kept for reference and for the `fnv1a/{bytes,words}` micro-bench; the
/// blob checksum itself uses [`fnv1a_words`] since format version 2.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a-style 64-bit hash consuming 8 bytes per step.
///
/// Each full little-endian `u64` word is folded with one xor + one
/// multiply (8× fewer multiplies than [`fnv1a`]); the sub-word tail falls
/// back to byte steps, so inputs shorter than 8 bytes hash identically to
/// [`fnv1a`]. Any single-byte change still always changes the hash: xor is
/// injective in the word and multiplication by the odd FNV prime is
/// injective mod 2⁶⁴. This is *not* the same function as byte-wise FNV-1a
/// for inputs ≥ 8 bytes, which is why switching to it bumped [`VERSION`].
pub fn fnv1a_words(data: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        h ^= u64::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_mul(FNV_PRIME);
    }
    for &b in chunks.remainder() {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Write a raw (v2) header + payload to `w`.
pub fn write_blob(w: &mut dyn Write, kind: FileKind, payload: &[u8]) -> StorageResult<()> {
    write_blob_encoded(w, kind, payload, Encoding::Raw)
}

/// Write a header + payload to `w` with the given encoding's version tag.
/// The checksum always covers the stored (possibly compressed) payload
/// bytes, so verification cost scales with what is actually read.
pub fn write_blob_encoded(
    w: &mut dyn Write,
    kind: FileKind,
    payload: &[u8],
    encoding: Encoding,
) -> StorageResult<()> {
    let mut header = [0u8; 32];
    header[0..8].copy_from_slice(&MAGIC);
    header[8..12].copy_from_slice(&encoding.version().to_le_bytes());
    header[12..16].copy_from_slice(&(kind as u32).to_le_bytes());
    header[16..24].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    header[24..32].copy_from_slice(&fnv1a_words(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// Validate a 32-byte header (magic, version, kind); returns the payload
/// encoding, length and expected checksum.
fn check_header(
    header: &[u8; 32],
    expect: FileKind,
    name: &str,
) -> StorageResult<(Encoding, usize, u64)> {
    if header[0..8] != MAGIC {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: "bad magic".into(),
        });
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    let Some(encoding) = Encoding::from_version(version) else {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: format!("unsupported version {version}"),
        });
    };
    let kind_raw = u32::from_le_bytes(header[12..16].try_into().unwrap());
    match FileKind::from_u32(kind_raw) {
        Some(k) if k == expect => {}
        Some(k) => {
            return Err(StorageError::Corrupt {
                name: name.to_string(),
                reason: format!("expected {expect:?}, found {k:?}"),
            })
        }
        None => {
            return Err(StorageError::Corrupt {
                name: name.to_string(),
                reason: format!("unknown kind tag {kind_raw}"),
            })
        }
    }
    let len = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
    let checksum = u64::from_le_bytes(header[24..32].try_into().unwrap());
    Ok((encoding, len, checksum))
}

/// Read a header + payload from `r`, verifying magic, version, kind and
/// checksum, and report the sniffed payload encoding alongside the bytes.
/// Callers of compressible kinds (sub-shards, hubs) dispatch on it.
pub fn read_blob_encoded(
    r: &mut dyn Read,
    expect: FileKind,
    name: &str,
) -> StorageResult<(Encoding, Vec<u8>)> {
    let mut header = [0u8; 32];
    r.read_exact(&mut header).map_err(|e| StorageError::Corrupt {
        name: name.to_string(),
        reason: format!("short header: {e}"),
    })?;
    let (encoding, len, checksum) = check_header(&header, expect, name)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| StorageError::Corrupt {
        name: name.to_string(),
        reason: format!("short payload: {e}"),
    })?;
    if fnv1a_words(&payload) != checksum {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: "checksum mismatch".into(),
        });
    }
    Ok((encoding, payload))
}

/// Read a header + payload from `r`, requiring the raw encoding — the
/// entry point for kinds that are never compressed (intervals, degree and
/// mapping tables). `name` is used only for error messages.
pub fn read_blob(r: &mut dyn Read, expect: FileKind, name: &str) -> StorageResult<Vec<u8>> {
    let (encoding, payload) = read_blob_encoded(r, expect, name)?;
    if encoding != Encoding::Raw {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: format!("unexpected {encoding:?} payload for a raw-only kind"),
        });
    }
    Ok(payload)
}

/// Validate the header of an in-memory blob and return its payload range —
/// the zero-copy counterpart of [`read_blob`].
///
/// `verify_checksum: false` skips the payload hash (the header fields are
/// always checked); callers gate it through a [`ChecksumPolicy`] so a file
/// streamed every iteration pays for integrity verification once, not per
/// load. Skipping verification can never change computed results — it only
/// delays when corruption of an already-verified file would be noticed.
pub fn parse_blob(
    blob: &[u8],
    expect: FileKind,
    name: &str,
    verify_checksum: bool,
) -> StorageResult<Range<usize>> {
    let (encoding, payload) = parse_blob_encoded(blob, expect, name, verify_checksum)?;
    // Raw-only, like `read_blob`: handing a compressed payload range to a
    // caller that casts words would yield garbage, not an error.
    if encoding != Encoding::Raw {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: format!("unexpected {encoding:?} payload for a raw-only kind"),
        });
    }
    Ok(payload)
}

/// Like [`parse_blob`], additionally reporting the sniffed payload
/// encoding so view parsers can pick the in-place cast (raw) or the
/// inflate path (delta+varint) per blob.
pub fn parse_blob_encoded(
    blob: &[u8],
    expect: FileKind,
    name: &str,
    verify_checksum: bool,
) -> StorageResult<(Encoding, Range<usize>)> {
    let Some(header) = blob.get(0..32) else {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: format!("short header: {} bytes", blob.len()),
        });
    };
    let (encoding, len, checksum) = check_header(header.try_into().unwrap(), expect, name)?;
    let Some(payload) = blob.get(32..32 + len) else {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: format!("short payload: {} of {len} bytes", blob.len() - 32),
        });
    };
    if verify_checksum && fnv1a_words(payload) != checksum {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: "checksum mismatch".into(),
        });
    }
    Ok((encoding, 32..32 + len))
}

/// Fully validate an in-memory blob of *any* kind — the scrubber's entry
/// point, where the expected kind comes from the file name rather than a
/// typed call site. Checks the magic, a known version, a known kind tag,
/// that the stored length accounts for **exactly** the blob's bytes (a
/// flipped length-field bit must not pass as "trailing garbage"), and the
/// payload checksum — always, regardless of any [`ChecksumPolicy`].
/// Returns the kind and encoding read from the header.
pub fn verify_blob(blob: &[u8], name: &str) -> StorageResult<(FileKind, Encoding)> {
    let Some(header) = blob.get(0..32) else {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: format!("short header: {} bytes", blob.len()),
        });
    };
    let header: &[u8; 32] = header.try_into().unwrap();
    if header[0..8] != MAGIC {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: "bad magic".into(),
        });
    }
    let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
    let Some(encoding) = Encoding::from_version(version) else {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: format!("unsupported version {version}"),
        });
    };
    let kind_raw = u32::from_le_bytes(header[12..16].try_into().unwrap());
    let Some(kind) = FileKind::from_u32(kind_raw) else {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: format!("unknown kind tag {kind_raw}"),
        });
    };
    let len = u64::from_le_bytes(header[16..24].try_into().unwrap()) as usize;
    if blob.len() != 32 + len {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: format!("length field says {len}, file holds {}", blob.len() - 32),
        });
    }
    let checksum = u64::from_le_bytes(header[24..32].try_into().unwrap());
    if fnv1a_words(&blob[32..]) != checksum {
        return Err(StorageError::Corrupt {
            name: name.to_string(),
            reason: "checksum mismatch".into(),
        });
    }
    Ok((kind, encoding))
}

/// When blob payload checksums are verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChecksumMode {
    /// Verify on every load.
    Always,
    /// Verify the first load of each file name, skip repeats — the default
    /// for engines, which stream the same immutable sub-shard files every
    /// iteration.
    FirstLoad,
    /// Never verify (header fields are still checked).
    Never,
}

/// Per-file-name checksum verification policy shared across loads
/// (including background prefetch threads).
///
/// Under [`ChecksumMode::FirstLoad`] the first load of each name verifies
/// and later loads skip; concurrent first loads may both verify, which is
/// harmless. Verification only affects *when* corruption is detected,
/// never the values computed from an intact file.
pub struct ChecksumPolicy {
    mode: ChecksumMode,
    seen: Mutex<HashSet<String>>,
}

impl ChecksumPolicy {
    /// Policy with the given mode.
    pub fn new(mode: ChecksumMode) -> Self {
        Self {
            mode,
            seen: Mutex::new(HashSet::new()),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> ChecksumMode {
        self.mode
    }

    /// Whether this load of `name` must verify the payload checksum.
    ///
    /// Under `FirstLoad`, callers must report a *successful* verification
    /// back via [`ChecksumPolicy::note_verified`] — a failed (corrupt)
    /// load must not disable verification for the name, or a retry would
    /// silently skip the very check that caught the corruption.
    pub fn should_verify(&self, name: &str) -> bool {
        match self.mode {
            ChecksumMode::Always => true,
            ChecksumMode::Never => false,
            ChecksumMode::FirstLoad => !self.seen.lock().contains(name),
        }
    }

    /// Record that `name` was loaded with its checksum verified; later
    /// `FirstLoad` loads of the same name skip the hash.
    pub fn note_verified(&self, name: &str) {
        if self.mode == ChecksumMode::FirstLoad {
            self.seen.lock().insert(name.to_string());
        }
    }

    /// Whether a load of a file that is *rewritten during a run* (hubs)
    /// must verify. The `FirstLoad` skip is justified only for immutable
    /// files — a rewritten name carries fresh bytes every time — so
    /// everything except [`ChecksumMode::Never`] verifies.
    pub fn should_verify_mutable(&self) -> bool {
        self.mode != ChecksumMode::Never
    }

    /// Forget that `name` was verified. Must be called whenever the bytes
    /// behind a name change or vanish — a fold rewriting a base in place,
    /// a sweep removing a file whose name may be reused — so the next load
    /// under `FirstLoad` re-verifies fresh bytes instead of riding the
    /// stale cache entry.
    pub fn note_invalidated(&self, name: &str) {
        if self.mode == ChecksumMode::FirstLoad {
            self.seen.lock().remove(name);
        }
    }
}

impl Default for ChecksumPolicy {
    fn default() -> Self {
        Self::new(ChecksumMode::FirstLoad)
    }
}

// ---------------------------------------------------------------------------
// Typed array helpers
// ---------------------------------------------------------------------------

/// Encode a `u32` slice as little-endian bytes.
pub fn encode_u32s(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Borrow a little-endian byte slice as `&[u32]` without copying.
///
/// Returns `None` when the length is not a multiple of 4, the pointer is
/// not 4-byte aligned, or the host is big-endian — callers fall back to a
/// copying decode. This is the primitive behind the zero-copy sub-shard
/// views: on the (little-endian) targets we run on, a page-aligned read
/// buffer makes every typed region directly addressable.
pub fn cast_u32s(data: &[u8]) -> Option<&[u32]> {
    if !data.len().is_multiple_of(4)
        || !(data.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u32>())
        || cfg!(target_endian = "big")
    {
        return None;
    }
    // Safety: length and alignment checked above; u32 has no invalid bit
    // patterns; on little-endian hosts the in-memory and on-disk byte
    // orders coincide.
    Some(unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u32>(), data.len() / 4) })
}

/// Mutable counterpart of [`cast_u32s`]: borrow a little-endian byte
/// buffer as `&mut [u32]` so a decoder can inflate words directly into a
/// pooled page-aligned read buffer. Same preconditions, same `None`
/// fallback contract.
pub fn cast_u32s_mut(data: &mut [u8]) -> Option<&mut [u32]> {
    if !data.len().is_multiple_of(4)
        || !(data.as_ptr() as usize).is_multiple_of(std::mem::align_of::<u32>())
        || cfg!(target_endian = "big")
    {
        return None;
    }
    // Safety: as in `cast_u32s`, plus exclusive access via `&mut`.
    Some(unsafe { std::slice::from_raw_parts_mut(data.as_mut_ptr().cast::<u32>(), data.len() / 4) })
}

/// Decode little-endian bytes into a `u32` vector.
pub fn decode_u32s(data: &[u8]) -> StorageResult<Vec<u32>> {
    if !data.len().is_multiple_of(4) {
        return Err(StorageError::Corrupt {
            name: "<u32 array>".into(),
            reason: format!("length {} not a multiple of 4", data.len()),
        });
    }
    // Aligned little-endian input decodes with one memcpy straight into
    // the caller-visible vector instead of a per-element gather.
    if let Some(words) = cast_u32s(data) {
        return Ok(words.to_vec());
    }
    Ok(data
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Encode an `f64` slice as little-endian bytes.
pub fn encode_f64s(vals: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decode little-endian bytes into an `f64` vector.
pub fn decode_f64s(data: &[u8]) -> StorageResult<Vec<f64>> {
    if !data.len().is_multiple_of(8) {
        return Err(StorageError::Corrupt {
            name: "<f64 array>".into(),
            reason: format!("length {} not a multiple of 8", data.len()),
        });
    }
    Ok(data
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
        .collect())
}

/// Append a `u32` in little-endian to a buffer.
#[inline]
pub fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Append a `u64` in little-endian to a buffer.
#[inline]
pub fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A cursor for decoding little-endian values from a byte slice.
pub struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Wrap a byte slice.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize) -> StorageResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(StorageError::Corrupt {
                name: "<cursor>".into(),
                reason: format!("need {n} bytes, have {}", self.remaining()),
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> StorageResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> StorageResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `f64`.
    pub fn f64(&mut self) -> StorageResult<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read `n` little-endian `u32`s, decoded directly into the returned
    /// vector (single memcpy on aligned little-endian input).
    pub fn u32s(&mut self, n: usize) -> StorageResult<Vec<u32>> {
        let bytes = self.take(n * 4)?;
        if let Some(words) = cast_u32s(bytes) {
            return Ok(words.to_vec());
        }
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }


    /// Read the remaining bytes as a slice.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.data[self.pos..];
        self.pos = self.data.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_known_values() {
        // FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_words_matches_bytes_below_a_word() {
        for len in 0..8usize {
            let data: Vec<u8> = (0..len as u8).map(|b| b.wrapping_mul(37) ^ 0x5a).collect();
            assert_eq!(fnv1a_words(&data), fnv1a(&data), "len {len}");
        }
        // At and past a full word the functions intentionally diverge.
        assert_ne!(fnv1a_words(b"12345678"), fnv1a(b"12345678"));
    }

    #[test]
    fn fnv_words_detects_any_single_byte_change() {
        let base: Vec<u8> = (0..64u8).collect();
        let h = fnv1a_words(&base);
        for pos in 0..base.len() {
            let mut fl = base.clone();
            fl[pos] ^= 0x01;
            assert_ne!(fnv1a_words(&fl), h, "flip at {pos} undetected");
        }
    }

    #[test]
    fn parse_blob_matches_read_blob() {
        let payload = encode_u32s(&[9, 8, 7, 6, 5]);
        let mut buf = Vec::new();
        write_blob(&mut buf, FileKind::SubShard, &payload).unwrap();
        let range = parse_blob(&buf, FileKind::SubShard, "t", true).unwrap();
        assert_eq!(&buf[range], &payload[..]);
        // Wrong kind / truncation behave like read_blob.
        assert!(parse_blob(&buf, FileKind::Hub, "t", true).is_err());
        assert!(parse_blob(&buf[..buf.len() - 1], FileKind::SubShard, "t", true).is_err());
        assert!(parse_blob(&buf[..16], FileKind::SubShard, "t", true).is_err());
    }

    #[test]
    fn parse_blob_skip_checksum_still_checks_header() {
        let mut buf = Vec::new();
        write_blob(&mut buf, FileKind::Hub, &[1u8; 40]).unwrap();
        // Corrupt the payload: detected only when verifying.
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        assert!(parse_blob(&buf, FileKind::Hub, "t", true).is_err());
        assert!(parse_blob(&buf, FileKind::Hub, "t", false).is_ok());
        // Corrupt the magic: detected either way.
        buf[0] ^= 0xff;
        assert!(parse_blob(&buf, FileKind::Hub, "t", false).is_err());
    }

    #[test]
    fn checksum_policy_modes() {
        let always = ChecksumPolicy::new(ChecksumMode::Always);
        assert!(always.should_verify("a") && always.should_verify("a"));
        assert!(always.should_verify_mutable());
        let never = ChecksumPolicy::new(ChecksumMode::Never);
        assert!(!never.should_verify("a"));
        assert!(!never.should_verify_mutable());
        let once = ChecksumPolicy::default();
        assert_eq!(once.mode(), ChecksumMode::FirstLoad);
        assert!(once.should_verify_mutable());
        // Skipping starts only after a *successful* verification is noted;
        // a failed first load must leave verification armed.
        assert!(once.should_verify("a"));
        assert!(once.should_verify("a"), "unverified name stays armed");
        once.note_verified("a");
        assert!(!once.should_verify("a"));
        assert!(once.should_verify("b"));
    }

    #[test]
    fn checksum_policy_invalidation_rearms_verification() {
        let once = ChecksumPolicy::default();
        once.note_verified("a");
        assert!(!once.should_verify("a"));
        once.note_invalidated("a");
        assert!(once.should_verify("a"), "rewritten name must re-verify");
        // Invalidating an unknown name is a harmless no-op.
        once.note_invalidated("never-seen");
    }

    #[test]
    fn verify_blob_catches_every_single_bit_flip() {
        let payload = encode_u32s(&(0..40u32).collect::<Vec<_>>());
        let mut buf = Vec::new();
        write_blob_encoded(&mut buf, FileKind::SubShard, &payload, Encoding::Raw).unwrap();
        assert_eq!(
            verify_blob(&buf, "t").unwrap(),
            (FileKind::SubShard, Encoding::Raw)
        );
        // Any single bit flip — header or payload — must be *detectable*:
        // either `verify_blob` errors, or (for flips landing on another
        // valid version/kind tag, which the payload checksum cannot see)
        // the returned pair differs from the writer's, which the scrubber
        // catches by comparing against the kind its file name implies and
        // by deep-decoding referenced blobs.
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut fl = buf.clone();
                fl[byte] ^= 1 << bit;
                match verify_blob(&fl, "t") {
                    Err(_) => {}
                    Ok(got) => assert_ne!(
                        got,
                        (FileKind::SubShard, Encoding::Raw),
                        "flip at byte {byte} bit {bit} undetected"
                    ),
                }
            }
        }
        // Truncation and extension are length-field mismatches.
        assert!(verify_blob(&buf[..buf.len() - 1], "t").is_err());
        let mut ext = buf.clone();
        ext.push(0);
        assert!(verify_blob(&ext, "t").is_err());
        assert!(verify_blob(&buf[..16], "t").is_err());
    }

    #[test]
    fn cast_u32s_respects_length_and_alignment() {
        let vals = vec![1u32, 2, 3, 4];
        let bytes = encode_u32s(&vals);
        if cfg!(target_endian = "little") {
            // Vec allocations are at least word-aligned on every supported
            // allocator, so the cast succeeds from offset 0…
            assert_eq!(cast_u32s(&bytes).unwrap(), &vals[..]);
            // …and fails one byte in (misaligned) or on ragged lengths.
            assert!(cast_u32s(&bytes[1..5]).is_none());
        }
        assert!(cast_u32s(&bytes[..7]).is_none());
        // Either way the copying decode agrees.
        assert_eq!(decode_u32s(&bytes).unwrap(), vals);
    }

    #[test]
    fn encoded_blob_roundtrip_and_sniff() {
        let payload = b"varint soup".to_vec();
        let mut v3 = Vec::new();
        write_blob_encoded(&mut v3, FileKind::SubShard, &payload, Encoding::DeltaVarint).unwrap();
        // The versioned readers sniff DeltaVarint…
        let (enc, back) =
            read_blob_encoded(&mut v3.as_slice(), FileKind::SubShard, "t").unwrap();
        assert_eq!((enc, back), (Encoding::DeltaVarint, payload.clone()));
        let (enc, range) = parse_blob_encoded(&v3, FileKind::SubShard, "t", true).unwrap();
        assert_eq!(enc, Encoding::DeltaVarint);
        assert_eq!(&v3[range], &payload[..]);
        // …while the raw-only readers reject it with a clear error.
        let err = read_blob(&mut v3.as_slice(), FileKind::SubShard, "t").unwrap_err();
        assert!(err.to_string().contains("DeltaVarint"), "{err}");
        let err = parse_blob(&v3, FileKind::SubShard, "t", true).unwrap_err();
        assert!(err.to_string().contains("DeltaVarint"), "{err}");
        // Raw blobs report Raw through the encoded entry points too.
        let mut v2 = Vec::new();
        write_blob(&mut v2, FileKind::SubShard, &payload).unwrap();
        let (enc, _) = parse_blob_encoded(&v2, FileKind::SubShard, "t", true).unwrap();
        assert_eq!(enc, Encoding::Raw);
        // Unknown versions stay rejected.
        let mut v9 = v2.clone();
        v9[8] = 9;
        assert!(parse_blob_encoded(&v9, FileKind::SubShard, "t", false).is_err());
    }

    #[test]
    fn encoding_maps_to_versions() {
        assert_eq!(Encoding::Raw.version(), VERSION);
        assert_eq!(Encoding::DeltaVarint.version(), VERSION_COMPRESSED);
        assert_eq!(Encoding::from_version(2), Some(Encoding::Raw));
        assert_eq!(Encoding::from_version(3), Some(Encoding::DeltaVarint));
        assert_eq!(Encoding::from_version(1), None);
        assert_eq!("raw".parse::<EncodingPolicy>().unwrap(), EncodingPolicy::Raw);
        assert_eq!("auto".parse::<EncodingPolicy>().unwrap(), EncodingPolicy::Auto);
        assert_eq!(
            "compressed".parse::<EncodingPolicy>().unwrap(),
            EncodingPolicy::Compressed
        );
        assert!("gzip".parse::<EncodingPolicy>().is_err());
        assert_eq!(EncodingPolicy::Auto.to_string(), "auto");
        assert_eq!(EncodingPolicy::default(), EncodingPolicy::Raw);
    }

    #[test]
    fn cast_u32s_mut_matches_const_cast() {
        let mut bytes = encode_u32s(&[10u32, 20, 30]);
        if cfg!(target_endian = "little") {
            let words = cast_u32s_mut(&mut bytes).unwrap();
            words[1] = 99;
            assert_eq!(decode_u32s(&bytes).unwrap(), vec![10, 99, 30]);
        }
        assert!(cast_u32s_mut(&mut [0u8; 7][..]).is_none());
    }

    #[test]
    fn blob_roundtrip() {
        let payload = encode_u32s(&[1, 2, 3, 0xdeadbeef]);
        let mut buf = Vec::new();
        write_blob(&mut buf, FileKind::SubShard, &payload).unwrap();
        let mut r = &buf[..];
        let back = read_blob(&mut r, FileKind::SubShard, "t").unwrap();
        assert_eq!(back, payload);
    }

    #[test]
    fn blob_detects_corruption() {
        let payload = encode_u32s(&[7; 16]);
        let mut buf = Vec::new();
        write_blob(&mut buf, FileKind::Hub, &payload).unwrap();
        // Flip a payload byte.
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let mut r = &buf[..];
        let err = read_blob(&mut r, FileKind::Hub, "t").unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }));
    }

    #[test]
    fn blob_detects_wrong_kind() {
        let mut buf = Vec::new();
        write_blob(&mut buf, FileKind::Hub, b"x").unwrap();
        let mut r = &buf[..];
        let err = read_blob(&mut r, FileKind::Interval, "t").unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }));
    }

    #[test]
    fn blob_detects_truncation() {
        let mut buf = Vec::new();
        write_blob(&mut buf, FileKind::Degrees, &[0u8; 100]).unwrap();
        buf.truncate(50);
        let mut r = &buf[..];
        assert!(read_blob(&mut r, FileKind::Degrees, "t").is_err());
    }

    #[test]
    fn u32_roundtrip() {
        let vals = vec![0, 1, u32::MAX, 42];
        assert_eq!(decode_u32s(&encode_u32s(&vals)).unwrap(), vals);
        assert!(decode_u32s(&[0, 1, 2]).is_err());
    }

    #[test]
    fn f64_roundtrip() {
        let vals = vec![0.0, -1.5, f64::MAX, 1e-300];
        assert_eq!(decode_f64s(&encode_f64s(&vals)).unwrap(), vals);
        assert!(decode_f64s(&[0; 7]).is_err());
    }

    #[test]
    fn cursor_reads_sequentially() {
        let mut buf = Vec::new();
        push_u32(&mut buf, 5);
        push_u64(&mut buf, 99);
        buf.extend_from_slice(&2.5f64.to_le_bytes());
        push_u32(&mut buf, 1);
        push_u32(&mut buf, 2);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u32().unwrap(), 5);
        assert_eq!(c.u64().unwrap(), 99);
        assert_eq!(c.f64().unwrap(), 2.5);
        assert_eq!(c.u32s(2).unwrap(), vec![1, 2]);
        assert_eq!(c.remaining(), 0);
        assert!(c.u32().is_err());
    }

}
