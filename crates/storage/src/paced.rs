//! Device emulation: pace real reads to a [`DeviceProfile`].
//!
//! The container this repository is benchmarked in has a datacenter NVMe
//! device (~2 GB/s direct reads) and a single CPU — a regime the paper's
//! testbed (two SATA SSDs in RAID 0) and the GraphChi/X-Stream-era
//! baselines (SATA SSDs, hard disks) never ran in. [`PacedDisk`] wraps
//! any [`Disk`] and slows its *read* path down to a named profile so the
//! out-of-core benchmarks measure the disk-bound regime the paper is
//! about, on hardware that no longer has one:
//!
//! * **Bandwidth**: every byte delivered by a reader owes
//!   `1 / read_bw` seconds; the debt accumulates and is slept off in
//!   coarse slices (so tiny reads don't pay a syscall-sized sleep each).
//! * **Seeks**: opening a file that is *behind* the previously opened one
//!   in [`layout_key`] order charges `seek_latency` — sequential forward
//!   scans are free, exactly the asymmetry that makes the engine's
//!   layout-ordered I/O scheduler worth having on spinning media.
//!
//! Writes and metadata are delegated unpaced: the benchmarks measure the
//! read-bound iteration loop, not preprocessing. The wrapper never alters
//! bytes — a paced graph is bit-for-bit the unpaced graph, only slower.

use std::io::Read;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::counter::IoCounters;
use crate::disk::{Disk, DiskRead, DiskWrite};
use crate::error::StorageResult;
use crate::layout::{layout_key, LayoutToken};
use crate::profile::{DeviceProfile, IoProfile};

/// Sleep only once at least this much bandwidth debt has accrued;
/// sub-slice debts carry over to the next read.
const SLEEP_SLICE: Duration = Duration::from_millis(2);

/// A [`Disk`] wrapper that delays reads to emulate a slower device.
pub struct PacedDisk {
    inner: Arc<dyn Disk>,
    profile: DeviceProfile,
    /// Accumulated un-slept bandwidth debt, in nanoseconds.
    debt_nanos: Arc<AtomicU64>,
    /// Layout key of the most recently opened file, for seek detection.
    last_open: Mutex<Option<Vec<LayoutToken>>>,
    /// Seeks charged so far (backward jumps in layout order).
    seeks: AtomicU64,
}

impl PacedDisk {
    /// Wrap `inner`, pacing reads to `profile`.
    pub fn new(inner: Arc<dyn Disk>, profile: DeviceProfile) -> Self {
        Self {
            inner,
            profile,
            debt_nanos: Arc::new(AtomicU64::new(0)),
            last_open: Mutex::new(None),
            seeks: AtomicU64::new(0),
        }
    }

    /// The emulated device.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Seeks charged so far: opens that jumped backward in layout order.
    pub fn seeks(&self) -> u64 {
        self.seeks.load(Ordering::Relaxed)
    }

    /// Record an access to `name`, charging a seek if it jumps backward
    /// in layout order relative to the previous access.
    fn note_access(&self, name: &str) {
        let key = layout_key(name);
        let mut last = self.last_open.lock();
        if last.as_ref().is_some_and(|prev| key < *prev) {
            self.seeks.fetch_add(1, Ordering::Relaxed);
            if self.profile.seek_latency > Duration::ZERO {
                pay(
                    &self.debt_nanos,
                    self.profile.seek_latency.as_nanos() as u64,
                );
            }
        }
        *last = Some(key);
    }

    /// Nanoseconds owed per byte at this profile's read bandwidth.
    fn nanos_per_byte(&self) -> f64 {
        if self.profile.read_bw.is_finite() && self.profile.read_bw > 0.0 {
            1.0e9 / self.profile.read_bw
        } else {
            0.0
        }
    }
}

/// Add `nanos` to the debt and sleep it off once it exceeds a slice.
fn pay(debt: &AtomicU64, nanos: u64) {
    let owed = debt.fetch_add(nanos, Ordering::Relaxed) + nanos;
    let slice = SLEEP_SLICE.as_nanos() as u64;
    if owed >= slice {
        // Claim the whole debt; racing readers simply sleep their shares.
        let claimed = debt.swap(0, Ordering::Relaxed);
        std::thread::sleep(Duration::from_nanos(claimed));
    }
}

struct PacedRead {
    inner: Box<dyn DiskRead>,
    /// Nanoseconds owed per byte delivered (0 for an infinite-bandwidth
    /// profile such as [`DeviceProfile::RAM`]).
    nanos_per_byte: f64,
    debt: Arc<AtomicU64>,
}

impl Read for PacedRead {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        if n > 0 && self.nanos_per_byte > 0.0 {
            pay(&self.debt, (n as f64 * self.nanos_per_byte) as u64);
        }
        Ok(n)
    }
}

impl DiskRead for PacedRead {
    fn len(&self) -> u64 {
        self.inner.len()
    }
}

impl Disk for PacedDisk {
    fn create(&self, name: &str) -> StorageResult<Box<dyn DiskWrite>> {
        self.inner.create(name)
    }

    fn open(&self, name: &str) -> StorageResult<Box<dyn DiskRead>> {
        let inner = self.inner.open(name)?;
        self.note_access(name);
        Ok(Box::new(PacedRead {
            inner,
            nanos_per_byte: self.nanos_per_byte(),
            debt: Arc::clone(&self.debt_nanos),
        }))
    }

    /// Forward to the inner disk's (possibly `O_DIRECT`) bulk-read path
    /// rather than inheriting the default `open()`-based one, then pay
    /// for the bytes delivered. This is the route `read_shared` — and so
    /// the whole engine read path — takes.
    fn read_into(&self, name: &str, buf: &mut crate::pool::AlignedBuf) -> StorageResult<()> {
        self.note_access(name);
        self.inner.read_into(name, buf)?;
        let npb = self.nanos_per_byte();
        if npb > 0.0 && !buf.is_empty() {
            pay(&self.debt_nanos, (buf.len() as f64 * npb) as u64);
        }
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn len_of(&self, name: &str) -> StorageResult<u64> {
        self.inner.len_of(name)
    }

    fn remove(&self, name: &str) -> StorageResult<()> {
        self.inner.remove(name)
    }

    fn rename(&self, from: &str, to: &str) -> StorageResult<()> {
        self.inner.rename(from, to)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn counters(&self) -> &Arc<IoCounters> {
        self.inner.counters()
    }

    fn io_profile(&self) -> Option<&Arc<IoProfile>> {
        self.inner.io_profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;
    use std::time::Instant;

    fn mem_with(files: &[(&str, usize)]) -> Arc<dyn Disk> {
        let m = MemDisk::new();
        for (name, len) in files {
            m.write_all_to(name, &vec![0xabu8; *len]).unwrap();
        }
        Arc::new(m)
    }

    #[test]
    fn paced_bytes_are_identical_and_ram_profile_is_free() {
        let inner = mem_with(&[("ss_0_0.bin", 10_000), ("ss_0_1.bin", 3)]);
        let paced = PacedDisk::new(Arc::clone(&inner), DeviceProfile::RAM);
        for name in ["ss_0_0.bin", "ss_0_1.bin"] {
            assert_eq!(paced.read_all(name).unwrap(), inner.read_all(name).unwrap());
        }
        assert_eq!(paced.seeks(), 0, "forward scan must be seek-free");
        assert_eq!(
            paced.read_all("ss_0_0.bin").unwrap(),
            inner.read_all("ss_0_0.bin").unwrap()
        );
        assert_eq!(paced.seeks(), 1, "0_1 -> 0_0 re-read jumps backward");
    }

    #[test]
    fn forward_scans_are_seek_free_backward_jumps_are_charged() {
        let inner = mem_with(&[
            ("ss_0_0.bin", 8),
            ("ss_0_2.bin", 8),
            ("ss_0_10.bin", 8),
        ]);
        let paced = PacedDisk::new(inner, DeviceProfile::RAM);
        // Forward in layout order (numeric, not lexicographic): no seeks.
        for name in ["ss_0_0.bin", "ss_0_2.bin", "ss_0_10.bin"] {
            paced.read_all(name).unwrap();
        }
        assert_eq!(paced.seeks(), 0);
        // Jumping back is one seek each time.
        paced.read_all("ss_0_0.bin").unwrap();
        paced.read_all("ss_0_10.bin").unwrap();
        paced.read_all("ss_0_2.bin").unwrap();
        assert_eq!(paced.seeks(), 2);
    }

    #[test]
    fn read_into_is_paced_and_seek_detected_like_open() {
        use crate::pool::AlignedBuf;
        let inner = mem_with(&[("ss_0_0.bin", 1 << 20), ("ss_0_1.bin", 16)]);
        let slow = DeviceProfile {
            name: "test-slow",
            read_bw: 20.0e6,
            write_bw: 20.0e6,
            seek_latency: Duration::ZERO,
        };
        let paced = PacedDisk::new(Arc::clone(&inner), slow);
        let mut buf = AlignedBuf::with_capacity(0);
        paced.read_into("ss_0_1.bin", &mut buf).unwrap();
        let t = Instant::now();
        paced.read_into("ss_0_0.bin", &mut buf).unwrap();
        assert_eq!(buf.as_slice(), &inner.read_all("ss_0_0.bin").unwrap()[..]);
        assert!(
            t.elapsed() >= Duration::from_millis(40),
            "paced read_into finished in {:?}",
            t.elapsed()
        );
        assert_eq!(paced.seeks(), 1, "0_1 -> 0_0 via read_into is a seek");
    }

    #[test]
    fn bandwidth_pacing_slows_reads_down() {
        // 1 MB at an emulated 20 MB/s must take at least ~40 ms even
        // though the backing store is memory.
        let inner = mem_with(&[("big.bin", 1 << 20)]);
        let slow = DeviceProfile {
            name: "test-slow",
            read_bw: 20.0e6,
            write_bw: 20.0e6,
            seek_latency: Duration::ZERO,
        };
        let paced = PacedDisk::new(inner, slow);
        let t = Instant::now();
        let bytes = paced.read_all("big.bin").unwrap();
        assert_eq!(bytes.len(), 1 << 20);
        assert!(
            t.elapsed() >= Duration::from_millis(40),
            "paced read finished in {:?}",
            t.elapsed()
        );
    }
}
