//! Disk abstraction with byte-exact accounting.
//!
//! All NXgraph engines (and the baseline engines) move data exclusively
//! through [`Disk`], so every byte of graph traffic is observable via the
//! disk's [`IoCounters`]. Three implementations are provided:
//!
//! * [`OsDisk`] — a directory of real files, buffered sequential streams;
//!   opt-in `O_DIRECT` reads via [`DiskConfig`] / [`OsDisk::open_direct`]
//!   (falling back cleanly where the filesystem refuses them), plus
//!   [`OsDisk::drop_page_cache`] for cold-cache measurement.
//! * [`MemDisk`] — an in-memory file map, used by the test-suite and to run
//!   experiments on a "RAM disk" profile without touching the filesystem.
//! * [`FaultyDisk`] — wraps another disk and injects failures after a
//!   configurable number of bytes, for failure-path testing.
//! * [`CrashDisk`] — wraps another disk and records every mutating
//!   operation so any prefix (including a torn final write) can be
//!   replayed: the power-loss simulator behind `tests/crash_sim.rs`.

use std::collections::HashMap;
use std::fs;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::counter::IoCounters;
use crate::error::{StorageError, StorageResult};
use crate::pool::{AlignedBuf, BufferPool, SharedBytes, PAGE_SIZE};
use crate::profile::IoProfile;

/// The Linux `O_DIRECT` open flag on architectures where we know its
/// value (the asm-generic `0o40000`, shared by x86, x86-64, aarch64 and
/// riscv64). `None` elsewhere: the direct path simply reports itself
/// unsupported and the buffered path serves every read.
#[cfg(all(
    target_os = "linux",
    any(
        target_arch = "x86",
        target_arch = "x86_64",
        target_arch = "aarch64",
        target_arch = "riscv64"
    )
))]
const O_DIRECT_FLAG: Option<i32> = Some(0o40000);
#[cfg(not(all(
    target_os = "linux",
    any(
        target_arch = "x86",
        target_arch = "x86_64",
        target_arch = "aarch64",
        target_arch = "riscv64"
    )
)))]
const O_DIRECT_FLAG: Option<i32> = None;

/// `posix_fadvise(2)` advice value for "this data will not be needed".
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
const POSIX_FADV_DONTNEED: i32 = 4;

// std already links libc; declaring the symbol directly avoids a crate
// dependency the container cannot fetch. 64-bit Linux only, where
// `off_t` is unambiguously `i64`.
#[cfg(all(target_os = "linux", target_pointer_width = "64"))]
extern "C" {
    fn posix_fadvise(fd: i32, offset: i64, len: i64, advice: i32) -> i32;
}

/// How an [`OsDisk`] performs reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskConfig {
    /// Attempt `O_DIRECT` whole-file reads, bypassing the page cache.
    /// Requires page-aligned buffers (which [`AlignedBuf`] guarantees);
    /// on filesystems that refuse the flag (tmpfs, most network
    /// filesystems) the disk falls back to buffered reads permanently
    /// and counts the fallback in its [`IoProfile`].
    pub direct_reads: bool,
}

/// Read the full advertised length of `r` into `buf`, reporting a
/// truncated stream as [`StorageError::ShortRead`] (file name plus
/// expected/actual byte counts) rather than a bare I/O error.
fn read_full(r: &mut dyn DiskRead, name: &str, buf: &mut AlignedBuf) -> StorageResult<()> {
    let expected = r.len();
    buf.resize(expected as usize);
    let mut filled = 0usize;
    while filled < expected as usize {
        match r.read(&mut buf.as_mut_slice()[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    if filled as u64 != expected {
        return Err(StorageError::ShortRead {
            name: name.to_string(),
            expected,
            actual: filled as u64,
        });
    }
    Ok(())
}

/// A sequential reader handed out by a [`Disk`].
pub trait DiskRead: Read + Send {
    /// Total length of the underlying file in bytes.
    fn len(&self) -> u64;

    /// Whether the underlying file is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read the remainder of the stream into a vector.
    fn read_to_vec(&mut self) -> StorageResult<Vec<u8>> {
        let mut buf = Vec::with_capacity(self.len() as usize);
        self.read_to_end(&mut buf)?;
        Ok(buf)
    }
}

/// A sequential writer handed out by a [`Disk`].
pub trait DiskWrite: Write + Send {
    /// Flush and durably commit the file. Must be called; dropping without
    /// finishing may discard buffered data on some implementations.
    fn finish(self: Box<Self>) -> StorageResult<()>;
}

/// A named collection of sequentially-accessed files with shared I/O
/// accounting.
///
/// The trait is object-safe; engines hold `Arc<dyn Disk>` so the same code
/// runs against real files, memory, or a fault injector.
pub trait Disk: Send + Sync {
    /// Create (or truncate) a file and return a sequential writer over it.
    fn create(&self, name: &str) -> StorageResult<Box<dyn DiskWrite>>;

    /// Open an existing file for sequential reading from the start.
    fn open(&self, name: &str) -> StorageResult<Box<dyn DiskRead>>;

    /// Whether a file with this name exists.
    fn exists(&self, name: &str) -> bool;

    /// Length of the named file in bytes.
    fn len_of(&self, name: &str) -> StorageResult<u64>;

    /// Delete a file.
    fn remove(&self, name: &str) -> StorageResult<()>;

    /// Atomically move `from` over `to` (replacing it if present). The
    /// default implementation is copy + delete — correct but *not* atomic;
    /// [`OsDisk`] and [`MemDisk`] override it with a true atomic move, which
    /// is what makes the manifest's tmp-then-rename save a real commit
    /// point.
    fn rename(&self, from: &str, to: &str) -> StorageResult<()> {
        let data = self.read_all(from)?;
        self.write_all_to(to, &data)?;
        self.remove(from)
    }

    /// Names of all files currently on the disk, in unspecified order.
    fn list(&self) -> Vec<String>;

    /// The shared traffic counters for this disk.
    fn counters(&self) -> &Arc<IoCounters>;

    /// Convenience: read an entire file into memory.
    fn read_all(&self, name: &str) -> StorageResult<Vec<u8>> {
        self.open(name)?.read_to_vec()
    }

    /// Read an entire file into a caller-supplied page-aligned buffer,
    /// resizing it to the file length. The reusable-buffer primitive
    /// behind [`Disk::read_shared`]. A stream shorter than its advertised
    /// length surfaces as [`StorageError::ShortRead`] — truncation is
    /// corruption, not a retryable I/O hiccup.
    fn read_into(&self, name: &str, buf: &mut AlignedBuf) -> StorageResult<()> {
        let mut r = self.open(name)?;
        read_full(&mut *r, name, buf)
    }

    /// The per-path I/O statistics of this disk, when it keeps them.
    /// Only disks doing real kernel I/O ([`OsDisk`]) have a meaningful
    /// profile; in-memory disks return `None`. Wrappers delegate.
    fn io_profile(&self) -> Option<&Arc<IoProfile>> {
        None
    }

    /// Read an entire file into shared bytes suitable for zero-copy
    /// decoding, borrowing a page-aligned buffer from `pool` and filling
    /// it via [`Disk::read_into`] (so an implementation overriding
    /// `read_into` — e.g. a future mmap-backed disk — feeds this too).
    ///
    /// Counts exactly the same bytes as [`Disk::read_all`]. In-memory
    /// disks override this to hand out their stored bytes directly with
    /// no copy at all.
    fn read_shared(&self, name: &str, pool: &Arc<BufferPool>) -> StorageResult<SharedBytes> {
        let mut buf = pool.take(0);
        self.read_into(name, buf.aligned_mut())?;
        Ok(SharedBytes::Pooled(Arc::new(buf)))
    }

    /// Convenience: write an entire buffer as a file.
    fn write_all_to(&self, name: &str, data: &[u8]) -> StorageResult<()> {
        let mut w = self.create(name)?;
        w.write_all(data).map_err(StorageError::from)?;
        w.finish()
    }
}

// ---------------------------------------------------------------------------
// OsDisk
// ---------------------------------------------------------------------------

/// A [`Disk`] backed by a directory of real files.
pub struct OsDisk {
    root: PathBuf,
    counters: Arc<IoCounters>,
    config: DiskConfig,
    profile: Arc<IoProfile>,
    /// Latched once the filesystem refuses `O_DIRECT`; later reads skip
    /// the doomed attempt instead of paying a failed open per file.
    direct_broken: AtomicBool,
}

impl OsDisk {
    /// Open (creating if necessary) a disk rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> StorageResult<Self> {
        Self::with_config(root, DiskConfig::default())
    }

    /// Open a disk rooted at `root` with explicit read-path configuration.
    pub fn with_config(root: impl Into<PathBuf>, config: DiskConfig) -> StorageResult<Self> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            counters: IoCounters::new(),
            config,
            profile: IoProfile::new(),
            direct_broken: AtomicBool::new(false),
        })
    }

    /// Open a disk that reads through `O_DIRECT` where the platform and
    /// filesystem allow it, falling back to buffered reads (and counting
    /// the fallback) where they don't.
    pub fn open_direct(root: impl Into<PathBuf>) -> StorageResult<Self> {
        Self::with_config(
            root,
            DiskConfig {
                direct_reads: true,
            },
        )
    }

    /// The read-path configuration this disk was opened with.
    pub fn config(&self) -> DiskConfig {
        self.config
    }

    /// Whether reads are currently served through `O_DIRECT`: requested
    /// by config, supported on this platform, and not yet refused by the
    /// underlying filesystem.
    pub fn direct_active(&self) -> bool {
        self.config.direct_reads
            && O_DIRECT_FLAG.is_some()
            && !self.direct_broken.load(Ordering::Relaxed)
    }

    /// The root directory backing this disk.
    pub fn root(&self) -> &PathBuf {
        &self.root
    }

    fn path_of(&self, name: &str) -> PathBuf {
        // Flatten any path separators so callers cannot escape the root.
        let safe: String = name
            .chars()
            .map(|c| if c == '/' || c == '\\' { '_' } else { c })
            .collect();
        self.root.join(safe)
    }

    /// Ask the kernel to evict `name`'s pages from the page cache via
    /// `posix_fadvise(DONTNEED)`. Returns whether the advice was applied
    /// — `false` on platforms without the syscall, for missing files, or
    /// when the kernel refuses. Dirty pages are flushed first (`fsync`)
    /// so freshly-written files actually leave the cache.
    pub fn drop_page_cache(&self, name: &str) -> bool {
        #[cfg(all(target_os = "linux", target_pointer_width = "64"))]
        {
            use std::os::fd::AsRawFd;
            let Ok(file) = fs::File::open(self.path_of(name)) else {
                return false;
            };
            let _ = file.sync_all();
            // Safety: a plain fd + constant advice; the kernel validates.
            let rc = unsafe {
                posix_fadvise(file.as_raw_fd(), 0, 0, POSIX_FADV_DONTNEED)
            };
            if rc == 0 {
                self.profile.record_cache_drop();
                return true;
            }
            false
        }
        #[cfg(not(all(target_os = "linux", target_pointer_width = "64")))]
        {
            let _ = name;
            false
        }
    }

    /// Drop every file of this disk from the page cache; returns how many
    /// files were actually evicted.
    pub fn drop_all_page_cache(&self) -> usize {
        self.list()
            .iter()
            .filter(|name| self.drop_page_cache(name))
            .count()
    }

    /// One whole-file `O_DIRECT` read. `Err(None)` means "unsupported
    /// here" (open or first read refused the flag) — the caller falls
    /// back to buffered I/O; `Err(Some(e))` is a real failure.
    fn read_into_direct(
        &self,
        name: &str,
        buf: &mut AlignedBuf,
    ) -> Result<(), Option<StorageError>> {
        let Some(flag) = O_DIRECT_FLAG else {
            return Err(None);
        };
        #[cfg(unix)]
        let opened = {
            use std::os::unix::fs::OpenOptionsExt;
            fs::OpenOptions::new()
                .read(true)
                .custom_flags(flag)
                .open(self.path_of(name))
        };
        #[cfg(not(unix))]
        let opened: io::Result<fs::File> = {
            let _ = flag;
            Err(io::Error::other("no O_DIRECT off unix"))
        };
        let mut file = match opened {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(Some(StorageError::NotFound(name.to_string())));
            }
            // EINVAL & friends: the filesystem refuses the flag.
            Err(_) => return Err(None),
        };
        let len = file.metadata().map_err(|e| Some(e.into()))?.len();
        self.counters.record_seek();
        self.profile.record_open();
        // O_DIRECT requires block-aligned transfer lengths, so read into
        // the page-rounded capacity; the kernel legally short-reads the
        // unaligned tail at EOF, after which the buffer shrinks back to
        // the true file length.
        let rounded = (len as usize).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        buf.resize(rounded);
        let mut filled = 0usize;
        while filled < rounded {
            match file.read(&mut buf.as_mut_slice()[filled..]) {
                Ok(0) => break,
                Ok(n) => {
                    self.counters.record_read(n as u64);
                    self.profile.record_read_syscall();
                    self.profile.record_direct_read(n as u64);
                    filled += n;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // A first-read EINVAL means the open tolerated the flag
                // but the read path doesn't (seen on some FUSE mounts).
                Err(e) if filled == 0 && e.raw_os_error() == Some(22) => {
                    return Err(None);
                }
                Err(e) => return Err(Some(e.into())),
            }
        }
        if filled as u64 != len {
            return Err(Some(StorageError::ShortRead {
                name: name.to_string(),
                expected: len,
                actual: filled as u64,
            }));
        }
        buf.resize(len as usize);
        Ok(())
    }
}

struct CountingFileRead {
    inner: BufReader<fs::File>,
    len: u64,
    counters: Arc<IoCounters>,
    profile: Arc<IoProfile>,
}

impl Read for CountingFileRead {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.counters.record_read(n as u64);
        self.profile.record_read_syscall();
        Ok(n)
    }
}

impl DiskRead for CountingFileRead {
    fn len(&self) -> u64 {
        self.len
    }
}

struct CountingFileWrite {
    inner: BufWriter<fs::File>,
    counters: Arc<IoCounters>,
    profile: Arc<IoProfile>,
}

impl Write for CountingFileWrite {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.counters.record_write(n as u64);
        self.profile.record_write_syscall();
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl DiskWrite for CountingFileWrite {
    fn finish(mut self: Box<Self>) -> StorageResult<()> {
        self.inner.flush()?;
        Ok(())
    }
}

impl Disk for OsDisk {
    fn create(&self, name: &str) -> StorageResult<Box<dyn DiskWrite>> {
        let file = fs::File::create(self.path_of(name))?;
        self.counters.record_seek();
        self.profile.record_open();
        Ok(Box::new(CountingFileWrite {
            inner: BufWriter::with_capacity(1 << 20, file),
            counters: Arc::clone(&self.counters),
            profile: Arc::clone(&self.profile),
        }))
    }

    fn open(&self, name: &str) -> StorageResult<Box<dyn DiskRead>> {
        let path = self.path_of(name);
        let file = fs::File::open(&path)
            .map_err(|_| StorageError::NotFound(name.to_string()))?;
        let len = file.metadata()?.len();
        self.counters.record_seek();
        self.profile.record_open();
        Ok(Box::new(CountingFileRead {
            inner: BufReader::with_capacity(1 << 20, file),
            len,
            counters: Arc::clone(&self.counters),
            profile: Arc::clone(&self.profile),
        }))
    }

    /// The whole-file read primitive: `O_DIRECT` when configured and the
    /// filesystem cooperates, buffered otherwise. Byte accounting is
    /// identical on both paths, so the Table II checks hold regardless of
    /// which one served a run.
    fn read_into(&self, name: &str, buf: &mut AlignedBuf) -> StorageResult<()> {
        if self.direct_active() {
            match self.read_into_direct(name, buf) {
                Ok(()) => return Ok(()),
                Err(Some(e)) => return Err(e),
                Err(None) => {
                    self.direct_broken.store(true, Ordering::Relaxed);
                    self.profile.record_direct_fallback();
                }
            }
        }
        let mut r = self.open(name)?;
        read_full(&mut *r, name, buf)
    }

    fn io_profile(&self) -> Option<&Arc<IoProfile>> {
        Some(&self.profile)
    }

    fn exists(&self, name: &str) -> bool {
        self.path_of(name).exists()
    }

    fn len_of(&self, name: &str) -> StorageResult<u64> {
        let md = fs::metadata(self.path_of(name))
            .map_err(|_| StorageError::NotFound(name.to_string()))?;
        Ok(md.len())
    }

    fn remove(&self, name: &str) -> StorageResult<()> {
        fs::remove_file(self.path_of(name))
            .map_err(|_| StorageError::NotFound(name.to_string()))
    }

    fn list(&self) -> Vec<String> {
        let mut out = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.root) {
            for e in entries.flatten() {
                if let Some(name) = e.file_name().to_str() {
                    out.push(name.to_string());
                }
            }
        }
        out
    }

    fn counters(&self) -> &Arc<IoCounters> {
        &self.counters
    }

    /// Whole-buffer override: one `create` + one `write_all`, skipping the
    /// streaming writer's megabyte `BufWriter`. Streaming-update commits
    /// write hundreds of small delta blobs per batch, where the buffered
    /// path's allocation dwarfs the payload.
    fn write_all_to(&self, name: &str, data: &[u8]) -> StorageResult<()> {
        let mut file = fs::File::create(self.path_of(name))?;
        self.counters.record_seek();
        self.profile.record_open();
        file.write_all(data)?;
        self.counters.record_write(data.len() as u64);
        self.profile.record_write_syscall();
        Ok(())
    }

    /// POSIX `rename(2)`: atomic replace within the root directory.
    fn rename(&self, from: &str, to: &str) -> StorageResult<()> {
        self.counters.record_seek();
        fs::rename(self.path_of(from), self.path_of(to))
            .map_err(|_| StorageError::NotFound(from.to_string()))
    }
}

// ---------------------------------------------------------------------------
// MemDisk
// ---------------------------------------------------------------------------

type FileMap = HashMap<String, Arc<Vec<u8>>>;

/// A [`Disk`] that stores its files in memory.
///
/// Reads and writes still go through the counters, so I/O-amount
/// experiments can run entirely in memory (this is also how the test-suite
/// validates the Table II byte formulas quickly).
pub struct MemDisk {
    files: Arc<Mutex<FileMap>>,
    counters: Arc<IoCounters>,
}

impl MemDisk {
    /// Create an empty in-memory disk.
    pub fn new() -> Self {
        Self {
            files: Arc::new(Mutex::new(HashMap::new())),
            counters: IoCounters::new(),
        }
    }

    /// Number of files currently stored.
    pub fn file_count(&self) -> usize {
        self.files.lock().len()
    }

    /// Sum of the sizes of all stored files.
    pub fn total_size(&self) -> u64 {
        self.files.lock().values().map(|v| v.len() as u64).sum()
    }
}

impl Default for MemDisk {
    fn default() -> Self {
        Self::new()
    }
}

struct MemRead {
    data: Arc<Vec<u8>>,
    pos: usize,
    counters: Arc<IoCounters>,
}

impl Read for MemRead {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = &self.data[self.pos..];
        let n = remaining.len().min(buf.len());
        buf[..n].copy_from_slice(&remaining[..n]);
        self.pos += n;
        self.counters.record_read(n as u64);
        Ok(n)
    }
}

impl DiskRead for MemRead {
    fn len(&self) -> u64 {
        self.data.len() as u64
    }
}

struct MemWrite {
    name: String,
    buf: Vec<u8>,
    disk_files: Arc<Mutex<FileMap>>,
    counters: Arc<IoCounters>,
    finished: bool,
}

impl Write for MemWrite {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(buf);
        self.counters.record_write(buf.len() as u64);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl DiskWrite for MemWrite {
    fn finish(mut self: Box<Self>) -> StorageResult<()> {
        let data = std::mem::take(&mut self.buf);
        self.disk_files
            .lock()
            .insert(self.name.clone(), Arc::new(data));
        self.finished = true;
        Ok(())
    }
}

impl Drop for MemWrite {
    fn drop(&mut self) {
        // Commit on drop as well so callers that forget `finish` are not
        // silently losing data; `finish` remains the explicit, checkable path.
        if !self.finished && !self.buf.is_empty() {
            let data = std::mem::take(&mut self.buf);
            self.disk_files
                .lock()
                .insert(self.name.clone(), Arc::new(data));
        }
    }
}

impl Disk for MemDisk {
    fn create(&self, name: &str) -> StorageResult<Box<dyn DiskWrite>> {
        // The writer owns its buffer; commit happens on finish/drop.
        self.counters.record_seek();
        Ok(Box::new(MemWrite {
            name: name.to_string(),
            buf: Vec::new(),
            disk_files: Arc::clone(&self.files),
            counters: Arc::clone(&self.counters),
            finished: false,
        }))
    }

    fn open(&self, name: &str) -> StorageResult<Box<dyn DiskRead>> {
        let files = self.files.lock();
        let data = files
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(name.to_string()))?;
        self.counters.record_seek();
        Ok(Box::new(MemRead {
            data,
            pos: 0,
            counters: Arc::clone(&self.counters),
        }))
    }

    /// Zero-copy override: the stored `Arc<Vec<u8>>` *is* the result. The
    /// bytes still count as read — the engines' byte-exact I/O accounting
    /// must not depend on which disk backs an experiment.
    fn read_shared(&self, name: &str, _pool: &Arc<BufferPool>) -> StorageResult<SharedBytes> {
        let data = self
            .files
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(name.to_string()))?;
        self.counters.record_seek();
        self.counters.record_read(data.len() as u64);
        Ok(SharedBytes::Owned(data))
    }

    fn exists(&self, name: &str) -> bool {
        self.files.lock().contains_key(name)
    }

    fn len_of(&self, name: &str) -> StorageResult<u64> {
        self.files
            .lock()
            .get(name)
            .map(|v| v.len() as u64)
            .ok_or_else(|| StorageError::NotFound(name.to_string()))
    }

    fn remove(&self, name: &str) -> StorageResult<()> {
        self.files
            .lock()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StorageError::NotFound(name.to_string()))
    }

    fn list(&self) -> Vec<String> {
        self.files.lock().keys().cloned().collect()
    }

    fn counters(&self) -> &Arc<IoCounters> {
        &self.counters
    }

    /// Whole-buffer override: insert the stored vector directly (bytes
    /// still counted), skipping the `MemWrite` commit machinery.
    fn write_all_to(&self, name: &str, data: &[u8]) -> StorageResult<()> {
        self.counters.record_seek();
        self.counters.record_write(data.len() as u64);
        self.files
            .lock()
            .insert(name.to_string(), Arc::new(data.to_vec()));
        Ok(())
    }

    /// Atomic move under the single map lock.
    fn rename(&self, from: &str, to: &str) -> StorageResult<()> {
        let mut files = self.files.lock();
        let data = files
            .remove(from)
            .ok_or_else(|| StorageError::NotFound(from.to_string()))?;
        files.insert(to.to_string(), data);
        self.counters.record_seek();
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FaultyDisk
// ---------------------------------------------------------------------------

/// A fault-injecting wrapper around another [`Disk`].
///
/// After `byte_budget` total bytes of traffic (reads + writes) every further
/// operation fails with [`StorageError::InjectedFault`] (surfaced through
/// `io::Error` on the Read/Write traits). Used to test that engines surface
/// disk failures instead of producing silently wrong results.
pub struct FaultyDisk {
    inner: Arc<dyn Disk>,
    remaining: Arc<AtomicU64>,
}

impl FaultyDisk {
    /// Wrap `inner`, allowing `byte_budget` bytes of traffic before failing.
    pub fn new(inner: Arc<dyn Disk>, byte_budget: u64) -> Self {
        Self {
            inner,
            remaining: Arc::new(AtomicU64::new(byte_budget)),
        }
    }

    fn consume(remaining: &AtomicU64, n: u64) -> io::Result<()> {
        let mut cur = remaining.load(Ordering::Relaxed);
        loop {
            if cur < n {
                return Err(io::Error::other(
                    "injected disk fault: byte budget exhausted",
                ));
            }
            match remaining.compare_exchange(
                cur,
                cur - n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => cur = actual,
            }
        }
    }
}

struct FaultyRead {
    inner: Box<dyn DiskRead>,
    remaining: Arc<AtomicU64>,
}

impl Read for FaultyRead {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        FaultyDisk::consume(&self.remaining, n as u64)?;
        Ok(n)
    }
}

impl DiskRead for FaultyRead {
    fn len(&self) -> u64 {
        self.inner.len()
    }
}

struct FaultyWrite {
    inner: Box<dyn DiskWrite>,
    remaining: Arc<AtomicU64>,
}

impl Write for FaultyWrite {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        FaultyDisk::consume(&self.remaining, buf.len() as u64)?;
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl DiskWrite for FaultyWrite {
    fn finish(self: Box<Self>) -> StorageResult<()> {
        self.inner.finish()
    }
}

impl Disk for FaultyDisk {
    fn create(&self, name: &str) -> StorageResult<Box<dyn DiskWrite>> {
        Ok(Box::new(FaultyWrite {
            inner: self.inner.create(name)?,
            remaining: Arc::clone(&self.remaining),
        }))
    }

    fn open(&self, name: &str) -> StorageResult<Box<dyn DiskRead>> {
        Ok(Box::new(FaultyRead {
            inner: self.inner.open(name)?,
            remaining: Arc::clone(&self.remaining),
        }))
    }

    /// Forward to the inner disk's (possibly `O_DIRECT`) bulk-read path —
    /// the default `open()`-based implementation would silently bypass it
    /// when this wrapper sits above an [`OsDisk`] — then charge the
    /// delivered bytes against the budget.
    fn read_into(&self, name: &str, buf: &mut AlignedBuf) -> StorageResult<()> {
        self.inner.read_into(name, buf)?;
        Self::consume(&self.remaining, buf.len() as u64)?;
        Ok(())
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn len_of(&self, name: &str) -> StorageResult<u64> {
        self.inner.len_of(name)
    }

    fn remove(&self, name: &str) -> StorageResult<()> {
        self.inner.remove(name)
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn counters(&self) -> &Arc<IoCounters> {
        self.inner.counters()
    }

    fn io_profile(&self) -> Option<&Arc<IoProfile>> {
        self.inner.io_profile()
    }
}

// ---------------------------------------------------------------------------
// CrashDisk — the power-loss simulator
// ---------------------------------------------------------------------------

/// One mutating disk operation recorded by [`CrashDisk`].
#[derive(Debug, Clone)]
pub enum CrashOp {
    /// A whole file landed on disk (create+finish or `write_all_to`).
    Write { name: String, data: Vec<u8> },
    /// A file was deleted.
    Remove { name: String },
    /// A file was atomically moved over another.
    Rename { from: String, to: String },
}

/// A cut point in a recorded operation sequence: the disk state after the
/// first `ops` operations, optionally with the *next* operation (a write)
/// torn after `torn` bytes — the partial-page state a real power loss
/// leaves behind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CutPoint {
    /// Number of completed operations to replay.
    pub ops: usize,
    /// If set, the operation at index `ops` (which must be a
    /// [`CrashOp::Write`]) is replayed truncated to this many bytes.
    pub torn: Option<usize>,
}

/// A [`Disk`] wrapper that records every mutating operation so any prefix
/// — including a torn final write — can be replayed onto a fresh
/// [`MemDisk`]. This is the systematic power-loss simulator: a test drives
/// a workload through the wrapper, then [`CrashDisk::cut_points`]
/// enumerates every syscall boundary and [`CrashDisk::replay`] materialises
/// the exact on-disk state a crash at that instant would leave.
///
/// Only whole-operation granularity is modelled for remove/rename (both
/// are atomic on the real backends); writes additionally get torn
/// variants, because a file write is *not* atomic on any real disk.
pub struct CrashDisk {
    inner: Arc<dyn Disk>,
    baseline: HashMap<String, Vec<u8>>,
    log: Arc<Mutex<Vec<CrashOp>>>,
}

impl CrashDisk {
    /// Wrap `inner`, snapshotting its current contents as the baseline
    /// state that every replay starts from.
    pub fn new(inner: Arc<dyn Disk>) -> StorageResult<Self> {
        let mut baseline = HashMap::new();
        for name in inner.list() {
            baseline.insert(name.clone(), inner.read_all(&name)?);
        }
        Ok(Self {
            inner,
            baseline,
            log: Arc::new(Mutex::new(Vec::new())),
        })
    }

    /// Number of mutating operations recorded so far.
    pub fn ops_recorded(&self) -> usize {
        self.log.lock().len()
    }

    /// Every crash state worth testing: the boundary after each operation
    /// (including "nothing happened" and "everything happened"), plus, for
    /// each recorded write of at least two bytes, torn states cut after
    /// the first byte, the midpoint, and one byte short of completion.
    pub fn cut_points(&self) -> Vec<CutPoint> {
        let log = self.log.lock();
        let mut out = Vec::new();
        for ops in 0..=log.len() {
            out.push(CutPoint { ops, torn: None });
            if let Some(CrashOp::Write { data, .. }) = log.get(ops) {
                if data.len() >= 2 {
                    let mut offs = vec![1, data.len() / 2, data.len() - 1];
                    offs.dedup();
                    for off in offs {
                        out.push(CutPoint {
                            ops,
                            torn: Some(off),
                        });
                    }
                }
            }
        }
        out
    }

    /// Materialise the disk state at `cut` onto a fresh [`MemDisk`]:
    /// baseline files, then the first `cut.ops` operations, then (if
    /// `cut.torn` is set) a byte-prefix of the next write.
    pub fn replay(&self, cut: CutPoint) -> StorageResult<MemDisk> {
        let disk = MemDisk::new();
        for (name, data) in &self.baseline {
            disk.write_all_to(name, data)?;
        }
        let log = self.log.lock();
        for op in log.iter().take(cut.ops) {
            match op {
                CrashOp::Write { name, data } => disk.write_all_to(name, data)?,
                CrashOp::Remove { name } => match disk.remove(name) {
                    Ok(()) | Err(StorageError::NotFound(_)) => {}
                    Err(e) => return Err(e),
                },
                CrashOp::Rename { from, to } => disk.rename(from, to)?,
            }
        }
        if let Some(off) = cut.torn {
            match log.get(cut.ops) {
                Some(CrashOp::Write { name, data }) => {
                    disk.write_all_to(name, &data[..off.min(data.len())])?;
                }
                other => panic!("torn cut must land on a Write op, got {other:?}"),
            }
        }
        Ok(disk)
    }

    fn record(&self, op: CrashOp) {
        self.log.lock().push(op);
    }
}

struct CrashWrite {
    name: String,
    buf: Vec<u8>,
    disk: Arc<dyn Disk>,
    log: Arc<Mutex<Vec<CrashOp>>>,
    finished: bool,
}

impl CrashWrite {
    fn commit(&mut self) -> StorageResult<()> {
        let data = std::mem::take(&mut self.buf);
        self.disk.write_all_to(&self.name, &data)?;
        self.log.lock().push(CrashOp::Write {
            name: self.name.clone(),
            data,
        });
        self.finished = true;
        Ok(())
    }
}

impl Write for CrashWrite {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl DiskWrite for CrashWrite {
    fn finish(mut self: Box<Self>) -> StorageResult<()> {
        self.commit()
    }
}

impl Drop for CrashWrite {
    fn drop(&mut self) {
        // Mirror MemWrite: a dropped-but-unfinished writer still lands,
        // so the recorded log matches what the inner disk saw.
        if !self.finished && !self.buf.is_empty() {
            let _ = self.commit();
        }
    }
}

impl Disk for CrashDisk {
    fn create(&self, name: &str) -> StorageResult<Box<dyn DiskWrite>> {
        // Buffer the whole file so the log records one atomic Write op at
        // the moment the inner disk commits it.
        Ok(Box::new(CrashWrite {
            name: name.to_string(),
            buf: Vec::new(),
            disk: Arc::clone(&self.inner),
            log: Arc::clone(&self.log),
            finished: false,
        }))
    }

    fn open(&self, name: &str) -> StorageResult<Box<dyn DiskRead>> {
        self.inner.open(name)
    }

    fn exists(&self, name: &str) -> bool {
        self.inner.exists(name)
    }

    fn len_of(&self, name: &str) -> StorageResult<u64> {
        self.inner.len_of(name)
    }

    fn remove(&self, name: &str) -> StorageResult<()> {
        self.inner.remove(name)?;
        self.record(CrashOp::Remove {
            name: name.to_string(),
        });
        Ok(())
    }

    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn counters(&self) -> &Arc<IoCounters> {
        self.inner.counters()
    }

    fn io_profile(&self) -> Option<&Arc<IoProfile>> {
        self.inner.io_profile()
    }

    /// Reads don't crash: forward straight to the inner disk's (possibly
    /// `O_DIRECT`) bulk path so a wrapped `OsDisk` keeps its direct reads
    /// and per-path accounting.
    fn read_into(&self, name: &str, buf: &mut AlignedBuf) -> StorageResult<()> {
        self.inner.read_into(name, buf)
    }

    fn read_shared(&self, name: &str, pool: &Arc<BufferPool>) -> StorageResult<SharedBytes> {
        self.inner.read_shared(name, pool)
    }

    fn write_all_to(&self, name: &str, data: &[u8]) -> StorageResult<()> {
        self.inner.write_all_to(name, data)?;
        self.record(CrashOp::Write {
            name: name.to_string(),
            data: data.to_vec(),
        });
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> StorageResult<()> {
        self.inner.rename(from, to)?;
        self.record(CrashOp::Rename {
            from: from.to_string(),
            to: to.to_string(),
        });
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(disk: &dyn Disk) {
        disk.write_all_to("a.bin", b"hello world").unwrap();
        assert!(disk.exists("a.bin"));
        assert_eq!(disk.len_of("a.bin").unwrap(), 11);
        let data = disk.read_all("a.bin").unwrap();
        assert_eq!(data, b"hello world");
        assert!(disk.counters().read_bytes() >= 11);
        assert!(disk.counters().written_bytes() >= 11);
        assert_eq!(disk.list(), vec!["a.bin".to_string()]);
        disk.remove("a.bin").unwrap();
        assert!(!disk.exists("a.bin"));
        assert!(matches!(
            disk.open("a.bin"),
            Err(StorageError::NotFound(_))
        ));
    }

    #[test]
    fn memdisk_roundtrip() {
        let disk = MemDisk::new();
        exercise(&disk);
    }

    #[test]
    fn osdisk_roundtrip() {
        let dir = std::env::temp_dir().join(format!(
            "nxgraph-osdisk-test-{}",
            std::process::id()
        ));
        let disk = OsDisk::new(&dir).unwrap();
        exercise(&disk);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn osdisk_rejects_path_escape() {
        let dir = std::env::temp_dir().join(format!(
            "nxgraph-osdisk-esc-{}",
            std::process::id()
        ));
        let disk = OsDisk::new(&dir).unwrap();
        disk.write_all_to("../evil", b"x").unwrap();
        // The file must have been created inside the root, not outside it.
        assert!(disk.root().join(".._evil").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_shared_counts_like_read_all() {
        let os_dir = std::env::temp_dir().join(format!(
            "nxgraph-osdisk-shared-{}",
            std::process::id()
        ));
        let mem: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let os: Arc<dyn Disk> = Arc::new(OsDisk::new(&os_dir).unwrap());
        let payload: Vec<u8> = (0..9000u32).map(|k| k as u8).collect();
        for disk in [&mem, &os] {
            disk.write_all_to("f", &payload).unwrap();
            let pool = BufferPool::new();
            let before = disk.counters().read_bytes();
            let shared = disk.read_shared("f", &pool).unwrap();
            assert_eq!(shared.as_slice(), &payload[..]);
            assert_eq!(
                disk.counters().read_bytes() - before,
                payload.len() as u64,
                "read_shared must count exactly the file bytes"
            );
            assert!(matches!(
                disk.read_shared("missing", &pool),
                Err(StorageError::NotFound(_))
            ));
        }
        std::fs::remove_dir_all(&os_dir).ok();
    }

    #[test]
    fn memdisk_read_shared_is_zero_copy() {
        let disk = MemDisk::new();
        disk.write_all_to("f", b"shared").unwrap();
        let pool = BufferPool::new();
        let bytes = disk.read_shared("f", &pool).unwrap();
        let stored_ptr = disk.files.lock().get("f").unwrap().as_ptr();
        assert_eq!(bytes.as_slice().as_ptr(), stored_ptr);
        assert_eq!(pool.idle(), 0, "no pooled buffer was consumed");
    }

    #[test]
    fn read_into_reuses_the_caller_buffer() {
        let disk = MemDisk::new();
        disk.write_all_to("a", &[1u8; 100]).unwrap();
        disk.write_all_to("b", &[2u8; 40]).unwrap();
        let mut buf = AlignedBuf::with_capacity(0);
        disk.read_into("a", &mut buf).unwrap();
        assert_eq!(buf.as_slice(), &[1u8; 100]);
        disk.read_into("b", &mut buf).unwrap();
        assert_eq!(buf.as_slice(), &[2u8; 40]);
    }

    #[test]
    fn faulty_disk_read_shared_respects_budget() {
        let inner = Arc::new(MemDisk::new());
        inner.write_all_to("f", &[0u8; 64]).unwrap();
        let disk = FaultyDisk::new(inner, 16);
        let pool = BufferPool::new();
        assert!(disk.read_shared("f", &pool).is_err());
    }

    /// Wrapper audit: every Disk wrapper must forward `read_into` to the
    /// inner disk rather than inherit the default `open()`-based path, so
    /// a stacked chain (Fault → Crash → Faulty → Paced → Os) still
    /// reaches `OsDisk`'s `O_DIRECT` implementation and its per-path
    /// counters. The direct attempt records either a direct read or a
    /// fallback; the default path records neither.
    #[test]
    fn stacked_wrappers_preserve_the_direct_read_path_and_counters() {
        use crate::fault::{FaultDisk, FaultPlan};
        use crate::paced::PacedDisk;
        use crate::profile::DeviceProfile;

        let dir = std::env::temp_dir().join(format!(
            "nxgraph-osdisk-stack-{}",
            std::process::id()
        ));
        let os = Arc::new(
            OsDisk::with_config(&dir, DiskConfig { direct_reads: true }).unwrap(),
        );
        let payload: Vec<u8> = (0..10_000u32).map(|k| (k % 251) as u8).collect();
        os.write_all_to("ss_0_0.bin", &payload).unwrap();

        let paced: Arc<dyn Disk> =
            Arc::new(PacedDisk::new(Arc::clone(&os) as Arc<dyn Disk>, DeviceProfile::RAM));
        let faulty: Arc<dyn Disk> = Arc::new(FaultyDisk::new(paced, u64::MAX));
        let crash: Arc<dyn Disk> = Arc::new(CrashDisk::new(faulty).unwrap());
        let fault: Arc<dyn Disk> = Arc::new(FaultDisk::new(crash, FaultPlan::new()));

        let before = fault.io_profile().expect("profile flows up the stack").snapshot();
        let pool = BufferPool::new();
        let bytes = fault.read_shared("ss_0_0.bin", &pool).unwrap();
        assert_eq!(bytes.as_slice(), &payload[..], "stacking never alters bytes");
        let after = fault.io_profile().unwrap().snapshot().delta(&before);
        assert!(
            after.direct_reads + after.direct_fallbacks >= 1,
            "stacked read_shared bypassed OsDisk::read_into: {after:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn memdisk_overwrite_replaces() {
        let disk = MemDisk::new();
        disk.write_all_to("f", b"one").unwrap();
        disk.write_all_to("f", b"twothree").unwrap();
        assert_eq!(disk.read_all("f").unwrap(), b"twothree");
        assert_eq!(disk.file_count(), 1);
        assert_eq!(disk.total_size(), 8);
    }

    #[test]
    fn faulty_disk_fails_after_limit() {
        let inner = Arc::new(MemDisk::new());
        let disk = FaultyDisk::new(inner, 8);
        let mut w = disk.create("f").unwrap();
        assert!(w.write_all(b"12345678").is_ok());
        assert!(w.write_all(b"9").is_err());
    }

    #[test]
    fn faulty_disk_read_failure() {
        let inner = Arc::new(MemDisk::new());
        inner.write_all_to("f", &[0u8; 64]).unwrap();
        let disk = FaultyDisk::new(inner, 16);
        // Writes consumed no budget; reads beyond 16 bytes fail.
        let mut r = disk.open("f").unwrap();
        let mut buf = vec![0u8; 64];
        let res = r.read_exact(&mut buf);
        assert!(res.is_err());
    }

    #[test]
    fn rename_replaces_atomically_on_every_backend() {
        let os_dir = std::env::temp_dir().join(format!(
            "nxgraph-osdisk-rename-{}",
            std::process::id()
        ));
        let mem: Arc<dyn Disk> = Arc::new(MemDisk::new());
        let os: Arc<dyn Disk> = Arc::new(OsDisk::new(&os_dir).unwrap());
        let faulty: Arc<dyn Disk> =
            Arc::new(FaultyDisk::new(Arc::new(MemDisk::new()), u64::MAX));
        for disk in [&mem, &os, &faulty] {
            disk.write_all_to("old", b"payload").unwrap();
            disk.write_all_to("target", b"stale").unwrap();
            disk.rename("old", "target").unwrap();
            assert!(!disk.exists("old"));
            assert_eq!(disk.read_all("target").unwrap(), b"payload");
            assert!(matches!(
                disk.rename("missing", "x"),
                Err(StorageError::NotFound(_))
            ));
            disk.remove("target").unwrap();
        }
        std::fs::remove_dir_all(&os_dir).ok();
    }

    #[test]
    fn crash_disk_records_and_replays_prefixes() {
        let inner = Arc::new(MemDisk::new());
        inner.write_all_to("base", b"seed").unwrap();
        let disk = CrashDisk::new(inner).unwrap();
        disk.write_all_to("a", b"aaaa").unwrap();
        disk.write_all_to("b.tmp", b"bbbb").unwrap();
        disk.rename("b.tmp", "b").unwrap();
        disk.remove("a").unwrap();
        assert_eq!(disk.ops_recorded(), 4);

        // ops=0: baseline only.
        let d0 = disk.replay(CutPoint { ops: 0, torn: None }).unwrap();
        assert_eq!(d0.read_all("base").unwrap(), b"seed");
        assert!(!d0.exists("a"));
        // ops=2: a written, b still at its tmp name.
        let d2 = disk.replay(CutPoint { ops: 2, torn: None }).unwrap();
        assert_eq!(d2.read_all("a").unwrap(), b"aaaa");
        assert!(d2.exists("b.tmp") && !d2.exists("b"));
        // ops=3: rename happened.
        let d3 = disk.replay(CutPoint { ops: 3, torn: None }).unwrap();
        assert!(!d3.exists("b.tmp"));
        assert_eq!(d3.read_all("b").unwrap(), b"bbbb");
        // full replay matches the live disk.
        let d4 = disk
            .replay(CutPoint { ops: 4, torn: None })
            .unwrap();
        assert!(!d4.exists("a"));
        assert_eq!(d4.read_all("b").unwrap(), b"bbbb");
        // torn first write: only a prefix of `a` landed.
        let t = disk.replay(CutPoint { ops: 0, torn: Some(2) }).unwrap();
        assert_eq!(t.read_all("a").unwrap(), b"aa");
    }

    #[test]
    fn crash_disk_cut_points_cover_torn_writes() {
        let inner = Arc::new(MemDisk::new());
        let disk = CrashDisk::new(inner).unwrap();
        disk.write_all_to("f", &[7u8; 8]).unwrap();
        let cuts = disk.cut_points();
        // Boundaries 0 and 1, plus torn offsets 1, 4, 7.
        assert_eq!(cuts.len(), 5);
        assert!(cuts.contains(&CutPoint { ops: 0, torn: Some(1) }));
        assert!(cuts.contains(&CutPoint { ops: 0, torn: Some(4) }));
        assert!(cuts.contains(&CutPoint { ops: 0, torn: Some(7) }));
        for cut in cuts {
            let d = disk.replay(cut).unwrap();
            match cut {
                CutPoint { ops: 1, .. } => assert_eq!(d.len_of("f").unwrap(), 8),
                CutPoint { torn: Some(off), .. } => {
                    assert_eq!(d.len_of("f").unwrap(), off as u64)
                }
                _ => assert!(!d.exists("f")),
            }
        }
    }

    #[test]
    fn direct_and_buffered_reads_are_byte_identical() {
        // The payload deliberately has an unaligned tail so the direct
        // path exercises its page-rounded read + shrink. In environments
        // whose temp filesystem refuses O_DIRECT the direct disk falls
        // back to buffered reads — the bytes (and counted traffic) must
        // be identical either way.
        let base = std::env::temp_dir().join(format!(
            "nxgraph-osdisk-direct-{}",
            std::process::id()
        ));
        let buffered = OsDisk::new(base.join("buf")).unwrap();
        let direct = OsDisk::open_direct(base.join("dir")).unwrap();
        assert!(direct.config().direct_reads);
        let payload: Vec<u8> = (0..PAGE_SIZE * 3 + 937).map(|k| (k * 7) as u8).collect();
        buffered.write_all_to("f", &payload).unwrap();
        direct.write_all_to("f", &payload).unwrap();
        let pool = BufferPool::new();
        for disk in [&buffered, &direct] {
            let before = disk.counters().read_bytes();
            let bytes = disk.read_shared("f", &pool).unwrap();
            assert_eq!(bytes.as_slice(), &payload[..]);
            assert_eq!(
                disk.counters().read_bytes() - before,
                payload.len() as u64
            );
        }
        let prof = direct.io_profile().expect("OsDisk keeps a profile").snapshot();
        if direct.direct_active() {
            assert!(prof.direct_reads > 0, "direct path served the read");
            assert_eq!(prof.direct_bytes, payload.len() as u64);
        } else {
            assert_eq!(prof.direct_fallbacks, 1, "fallback must be counted");
        }
        assert!(matches!(
            direct.read_shared("missing", &pool),
            Err(StorageError::NotFound(_))
        ));
        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn direct_disk_handles_empty_and_exact_page_files() {
        let base = std::env::temp_dir().join(format!(
            "nxgraph-osdisk-direct-edge-{}",
            std::process::id()
        ));
        let disk = OsDisk::open_direct(&base).unwrap();
        let pool = BufferPool::new();
        disk.write_all_to("empty", b"").unwrap();
        assert_eq!(disk.read_shared("empty", &pool).unwrap().len(), 0);
        let page: Vec<u8> = (0..PAGE_SIZE).map(|k| k as u8).collect();
        disk.write_all_to("page", &page).unwrap();
        assert_eq!(disk.read_shared("page", &pool).unwrap().as_slice(), &page[..]);
        std::fs::remove_dir_all(&base).ok();
    }

    /// A disk whose readers over-report their length: the only way to
    /// exercise the short-read path deterministically, since a real
    /// OsDisk's metadata length always matches its content.
    struct LyingDisk(MemDisk);

    struct LyingRead(Box<dyn DiskRead>);

    impl Read for LyingRead {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            self.0.read(buf)
        }
    }

    impl DiskRead for LyingRead {
        fn len(&self) -> u64 {
            self.0.len() + 10
        }
    }

    impl Disk for LyingDisk {
        fn create(&self, name: &str) -> StorageResult<Box<dyn DiskWrite>> {
            self.0.create(name)
        }
        fn open(&self, name: &str) -> StorageResult<Box<dyn DiskRead>> {
            Ok(Box::new(LyingRead(self.0.open(name)?)))
        }
        fn exists(&self, name: &str) -> bool {
            self.0.exists(name)
        }
        fn len_of(&self, name: &str) -> StorageResult<u64> {
            self.0.len_of(name)
        }
        fn remove(&self, name: &str) -> StorageResult<()> {
            self.0.remove(name)
        }
        fn list(&self) -> Vec<String> {
            self.0.list()
        }
        fn counters(&self) -> &Arc<IoCounters> {
            self.0.counters()
        }
    }

    #[test]
    fn truncated_stream_reports_short_read_with_lengths() {
        let disk = LyingDisk(MemDisk::new());
        disk.0.write_all_to("t", &[9u8; 90]).unwrap();
        let mut buf = AlignedBuf::with_capacity(0);
        match disk.read_into("t", &mut buf) {
            Err(StorageError::ShortRead {
                name,
                expected,
                actual,
            }) => {
                assert_eq!(name, "t");
                assert_eq!(expected, 100);
                assert_eq!(actual, 90);
            }
            other => panic!("expected ShortRead, got {other:?}"),
        }
    }

    #[test]
    fn drop_page_cache_is_graceful() {
        let dir = std::env::temp_dir().join(format!(
            "nxgraph-osdisk-fadvise-{}",
            std::process::id()
        ));
        let disk = OsDisk::new(&dir).unwrap();
        disk.write_all_to("f", &[1u8; 8192]).unwrap();
        // Whether the kernel honours the advice is platform-dependent;
        // what must hold is that the call neither errors nor lies about
        // missing files, and that successes are counted.
        let dropped = disk.drop_page_cache("f");
        let counted = disk.io_profile().unwrap().snapshot().cache_drops;
        assert_eq!(counted, dropped as u64);
        assert!(!disk.drop_page_cache("missing"));
        assert_eq!(disk.drop_all_page_cache(), dropped as usize);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_disk_streaming_writer_records_one_op() {
        let inner = Arc::new(MemDisk::new());
        let disk = CrashDisk::new(inner).unwrap();
        let mut w = disk.create("s").unwrap();
        w.write_all(b"part1").unwrap();
        w.write_all(b"part2").unwrap();
        assert_eq!(disk.ops_recorded(), 0, "nothing commits before finish");
        w.finish().unwrap();
        assert_eq!(disk.ops_recorded(), 1);
        assert_eq!(disk.read_all("s").unwrap(), b"part1part2");
    }
}
