//! Preprocessing throughput: degreeing and sharding (§III-A).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nxgraph_core::prep::{self, PrepConfig};
use nxgraph_graphgen::rmat::{self, RmatConfig};
use nxgraph_storage::{Disk, MemDisk};

fn bench_prep(c: &mut Criterion) {
    let cfg = RmatConfig::graph500(14, 8, 3);
    let raw: Vec<(u64, u64)> = rmat::generate(&cfg)
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect();

    let mut group = c.benchmark_group("prep");
    group.sample_size(20);
    group.bench_function("degreeing", |b| {
        b.iter(|| black_box(prep::degree(&raw)))
    });
    let deg = prep::degree(&raw);
    group.bench_function("sharding_p12", |b| {
        let scfg = PrepConfig::forward_only("bench", 12);
        b.iter(|| {
            let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
            black_box(prep::shard(&deg, &scfg, disk).unwrap());
        })
    });
    group.bench_function("sharding_p12_compressed", |b| {
        let scfg = PrepConfig::forward_only("bench", 12)
            .with_encoding(nxgraph_storage::EncodingPolicy::Auto);
        b.iter(|| {
            let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
            black_box(prep::shard(&deg, &scfg, disk).unwrap());
        })
    });
    group.bench_function("full_prep_with_reverse", |b| {
        b.iter(|| {
            let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
            black_box(prep::preprocess(&raw, &PrepConfig::new("bench", 12), disk).unwrap());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_prep);
criterion_main!(benches);
