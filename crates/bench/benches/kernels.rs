//! Micro-benchmarks of the update kernels — the ablation behind Table IV:
//! destination-sorted fine-grained absorb vs source-sorted coarse-grained
//! absorb, plus hub compaction/merging.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nxgraph_baselines::common::coarse_absorb;
use nxgraph_core::algo::pagerank::PageRank;
use nxgraph_core::dsss::SubShard;
use nxgraph_core::engine::kernel::absorb_single;
use nxgraph_core::engine::AccBuf;
use nxgraph_graphgen::rmat::{self, RmatConfig};

const SCALE: u32 = 14;
const EDGE_FACTOR: u32 = 16;

fn workload() -> (u32, Vec<(u32, u32)>, Arc<Vec<u32>>) {
    let cfg = RmatConfig::graph500(SCALE, EDGE_FACTOR, 7);
    let n = cfg.num_vertices() as u32;
    let edges: Vec<(u32, u32)> = rmat::generate(&cfg)
        .into_iter()
        .map(|e| (e.src as u32, e.dst as u32))
        .collect();
    let mut deg = vec![0u32; n as usize];
    for &(s, _) in &edges {
        deg[s as usize] += 1;
    }
    // Avoid zero degrees for sources that never appear: absorb only runs
    // for actual sources, so this is safe padding.
    for d in deg.iter_mut() {
        *d = (*d).max(1);
    }
    (n, edges, Arc::new(deg))
}

fn bench_kernels(c: &mut Criterion) {
    let (n, edges, deg) = workload();
    let prog = PageRank::new(n, Arc::clone(&deg));
    let vals = vec![1.0 / n as f64; n as usize];
    let ss = Arc::new(SubShard::from_edges(0, 0, edges.clone()));
    let threads = 4;

    let mut group = c.benchmark_group("kernel");
    group.bench_function("dst_sorted_fine_grained", |b| {
        b.iter(|| {
            let mut buf = AccBuf::<PageRank>::new(&prog, 0, n as usize);
            absorb_single(&prog, &ss, &vals, 0, &mut buf, threads, 8192);
            black_box(buf.acc[0]);
        })
    });
    group.bench_function("src_sorted_coarse_grained", |b| {
        let mut src_sorted = edges.clone();
        src_sorted.sort_unstable();
        b.iter(|| {
            let (acc, _) = coarse_absorb(
                &prog,
                &src_sorted,
                |_idx, s| vals[s as usize],
                0,
                n as usize,
                threads,
            );
            black_box(acc[0]);
        })
    });
    group.finish();

    let mut group = c.benchmark_group("hub");
    let mut buf = AccBuf::<PageRank>::new(&prog, 0, n as usize);
    absorb_single(&prog, &ss, &vals, 0, &mut buf, threads, 8192);
    group.bench_function("compact", |b| {
        b.iter(|| black_box(buf.compact()))
    });
    let (dsts, accs) = buf.compact();
    group.bench_function("merge", |b| {
        b.iter(|| {
            let mut target = AccBuf::<PageRank>::new(&prog, 0, n as usize);
            target.merge_hub(&prog, &dsts, &accs);
            black_box(target.acc[0]);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
