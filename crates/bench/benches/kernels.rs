//! Micro-benchmarks of the update kernels — the ablation behind Table IV:
//! destination-sorted fine-grained absorb vs source-sorted coarse-grained
//! absorb, plus hub compaction/merging, the scalar vs 4-way-unrolled
//! flat-edge absorb, the task-dispatch slot comparison (mutex slots vs
//! the pool's cursor-claimed lock-free slots), the byte-wise vs word-wise
//! FNV-1a checksum, and owned `SubShard::decode` vs the zero-copy
//! `SubShardView::parse`.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nxgraph_baselines::common::coarse_absorb;
use nxgraph_core::algo::pagerank::PageRank;
use nxgraph_core::dsss::{SubShard, SubShardView};
use nxgraph_core::engine::kernel::absorb_single;
use nxgraph_core::engine::AccBuf;
use nxgraph_core::parallel::run_tasks;
use nxgraph_core::program::VertexProgram;
use nxgraph_core::types::VertexId;
use nxgraph_graphgen::rmat::{self, RmatConfig};
use nxgraph_storage::format::{self, EncodingPolicy};
use nxgraph_storage::{varint, SharedBytes};

const SCALE: u32 = 14;
const EDGE_FACTOR: u32 = 16;

fn workload() -> (u32, Vec<(u32, u32)>, Arc<Vec<u32>>) {
    let cfg = RmatConfig::graph500(SCALE, EDGE_FACTOR, 7);
    let n = cfg.num_vertices() as u32;
    let edges: Vec<(u32, u32)> = rmat::generate(&cfg)
        .into_iter()
        .map(|e| (e.src as u32, e.dst as u32))
        .collect();
    let mut deg = vec![0u32; n as usize];
    for &(s, _) in &edges {
        deg[s as usize] += 1;
    }
    // Avoid zero degrees for sources that never appear: absorb only runs
    // for actual sources, so this is safe padding.
    for d in deg.iter_mut() {
        *d = (*d).max(1);
    }
    (n, edges, Arc::new(deg))
}

/// PageRank with `absorb_run` left at the trait default: the scalar
/// per-edge walk. Benchmarks the unrolled override against this.
struct ScalarPageRank(PageRank);

impl VertexProgram for ScalarPageRank {
    type Value = f64;
    type Accum = f64;
    const APPLY_NEEDS_OLD: bool = false;
    const ALWAYS_APPLY: bool = true;

    fn init(&self, v: VertexId) -> f64 {
        self.0.init(v)
    }

    fn zero(&self) -> f64 {
        self.0.zero()
    }

    fn absorb(&self, s: VertexId, sv: &f64, d: VertexId, acc: &mut f64) -> bool {
        self.0.absorb(s, sv, d, acc)
    }

    fn combine(&self, a: &mut f64, b: &f64) {
        self.0.combine(a, b)
    }

    fn apply(&self, v: VertexId, old: &f64, acc: &f64, got: bool) -> f64 {
        self.0.apply(v, old, acc, got)
    }
    // No absorb_run override: the default scalar loop is the baseline.
}

fn bench_kernels(c: &mut Criterion) {
    let (n, edges, deg) = workload();
    let prog = PageRank::new(n, Arc::clone(&deg));
    let vals = vec![1.0 / n as f64; n as usize];
    let ss = Arc::new(SubShardView::from(&SubShard::from_edges(0, 0, edges.clone())));
    let threads = 4;

    let mut group = c.benchmark_group("kernel");
    group.bench_function("dst_sorted_fine_grained", |b| {
        b.iter(|| {
            let mut buf = AccBuf::<PageRank>::new(&prog, 0, n as usize);
            absorb_single(&prog, &ss, &vals, 0, &mut buf, threads, 8192);
            black_box(buf.acc[0]);
        })
    });
    group.bench_function("src_sorted_coarse_grained", |b| {
        let mut src_sorted = edges.clone();
        src_sorted.sort_unstable();
        b.iter(|| {
            let (acc, _) = coarse_absorb(
                &prog,
                &src_sorted,
                |_idx, s| vals[s as usize],
                0,
                n as usize,
                threads,
            );
            black_box(acc[0]);
        })
    });
    group.finish();

    // Scalar per-edge walk vs the 4-way unrolled flat-edge absorb_run,
    // single-threaded so the ratio isolates the inner loop. Uses a *dense*
    // R-MAT (same edge count, 16× fewer vertices → long per-destination
    // source runs) where the lane unroll has room to amortise; the skewed
    // Graph500 fixture above has mostly sub-4-edge runs.
    let dense_cfg = RmatConfig::graph500(SCALE - 4, EDGE_FACTOR * 16, 7);
    let dn = dense_cfg.num_vertices() as u32;
    let dense_edges: Vec<(u32, u32)> = rmat::generate(&dense_cfg)
        .into_iter()
        .map(|e| (e.src as u32, e.dst as u32))
        .collect();
    let mut dense_deg = vec![1u32; dn as usize];
    for &(s, _) in &dense_edges {
        dense_deg[s as usize] += 1;
    }
    let dense_deg = Arc::new(dense_deg);
    let dense_vals = vec![1.0 / dn as f64; dn as usize];
    let dense_ss = Arc::new(SubShardView::from(&SubShard::from_edges(0, 0, dense_edges)));
    let dense_prog = PageRank::new(dn, Arc::clone(&dense_deg));
    let scalar_prog = ScalarPageRank(PageRank::new(dn, Arc::clone(&dense_deg)));
    let mut group = c.benchmark_group("absorb_run");
    group.bench_function("scalar", |b| {
        b.iter(|| {
            let mut buf = AccBuf::<ScalarPageRank>::new(&scalar_prog, 0, dn as usize);
            absorb_single(&scalar_prog, &dense_ss, &dense_vals, 0, &mut buf, 1, usize::MAX);
            black_box(buf.acc[0]);
        })
    });
    group.bench_function("unrolled4", |b| {
        b.iter(|| {
            let mut buf = AccBuf::<PageRank>::new(&dense_prog, 0, dn as usize);
            absorb_single(&dense_prog, &dense_ss, &dense_vals, 0, &mut buf, 1, usize::MAX);
            black_box(buf.acc[0]);
        })
    });
    group.finish();

    let mut group = c.benchmark_group("hub");
    let mut buf = AccBuf::<PageRank>::new(&prog, 0, n as usize);
    absorb_single(&prog, &ss, &vals, 0, &mut buf, threads, 8192);
    group.bench_function("compact", |b| {
        b.iter(|| black_box(buf.compact()))
    });
    let (dsts, accs) = buf.compact();
    group.bench_function("merge", |b| {
        b.iter(|| {
            let mut target = AccBuf::<PageRank>::new(&prog, 0, n as usize);
            target.merge_hub(&prog, &dsts, &accs);
            black_box(target.acc[0]);
        })
    });
    group.finish();
}

/// The read-path codec comparisons behind the zero-copy refactor:
///
/// * `fnv1a/{bytes,words}` — the byte-at-a-time checksum vs the
///   8-bytes-per-step variant used as the blob checksum since format v2.
/// * `varint/{encode,decode}` — the LEB128 primitive behind format v3's
///   delta+varint payloads, over a realistic gap distribution.
/// * `subshard_decode/{owned,view,view_checksummed,compressed}` — the
///   legacy three-copy `SubShard::decode` vs `SubShardView::parse` on a
///   raw blob, and the delta+varint inflate path on the v3 blob of the
///   same shard. `view` skips the checksum (the steady state under the
///   verify-once `ChecksumPolicy`); `view_checksummed` verifies like a
///   first load.
fn bench_codec(c: &mut Criterion) {
    let (_, edges, _) = workload();
    let ss = SubShard::from_edges(0, 0, edges);
    let bytes = ss.encode();
    let payload = &bytes[32..];

    let mut group = c.benchmark_group("fnv1a");
    group.bench_function("bytes", |b| {
        b.iter(|| black_box(format::fnv1a(black_box(payload))))
    });
    group.bench_function("words", |b| {
        b.iter(|| black_box(format::fnv1a_words(black_box(payload))))
    });
    group.finish();

    // The source column's in-run gaps are what the v3 codec spends most
    // of its time on; benchmark the primitive over exactly those values.
    let mut gaps: Vec<u32> = Vec::with_capacity(ss.num_edges());
    for pos in 0..ss.num_dsts() {
        let run = &ss.srcs[ss.src_range(pos)];
        gaps.push(run[0]);
        gaps.extend(run.windows(2).map(|w| w[1] - w[0]));
    }
    let mut encoded = Vec::with_capacity(2 * gaps.len());
    for &g in &gaps {
        varint::push_varint(&mut encoded, g);
    }
    let mut group = c.benchmark_group("varint");
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(2 * gaps.len());
            for &g in &gaps {
                varint::push_varint(&mut out, black_box(g));
            }
            black_box(out.len())
        })
    });
    group.bench_function("decode", |b| {
        b.iter(|| {
            let mut pos = 0;
            let mut sum = 0u64;
            while pos < encoded.len() {
                sum += varint::read_varint(&encoded, &mut pos, "bench").unwrap() as u64;
            }
            black_box(sum)
        })
    });
    group.finish();

    let shared = SharedBytes::from(bytes.clone());
    let compressed = SharedBytes::from(ss.encode_with(EncodingPolicy::Compressed));
    let mut group = c.benchmark_group("subshard_decode");
    group.bench_function("owned", |b| {
        b.iter(|| black_box(SubShard::decode(&bytes, "bench").unwrap().num_edges()))
    });
    group.bench_function("view", |b| {
        b.iter(|| {
            black_box(
                SubShardView::parse(shared.clone(), "bench", false)
                    .unwrap()
                    .num_edges(),
            )
        })
    });
    group.bench_function("view_checksummed", |b| {
        b.iter(|| {
            black_box(
                SubShardView::parse(shared.clone(), "bench", true)
                    .unwrap()
                    .num_edges(),
            )
        })
    });
    group.bench_function("compressed", |b| {
        b.iter(|| {
            black_box(
                SubShardView::parse(compressed.clone(), "bench", false)
                    .unwrap()
                    .num_edges(),
            )
        })
    });
    group.finish();
}

/// A slot claimed at most once via a shared cursor — the pool's lock-free
/// task container, replicated here so both dispatch variants run under an
/// identical scoped-thread harness.
struct CursorSlot(UnsafeCell<Option<u64>>);

// Safety: each index is claimed by exactly one thread (cursor fetch_add).
unsafe impl Sync for CursorSlot {}

const DISPATCH_TASKS: usize = 65_536;
const DISPATCH_THREADS: usize = 4;

/// Task-dispatch cost comparison: the old per-task `Mutex<Option<T>>`
/// hand-off vs the cursor-claimed `UnsafeCell` slots now used by
/// `parallel::pool`, under the same thread harness — plus the real
/// `run_tasks` path for an end-to-end number.
fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");

    group.bench_function("mutex_slots", |b| {
        b.iter(|| {
            let tasks: Vec<Mutex<Option<u64>>> =
                (0..DISPATCH_TASKS as u64).map(|t| Mutex::new(Some(t))).collect();
            let cursor = AtomicUsize::new(0);
            let sum = AtomicU64::new(0);
            std::thread::scope(|s| {
                for _ in 0..DISPATCH_THREADS {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks.len() {
                            break;
                        }
                        if let Some(t) = tasks[i].lock().unwrap().take() {
                            sum.fetch_add(t, Ordering::Relaxed);
                        }
                    });
                }
            });
            black_box(sum.load(Ordering::Relaxed))
        })
    });

    group.bench_function("lockfree_slots", |b| {
        b.iter(|| {
            let tasks: Vec<CursorSlot> = (0..DISPATCH_TASKS as u64)
                .map(|t| CursorSlot(UnsafeCell::new(Some(t))))
                .collect();
            let cursor = AtomicUsize::new(0);
            let sum = AtomicU64::new(0);
            std::thread::scope(|s| {
                for _ in 0..DISPATCH_THREADS {
                    s.spawn(|| loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= tasks.len() {
                            break;
                        }
                        // Safety: `i` handed to this thread alone.
                        if let Some(t) = unsafe { (*tasks[i].0.get()).take() } {
                            sum.fetch_add(t, Ordering::Relaxed);
                        }
                    });
                }
            });
            black_box(sum.load(Ordering::Relaxed))
        })
    });

    group.bench_function("pool_run_tasks", |b| {
        b.iter(|| {
            let sum = AtomicU64::new(0);
            let tasks: Vec<u64> = (0..DISPATCH_TASKS as u64).collect();
            run_tasks(DISPATCH_THREADS, tasks, |t| {
                sum.fetch_add(t, Ordering::Relaxed);
            });
            black_box(sum.load(Ordering::Relaxed))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_kernels, bench_codec, bench_dispatch);
criterion_main!(benches);
