//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **edge ordering** — (dst, src)-sorted vs dst-sorted-only sub-shards:
//!   the §III-A claim that sorting sources within a destination improves
//!   cache behaviour of the source-interval reads.
//! * **task granularity** — edges-per-task sweep for the fine-grained
//!   kernel ("several thousands of edges", §III-D).
//! * **hub indirection** — direct in-memory accumulation vs the
//!   compact→write→read→merge hub path (the DPU overhead SPU avoids).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nxgraph_core::algo::pagerank::PageRank;
use nxgraph_core::dsss::{SubShard, SubShardView};
use nxgraph_core::engine::kernel::absorb_single;
use nxgraph_core::engine::AccBuf;
use nxgraph_core::prep;
use nxgraph_core::prep::PrepConfig;
use nxgraph_graphgen::rmat::{self, RmatConfig};
use nxgraph_storage::{Disk, MemDisk};

fn edges() -> (u32, Vec<(u32, u32)>, Arc<Vec<u32>>) {
    let cfg = RmatConfig::graph500(14, 16, 21);
    let n = cfg.num_vertices() as u32;
    let edges: Vec<(u32, u32)> = rmat::generate(&cfg)
        .into_iter()
        .map(|e| (e.src as u32, e.dst as u32))
        .collect();
    let mut deg = vec![1u32; n as usize];
    for &(s, _) in &edges {
        deg[s as usize] += 1;
    }
    (n, edges, Arc::new(deg))
}

/// A sub-shard with destinations sorted but sources left in input order —
/// the structure NXgraph would have *without* the secondary sort.
fn dst_only_sorted(edges: &[(u32, u32)]) -> SubShard {
    let mut by_dst = edges.to_vec();
    by_dst.sort_by_key(|&(_, d)| d); // stable: preserves src input order
    // Build CSR manually to avoid the (dst, src) sort of from_edges.
    let mut dsts = Vec::new();
    let mut offsets = vec![0u32];
    let mut srcs = Vec::with_capacity(by_dst.len());
    for (s, d) in by_dst {
        if dsts.last() != Some(&d) {
            dsts.push(d);
            offsets.push(srcs.len() as u32);
        }
        srcs.push(s);
        *offsets.last_mut().unwrap() = srcs.len() as u32;
    }
    SubShard {
        src_interval: 0,
        dst_interval: 0,
        dsts,
        offsets,
        srcs,
    }
}

fn bench_edge_ordering(c: &mut Criterion) {
    let (n, edges, deg) = edges();
    let prog = PageRank::new(n, Arc::clone(&deg));
    let vals = vec![1.0 / n as f64; n as usize];
    let sorted = Arc::new(SubShardView::from(&SubShard::from_edges(0, 0, edges.clone())));
    let unsorted_src = Arc::new(SubShardView::from(&dst_only_sorted(&edges)));

    let mut group = c.benchmark_group("edge_ordering");
    for (name, ss) in [("dst_and_src_sorted", &sorted), ("dst_sorted_only", &unsorted_src)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut buf = AccBuf::<PageRank>::new(&prog, 0, n as usize);
                absorb_single(&prog, ss, &vals, 0, &mut buf, 4, 8192);
                black_box(buf.acc[0]);
            })
        });
    }
    group.finish();
}

fn bench_task_granularity(c: &mut Criterion) {
    let (n, edges, deg) = edges();
    let prog = PageRank::new(n, Arc::clone(&deg));
    let vals = vec![1.0 / n as f64; n as usize];
    let ss = Arc::new(SubShardView::from(&SubShard::from_edges(0, 0, edges)));

    let mut group = c.benchmark_group("edges_per_task");
    for ept in [256usize, 1024, 8192, 65536] {
        group.bench_function(format!("ept_{ept}"), |b| {
            b.iter(|| {
                let mut buf = AccBuf::<PageRank>::new(&prog, 0, n as usize);
                absorb_single(&prog, &ss, &vals, 0, &mut buf, 8, ept);
                black_box(buf.acc[0]);
            })
        });
    }
    group.finish();
}

fn bench_hub_indirection(c: &mut Criterion) {
    // One iteration of PageRank via SPU (direct) vs DPU (hub files).
    let raw: Vec<(u64, u64)> = rmat::generate(&RmatConfig::graph500(13, 8, 33))
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect();
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let g = prep::preprocess(&raw, &PrepConfig::forward_only("abl", 8), disk).unwrap();

    let mut group = c.benchmark_group("hub_indirection");
    group.sample_size(20);
    for (name, strategy) in [
        ("spu_direct", nxgraph_core::engine::Strategy::Spu),
        ("dpu_hubs", nxgraph_core::engine::Strategy::Dpu),
    ] {
        let cfg = nxgraph_core::engine::EngineConfig::default()
            .with_strategy(strategy)
            .with_threads(4);
        group.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    nxgraph_core::algo::pagerank(&g, 1, &cfg)
                        .unwrap()
                        .0[0],
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_edge_ordering,
    bench_task_granularity,
    bench_hub_indirection
);
criterion_main!(benches);
