//! SPU vs DPU vs MPU: one engine run of PageRank on an R-MAT graph —
//! the Criterion counterpart of Fig 8/Exp 3.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use nxgraph_core::algo;
use nxgraph_core::engine::{EngineConfig, Strategy, SyncMode};
use nxgraph_core::prep::{preprocess, PrepConfig};
use nxgraph_core::PreparedGraph;
use nxgraph_graphgen::rmat::{self, RmatConfig};
use nxgraph_storage::{Disk, MemDisk};

fn graph() -> PreparedGraph {
    let cfg = RmatConfig::graph500(14, 8, 5);
    let raw: Vec<(u64, u64)> = rmat::generate(&cfg)
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect();
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    preprocess(&raw, &PrepConfig::forward_only("bench", 12), disk).unwrap()
}

fn bench_strategies(c: &mut Criterion) {
    let g = graph();
    let n = g.num_vertices() as u64;
    let mpu_budget = 4 * n + n * 8; // half the intervals resident

    let mut group = c.benchmark_group("strategy_pagerank_3iters");
    group.sample_size(20);
    for (name, cfg) in [
        (
            "spu",
            EngineConfig::default().with_strategy(Strategy::Spu),
        ),
        (
            "dpu",
            EngineConfig::default().with_strategy(Strategy::Dpu),
        ),
        (
            "mpu_half",
            EngineConfig::default()
                .with_strategy(Strategy::Mpu)
                .with_budget(mpu_budget),
        ),
        (
            "spu_lock",
            EngineConfig::default()
                .with_strategy(Strategy::Spu)
                .with_sync(SyncMode::Lock),
        ),
    ] {
        let cfg = cfg.with_threads(4);
        group.bench_function(name, |b| {
            b.iter(|| black_box(algo::pagerank(&g, 3, &cfg).unwrap().0[0]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
