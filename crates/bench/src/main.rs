//! `nxbench` — regenerates every table and figure of the NXgraph paper.
//!
//! ```text
//! nxbench <experiment> [--scale-shift N] [--seed N] [--threads N] [--iters N]
//!                      [--json] [--out PATH] [--encoding raw|auto|compressed]
//!                      [--background] [--cold-cache] [--ooc-scale N]
//!                      [--ooc-device ssd-raid0|ssd|hdd]
//!
//! experiments:
//!   table2   Table II  — analytic I/O bounds per strategy
//!   fig6     Fig 6     — MPU vs TurboGraph-like I/O ratio curve
//!   exp1     Table IV  — sub-shard ordering & parallelism ablation
//!   exp2     Fig 7     — partitioning sweep (P) for PR/BFS/SCC
//!   exp3     Fig 8     — SPU vs DPU across threads and memory
//!   exp4     Fig 9     — memory-size sweep, all systems
//!   exp5     Fig 10    — thread-count sweep, all systems
//!   exp6     Fig 11    — scalability in MTEPS on mesh graphs
//!   exp7     Fig 12    — BFS/SCC/WCC across systems
//!   exp8     Table V   — limited-resource comparison (+HDD model)
//!   exp9     Table VI  — best-case comparison
//!   perf     repo perf baseline — PageRank iters/sec, edges/sec and read
//!            bytes/iter per encoding × strategy × prefetch on fixed-seed
//!            R-MAT at two scales, plus the thread-scaling section;
//!            `--json` writes BENCH_pagerank.json (`--out` overrides).
//!            Measures encodings raw *and* auto unless `--encoding` pins
//!            one. Includes a disk-backed out-of-core section (streamed
//!            R-MAT prep, O_DIRECT + I/O scheduler); `--cold-cache`
//!            drops the page cache between reps so reads hit the disk.
//!   scaling  repo thread-scaling baseline — PageRank iters/sec per
//!            strategy at 1/2/4/8 engine threads on the scale-15 fixture,
//!            plus the bitwise determinism matrix (8 algorithms ×
//!            {SPU,DPU,MPU} × {Callback,Lock} identical at every thread
//!            count — divergence fails the run). `--json` writes
//!            BENCH_scaling.json (`--out` overrides).
//!   updates  repo streaming-update baseline — edges-applied/sec, disk
//!            write bytes/batch and per-commit add_edges latency
//!            (p50/p99) for DynamicGraph's delta-log commit path vs the
//!            legacy whole-cell rewrite, on a fixed-seed R-MAT stream;
//!            `--background` adds a third mode that folds chains on the
//!            maintenance thread instead of inline. Fails unless every
//!            mode lands bitwise on a from-scratch prep. `--json` writes
//!            BENCH_updates.json (`--out` overrides).
//!   serve    repo concurrent-serving baseline — reader threads run
//!            point queries (BFS/SSSP/PPR/top-k PageRank) through the
//!            GraphService's admission control while the writer commits
//!            edge batches and background maintenance folds chains.
//!            Reports queries/sec, p50/p99 latency, admission
//!            rejections and max snapshot lag; fails on any query error
//!            or if a snapshot pinned before the stream is not
//!            bitwise-identical after compaction supersedes its
//!            generation. `--json` writes BENCH_serve.json (`--out`
//!            overrides).
//!   all                — run everything
//! ```
//!
//! Default scales keep each experiment in seconds; raise `--scale-shift`
//! toward 0 to approach the paper's dataset sizes (see DESIGN.md §2).

mod exps;

use std::process::ExitCode;

/// Shared experiment options parsed from the command line.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Added to each dataset's default log2 scale (negative = smaller).
    pub scale_shift: i32,
    /// RNG seed for the generators.
    pub seed: u64,
    /// Worker threads for the "full resources" configurations.
    pub threads: usize,
    /// PageRank iterations (the paper uses 10).
    pub iters: usize,
    /// Whether `perf`/`updates` should write their JSON reports.
    pub json: bool,
    /// Output path override for the JSON report; each experiment has its
    /// own default (`BENCH_pagerank.json`, `BENCH_updates.json`).
    pub out: Option<String>,
    /// On-disk blob encoding for `perf`: `None` measures raw *and* auto
    /// side by side; `Some` pins a single policy (the CI per-path runs).
    pub encoding: Option<nxgraph_storage::EncodingPolicy>,
    /// Whether `updates` also measures the background-compaction mode.
    pub background: bool,
    /// Cold-cache mode for `perf`: drop the workload's page cache (and
    /// read via `O_DIRECT` where the platform allows) between measured
    /// reps, so every run pays real disk reads instead of page-cache
    /// hits. Falls back to buffered reads with `posix_fadvise` drops on
    /// filesystems that reject `O_DIRECT`.
    pub cold_cache: bool,
    /// Log2 scale override for `perf`'s out-of-core workload, decoupled
    /// from `--scale-shift` so the disk-bound section can run at large
    /// scale without dragging the in-memory sections along.
    pub ooc_scale: Option<u32>,
    /// Device emulation for `perf`'s out-of-core workload: pace reads to
    /// a named `DeviceProfile` (`ssd-raid0` — the paper's testbed —
    /// `ssd`, or `hdd`). Default: the container's real device, unpaced.
    /// This container pairs a ~2 GB/s NVMe with a single CPU, a regime
    /// no out-of-core graph paper ever ran in; pacing restores the
    /// disk-bound balance the paper's Exp 4/8 measured.
    pub ooc_device: Option<nxgraph_storage::DeviceProfile>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            scale_shift: -6,
            seed: 42,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .min(12),
            iters: 10,
            json: false,
            out: None,
            encoding: None,
            background: false,
            cold_cache: false,
            ooc_scale: None,
            ooc_device: None,
        }
    }
}

fn parse(args: &[String]) -> Result<(String, Opts), String> {
    let mut opts = Opts::default();
    let mut exp = None;
    let mut k = 0;
    while k < args.len() {
        let a = args[k].clone();
        let take_val = |k: &mut usize| -> Result<String, String> {
            *k += 1;
            args.get(*k)
                .cloned()
                .ok_or_else(|| format!("flag {a} needs a value"))
        };
        match a.as_str() {
            "--scale-shift" => {
                opts.scale_shift = take_val(&mut k)?
                    .parse()
                    .map_err(|e| format!("bad --scale-shift: {e}"))?
            }
            "--seed" => {
                opts.seed = take_val(&mut k)?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--threads" => {
                opts.threads = take_val(&mut k)?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?
            }
            "--iters" => {
                opts.iters = take_val(&mut k)?
                    .parse()
                    .map_err(|e| format!("bad --iters: {e}"))?
            }
            "--json" => opts.json = true,
            "--background" => opts.background = true,
            "--cold-cache" => opts.cold_cache = true,
            "--ooc-scale" => {
                opts.ooc_scale = Some(
                    take_val(&mut k)?
                        .parse()
                        .map_err(|e| format!("bad --ooc-scale: {e}"))?,
                )
            }
            "--ooc-device" => {
                let name = take_val(&mut k)?;
                opts.ooc_device =
                    Some(nxgraph_storage::DeviceProfile::by_name(&name).ok_or_else(|| {
                        format!("bad --ooc-device {name:?} (ssd-raid0|ssd|hdd|ram)")
                    })?)
            }
            "--out" => opts.out = Some(take_val(&mut k)?),
            "--encoding" => {
                opts.encoding = Some(
                    take_val(&mut k)?
                        .parse()
                        .map_err(|e| format!("bad --encoding: {e}"))?,
                )
            }
            name if !name.starts_with('-') && exp.is_none() => exp = Some(name.to_string()),
            other => return Err(format!("unknown argument {other:?}")),
        }
        k += 1;
    }
    Ok((exp.ok_or("missing experiment name")?, opts))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (exp, opts) = match parse(&args) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("nxbench: {e}\nusage: nxbench <table2|fig6|exp1..exp9|perf|scaling|updates|serve|all> [--scale-shift N] [--seed N] [--threads N] [--iters N] [--json] [--out PATH] [--encoding raw|auto|compressed] [--background] [--cold-cache] [--ooc-scale N] [--ooc-device ssd-raid0|ssd|hdd]");
            return ExitCode::FAILURE;
        }
    };
    // JSON lands at `--out` when given, else the experiment's own
    // default. Under `all`, several experiments write JSON — honouring
    // one `--out` would silently clobber earlier reports, so ignore it.
    let mut opts = opts;
    if exp == "all" && opts.out.take().is_some() {
        eprintln!("nxbench: --out ignored for 'all' (each experiment writes its own default path)");
    }
    let json_out = |default: &'static str| -> Option<String> {
        opts.json
            .then(|| opts.out.clone().unwrap_or_else(|| default.to_string()))
    };
    let run_one = |name: &str| match name {
        "table2" => exps::table2::run(&opts),
        "fig6" => exps::fig6::run(&opts),
        "exp1" => exps::exp1_ordering::run(&opts),
        "exp2" => exps::exp2_partitioning::run(&opts),
        "exp3" => exps::exp3_spu_dpu::run(&opts),
        "exp4" => exps::exp4_memory::run(&opts),
        "exp5" => exps::exp5_threads::run(&opts),
        "exp6" => exps::exp6_scalability::run(&opts),
        "exp7" => exps::exp7_tasks::run(&opts),
        "exp8" => exps::exp8_limited::run(&opts),
        "exp9" => exps::exp9_best::run(&opts),
        "perf" => exps::perf::run(&opts, json_out("BENCH_pagerank.json").as_deref()),
        "scaling" => exps::scaling::run(&opts, json_out("BENCH_scaling.json").as_deref()),
        "updates" => exps::updates::run(&opts, json_out("BENCH_updates.json").as_deref()),
        "serve" => exps::serve::run(&opts, json_out("BENCH_serve.json").as_deref()),
        other => {
            eprintln!("unknown experiment {other:?}");
            false
        }
    };
    let ok = if exp == "all" {
        [
            "table2", "fig6", "exp1", "exp2", "exp3", "exp4", "exp5", "exp6", "exp7", "exp8",
            "exp9", "perf", "scaling", "updates", "serve",
        ]
        .iter()
        .all(|e| run_one(e))
    } else {
        run_one(&exp)
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
