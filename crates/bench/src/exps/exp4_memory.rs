//! Exp 4 / Fig 9 — elapsed time vs memory budget for 10-iteration
//! PageRank on the three graphs; NXgraph (callback & lock) vs
//! GraphChi-like vs TurboGraph-like.
//!
//! The budget knob is modelled explicitly (DESIGN.md §2): it selects
//! SPU/MPU/DPU and the shard cache, and the modeled-SSD column converts
//! the counted traffic into device time so the saturation shape of Fig 9
//! (time falls until everything fits, then flattens) is visible on any
//! host.

use std::sync::Arc;

use nxgraph_baselines::graphchi::{GraphChiConfig, GraphChiEngine};
use nxgraph_baselines::turbograph::{self, TurboGraphConfig};
use nxgraph_bench::report::Table;
use nxgraph_bench::workloads::prepare_mem;
use nxgraph_core::algo::{self, pagerank::PageRank};
use nxgraph_core::engine::SyncMode;
use nxgraph_storage::DeviceProfile;

use crate::exps::{modeled_secs, nx_cfg, real_world};
use crate::Opts;

/// Run Fig 9.
pub fn run(opts: &Opts) -> bool {
    let ssd = DeviceProfile::SSD_RAID0;
    for d in real_world(opts) {
        let g = prepare_mem(&d, 12, false);
        let n = g.num_vertices() as u64;
        let full = 2 * n * 8 + 4 * n + g.total_subshard_bytes().expect("sizes");
        let mut t = Table::new(
            format!("Fig 9 — PageRank on {} vs memory budget (modeled SSD seconds)", d.name),
            &[
                "budget frac",
                "nxgraph-callback",
                "nxgraph-lock",
                "graphchi-like",
                "turbograph-like",
            ],
        );
        let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
        let gc = GraphChiEngine::prepare(&g).expect("gc prep");
        for frac in [0.2f64, 0.4, 0.6, 0.8, 1.0] {
            let budget = (full as f64 * frac) as u64;
            let base = nx_cfg(opts).with_budget(budget);
            let (_, cb) = algo::pagerank(&g, opts.iters, &base).expect("cb");
            let (_, lk) = algo::pagerank(
                &g,
                opts.iters,
                &base.clone().with_sync(SyncMode::Lock),
            )
            .expect("lk");

            let (_, gcs) = gc
                .run(
                    &prog,
                    &GraphChiConfig {
                        threads: opts.threads,
                        max_iterations: opts.iters,
                    },
                )
                .expect("gc run");
            let (_, tgs) = turbograph::run(
                &g,
                &prog,
                &TurboGraphConfig {
                    threads: opts.threads,
                    max_iterations: opts.iters,
                    ..Default::default()
                },
            )
            .expect("tg run");

            t.row(vec![
                format!("{frac:.1}"),
                format!("{:.3}", modeled_secs(cb.elapsed, &cb.io, &ssd)),
                format!("{:.3}", modeled_secs(lk.elapsed, &lk.io, &ssd)),
                format!("{:.3}", modeled_secs(gcs.elapsed, &gcs.io, &ssd)),
                format!("{:.3}", modeled_secs(tgs.elapsed, &tgs.io, &ssd)),
            ]);
        }
        t.print();
    }
    println!("(paper: NXgraph below both baselines at every budget; saturation once intervals+shards fit)");
    true
}
