//! Exp 5 / Fig 10 — elapsed time vs thread count for 10-iteration
//! PageRank on the three graphs, all systems.

use std::sync::Arc;

use nxgraph_baselines::graphchi::{GraphChiConfig, GraphChiEngine};
use nxgraph_baselines::turbograph::{self, TurboGraphConfig};
use nxgraph_bench::report::{fmt_secs, Table};
use nxgraph_bench::workloads::prepare_mem;
use nxgraph_core::algo::{self, pagerank::PageRank};
use nxgraph_core::engine::SyncMode;

use crate::exps::{nx_cfg, real_world};
use crate::Opts;

/// Run Fig 10.
pub fn run(opts: &Opts) -> bool {
    for d in real_world(opts) {
        let g = prepare_mem(&d, 12, false);
        let gc = GraphChiEngine::prepare(&g).expect("gc prep");
        let mut t = Table::new(
            format!("Fig 10 — PageRank on {} vs thread count (wall seconds)", d.name),
            &[
                "threads",
                "nxgraph-callback",
                "nxgraph-lock",
                "graphchi-like",
                "turbograph-like",
            ],
        );
        for threads in [1usize, 2, 4, 6, 8, 12] {
            let base = nx_cfg(opts).with_threads(threads);
            let (_, cb) = algo::pagerank(&g, opts.iters, &base).expect("cb");
            let (_, lk) =
                algo::pagerank(&g, opts.iters, &base.clone().with_sync(SyncMode::Lock))
                    .expect("lk");
            let prog = PageRank::new(g.num_vertices(), Arc::clone(g.out_degrees()));
            let (_, gcs) = gc
                .run(
                    &prog,
                    &GraphChiConfig {
                        threads,
                        max_iterations: opts.iters,
                    },
                )
                .expect("gc run");
            let (_, tgs) = turbograph::run(
                &g,
                &prog,
                &TurboGraphConfig {
                    threads,
                    max_iterations: opts.iters,
                    ..Default::default()
                },
            )
            .expect("tg run");
            t.row(vec![
                threads.to_string(),
                fmt_secs(cb.elapsed),
                fmt_secs(lk.elapsed),
                fmt_secs(gcs.elapsed),
                fmt_secs(tgs.elapsed),
            ]);
        }
        t.print();
    }
    println!("(paper: NXgraph scales with threads on in-memory graphs; I/O-bound graphs flatten)");
    true
}
