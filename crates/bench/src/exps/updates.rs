//! `updates` — the tracked streaming-update baseline.
//!
//! Like `perf`, this experiment exists for the *repo's own* trajectory
//! rather than a paper table: a fixed-seed R-MAT fixture receives a
//! stream of edge batches through [`DynamicGraph`] under the delta log
//! (default compaction thresholds), the legacy whole-cell rewrite, and —
//! with `--background` — the delta log with folds moved to the
//! maintenance thread. Each mode measures edges-applied/sec, counted
//! disk write bytes per batch, and the p50/p99 latency of individual
//! `add_edges` commits: inline folds show up as p99 spikes that the
//! background mode takes off the commit path. After the stream (and
//! after quiescing maintenance), PageRank on each dynamic graph must be
//! bitwise-identical to PageRank on a from-scratch preprocessing of the
//! same final edge set; the run *fails* otherwise.
//!
//! A separate degradation pass replays the delta-log stream against a
//! disk whose write budget runs out partway (injected ENOSPC via
//! [`FaultDisk`](nxgraph_storage::FaultDisk)): every commit past the
//! budget must abort cleanly — typed error, store parked on its last
//! manifest — and the surviving prefix must still be bitwise-identical
//! to a fresh preparation of exactly the applied edges. With `--json`
//! the results land in `BENCH_updates.json` (schema v3) so successive
//! PRs can diff the numbers; CI uploads a tiny-scale run as an artifact.

use std::fmt::Write as _;
use std::time::Instant;

use nxgraph_bench::report::{fmt_secs, Table};
use nxgraph_core::algo;
use nxgraph_core::dynamic::{DynamicConfig, DynamicGraph};
use nxgraph_core::engine::EngineConfig;
use nxgraph_core::prep::{preprocess, PrepConfig};
use nxgraph_core::PreparedGraph;
use nxgraph_graphgen::rmat::{self, RmatConfig};
use nxgraph_storage::{Disk, EncodingPolicy, FaultDisk, FaultPlan, MemDisk};
use rand::{Rng, SeedableRng};

use crate::Opts;

/// Baseline R-MAT log2 scale before `--scale-shift` is applied.
const BASE_SCALE: i32 = 12;

/// Edges per vertex of the fixture.
const EDGE_FACTOR: u32 = 16;

/// Number of intervals of the prepared fixture.
const P: u32 = 8;

/// Batches applied per mode.
const NUM_BATCHES: usize = 16;

/// One measured commit mode.
struct ModeReport {
    mode: &'static str,
    elapsed_secs: f64,
    edges_per_sec: f64,
    write_bytes_total: u64,
    write_bytes_per_batch: u64,
    deltas_appended: usize,
    cells_rewritten: usize,
    cells_compacted: usize,
    /// Median / 99th-percentile `add_edges` wall time per batch, in µs.
    add_latency_p50_us: f64,
    add_latency_p99_us: f64,
    /// PageRank bits after the stream (compared across modes and against
    /// the from-scratch preparation).
    fingerprint: Vec<u64>,
}

/// Nearest-rank percentile of an unsorted sample, in place.
fn percentile_us(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    samples[((samples.len() - 1) as f64 * q).round() as usize]
}

/// Graceful write-side degradation under injected ENOSPC.
struct EnospcReport {
    /// Write budget (bytes through the fault wrapper) before every
    /// further write fails with ENOSPC.
    budget_bytes: u64,
    commits_attempted: usize,
    /// Commits that landed before the budget ran out.
    commits_applied: usize,
    /// Commits aborted by the injected ENOSPC (typed error, store left on
    /// its last manifest).
    commits_aborted: u64,
    /// Whether the surviving store is bitwise-identical to a fresh
    /// preparation of exactly the applied edges.
    post_abort_identical: bool,
}

struct Report {
    scale: u32,
    vertices: u32,
    edges_base: u64,
    batch_size: usize,
    modes: Vec<ModeReport>,
    identical: bool,
    enospc: EnospcReport,
}

fn fingerprint(g: &PreparedGraph, iters: usize) -> Vec<u64> {
    let cfg = EngineConfig::default().with_max_iterations(iters);
    let (ranks, _) = algo::pagerank(g, iters, &cfg).expect("pagerank");
    ranks.into_iter().map(f64::to_bits).collect()
}

/// The randomized batch stream: edges between vertices the base graph
/// already knows, so every commit takes the incremental path.
fn batches(known: &[u64], batch_size: usize, seed: u64) -> Vec<Vec<(u64, u64)>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5eed_u64);
    (0..NUM_BATCHES)
        .map(|_| {
            (0..batch_size)
                .map(|_| {
                    let s = known[rng.random_range(0..known.len())];
                    let d = known[rng.random_range(0..known.len())];
                    (s, d)
                })
                .collect()
        })
        .collect()
}

fn measure(opts: &Opts) -> Report {
    let scale = (BASE_SCALE + opts.scale_shift).max(6) as u32;
    let raw: Vec<(u64, u64)> = rmat::generate(&RmatConfig::graph500(scale, EDGE_FACTOR, opts.seed))
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect();
    let encoding = opts.encoding.unwrap_or(EncodingPolicy::Raw);
    let prep_cfg = PrepConfig::new("updates", P).with_encoding(encoding);

    // Shared batch stream, sized to the fixture.
    let probe: std::sync::Arc<dyn Disk> = std::sync::Arc::new(MemDisk::new());
    let probe_graph = preprocess(&raw, &prep_cfg, probe).expect("prep");
    let known = probe_graph.load_reverse_mapping().expect("mapping");
    let batch_size = (raw.len() / 64).clamp(64, 4096);
    let stream = batches(&known, batch_size, opts.seed);
    let total_edges: usize = stream.iter().map(Vec::len).sum();

    let mut mode_list = vec![
        ("delta", DynamicConfig::default()),
        ("rewrite", DynamicConfig::rewrite()),
    ];
    if opts.background {
        // Same fold thresholds as "delta"; the folds run on the
        // maintenance thread instead of inside add_edges.
        mode_list.push(("background", DynamicConfig::background()));
    }
    let mut modes = Vec::new();
    for (mode, config) in mode_list {
        // RAM-disk profile (the methodology of the exp* suite): counted
        // write bytes are byte-exact on any disk, and wall time then
        // measures the commit paths themselves instead of host I/O
        // jitter. Feed the counted bytes to a `DeviceProfile` for
        // modeled-device comparisons. Median of three fresh replays —
        // single sub-second streams are noisy.
        let mut samples = Vec::with_capacity(3);
        for _ in 0..3 {
            let disk: std::sync::Arc<dyn Disk> = std::sync::Arc::new(MemDisk::new());
            let g = preprocess(&raw, &prep_cfg, std::sync::Arc::clone(&disk)).expect("prep");
            let mut dg = DynamicGraph::with_config(g, config.clone()).expect("dynamic");
            let write_before = disk.counters().written_bytes();
            let (mut deltas, mut rewrites, mut compactions) = (0usize, 0usize, 0usize);
            let mut latencies = Vec::with_capacity(stream.len());
            let started = Instant::now();
            for batch in &stream {
                let commit = Instant::now();
                let stats = dg.add_edges(batch).expect("add_edges");
                latencies.push(commit.elapsed().as_secs_f64() * 1e6);
                assert!(!stats.rebuilt, "batches only touch known vertices");
                deltas += stats.deltas_appended;
                rewrites += stats.cells_rewritten;
                compactions += stats.cells_compacted;
            }
            // `elapsed` covers the commit path only; the quiesce below
            // drains in-flight background folds so the write-byte totals
            // and the fold count are complete for every mode.
            let elapsed = started.elapsed().as_secs_f64().max(1e-9);
            dg.wait_maintenance_idle().expect("maintenance");
            if let Some(maint) = dg.maintenance() {
                compactions += maint.stats().cells_folded as usize;
            }
            let written = disk.counters().written_bytes() - write_before;
            samples.push((elapsed, written, deltas, rewrites, compactions, latencies, dg));
        }
        samples.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (elapsed, written, deltas, rewrites, compactions, mut latencies, dg) =
            samples.remove(1);
        modes.push(ModeReport {
            mode,
            elapsed_secs: elapsed,
            edges_per_sec: total_edges as f64 / elapsed,
            write_bytes_total: written,
            write_bytes_per_batch: written / NUM_BATCHES as u64,
            deltas_appended: deltas,
            cells_rewritten: rewrites,
            cells_compacted: compactions,
            add_latency_p50_us: percentile_us(&mut latencies, 0.50),
            add_latency_p99_us: percentile_us(&mut latencies, 0.99),
            fingerprint: fingerprint(dg.graph(), opts.iters.min(5)),
        });
    }

    // The correctness gate: both dynamic paths must land bit-for-bit on
    // the from-scratch preparation of the final edge set.
    let mut full = raw.clone();
    full.extend(stream.iter().flatten());
    let fresh_disk: std::sync::Arc<dyn Disk> = std::sync::Arc::new(MemDisk::new());
    let fresh = preprocess(&full, &prep_cfg, fresh_disk).expect("fresh prep");
    let want = fingerprint(&fresh, opts.iters.min(5));
    let identical = modes.iter().all(|m| m.fingerprint == want);

    // Degradation pass: half the delta log's measured write bytes, so the
    // stream deterministically runs out of space partway through.
    let delta_bytes = modes
        .iter()
        .find(|m| m.mode == "delta")
        .expect("delta mode always measured")
        .write_bytes_total;
    let enospc = measure_enospc(&raw, &prep_cfg, &stream, (delta_bytes / 2).max(1), opts.iters.min(5));

    Report {
        scale,
        vertices: probe_graph.num_vertices(),
        edges_base: probe_graph.num_edges(),
        batch_size,
        modes,
        identical,
        enospc,
    }
}

/// Replay the delta-log stream against a write budget: commits past the
/// budget must abort with a typed error and leave the store on its last
/// manifest, never torn.
fn measure_enospc(
    raw: &[(u64, u64)],
    prep_cfg: &PrepConfig,
    stream: &[Vec<(u64, u64)>],
    budget_bytes: u64,
    iters: usize,
) -> EnospcReport {
    let mem: std::sync::Arc<dyn Disk> = std::sync::Arc::new(MemDisk::new());
    preprocess(raw, prep_cfg, std::sync::Arc::clone(&mem)).expect("prep");
    // Prep ran unbudgeted on the raw disk; only the commits are rationed.
    let faulted: std::sync::Arc<dyn Disk> = std::sync::Arc::new(FaultDisk::new(
        std::sync::Arc::clone(&mem),
        FaultPlan::new().with_enospc_after(budget_bytes),
    ));
    let g = PreparedGraph::open(faulted).expect("open budgeted graph");
    let mut dg = DynamicGraph::with_config(g, DynamicConfig::default()).expect("dynamic");
    let mut applied: Vec<(u64, u64)> = raw.to_vec();
    let mut commits_applied = 0usize;
    for batch in stream {
        if dg.add_edges(batch).is_ok() {
            commits_applied += 1;
            applied.extend(batch);
        }
    }
    let commits_aborted = dg.commit_aborts();
    drop(dg);
    // Reopen through the raw disk: the store must be exactly the applied
    // prefix, bit-for-bit (aborted attempts left only unreferenced blobs).
    let reopened = PreparedGraph::open(mem).expect("reopen after aborts");
    let fresh_disk: std::sync::Arc<dyn Disk> = std::sync::Arc::new(MemDisk::new());
    let fresh = preprocess(&applied, prep_cfg, fresh_disk).expect("fresh prep of applied prefix");
    let post_abort_identical = fingerprint(&reopened, iters) == fingerprint(&fresh, iters);
    EnospcReport {
        budget_bytes,
        commits_attempted: stream.len(),
        commits_applied,
        commits_aborted,
        post_abort_identical,
    }
}

impl Report {
    fn mode(&self, name: &str) -> &ModeReport {
        self.modes.iter().find(|m| m.mode == name).expect("mode")
    }

    /// Delta-log edges-applied/sec over the rewrite path's.
    fn speedup(&self) -> f64 {
        self.mode("delta").edges_per_sec / self.mode("rewrite").edges_per_sec.max(1e-9)
    }

    /// Rewrite-path write bytes per batch over the delta log's.
    fn write_ratio(&self) -> f64 {
        self.mode("rewrite").write_bytes_per_batch as f64
            / self.mode("delta").write_bytes_per_batch.max(1) as f64
    }
}

fn render_json(opts: &Opts, r: &Report) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"updates\",");
    let _ = writeln!(s, "  \"schema_version\": 3,");
    let _ = writeln!(s, "  \"seed\": {},", opts.seed);
    let _ = writeln!(s, "  \"scale\": {},", r.scale);
    let _ = writeln!(s, "  \"edge_factor\": {EDGE_FACTOR},");
    let _ = writeln!(s, "  \"intervals\": {P},");
    let _ = writeln!(s, "  \"vertices\": {},", r.vertices);
    let _ = writeln!(s, "  \"edges_base\": {},", r.edges_base);
    let _ = writeln!(s, "  \"batches\": {NUM_BATCHES},");
    let _ = writeln!(s, "  \"batch_size\": {},", r.batch_size);
    let _ = writeln!(s, "  \"modes\": [");
    for (k, m) in r.modes.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"mode\": \"{}\", \"elapsed_secs\": {:.6}, \"edges_per_sec\": {:.1}, \"write_bytes_total\": {}, \"write_bytes_per_batch\": {}, \"deltas_appended\": {}, \"cells_rewritten\": {}, \"cells_compacted\": {}, \"add_latency_p50_us\": {:.1}, \"add_latency_p99_us\": {:.1}}}{}",
            m.mode,
            m.elapsed_secs,
            m.edges_per_sec,
            m.write_bytes_total,
            m.write_bytes_per_batch,
            m.deltas_appended,
            m.cells_rewritten,
            m.cells_compacted,
            m.add_latency_p50_us,
            m.add_latency_p99_us,
            if k + 1 < r.modes.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"speedup_edges_per_sec\": {:.2},", r.speedup());
    let _ = writeln!(s, "  \"write_bytes_ratio\": {:.2},", r.write_ratio());
    let e = &r.enospc;
    let _ = writeln!(
        s,
        "  \"enospc\": {{\"budget_bytes\": {}, \"commits_attempted\": {}, \"commits_applied\": {}, \"commits_aborted\": {}, \"post_abort_identical\": {}}},",
        e.budget_bytes, e.commits_attempted, e.commits_applied, e.commits_aborted, e.post_abort_identical
    );
    let _ = writeln!(s, "  \"identical_to_fresh_prep\": {}", r.identical);
    let _ = writeln!(s, "}}");
    s
}

/// Run the streaming-update baseline; when `json_out` is set, also write
/// the JSON report there. Returns `false` (failing the harness) when a
/// dynamic path diverges bitwise from the from-scratch preparation.
pub fn run(opts: &Opts, json_out: Option<&str>) -> bool {
    let r = measure(opts);
    let mut t = Table::new(
        format!(
            "updates — {} batches of {} edges onto rmat-{}x{} ({} vertices, {} base edges)",
            NUM_BATCHES, r.batch_size, r.scale, EDGE_FACTOR, r.vertices, r.edges_base
        ),
        &[
            "mode", "time", "edges/s", "write B/batch", "deltas", "rewrites", "compactions",
            "p50 µs", "p99 µs",
        ],
    );
    for m in &r.modes {
        t.row(vec![
            m.mode.to_string(),
            fmt_secs(std::time::Duration::from_secs_f64(m.elapsed_secs)),
            format!("{:.3e}", m.edges_per_sec),
            m.write_bytes_per_batch.to_string(),
            m.deltas_appended.to_string(),
            m.cells_rewritten.to_string(),
            m.cells_compacted.to_string(),
            format!("{:.1}", m.add_latency_p50_us),
            format!("{:.1}", m.add_latency_p99_us),
        ]);
    }
    t.print();
    println!(
        "delta log vs rewrite: {:.1}x edges-applied/sec, {:.1}x fewer write bytes/batch; bitwise identical to fresh prep: {}",
        r.speedup(),
        r.write_ratio(),
        r.identical
    );
    println!(
        "enospc degradation: {}/{} commits applied before a {}-byte budget, {} aborted cleanly; surviving prefix identical to fresh prep: {}",
        r.enospc.commits_applied,
        r.enospc.commits_attempted,
        r.enospc.budget_bytes,
        r.enospc.commits_aborted,
        r.enospc.post_abort_identical
    );
    if let Some(path) = json_out {
        let json = render_json(opts, &r);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("updates: failed to write {path}: {e}");
            return false;
        }
        println!("wrote {path}");
    }
    r.identical && r.enospc.post_abort_identical
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn updates_json_is_well_formed_and_identical() {
        let opts = Opts {
            scale_shift: -6,
            iters: 3,
            background: true,
            ..Opts::default()
        };
        let r = measure(&opts);
        assert!(r.identical, "dynamic paths diverged from fresh prep");
        assert_eq!(r.modes.len(), 3);
        assert!(r.mode("delta").deltas_appended > 0);
        assert_eq!(r.mode("delta").cells_rewritten, 0);
        assert!(r.mode("rewrite").cells_rewritten > 0);
        assert_eq!(r.mode("rewrite").deltas_appended, 0);
        assert!(r.mode("background").deltas_appended > 0);
        assert_eq!(r.mode("background").cells_rewritten, 0);
        // The delta log must write less per batch even at tiny scale.
        assert!(r.write_ratio() > 1.0, "write ratio {}", r.write_ratio());
        for m in &r.modes {
            assert!(m.add_latency_p50_us > 0.0, "{}: zero p50", m.mode);
            assert!(
                m.add_latency_p99_us >= m.add_latency_p50_us,
                "{}: p99 {} below p50 {}",
                m.mode,
                m.add_latency_p99_us,
                m.add_latency_p50_us
            );
        }
        // The degradation pass must actually hit the budget and recover.
        assert!(r.enospc.commits_aborted >= 1, "no commit hit the ENOSPC budget");
        assert!(r.enospc.commits_applied >= 1, "budget too small to land any commit");
        assert_eq!(
            r.enospc.commits_applied as u64 + r.enospc.commits_aborted,
            r.enospc.commits_attempted as u64
        );
        assert!(r.enospc.post_abort_identical, "aborted commits tore the store");
        let json = render_json(&opts, &r);
        assert!(json.contains("\"bench\": \"updates\""));
        assert!(json.contains("\"schema_version\": 3"));
        assert!(json.contains("\"enospc\": {"));
        assert!(json.contains("\"commits_aborted\""));
        assert!(json.contains("\"post_abort_identical\": true"));
        assert!(json.contains("\"mode\": \"delta\""));
        assert!(json.contains("\"mode\": \"rewrite\""));
        assert!(json.contains("\"mode\": \"background\""));
        assert!(json.contains("\"add_latency_p50_us\""));
        assert!(json.contains("\"add_latency_p99_us\""));
        assert!(json.contains("\"identical_to_fresh_prep\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count(), "{json}");
    }

    #[test]
    fn updates_percentiles_are_nearest_rank() {
        assert_eq!(percentile_us(&mut [], 0.5), 0.0);
        let mut one = [7.0];
        assert_eq!(percentile_us(&mut one, 0.99), 7.0);
        let mut v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile_us(&mut v, 0.50), 51.0); // (99 * 0.5).round() = 50
        assert_eq!(percentile_us(&mut v, 0.99), 99.0); // (99 * 0.99).round() = 98
    }
}
