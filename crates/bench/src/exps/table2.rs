//! Table II — analytic read/write bounds for every update strategy.

use nxgraph_bench::report::{fmt_bytes, Table};
use nxgraph_core::iomodel::{self, IoParams};

use crate::Opts;

/// Print Table II evaluated on the Yahoo-web parameters across budgets.
pub fn run(_opts: &Opts) -> bool {
    let p = IoParams::yahoo_web();
    let threshold = p.spu_threshold();
    let mut t = Table::new(
        "Table II — amount of read/write per iteration (Yahoo-web parameters)",
        &["budget", "strategy", "Bread", "Bwrite"],
    );
    for frac in [0.125f64, 0.25, 0.5, 0.75, 1.0] {
        let budget = threshold * frac;
        let label = format!("{:.0}% of 2nBa", frac * 100.0);
        let rows: [(&str, f64, f64); 4] = [
            (
                "TurboGraph-like",
                iomodel::turbograph_read(&p, budget),
                iomodel::turbograph_write(&p, budget),
            ),
            ("SPU", iomodel::spu_read(&p, budget), iomodel::spu_write(&p, budget)),
            ("DPU", iomodel::dpu_read(&p, budget), iomodel::dpu_write(&p, budget)),
            ("MPU", iomodel::mpu_read(&p, budget), iomodel::mpu_write(&p, budget)),
        ];
        for (name, r, w) in rows {
            t.row(vec![
                label.clone(),
                name.into(),
                fmt_bytes(r as u64),
                fmt_bytes(w as u64),
            ]);
        }
    }
    t.print();
    println!(
        "(SPU threshold 2nBa = {}; SPU rows assume intervals fit, so its read shrinks as the budget covers sub-shards.)",
        fmt_bytes(threshold as u64)
    );
    true
}
