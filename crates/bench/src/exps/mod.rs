//! One module per paper table/figure.

pub mod exp1_ordering;
pub mod exp2_partitioning;
pub mod exp3_spu_dpu;
pub mod exp4_memory;
pub mod exp5_threads;
pub mod exp6_scalability;
pub mod exp7_tasks;
pub mod exp8_limited;
pub mod exp9_best;
pub mod fig6;
pub mod perf;
pub mod scaling;
pub mod serve;
pub mod table2;
pub mod updates;

use nxgraph_core::engine::EngineConfig;
use nxgraph_graphgen::datasets::{self, Dataset};
use nxgraph_storage::{DeviceProfile, IoSnapshot};

use crate::Opts;

/// The three real-world-like datasets at the configured scale.
pub fn real_world(opts: &Opts) -> Vec<Dataset> {
    datasets::real_world_suite(opts.scale_shift, opts.seed)
}

/// The Twitter-like dataset (the paper's main workload).
pub fn twitter(opts: &Opts) -> Dataset {
    datasets::twitter_like(opts.scale_shift, opts.seed + 1)
}

/// Baseline engine configuration derived from the options.
pub fn nx_cfg(opts: &Opts) -> EngineConfig {
    EngineConfig::default()
        .with_threads(opts.threads)
        .with_max_iterations(opts.iters)
}

/// Wall time plus the modeled device time for counted traffic — the
/// quantity that stands in for the paper's measured elapsed time on a
/// given storage device (DESIGN.md §2).
pub fn modeled_secs(wall: std::time::Duration, io: &IoSnapshot, dev: &DeviceProfile) -> f64 {
    wall.as_secs_f64() + dev.modeled_time(io).as_secs_f64()
}

/// A default budget that forces MPU with roughly half the intervals
/// resident, used by the "limited memory" experiments.
pub fn half_resident_budget(n: u64, value_size: u64) -> u64 {
    4 * n + n * value_size // degree table + half of 2·n·Ba
}
