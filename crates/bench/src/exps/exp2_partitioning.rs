//! Exp 2 / Fig 7 — performance vs number of intervals `P` on the
//! Twitter-like graph for PageRank, BFS and SCC.

use nxgraph_bench::report::{fmt_secs, Table};
use nxgraph_bench::workloads::prepare_mem;
use nxgraph_core::algo;

use crate::exps::{nx_cfg, twitter};
use crate::Opts;

/// The paper's P sweep.
pub const P_VALUES: [u32; 8] = [2, 4, 6, 12, 18, 24, 36, 48];

/// Run Fig 7.
pub fn run(opts: &Opts) -> bool {
    let d = twitter(opts);
    let mut t = Table::new(
        "Fig 7 — performance with different partitioning (Twitter-like)",
        &["P", "PageRank (s)", "BFS (s)", "SCC (s)"],
    );
    for p in P_VALUES {
        let g = prepare_mem(&d, p, true);
        let cfg = nx_cfg(opts);
        let (_, pr) = algo::pagerank(&g, opts.iters, &cfg).expect("pagerank");
        let (_, bf) = algo::bfs(&g, 0, &cfg).expect("bfs");
        let sc = algo::scc(&g, &cfg).expect("scc");
        t.row(vec![
            p.to_string(),
            fmt_secs(pr.elapsed),
            fmt_secs(bf.elapsed),
            fmt_secs(sc.elapsed),
        ]);
    }
    t.print();
    println!("(paper: P = 12…48 are all good practices; curves flat for global queries, sensitive for targeted ones)");
    true
}
