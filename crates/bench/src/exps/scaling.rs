//! `scaling` — the repo's own rerun of the paper's thread-scaling
//! experiment (Exp 5 / Fig 10), tracked per PR like `perf`.
//!
//! Two halves, both keyed to the multi-threaded engine:
//!
//! * **Sweep** — PageRank on the scale-15 R-MAT fixture under every
//!   strategy at 1/2/4/8 engine threads, reporting iters/sec and the
//!   speedup over the 1-thread run. `host_parallelism` is recorded
//!   because the sweep is only meaningful on a multi-core host: on one
//!   core the extra workers just time-slice.
//! * **Determinism matrix** — every algorithm × {SPU, DPU, MPU} ×
//!   {Callback, Lock} on a tiny fixed fixture, asserted bitwise-identical
//!   at 1, 2, 4 and 8 threads. The run *fails* (non-zero exit) if any
//!   cell diverges, so the CI artifact doubles as a gate: speedups are
//!   host-dependent, bit-equality is not.
//!
//! `--json` writes `BENCH_scaling.json` (`--out` overrides); `perf`
//! embeds the same report as its `"scaling"` section (schema v4).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use nxgraph_bench::report::Table;
use nxgraph_bench::workloads::prepare_os_enc;
use nxgraph_core::algo::{self, sssp, PersonalizedPageRank};
use nxgraph_core::dsss::PreparedGraph;
use nxgraph_core::engine::{self, EngineConfig, Strategy, SyncMode};
use nxgraph_core::prep::{preprocess, PrepConfig};
use nxgraph_graphgen::datasets::Dataset;
use nxgraph_graphgen::rmat::{self, RmatConfig};
use nxgraph_storage::{Disk, EncodingPolicy, MemDisk};

use crate::exps::{half_resident_budget, nx_cfg};
use crate::Opts;

/// Baseline R-MAT log2 scale of the sweep fixture before `--scale-shift`
/// (the perf baseline's larger scale, per the issue's acceptance bar).
const BASE_SCALE: i32 = 15;

/// Edges per vertex of the fixture.
const EDGE_FACTOR: u32 = 16;

/// Engine thread counts the sweep measures.
pub const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Thread counts the determinism matrix compares against the 1-thread run.
const DET_THREADS: [usize; 4] = [1, 2, 4, 8];

/// The algorithms of the determinism matrix, with the per-vertex value
/// width that sets each one's half-resident MPU budget.
const ALGOS: [(&str, u64); 8] = [
    ("pagerank", 8),
    ("bfs", 4),
    ("sssp", 8),
    ("wcc", 4),
    ("scc", 4),
    ("kcore", 4),
    ("hits", 8),
    ("ppr", 8),
];

/// One measured (strategy, threads) cell of the sweep.
struct SweepRow {
    strategy: &'static str,
    threads: usize,
    elapsed_secs: f64,
    iters_per_sec: f64,
    edges_per_sec: f64,
    /// iters/sec relative to the same strategy's 1-thread run.
    speedup: f64,
}

/// Outcome of the bitwise determinism matrix.
struct Determinism {
    algos: usize,
    cells: usize,
    identical: bool,
    /// `algo/strategy/sync@threads` labels of any diverging cells.
    failures: Vec<String>,
}

/// Everything one `scaling` run measured.
pub struct ScalingReport {
    dataset: String,
    scale: u32,
    vertices: u32,
    edges: u64,
    rows: Vec<SweepRow>,
    det: Determinism,
}

/// Run one algorithm and collapse its output to a bit-exact fingerprint
/// (the bench-side twin of the pipeline test helper).
fn algo_fingerprint(algo_name: &str, g: &PreparedGraph, cfg: &EngineConfig) -> Vec<u64> {
    let f64_bits = |v: Vec<f64>| v.into_iter().map(f64::to_bits).collect::<Vec<u64>>();
    let u32_words = |v: Vec<u32>| v.into_iter().map(u64::from).collect::<Vec<u64>>();
    match algo_name {
        "pagerank" => {
            f64_bits(algo::pagerank(g, 6, &cfg.clone().with_max_iterations(6)).unwrap().0)
        }
        "bfs" => u32_words(algo::bfs(g, 0, cfg).unwrap().0),
        "sssp" => {
            let prog = algo::Sssp::new(0, sssp::hash_weights(0.5, 2.5));
            let cfg = cfg.clone().with_max_iterations(g.num_vertices() as usize + 1);
            f64_bits(engine::run(g, &prog, &cfg).unwrap().0)
        }
        "wcc" => u32_words(algo::wcc(g, cfg).unwrap().0),
        "scc" => u32_words(algo::scc(g, cfg).unwrap().labels),
        "kcore" => u32_words(algo::kcore(g, 3, cfg).unwrap().0),
        "hits" => {
            let out = algo::hits(g, 6, cfg).unwrap();
            let mut bits = f64_bits(out.authorities);
            bits.extend(f64_bits(out.hubs));
            bits
        }
        "ppr" => {
            let prog = PersonalizedPageRank::new([0u32, 3], Arc::clone(g.out_degrees()));
            f64_bits(engine::run(g, &prog, &cfg.clone().with_max_iterations(8)).unwrap().0)
        }
        other => unreachable!("unknown algorithm {other}"),
    }
}

fn tiny_graph(raw: &[(u64, u64)]) -> PreparedGraph {
    let disk: Arc<dyn Disk> = Arc::new(MemDisk::new());
    let cfg = PrepConfig::new("scaling-det", 5).with_encoding(EncodingPolicy::Auto);
    preprocess(raw, &cfg, disk).unwrap()
}

/// The bitwise matrix: fixed tiny fixture (independent of `--scale-shift`
/// so the gate is the same everywhere), every algorithm × strategy × sync
/// mode, 2/4/8 threads against the 1-thread fingerprint.
fn determinism_matrix() -> Determinism {
    let raw: Vec<(u64, u64)> = rmat::generate(&RmatConfig::graph500(8, 6, 41))
        .into_iter()
        .map(|e| (e.src, e.dst))
        .collect();
    // k-core reads the graph as undirected; symmetrise for it only.
    let sym: Vec<(u64, u64)> = raw.iter().flat_map(|&(s, d)| [(s, d), (d, s)]).collect();
    let g = tiny_graph(&raw);
    let g_sym = tiny_graph(&sym);

    let mut cells = 0usize;
    let mut failures = Vec::new();
    for (algo_name, value_size) in ALGOS {
        let graph = if algo_name == "kcore" { &g_sym } else { &g };
        let n = graph.num_vertices() as u64;
        for (sname, strategy, budget) in [
            ("spu", Strategy::Spu, u64::MAX),
            ("dpu", Strategy::Dpu, 0),
            ("mpu", Strategy::Mpu, half_resident_budget(n, value_size)),
        ] {
            for sync in [SyncMode::Callback, SyncMode::Lock] {
                let base = EngineConfig::default()
                    .with_strategy(strategy)
                    .with_budget(budget)
                    .with_sync(sync);
                let mut reference: Option<Vec<u64>> = None;
                for threads in DET_THREADS {
                    let fp =
                        algo_fingerprint(algo_name, graph, &base.clone().with_threads(threads));
                    cells += 1;
                    match &reference {
                        None => reference = Some(fp),
                        Some(r) if *r == fp => {}
                        Some(_) => failures.push(format!(
                            "{algo_name}/{sname}/{sync:?}@{threads}"
                        )),
                    }
                }
            }
        }
    }
    Determinism {
        algos: ALGOS.len(),
        cells,
        identical: failures.is_empty(),
        failures,
    }
}

/// The thread sweep on the scale fixture: PageRank per strategy at each
/// thread count, warmup + median of three.
fn measure_sweep(opts: &Opts) -> ScalingReport {
    let scale = (BASE_SCALE + opts.scale_shift).max(4) as u32;
    let cfg = RmatConfig::graph500(scale, EDGE_FACTOR, opts.seed);
    let d = Dataset {
        name: format!("rmat-{scale}x{EDGE_FACTOR}"),
        edges: rmat::generate(&cfg),
    };
    let root = std::env::temp_dir().join(format!(
        "nxbench-scaling-{}-{scale}",
        std::process::id()
    ));
    // `auto` encoding: the default modern path, and the one whose decode
    // cost the parallel prefetch workers actually overlap.
    let g = prepare_os_enc(&d, 8, false, &root, EncodingPolicy::Auto);
    let n = g.num_vertices() as u64;

    let mut rows = Vec::new();
    for (name, strategy, budget) in [
        ("spu", Strategy::Spu, u64::MAX),
        ("mpu", Strategy::Mpu, half_resident_budget(n, 8)),
        ("dpu", Strategy::Dpu, 0),
    ] {
        let mut base_ips: Option<f64> = None;
        for threads in THREAD_SWEEP {
            let cfg = nx_cfg(opts)
                .with_threads(threads)
                .with_strategy(strategy)
                .with_budget(budget);
            algo::pagerank(&g, opts.iters, &cfg).expect("pagerank warmup");
            let mut samples = Vec::with_capacity(3);
            for _ in 0..3 {
                let t = Instant::now();
                let (_, stats) = algo::pagerank(&g, opts.iters, &cfg).expect("pagerank");
                samples.push((t.elapsed().as_secs_f64().max(1e-9), stats));
            }
            samples.sort_by(|a, b| a.0.total_cmp(&b.0));
            let (secs, stats) = &samples[1];
            let ips = stats.iterations as f64 / secs;
            let base = *base_ips.get_or_insert(ips);
            rows.push(SweepRow {
                strategy: name,
                threads,
                elapsed_secs: *secs,
                iters_per_sec: ips,
                edges_per_sec: stats.edges_traversed as f64 / secs,
                speedup: ips / base.max(1e-12),
            });
        }
    }
    let (vertices, edges) = (g.num_vertices(), g.num_edges());
    drop(g);
    let _ = std::fs::remove_dir_all(&root);
    ScalingReport {
        dataset: d.name,
        scale,
        vertices,
        edges,
        rows,
        det: determinism_matrix(),
    }
}

/// Measure everything the `scaling` experiment reports.
pub fn measure(opts: &Opts) -> ScalingReport {
    measure_sweep(opts)
}

impl ScalingReport {
    /// Whether the bitwise matrix held at every thread count.
    pub fn deterministic(&self) -> bool {
        self.det.identical
    }

    /// Append the report as a JSON object (no trailing newline) at
    /// `indent` spaces — shared by the standalone `scaling` JSON and the
    /// `"scaling"` section `perf` embeds (schema v4).
    pub fn write_json_object(&self, s: &mut String, indent: usize) {
        let pad = " ".repeat(indent);
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "{pad}  \"dataset\": \"{}\",", self.dataset);
        let _ = writeln!(s, "{pad}  \"scale\": {},", self.scale);
        let _ = writeln!(s, "{pad}  \"vertices\": {},", self.vertices);
        let _ = writeln!(s, "{pad}  \"edges\": {},", self.edges);
        let sweep: Vec<String> = THREAD_SWEEP.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(s, "{pad}  \"thread_sweep\": [{}],", sweep.join(", "));
        let _ = writeln!(s, "{pad}  \"rows\": [");
        for (ri, r) in self.rows.iter().enumerate() {
            let _ = writeln!(
                s,
                "{pad}    {{\"strategy\": \"{}\", \"threads\": {}, \"elapsed_secs\": {:.6}, \"iters_per_sec\": {:.3}, \"edges_per_sec\": {:.1}, \"speedup\": {:.3}}}{}",
                r.strategy,
                r.threads,
                r.elapsed_secs,
                r.iters_per_sec,
                r.edges_per_sec,
                r.speedup,
                if ri + 1 < self.rows.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "{pad}  ],");
        let failures: Vec<String> = self
            .det
            .failures
            .iter()
            .map(|f| format!("\"{f}\""))
            .collect();
        let _ = writeln!(
            s,
            "{pad}  \"determinism\": {{\"algos\": {}, \"cells\": {}, \"threads\": [1, 2, 4, 8], \"bitwise_identical\": {}, \"failures\": [{}]}}",
            self.det.algos,
            self.det.cells,
            self.det.identical,
            failures.join(", ")
        );
        let _ = write!(s, "{pad}}}");
    }
}

/// A canned report for tests of callers that only need the JSON shape
/// (the real sweep + matrix is exercised by this module's own test).
#[cfg(test)]
pub(crate) fn stub_report() -> ScalingReport {
    ScalingReport {
        dataset: "stub".into(),
        scale: 5,
        vertices: 32,
        edges: 64,
        rows: vec![SweepRow {
            strategy: "spu",
            threads: 1,
            elapsed_secs: 0.001,
            iters_per_sec: 1000.0,
            edges_per_sec: 64000.0,
            speedup: 1.0,
        }],
        det: Determinism {
            algos: 8,
            cells: 192,
            identical: true,
            failures: Vec::new(),
        },
    }
}

fn render_json(opts: &Opts, r: &ScalingReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"scaling\",");
    let _ = writeln!(s, "  \"schema_version\": 1,");
    let _ = writeln!(s, "  \"seed\": {},", opts.seed);
    let _ = writeln!(s, "  \"iters\": {},", opts.iters);
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let _ = writeln!(s, "  \"host_parallelism\": {host},");
    let _ = write!(s, "  \"scaling\": ");
    r.write_json_object(&mut s, 2);
    let _ = writeln!(s);
    let _ = writeln!(s, "}}");
    s
}

/// Run the scaling experiment; fails (returns `false`) if any determinism
/// cell diverged. When `json_out` is set, also write the JSON report.
pub fn run(opts: &Opts, json_out: Option<&str>) -> bool {
    let r = measure(opts);

    let mut t = Table::new(
        format!(
            "scaling — PageRank on {} ({} vertices, {} edges, {} iters)",
            r.dataset, r.vertices, r.edges, opts.iters
        ),
        &["strategy", "threads", "time (s)", "iters/s", "edges/s", "speedup"],
    );
    for row in &r.rows {
        t.row(vec![
            row.strategy.to_string(),
            row.threads.to_string(),
            format!("{:.4}", row.elapsed_secs),
            format!("{:.2}", row.iters_per_sec),
            format!("{:.3e}", row.edges_per_sec),
            format!("{:.2}x", row.speedup),
        ]);
    }
    t.print();
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("host parallelism: {host} (speedups need cores to show)");
    if r.det.identical {
        println!(
            "determinism: {} cells across {} algorithms bitwise-identical at 1/2/4/8 threads",
            r.det.cells, r.det.algos
        );
    } else {
        eprintln!(
            "scaling: DETERMINISM FAILURE — {} diverging cells: {}",
            r.det.failures.len(),
            r.det.failures.join(", ")
        );
    }

    if let Some(path) = json_out {
        let json = render_json(opts, &r);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("scaling: failed to write {path}: {e}");
            return false;
        }
        println!("\nwrote {path}");
    }
    r.det.identical
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_json_is_well_formed_and_deterministic() {
        // Deep negative shift keeps the sweep fixture tiny; the
        // determinism matrix is fixed-size regardless.
        let opts = Opts {
            scale_shift: -10,
            iters: 2,
            ..Opts::default()
        };
        let r = measure(&opts);
        assert!(
            r.deterministic(),
            "determinism matrix diverged: {:?}",
            r.det.failures
        );
        assert_eq!(r.rows.len(), 3 * THREAD_SWEEP.len());
        // Every strategy's 1-thread row is its own speedup baseline.
        for row in r.rows.iter().filter(|row| row.threads == 1) {
            assert!((row.speedup - 1.0).abs() < 1e-9, "{}", row.strategy);
        }
        let json = render_json(&opts, &r);
        assert!(json.contains("\"bench\": \"scaling\""));
        assert!(json.contains("\"thread_sweep\": [1, 2, 4, 8]"));
        assert!(json.contains("\"bitwise_identical\": true"));
        assert!(json.contains("\"host_parallelism\""));
        assert!(json.contains("\"speedup\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert_eq!(json.matches('[').count(), json.matches(']').count(), "{json}");
    }
}
