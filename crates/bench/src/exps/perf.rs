//! `perf` — the tracked PageRank wall-clock baseline.
//!
//! Unlike the exp*/fig* reproductions (which mirror the paper's tables),
//! this experiment exists for the *repo's own* performance trajectory:
//! fixed-seed R-MAT graphs at two scales, PageRank under every strategy
//! with prefetch on and off — and, since format v3, under both the raw
//! and the delta+varint `auto` blob encodings, reporting counted read
//! bytes per iteration and the on-disk blob ratio alongside
//! iterations/sec and traversed edges/sec. Schema v4 adds the effective
//! engine `threads` to every strategy row (so the committed JSON can
//! distinguish "1-core host" from "configured 1 thread") and embeds the
//! [`scaling`](crate::exps::scaling) experiment's thread-sweep +
//! determinism section. Schema v5 adds the I/O-scheduler dimension
//! (`io_sched` + `read_syscalls_per_iter` per strategy row), a
//! `cold_cache` flag (`--cold-cache` drops the workload's page cache
//! between reps) and an `out_of_core` section: a forward-only R-MAT graph
//! **prepared in streamed chunks on real files** — never fully resident —
//! run under SPU + prefetch + I/O scheduler, with `O_DIRECT` reads when
//! cold-cache mode is on, raw vs compressed encoding side by side. With
//! `--json` the results are written to `BENCH_pagerank.json` (override
//! with `--out PATH`) so successive PRs can diff the numbers; CI runs it
//! at a tiny scale, once per encoding, to keep both paths from
//! bit-rotting. `--encoding` pins a single policy for the strategy grid;
//! the default measures raw and auto side by side.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use nxgraph_bench::report::{fmt_secs, Table};
use nxgraph_bench::workloads::{prepare_os_disk, prepare_streamed_os};
use nxgraph_core::algo;
use nxgraph_core::dsss::{SubShard, SubShardView};
use nxgraph_core::engine::Strategy;
use nxgraph_graphgen::datasets::Dataset;
use nxgraph_graphgen::rmat::{self, RmatConfig};
use nxgraph_core::PreparedGraph;
use nxgraph_storage::{
    Disk, DiskConfig, EncodingPolicy, IoProfileSnapshot, OsDisk, PacedDisk, SharedBytes,
};

use crate::exps::scaling::{self, ScalingReport};
use crate::exps::{half_resident_budget, nx_cfg};
use crate::Opts;

/// Baseline R-MAT log2 scales before `--scale-shift` is applied.
const BASE_SCALES: [i32; 2] = [12, 15];

/// Edges per vertex of the fixture.
const EDGE_FACTOR: u32 = 16;

/// Base R-MAT log2 scale of the out-of-core section before
/// `--scale-shift`: large enough that the graph must stream from disk at
/// shift 0, tuned down by the same knob as everything else for CI.
const OOC_BASE_SCALE: i32 = 20;

/// One measured configuration.
struct Row {
    encoding: String,
    strategy: &'static str,
    prefetch: bool,
    /// Whether the per-iteration I/O scheduler issued the reads.
    io_sched: bool,
    /// Effective engine thread count of this run (post-clamping), not the
    /// raw `--threads` request.
    threads: usize,
    elapsed_secs: f64,
    iters_per_sec: f64,
    edges_per_sec: f64,
    /// Counted disk read traffic divided by iterations — the lever the
    /// compressed encoding moves.
    read_bytes_per_iter: u64,
    /// Read syscalls divided by iterations, from the per-disk I/O
    /// profile — the request-count companion to `read_bytes_per_iter`.
    read_syscalls_per_iter: u64,
}

/// Aggregate on-disk footprint of one encoding at one scale.
struct DiskReport {
    encoding: String,
    subshard_bytes: u64,
}

/// One measured dataset scale.
struct ScaleReport {
    dataset: String,
    scale: u32,
    vertices: u32,
    edges: u64,
    disk: Vec<DiskReport>,
    rows: Vec<Row>,
}

/// Sub-shard decode throughput: the legacy owned `SubShard::decode`, the
/// zero-copy `SubShardView::parse` (checksum skipped, the steady state
/// under the verify-once policy) and the delta+varint inflate path, in
/// million edges per second.
struct DecodeReport {
    edges: u64,
    owned_medges_per_sec: f64,
    view_medges_per_sec: f64,
    compressed_medges_per_sec: f64,
    /// Compressed blob bytes over raw blob bytes for the fixture shard.
    compressed_blob_ratio: f64,
}

fn measure_decode(opts: &Opts) -> DecodeReport {
    // One dense sub-shard at the small perf scale: decode cost is linear
    // in edges, so a single fixture tracks the trajectory fine.
    let scale = ((BASE_SCALES[0] + opts.scale_shift).max(4) as u32).min(14);
    let cfg = RmatConfig::graph500(scale, EDGE_FACTOR, opts.seed);
    let edges: Vec<(u32, u32)> = rmat::generate(&cfg)
        .into_iter()
        .map(|e| (e.src as u32, e.dst as u32))
        .collect();
    let ss = SubShard::from_edges(0, 0, edges);
    let m = ss.num_edges() as u64;
    let bytes = ss.encode();
    let shared = SharedBytes::from(bytes.clone());
    let compressed = ss.encode_with(EncodingPolicy::Compressed);
    let shared_compressed = SharedBytes::from(compressed.clone());
    let medges = |reps: u32, secs: f64| (reps as u64 * m) as f64 / 1e6 / secs.max(1e-9);

    let time_median = |f: &mut dyn FnMut()| {
        let mut samples = [0f64; 3];
        for s in &mut samples {
            const REPS: u32 = 8;
            let t = Instant::now();
            for _ in 0..REPS {
                f();
            }
            *s = medges(REPS, t.elapsed().as_secs_f64());
        }
        samples.sort_by(f64::total_cmp);
        samples[1]
    };

    let owned = time_median(&mut || {
        std::hint::black_box(SubShard::decode(&bytes, "perf").unwrap().num_edges());
    });
    let view = time_median(&mut || {
        std::hint::black_box(
            SubShardView::parse(shared.clone(), "perf", false)
                .unwrap()
                .num_edges(),
        );
    });
    let inflate = time_median(&mut || {
        std::hint::black_box(
            SubShardView::parse(shared_compressed.clone(), "perf", false)
                .unwrap()
                .num_edges(),
        );
    });
    DecodeReport {
        edges: m,
        owned_medges_per_sec: owned,
        view_medges_per_sec: view,
        compressed_medges_per_sec: inflate,
        compressed_blob_ratio: compressed.len() as f64 / bytes.len() as f64,
    }
}

/// Snapshot an [`OsDisk`]'s I/O profile (always present on real disks).
fn io_snap(os: &OsDisk) -> IoProfileSnapshot {
    os.io_profile().expect("OsDisk always profiles").snapshot()
}

fn dataset(scale: u32, opts: &Opts) -> Dataset {
    let cfg = RmatConfig::graph500(scale, EDGE_FACTOR, opts.seed);
    Dataset {
        name: format!("rmat-{scale}x{EDGE_FACTOR}"),
        edges: rmat::generate(&cfg),
    }
}

/// The encodings one run measures: both unless `--encoding` pins one.
fn encodings(opts: &Opts) -> Vec<EncodingPolicy> {
    match opts.encoding {
        Some(p) => vec![p],
        None => vec![EncodingPolicy::Raw, EncodingPolicy::Auto],
    }
}

fn measure(scale: u32, opts: &Opts) -> ScaleReport {
    let d = dataset(scale, opts);
    let mut rows = Vec::new();
    let mut disk = Vec::new();
    let mut shape = (0u32, 0u64);
    for encoding in encodings(opts) {
        // Real files (OsDisk): an out-of-core system's wall clock includes
        // read+decode, which is exactly what the prefetcher overlaps — and
        // inflation runs on its decode thread.
        let root = std::env::temp_dir().join(format!(
            "nxbench-perf-{}-{scale}-{encoding}",
            std::process::id()
        ));
        let (g, os) = prepare_os_disk(&d, 8, false, &root, encoding, DiskConfig::default());
        let n = g.num_vertices() as u64;
        shape = (g.num_vertices(), g.num_edges());
        disk.push(DiskReport {
            encoding: encoding.to_string(),
            subshard_bytes: g.total_subshard_bytes().expect("subshard sizes"),
        });
        for (name, strategy, budget) in [
            ("spu", Strategy::Spu, u64::MAX),
            ("mpu", Strategy::Mpu, half_resident_budget(n, 8)),
            ("dpu", Strategy::Dpu, 0),
        ] {
            // Prefetch on/off (scheduler off), plus the scheduler on top
            // of the prefetched path — its intended configuration.
            for (prefetch, io_sched) in [(true, false), (false, false), (true, true)] {
                let cfg = nx_cfg(opts)
                    .with_strategy(strategy)
                    .with_budget(budget)
                    .with_prefetch(prefetch)
                    .with_io_scheduler(io_sched);
                // One untimed warmup run, then the median of three measured
                // runs — single engine runs at these scales are noisy.
                algo::pagerank(&g, opts.iters, &cfg).expect("pagerank warmup");
                let mut samples = Vec::with_capacity(3);
                for _ in 0..3 {
                    if opts.cold_cache {
                        os.drop_all_page_cache();
                    }
                    let before = io_snap(&os);
                    let (_, stats) = algo::pagerank(&g, opts.iters, &cfg).expect("pagerank");
                    let io = io_snap(&os).delta(&before);
                    samples.push((stats.elapsed.as_secs_f64().max(1e-9), stats, io));
                }
                samples.sort_by(|a, b| a.0.total_cmp(&b.0));
                let (secs, stats, io) = &samples[1];
                let iters = stats.iterations.max(1) as u64;
                rows.push(Row {
                    encoding: encoding.to_string(),
                    strategy: name,
                    prefetch,
                    io_sched,
                    threads: cfg.threads,
                    elapsed_secs: *secs,
                    iters_per_sec: stats.iterations as f64 / secs,
                    edges_per_sec: stats.edges_traversed as f64 / secs,
                    read_bytes_per_iter: stats.io.read_bytes / iters,
                    read_syscalls_per_iter: io.read_syscalls / iters,
                });
            }
        }
        drop(g);
        let _ = std::fs::remove_dir_all(&root);
    }
    ScaleReport {
        dataset: d.name,
        scale,
        vertices: shape.0,
        edges: shape.1,
        disk,
        rows,
    }
}

/// One encoding of the out-of-core workload, with the full per-disk I/O
/// profile of the median run.
struct OocRow {
    encoding: String,
    elapsed_secs: f64,
    iters_per_sec: f64,
    edges_per_sec: f64,
    read_bytes_per_iter: u64,
    io: IoProfileSnapshot,
}

/// The out-of-core section: streamed prep + SPU + prefetch + I/O
/// scheduler on real files, raw vs compressed.
struct OocReport {
    dataset: String,
    scale: u32,
    vertices: u32,
    edges: u64,
    cold_cache: bool,
    direct_requested: bool,
    /// `DeviceProfile` name the reads were paced to, or `"real"` for the
    /// container's actual (unpaced) device.
    device: String,
    /// Configured scheduler window size the runs were issued with.
    io_queue_depth: usize,
    prep_secs: f64,
    rows: Vec<OocRow>,
}

impl OocReport {
    /// Compressed-over-raw iterations/sec ratio — `> 1` means the
    /// compressed encoding wins wall-clock, the out-of-core design goal.
    fn compressed_speedup(&self) -> Option<f64> {
        let ips = |enc: &str| {
            self.rows
                .iter()
                .find(|r| r.encoding == enc)
                .map(|r| r.iters_per_sec)
        };
        match (ips("raw"), ips("compressed")) {
            (Some(raw), Some(c)) if raw > 0.0 => Some(c / raw),
            _ => None,
        }
    }
}

fn measure_out_of_core(opts: &Opts) -> OocReport {
    // `--ooc-scale` pins the workload size independently of the in-memory
    // sections: the committed cold-cache baseline runs the out-of-core
    // workload at scale ≥ 22 (where disk bandwidth, not request latency,
    // is the bottleneck) without dragging the warm sections up with it.
    let scale = opts
        .ooc_scale
        .unwrap_or_else(|| (OOC_BASE_SCALE + opts.scale_shift).max(6) as u32)
        .max(6);
    // O_DIRECT only in cold-cache mode: a warm-cache direct run would
    // compare apples (device reads) to oranges (page-cache hits).
    let disk_cfg = DiskConfig { direct_reads: opts.cold_cache };
    let mut rows = Vec::new();
    let mut shape = (String::new(), 0u32, 0u64);
    let mut prep_secs = 0.0f64;
    for encoding in [EncodingPolicy::Raw, EncodingPolicy::Compressed] {
        let root = std::env::temp_dir().join(format!(
            "nxbench-ooc-{}-{scale}-{encoding}",
            std::process::id()
        ));
        let t = Instant::now();
        let (g, os) =
            prepare_streamed_os(scale, EDGE_FACTOR, opts.seed, 8, &root, encoding, disk_cfg);
        prep_secs += t.elapsed().as_secs_f64();
        // Device emulation: reopen the graph through a pacing wrapper so
        // the measured iterations see the named profile's bandwidth and
        // seek behaviour (prep above ran unpaced; it isn't measured).
        let g = match &opts.ooc_device {
            Some(profile) => {
                drop(g);
                let paced: Arc<dyn Disk> =
                    Arc::new(PacedDisk::new(Arc::clone(&os) as Arc<dyn Disk>, *profile));
                PreparedGraph::open(paced).expect("reopen paced out-of-core graph")
            }
            None => g,
        };
        shape = (g.manifest().name.clone(), g.num_vertices(), g.num_edges());
        // SPU with a zero budget streams every sub-shard every iteration —
        // the most read-bound configuration, where the encoding's byte
        // savings translate directly into wall-clock.
        let cfg = nx_cfg(opts)
            .with_strategy(Strategy::Spu)
            .with_budget(0)
            .with_prefetch(true)
            .with_io_scheduler(true);
        algo::pagerank(&g, opts.iters, &cfg).expect("ooc warmup");
        let mut samples = Vec::with_capacity(3);
        for _ in 0..3 {
            if opts.cold_cache {
                os.drop_all_page_cache();
            }
            let before = io_snap(&os);
            let (_, stats) = algo::pagerank(&g, opts.iters, &cfg).expect("ooc pagerank");
            let io = io_snap(&os).delta(&before);
            samples.push((stats.elapsed.as_secs_f64().max(1e-9), stats, io));
        }
        samples.sort_by(|a, b| a.0.total_cmp(&b.0));
        let (secs, stats, io) = &samples[1];
        rows.push(OocRow {
            encoding: encoding.to_string(),
            elapsed_secs: *secs,
            iters_per_sec: stats.iterations as f64 / secs,
            edges_per_sec: stats.edges_traversed as f64 / secs,
            read_bytes_per_iter: stats.io.read_bytes / stats.iterations.max(1) as u64,
            io: *io,
        });
        drop(g);
        let _ = std::fs::remove_dir_all(&root);
    }
    OocReport {
        dataset: shape.0,
        scale,
        vertices: shape.1,
        edges: shape.2,
        cold_cache: opts.cold_cache,
        direct_requested: disk_cfg.direct_reads,
        device: opts
            .ooc_device
            .map_or_else(|| "real".to_string(), |p| p.name.to_string()),
        io_queue_depth: nx_cfg(opts).io_queue_depth,
        prep_secs,
        rows,
    }
}

impl ScaleReport {
    /// Raw-over-auto sub-shard byte ratio, when both encodings ran.
    fn blob_ratio(&self) -> Option<f64> {
        let find = |enc: &str| {
            self.disk
                .iter()
                .find(|d| d.encoding == enc)
                .map(|d| d.subshard_bytes)
        };
        match (find("raw"), find("auto")) {
            (Some(raw), Some(auto)) if auto > 0 => Some(raw as f64 / auto as f64),
            _ => None,
        }
    }
}

fn render_json(
    opts: &Opts,
    reports: &[ScaleReport],
    decode: &DecodeReport,
    ooc: &OocReport,
    scaling: &ScalingReport,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"bench\": \"pagerank\",");
    let _ = writeln!(s, "  \"schema_version\": 5,");
    let _ = writeln!(s, "  \"seed\": {},", opts.seed);
    let _ = writeln!(s, "  \"iters\": {},", opts.iters);
    let _ = writeln!(s, "  \"threads\": {},", opts.threads);
    let _ = writeln!(s, "  \"cold_cache\": {},", opts.cold_cache);
    // Record the host's parallelism: prefetch numbers from a single-core
    // host are degenerate (nothing to overlap) and should be diffed only
    // against baselines with comparable hardware.
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let _ = writeln!(s, "  \"host_parallelism\": {host},");
    let _ = writeln!(s, "  \"edge_factor\": {EDGE_FACTOR},");
    let _ = writeln!(s, "  \"scales\": [");
    for (si, r) in reports.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"dataset\": \"{}\",", r.dataset);
        let _ = writeln!(s, "      \"scale\": {},", r.scale);
        let _ = writeln!(s, "      \"vertices\": {},", r.vertices);
        let _ = writeln!(s, "      \"edges\": {},", r.edges);
        // `blob_ratio` only exists when both encodings were measured — a
        // pinned `--encoding` run must not fabricate a 1.0 ratio.
        let mut disk_fields: Vec<String> = r
            .disk
            .iter()
            .map(|d| format!("\"{}_subshard_bytes\": {}", d.encoding, d.subshard_bytes))
            .collect();
        if let Some(ratio) = r.blob_ratio() {
            disk_fields.push(format!("\"blob_ratio\": {ratio:.3}"));
        }
        let _ = writeln!(s, "      \"disk\": {{");
        let _ = writeln!(s, "        {}", disk_fields.join(",\n        "));
        let _ = writeln!(s, "      }},");
        let _ = writeln!(s, "      \"strategies\": [");
        for (ri, row) in r.rows.iter().enumerate() {
            let _ = writeln!(
                s,
                "        {{\"encoding\": \"{}\", \"strategy\": \"{}\", \"prefetch\": {}, \"io_sched\": {}, \"threads\": {}, \"elapsed_secs\": {:.6}, \"iters_per_sec\": {:.3}, \"edges_per_sec\": {:.1}, \"read_bytes_per_iter\": {}, \"read_syscalls_per_iter\": {}}}{}",
                row.encoding,
                row.strategy,
                row.prefetch,
                row.io_sched,
                row.threads,
                row.elapsed_secs,
                row.iters_per_sec,
                row.edges_per_sec,
                row.read_bytes_per_iter,
                row.read_syscalls_per_iter,
                if ri + 1 < r.rows.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "      ]");
        let _ = writeln!(
            s,
            "    }}{}",
            if si + 1 < reports.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(
        s,
        "  \"subshard_decode\": {{\"edges\": {}, \"owned_medges_per_sec\": {:.1}, \"view_medges_per_sec\": {:.1}, \"compressed_medges_per_sec\": {:.1}, \"compressed_blob_ratio\": {:.3}}},",
        decode.edges,
        decode.owned_medges_per_sec,
        decode.view_medges_per_sec,
        decode.compressed_medges_per_sec,
        decode.compressed_blob_ratio
    );
    let _ = writeln!(s, "  \"out_of_core\": {{");
    let _ = writeln!(s, "    \"dataset\": \"{}\",", ooc.dataset);
    let _ = writeln!(s, "    \"scale\": {},", ooc.scale);
    let _ = writeln!(s, "    \"vertices\": {},", ooc.vertices);
    let _ = writeln!(s, "    \"edges\": {},", ooc.edges);
    let _ = writeln!(s, "    \"strategy\": \"spu\",");
    let _ = writeln!(s, "    \"io_sched\": true,");
    let _ = writeln!(s, "    \"io_queue_depth\": {},", ooc.io_queue_depth);
    let _ = writeln!(s, "    \"cold_cache\": {},", ooc.cold_cache);
    let _ = writeln!(s, "    \"direct_requested\": {},", ooc.direct_requested);
    let _ = writeln!(s, "    \"device\": \"{}\",", ooc.device);
    let _ = writeln!(s, "    \"prep_secs\": {:.3},", ooc.prep_secs);
    let _ = writeln!(s, "    \"rows\": [");
    for (ri, row) in ooc.rows.iter().enumerate() {
        let io = &row.io;
        let _ = writeln!(
            s,
            "      {{\"encoding\": \"{}\", \"elapsed_secs\": {:.6}, \"iters_per_sec\": {:.3}, \"edges_per_sec\": {:.1}, \"read_bytes_per_iter\": {}, \"read_syscalls\": {}, \"direct_reads\": {}, \"direct_bytes\": {}, \"direct_fallbacks\": {}, \"sched_batches\": {}, \"sched_reads\": {}, \"max_queue_depth\": {}, \"cache_drops\": {}}}{}",
            row.encoding,
            row.elapsed_secs,
            row.iters_per_sec,
            row.edges_per_sec,
            row.read_bytes_per_iter,
            io.read_syscalls,
            io.direct_reads,
            io.direct_bytes,
            io.direct_fallbacks,
            io.sched_batches,
            io.sched_reads,
            io.max_queue_depth,
            io.cache_drops,
            if ri + 1 < ooc.rows.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "    ]{}", if ooc.compressed_speedup().is_some() { "," } else { "" });
    if let Some(speedup) = ooc.compressed_speedup() {
        let _ = writeln!(s, "    \"compressed_iters_per_sec_ratio\": {speedup:.3}");
    }
    let _ = writeln!(s, "  }},");
    let _ = write!(s, "  \"scaling\": ");
    scaling.write_json_object(&mut s, 2);
    let _ = writeln!(s);
    let _ = writeln!(s, "}}");
    s
}

/// Run the perf baseline; when `json_out` is set, also write the JSON
/// report there.
pub fn run(opts: &Opts, json_out: Option<&str>) -> bool {
    let mut reports = Vec::new();
    for base in BASE_SCALES {
        let scale = (base + opts.scale_shift).max(4) as u32;
        reports.push(measure(scale, opts));
    }
    let decode = measure_decode(opts);
    let ooc = measure_out_of_core(opts);
    // The thread-scaling sweep + bitwise determinism matrix ride along in
    // the same JSON (schema v5), so the committed baseline carries the
    // multi-thread story; a determinism failure fails `perf` too.
    let scaling = scaling::measure(opts);

    for r in &reports {
        let mut t = Table::new(
            format!(
                "perf — PageRank on {} ({} vertices, {} edges, {} iters)",
                r.dataset, r.vertices, r.edges, opts.iters
            ),
            &[
                "encoding", "strategy", "prefetch", "sched", "threads", "time (s)", "iters/s",
                "edges/s", "read B/iter", "read calls/iter",
            ],
        );
        for row in &r.rows {
            t.row(vec![
                row.encoding.clone(),
                row.strategy.to_string(),
                row.prefetch.to_string(),
                row.io_sched.to_string(),
                row.threads.to_string(),
                fmt_secs(std::time::Duration::from_secs_f64(row.elapsed_secs)),
                format!("{:.2}", row.iters_per_sec),
                format!("{:.3e}", row.edges_per_sec),
                row.read_bytes_per_iter.to_string(),
                row.read_syscalls_per_iter.to_string(),
            ]);
        }
        t.print();
        if let Some(ratio) = r.blob_ratio() {
            println!("on-disk sub-shard blob ratio (raw/auto): {ratio:.2}x");
        }
    }
    println!(
        "\nsubshard_decode ({} edges): owned {:.1} M edges/s, view {:.1} M edges/s ({:.2}x), compressed inflate {:.1} M edges/s (blob {:.2}x smaller)",
        decode.edges,
        decode.owned_medges_per_sec,
        decode.view_medges_per_sec,
        decode.view_medges_per_sec / decode.owned_medges_per_sec.max(1e-9),
        decode.compressed_medges_per_sec,
        1.0 / decode.compressed_blob_ratio.max(1e-9)
    );

    let mut t = Table::new(
        format!(
            "perf — out-of-core PageRank on {} ({} vertices, {} edges, streamed prep {:.1}s, cold_cache={}, direct={}, device={})",
            ooc.dataset, ooc.vertices, ooc.edges, ooc.prep_secs, ooc.cold_cache,
            ooc.direct_requested, ooc.device
        ),
        &[
            "encoding", "time (s)", "iters/s", "read B/iter", "read syscalls", "direct B",
            "sched batches", "max qdepth",
        ],
    );
    for row in &ooc.rows {
        t.row(vec![
            row.encoding.clone(),
            fmt_secs(std::time::Duration::from_secs_f64(row.elapsed_secs)),
            format!("{:.2}", row.iters_per_sec),
            row.read_bytes_per_iter.to_string(),
            row.io.read_syscalls.to_string(),
            row.io.direct_bytes.to_string(),
            row.io.sched_batches.to_string(),
            row.io.max_queue_depth.to_string(),
        ]);
    }
    t.print();
    if let Some(speedup) = ooc.compressed_speedup() {
        println!("out-of-core compressed/raw iters/sec: {speedup:.2}x");
    }

    if !scaling.deterministic() {
        eprintln!("perf: thread-scaling determinism matrix diverged (see `nxbench scaling`)");
    }

    if let Some(path) = json_out {
        let json = render_json(opts, &reports, &decode, &ooc, &scaling);
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("perf: failed to write {path}: {e}");
            return false;
        }
        println!("\nwrote {path}");
    }
    scaling.deterministic()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_enough() {
        let opts = Opts {
            scale_shift: -8,
            ..Opts::default()
        };
        let reports = vec![measure(5, &opts)];
        let decode = measure_decode(&opts);
        assert!(decode.edges > 0);
        assert!(decode.owned_medges_per_sec > 0.0 && decode.view_medges_per_sec > 0.0);
        assert!(decode.compressed_medges_per_sec > 0.0);
        assert!(decode.compressed_blob_ratio > 0.0 && decode.compressed_blob_ratio < 1.0);
        let ooc = measure_out_of_core(&opts);
        assert_eq!(ooc.rows.len(), 2);
        assert!(ooc.compressed_speedup().is_some());
        let json = render_json(&opts, &reports, &decode, &ooc, &scaling::stub_report());
        assert!(json.contains("\"schema_version\": 5"));
        assert!(json.contains("\"bench\": \"pagerank\""));
        // Schema v5: every strategy row records its effective threads and
        // scheduler state, and the scaling section is present.
        for line in json.lines().filter(|l| l.contains("\"strategy\": \"") && l.contains("\"prefetch\":")) {
            assert!(line.contains("\"threads\":"), "row missing threads: {line}");
        }
        for line in json.lines().filter(|l| l.contains("\"prefetch\":")) {
            assert!(line.contains("\"io_sched\":"), "row missing io_sched: {line}");
            assert!(
                line.contains("\"read_syscalls_per_iter\":"),
                "row missing read_syscalls_per_iter: {line}"
            );
        }
        assert!(json.contains("\"cold_cache\": false"));
        assert!(json.contains("\"out_of_core\": {"));
        assert!(json.contains("\"device\": \"real\""));
        assert!(json.contains("\"encoding\": \"compressed\""));
        assert!(json.contains("\"direct_requested\": false"));
        assert!(json.contains("\"sched_batches\""));
        assert!(json.contains("\"max_queue_depth\""));
        assert!(json.contains("\"io_queue_depth\""));
        assert!(json.contains("\"compressed_iters_per_sec_ratio\""));
        assert!(json.contains("\"io_sched\": true"));
        assert!(json.contains("\"io_sched\": false"));
        assert!(json.contains("\"scaling\": {"));
        assert!(json.contains("\"bitwise_identical\""));
        assert!(json.contains("\"strategy\": \"spu\""));
        assert!(json.contains("\"strategy\": \"dpu\""));
        assert!(json.contains("\"prefetch\": true"));
        assert!(json.contains("\"prefetch\": false"));
        assert!(json.contains("\"encoding\": \"raw\""));
        assert!(json.contains("\"encoding\": \"auto\""));
        assert!(json.contains("\"raw_subshard_bytes\""));
        assert!(json.contains("\"auto_subshard_bytes\""));
        assert!(json.contains("\"blob_ratio\""));
        assert!(json.contains("\"read_bytes_per_iter\""));
        assert!(json.contains("\"subshard_decode\""));
        assert!(json.contains("\"compressed_medges_per_sec\""));
        // Balanced braces/brackets — no JSON parser in-tree, so check the
        // structural invariants the consumer scripts rely on.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
        // Auto must actually shrink the fixture and cut read traffic.
        let r = &reports[0];
        let ratio = r.blob_ratio().expect("both encodings measured");
        assert!(ratio > 1.0, "auto encoding did not shrink blobs: {ratio}");
        let read_of = |enc: &str, strat: &str| {
            r.rows
                .iter()
                .find(|row| row.encoding == enc && row.strategy == strat && row.prefetch)
                .map(|row| row.read_bytes_per_iter)
                .unwrap()
        };
        assert!(read_of("auto", "spu") < read_of("raw", "spu"));
    }

    #[test]
    fn pinned_encoding_measures_only_that_path() {
        let opts = Opts {
            scale_shift: -8,
            encoding: Some(EncodingPolicy::Raw),
            ..Opts::default()
        };
        let r = measure(5, &opts);
        assert!(r.rows.iter().all(|row| row.encoding == "raw"));
        assert_eq!(r.disk.len(), 1);
        assert!(r.blob_ratio().is_none());
        let json = render_json(
            &opts,
            &[r],
            &measure_decode(&opts),
            &measure_out_of_core(&opts),
            &scaling::stub_report(),
        );
        assert!(!json.contains("\"encoding\": \"auto\""));
        assert!(
            !json.contains("\"blob_ratio\""),
            "a pinned run must not fabricate a ratio"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
